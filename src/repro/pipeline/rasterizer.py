"""Tile-based alpha-blending rasterization (pipeline stage 4).

Per tile, Gaussians are blended front-to-back in depth order; a pixel stops
accumulating once its transmittance drops below the termination threshold.
The rasterizer also models the two hardware-relevant behaviours of Neo's
Rasterization Engine:

* **Subtile intersection testing** (ITU): each tile is subdivided into
  subtiles; a Gaussian is only blended into subtiles its bounding circle
  overlaps, and the per-tile OR of those bitmaps doubles as the *valid bit*
  that flags outgoing Gaussians for the next frame's deferred deletion.
* **Blend-op accounting**: the number of (Gaussian, subtile) and
  (Gaussian, pixel) operations feeds the hardware timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .framebuffer import Framebuffer
from .projection import ProjectedGaussians
from .sorting import SortedTiles
from .tiling import TileGrid

#: Contributions below 1/255 are invisible at 8-bit output and skipped,
#: matching the reference CUDA rasterizer.
MIN_ALPHA = 1.0 / 255.0

#: Alpha ceiling (reference implementation clips at 0.99).
MAX_ALPHA = 0.99

#: A pixel is finalized once its transmittance falls below this.
TERMINATION_THRESHOLD = 1e-4

#: Subtile edge used by the Neo accelerator (Table 1).
NEO_SUBTILE_SIZE = 8


@dataclass
class RasterStats:
    """Workload counters accumulated over a frame.

    Attributes
    ----------
    gaussians_processed:
        Tile-Gaussian pairs walked by the blending loop.
    blend_ops:
        (Gaussian, pixel) alpha evaluations actually performed.
    subtile_tests:
        (Gaussian, subtile) intersection tests performed by the ITU model.
    subtile_hits:
        Tests that found an overlap (work routed to an SCU).
    early_terminated_tiles:
        Tiles whose blending loop exited before exhausting their list.
    """

    gaussians_processed: int = 0
    blend_ops: int = 0
    subtile_tests: int = 0
    subtile_hits: int = 0
    early_terminated_tiles: int = 0

    def merge(self, other: "RasterStats") -> None:
        """Accumulate another tile's counters into this frame total."""
        self.gaussians_processed += other.gaussians_processed
        self.blend_ops += other.blend_ops
        self.subtile_tests += other.subtile_tests
        self.subtile_hits += other.subtile_hits
        self.early_terminated_tiles += other.early_terminated_tiles


@dataclass
class RasterResult:
    """Frame output: image, per-tile valid bits, and workload counters.

    ``valid_bits[t]`` aligns with the sorted row list of tile ``t`` and is
    ``True`` where the Gaussian intersected at least one subtile — the signal
    Neo's ITU feeds back to the Sorting Engine for lazy deletion.
    """

    image: np.ndarray
    valid_bits: dict[int, np.ndarray] = field(default_factory=dict)
    stats: RasterStats = field(default_factory=RasterStats)


def _subtile_bitmaps(
    means: np.ndarray,
    radii: np.ndarray,
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    subtile: int,
) -> np.ndarray:
    """Conservative circle-vs-rectangle intersection bitmaps, batched.

    Returns a ``(n, subtiles_y, subtiles_x)`` boolean array for all ``n``
    Gaussians at once.  The per-element math matches the scalar formulation
    (clamp the center to each subtile rect; overlap iff the clamped point is
    within the radius), so the batched result is bitwise-identical to a
    per-Gaussian loop.
    """
    sxs = np.arange(x0, x1, subtile)
    sys_ = np.arange(y0, y1, subtile)
    cx = means[:, 0][:, None]
    cy = means[:, 1][:, None]
    qx = np.clip(cx, sxs[None, :], np.minimum(sxs + subtile, x1)[None, :])
    qy = np.clip(cy, sys_[None, :], np.minimum(sys_ + subtile, y1)[None, :])
    dx2 = (qx - cx) ** 2  # (n, subtiles_x)
    dy2 = (qy - cy) ** 2  # (n, subtiles_y)
    r2 = radii * radii
    return dx2[:, None, :] + dy2[:, :, None] <= r2[:, None, None]


def rasterize_tile(
    framebuffer: Framebuffer,
    projected: ProjectedGaussians,
    rows: np.ndarray,
    bounds: tuple[int, int, int, int],
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
) -> tuple[np.ndarray, RasterStats]:
    """Blend one tile's sorted Gaussians into the framebuffer.

    Parameters
    ----------
    rows:
        Row indices into ``projected``, already depth-sorted front-to-back.
    bounds:
        Tile pixel rectangle ``(x0, y0, x1, y1)``, exclusive upper.
    subtile_size:
        Edge of the ITU subtiles; ``None`` disables subtiling (pure per-pixel
        evaluation over the whole tile).

    Returns
    -------
    ``(valid_bits, stats)`` where ``valid_bits[i]`` is True if Gaussian
    ``rows[i]`` touched any subtile of this tile.
    """
    x0, y0, x1, y1 = bounds
    stats = RasterStats()
    n = rows.shape[0]
    if n == 0 or x0 >= x1 or y0 >= y1:
        return np.zeros(n, dtype=bool), stats

    px = np.arange(x0, x1) + 0.5
    py = np.arange(y0, y1) + 0.5
    trans = framebuffer.transmittance[y0:y1, x0:x1]
    color = framebuffer.color[y0:y1, x0:x1]

    means = projected.means2d[rows]
    conics = projected.conic[rows]
    radii = projected.radii[rows]
    opacities = projected.opacities[rows]
    colors = projected.colors[rows]

    sub = subtile_size
    # Valid bits are *geometric*: the ITU runs intersection tests for the
    # whole list (it is pipelined ahead of the SCUs and cheap), regardless
    # of whether blending terminates early, so a Gaussian's membership in
    # the tile is judged independently of its visual contribution.
    if sub is not None:
        bitmaps = _subtile_bitmaps(means, radii, x0, y0, x1, y1, sub)
        stats.subtile_tests += bitmaps.size
        subtile_hits = np.count_nonzero(bitmaps, axis=(1, 2)).astype(np.int64)
        valid = subtile_hits > 0
        stats.subtile_hits += int(subtile_hits.sum())
    else:
        # No subtiling: test the splat's bounding circle against the tile.
        qx = np.clip(means[:, 0], x0, x1)
        qy = np.clip(means[:, 1], y0, y1)
        dist2 = (qx - means[:, 0]) ** 2 + (qy - means[:, 1]) ** 2
        valid = dist2 <= radii**2
        subtile_hits = valid.astype(np.int64)

    for i in range(n):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        if not valid[i]:
            continue
        stats.gaussians_processed += 1
        cx, cy = means[i]
        r = radii[i]
        # Restrict evaluation to the splat's pixel bbox within the tile.
        gx0 = max(int(np.floor(cx - r)) - x0, 0)
        gx1 = min(int(np.ceil(cx + r)) - x0 + 1, x1 - x0)
        gy0 = max(int(np.floor(cy - r)) - y0, 0)
        gy1 = min(int(np.ceil(cy + r)) - y0 + 1, y1 - y0)
        if gx0 >= gx1 or gy0 >= gy1:
            continue

        dx = px[gx0:gx1] - cx
        dy = py[gy0:gy1] - cy
        a, b, c = conics[i]
        power = -0.5 * (
            a * dx[None, :] ** 2 + c * dy[:, None] ** 2
        ) - b * dy[:, None] * dx[None, :]
        stats.blend_ops += power.size
        alpha = np.minimum(opacities[i] * np.exp(np.minimum(power, 0.0)), MAX_ALPHA)
        alpha[power > 0] = 0.0
        significant = alpha >= MIN_ALPHA
        if not significant.any():
            continue
        alpha = np.where(significant, alpha, 0.0)

        t_block = trans[gy0:gy1, gx0:gx1]
        weight = t_block * alpha
        color[gy0:gy1, gx0:gx1] += weight[..., None] * colors[i][None, None, :]
        trans[gy0:gy1, gx0:gx1] = t_block * (1.0 - alpha)

    return valid, stats


def rasterize(
    sorted_tiles: SortedTiles,
    projected: ProjectedGaussians,
    grid: TileGrid,
    background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
) -> RasterResult:
    """Rasterize a full frame from per-tile sorted Gaussian lists."""
    framebuffer = Framebuffer(width=grid.width, height=grid.height, background=background)
    result = RasterResult(image=np.empty(0))
    for tile in range(grid.num_tiles):
        rows = sorted_tiles.tile_rows[tile]
        if rows.shape[0] == 0:
            continue
        valid, stats = rasterize_tile(
            framebuffer,
            projected,
            rows,
            grid.tile_pixel_bounds(tile),
            subtile_size=subtile_size,
            termination=termination,
        )
        result.valid_bits[tile] = valid
        result.stats.merge(stats)
    result.image = framebuffer.finalize()
    return result
