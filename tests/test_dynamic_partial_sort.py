"""Unit tests for Dynamic Partial Sorting (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core.dynamic_partial_sort import (
    chunk_ranges,
    dynamic_partial_sort,
    full_sort,
    max_displacement,
    sortedness,
)
from repro.core.gaussian_table import TABLE_ENTRY_BYTES


class TestChunkRanges:
    def test_odd_iteration_aligned(self):
        assert chunk_ranges(10, 4, iteration=1) == [(0, 4), (4, 8), (8, 10)]

    def test_even_iteration_offset_by_half(self):
        assert chunk_ranges(10, 4, iteration=2) == [(0, 2), (2, 6), (6, 10)]

    def test_covers_everything_without_gaps(self):
        for length in (1, 5, 16, 100, 257):
            for iteration in (1, 2, 3, 4):
                ranges = chunk_ranges(length, 16, iteration)
                covered = []
                for start, end in ranges:
                    covered.extend(range(start, end))
                assert covered == list(range(length))

    def test_empty_table(self):
        assert chunk_ranges(0, 16, 1) == []

    def test_rejects_tiny_chunks(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 1, 1)

    def test_boundaries_interleave_between_parities(self):
        odd = {e for _, e in chunk_ranges(64, 16, 1)}
        even = {e for _, e in chunk_ranges(64, 16, 2)}
        # Interior boundaries are disjoint (shifted by half a chunk).
        assert not (odd & even - {64})


class TestDynamicPartialSort:
    def test_inputs_not_mutated(self, rng):
        keys = rng.normal(size=50)
        values = np.arange(50)
        snapshot = keys.copy()
        dynamic_partial_sort(keys, values, iteration=1, chunk_size=16)
        assert np.array_equal(keys, snapshot)

    def test_chunks_locally_sorted(self, rng):
        keys = rng.normal(size=100)
        out_keys, out_vals, _ = dynamic_partial_sort(
            keys, np.arange(100), iteration=1, chunk_size=16
        )
        for start, end in chunk_ranges(100, 16, 1):
            assert np.array_equal(out_keys[start:end], np.sort(out_keys[start:end]))

    def test_values_track_keys(self, rng):
        keys = rng.normal(size=64)
        out_keys, out_vals, _ = dynamic_partial_sort(
            keys, np.arange(64), iteration=3, chunk_size=16
        )
        assert np.array_equal(keys[out_vals], out_keys)

    def test_already_sorted_is_fixed_point(self):
        keys = np.arange(100, dtype=np.float64)
        out_keys, _, _ = dynamic_partial_sort(keys, np.arange(100), iteration=2, chunk_size=16)
        assert np.array_equal(out_keys, keys)

    def test_traffic_single_pass(self, rng):
        keys = rng.normal(size=100)
        _, _, stats = dynamic_partial_sort(keys, np.arange(100), iteration=1, chunk_size=16)
        assert stats.entries_read == 100
        assert stats.entries_written == 100
        assert stats.bytes_read == 100 * TABLE_ENTRY_BYTES

    def test_multi_pass_improves_order(self, rng):
        # Locally-perturbed table: extra passes strictly reduce the largest
        # remaining displacement (the paper's accuracy/traffic trade-off).
        keys = np.arange(512, dtype=np.float64) + rng.uniform(-24, 24, size=512)
        one, _, _ = dynamic_partial_sort(keys, np.arange(512), iteration=1, chunk_size=32)
        two, _, s2 = dynamic_partial_sort(keys, np.arange(512), iteration=1, chunk_size=32, passes=4)
        assert max_displacement(two) <= max_displacement(one)
        assert s2.entries_read == 4 * 512

    def test_hardware_units_match_numpy_path(self, rng):
        keys = rng.normal(size=80)
        values = np.arange(80)
        soft, soft_vals, _ = dynamic_partial_sort(keys, values, iteration=2, chunk_size=32)
        hard, hard_vals, stats = dynamic_partial_sort(
            keys, values, iteration=2, chunk_size=32, use_hardware_units=True
        )
        assert np.array_equal(soft, hard)
        assert stats.bitonic is not None and stats.bitonic.invocations > 0
        assert stats.merge is not None and stats.merge.merges > 0

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            dynamic_partial_sort(np.zeros(4), np.zeros(3), iteration=1)
        with pytest.raises(ValueError):
            dynamic_partial_sort(np.zeros(4), np.zeros(4), iteration=1, passes=0)

    def test_locally_perturbed_converges_over_frames(self, rng):
        # Elements within half a chunk of home: a few alternating-boundary
        # passes must fully sort (the Fig. 9(b) behaviour).
        n, chunk = 256, 32
        keys = np.arange(n, dtype=np.float64)
        keys += rng.uniform(-chunk / 2, chunk / 2, size=n)
        values = np.arange(n)
        for iteration in range(1, 6):
            keys, values, _ = dynamic_partial_sort(keys, values, iteration=iteration, chunk_size=chunk)
        assert sortedness(keys) == 1.0


class TestFullSort:
    def test_exact_and_traffic(self, rng):
        keys = rng.normal(size=1000)
        out_keys, out_vals, stats = full_sort(keys, np.arange(1000), chunk_size=256)
        assert np.array_equal(out_keys, np.sort(keys))
        assert np.array_equal(keys[out_vals], out_keys)
        # 4 chunks -> 2 merge levels -> 3x table stream each direction.
        assert stats.entries_read == 1000 * 3
        assert stats.entries_written == 1000 * 3

    def test_single_chunk_no_merge(self, rng):
        keys = rng.normal(size=100)
        _, _, stats = full_sort(keys, np.arange(100), chunk_size=256)
        assert stats.entries_read == 100

    def test_empty(self):
        keys, vals, stats = full_sort(np.empty(0), np.empty(0, dtype=np.int64))
        assert keys.shape == (0,)
        assert stats.entries_read == 0


class TestOrderMetrics:
    def test_sortedness(self):
        assert sortedness(np.array([1.0, 2.0, 3.0])) == 1.0
        assert sortedness(np.array([2.0, 1.0])) == 0.0
        assert sortedness(np.array([1.0])) == 1.0

    def test_max_displacement(self):
        assert max_displacement(np.array([1.0, 2.0, 3.0])) == 0
        assert max_displacement(np.array([3.0, 1.0, 2.0])) == 2
        assert max_displacement(np.array([5.0])) == 0
