"""Fig. 4 — GSCore QHD throughput across core counts and DRAM bandwidths.

The motivation study: at edge bandwidth (51.2 GB/s) quadrupling the cores
buys only ~1.1x FPS, while quadrupling bandwidth at 16 cores approaches 4x —
high-resolution 3DGS is memory-bound.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .runner import ExperimentResult, simulate_system

CORE_COUNTS = (4, 8, 16)
BANDWIDTHS_GBPS = (51.2, 102.4, 204.8)


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """Mean GSCore FPS at QHD for every (cores, bandwidth) combination."""
    result = ExperimentResult(
        name="fig04",
        description="GSCore QHD FPS vs. core count and DRAM bandwidth",
    )
    for bandwidth in BANDWIDTHS_GBPS:
        for cores in CORE_COUNTS:
            fps = [
                simulate_system(
                    "gscore",
                    scene,
                    "qhd",
                    num_frames=num_frames,
                    cores=cores,
                    bandwidth_gbps=bandwidth,
                ).fps
                for scene in scenes
            ]
            result.rows.append(
                {
                    "bandwidth_gbps": bandwidth,
                    "cores": cores,
                    "fps": float(np.mean(fps)),
                }
            )
    return result


def core_scaling_at(result: ExperimentResult, bandwidth_gbps: float) -> float:
    """FPS ratio from 4 to 16 cores at a given bandwidth."""
    rows = result.filter(bandwidth_gbps=bandwidth_gbps)
    by_cores = {row["cores"]: row["fps"] for row in rows}
    return by_cores[16] / by_cores[4]


def bandwidth_scaling_at(result: ExperimentResult, cores: int) -> float:
    """FPS ratio from 51.2 to 204.8 GB/s at a given core count."""
    rows = [r for r in result.rows if r["cores"] == cores]
    by_bw = {row["bandwidth_gbps"]: row["fps"] for row in rows}
    return by_bw[204.8] / by_bw[51.2]
