"""Neo accelerator performance model (paper section 5).

Three engines process frames in a tile-pipelined fashion:

* **Preprocessing Engine** — culling, feature extraction, duplication with
  the incoming-Gaussian verification step;
* **Sorting Engine** — 16 Sorting Cores running Dynamic Partial Sorting on
  the reused per-tile tables plus conventional sorting of the (small)
  incoming tables; each table entry crosses the off-chip interface once per
  direction per frame;
* **Rasterization Engine** — 4 cores x 4 ITU/SCU with on-the-fly subtile
  bitmaps and the deferred depth update folded into the feature fetch.

Latency = max(DRAM service time, slowest engine's compute time) + a small
serial overhead, reflecting the deeply pipelined design: in every evaluated
configuration Neo is memory-bound, which is why cutting sorting traffic
translates almost 1:1 into frame time.

The per-sequence loop lives in :class:`~repro.hw.system.SystemModel`; this
module supplies only Neo's traffic/latency equations, vectorized over the
frame axis of a :class:`~repro.hw.system.FrameBatch`.

Ablations (Fig. 18):

* ``sorting_engine_only=True`` (**Neo-S**) — the Sorting Engine is attached
  to a GSCore-style rasterizer: reuse-and-update works, but depth/valid-bit
  refresh needs a separate post-processing pass with per-Gaussian *random*
  DRAM reads, and subtile bitmaps are still materialized and propagated.
* ``defer_depth_update=False`` — keep Neo's rasterizer but fetch fresh
  depths eagerly each frame (the +33.2 % traffic variant of section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import DramConfig, NeoConfig
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
)
from .system import (
    FrameBatch,
    ReportBatch,
    SystemModel,
    TrafficBatch,
    register_system,
    register_variant,
    stacked_copy,
)

#: Gaussian-table entry bytes (32-bit ID with valid bit + 32-bit depth).
_ENTRY_BYTES = 8

#: Front-most Gaussians per 64 px tile before transmittance saturates.  A
#: 64 px tile holds 16x the pixels of GSCore's 16 px tile, so proportionally
#: more front splats are needed to cover all its subtiles.
_TERMINATION_DEPTH_64 = 1000

#: DRAM efficiency for Neo's almost fully streaming access pattern.
_DRAM_EFFICIENCY = 0.82

#: Burst size charged for the Neo-S ablation's random per-Gaussian depth
#: fetches (one LPDDR4 burst each).
_RANDOM_BURST_BYTES = 32

#: Bandwidth efficiency of that random-access pass.
_RANDOM_EFFICIENCY = 0.35

#: Subtile bitmap bytes per pair for the Neo-S ablation (64 subtiles in a
#: 64 px tile -> 8 bytes), written at preprocessing and read at raster.
_BITMAP_BYTES_64 = 8

#: Sorting Core cycles per table entry: 256-entry chunk = 16 BSU sub-sorts
#: (10 stages each) + 4 MSU+ merge levels (256 cycles each) ~= 4.6/entry.
_SORT_CYCLES_PER_ENTRY = 4.6

#: SCU cycles per blended pair (subtile blend inner loop).
_RASTER_CYCLES_PER_PAIR = 16.0

#: Preprocessing cycles per scene Gaussian per unit.
_PREPROC_CYCLES_PER_GAUSSIAN = 1.0

#: Per-frame serial overhead (engine drain, table pointer swap).
_SERIAL_OVERHEAD_S = 0.8e-3

#: Off-chip passes charged for a from-scratch sort on the first frame.
_INIT_SORT_PASSES = 2


@dataclass
class NeoModel(SystemModel):
    """Performance model of the Neo accelerator.

    Parameters
    ----------
    config:
        Hardware configuration (Table 1).
    dram:
        Off-chip memory parameters.
    sorting_engine_only:
        Model the Neo-S ablation (no Rasterization Engine support).
    defer_depth_update:
        Disable to model the eager depth-refresh ablation.
    """

    config: NeoConfig = field(default_factory=NeoConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    sorting_engine_only: bool = False
    defer_depth_update: bool = True
    name: str = "neo"

    def __post_init__(self) -> None:
        # Auto-name only the canonical ablations; a variant's custom name
        # (e.g. "neo-lite") survives its overlay flags.
        if self.sorting_engine_only and self.name == "neo":
            self.name = "neo-s"
        elif not self.defer_depth_update and self.name == "neo":
            self.name = "neo-eager-depth"

    # ------------------------------------------------------------------
    def stacked(self, axes) -> "NeoModel | None":
        """Neo stacks DRAM bandwidth onto the cell axis.

        The factory fixes engine parallelism via :class:`NeoConfig` and
        drops the generic ``cores`` knob, so a varying cores axis is
        stacked by ignoring it — per-cell results are constant along it,
        exactly as per-cell runs produce.
        """
        axes = dict(axes)
        bandwidth = axes.pop("bandwidth_gbps", None)
        axes.pop("cores", None)
        if axes:
            return None
        if bandwidth is None:
            return self
        return stacked_copy(
            self, dram=stacked_copy(self.dram, bandwidth_gbps=bandwidth)
        )

    # ------------------------------------------------------------------
    def _traffic_split(self, batch: FrameBatch) -> tuple[TrafficBatch, np.ndarray]:
        """(streamed stage traffic, random-access bytes) per frame."""
        visible = batch.visible
        total = batch.num_gaussians
        pairs = batch.pairs

        feature = (
            visible * FEATURE_3D_BYTES
            + (total - visible) * CULL_PROBE_BYTES
            + visible * FEATURE_2D_BYTES
        )

        # Frame 0 cold-starts with a conventional sort of every tile from
        # scratch; later frames run Dynamic Partial Sorting — one read + one
        # write of the table, plus the small incoming tables (written by
        # preprocessing, read back and merged by the Sorting Engine).
        cold = pairs * _ENTRY_BYTES * (1 + 2 * _INIT_SORT_PASSES)
        warm = 2 * pairs * _ENTRY_BYTES + 2 * batch.incoming_pairs * _ENTRY_BYTES
        sorting = np.where(batch.frame_index == 0, cold, warm)

        random_bytes = np.zeros_like(pairs)
        if self.sorting_engine_only:
            # Post-processing pass: each visible Gaussian's refreshed depth
            # is gathered from the feature table (random, one burst each)
            # and the per-tile table metadata is rewritten.
            random_bytes = visible * _RANDOM_BURST_BYTES
            sorting = sorting + pairs * _ENTRY_BYTES
        elif not self.defer_depth_update:
            # Eager refresh: an extra streamed read+write of the table
            # (section 4.4 reports +33.2 % traffic without deferral).
            sorting = sorting + 2 * pairs * _ENTRY_BYTES

        blended = batch.effective_pairs(_TERMINATION_DEPTH_64)
        raster = blended * FEATURE_2D_BYTES + batch.pixels * PIXEL_BYTES
        if self.sorting_engine_only:
            # GSCore-style rasterizer: bitmaps materialized and re-read.
            raster = raster + 2 * pairs * _BITMAP_BYTES_64

        streamed = TrafficBatch(
            feature_extraction=feature, sorting=sorting, rasterization=raster
        )
        return streamed, random_bytes

    def batch_traffic(self, batch: FrameBatch) -> TrafficBatch:
        """DRAM bytes per stage per frame (streamed component)."""
        streamed, _random = self._traffic_split(batch)
        return streamed

    # ------------------------------------------------------------------
    def batch_report(self, batch: FrameBatch) -> ReportBatch:
        """Latency and traffic for every frame in the batch."""
        streamed, random_bytes = self._traffic_split(batch)
        peak = self.dram.bandwidth_gbps * 1e9
        memory_time = streamed.total / (peak * _DRAM_EFFICIENCY)
        memory_time = memory_time + random_bytes / (peak * _RANDOM_EFFICIENCY)

        freq = self.config.frequency_ghz * 1e9
        preproc_time = (
            batch.num_gaussians
            * _PREPROC_CYCLES_PER_GAUSSIAN
            / (self.config.projection_units * freq)
        )
        sort_time = (
            batch.pairs * _SORT_CYCLES_PER_ENTRY / (self.config.sorting_cores * freq)
        )
        blended = batch.effective_pairs(_TERMINATION_DEPTH_64)
        raster_time = blended * _RASTER_CYCLES_PER_PAIR / (self.config.total_scus * freq)
        compute_time = np.maximum(np.maximum(preproc_time, sort_time), raster_time)

        # Include random bytes in the sorting stage for reporting purposes.
        traffic = TrafficBatch(
            feature_extraction=streamed.feature_extraction,
            sorting=streamed.sorting + random_bytes,
            rasterization=streamed.rasterization,
        )
        return ReportBatch(
            traffic=traffic,
            memory_time_s=np.maximum(memory_time, compute_time) + _SERIAL_OVERHEAD_S,
            compute_time_s=np.zeros_like(memory_time),
        )


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
@register_system(
    "neo",
    description="Neo accelerator: Dynamic Partial Sorting + deferred depth update",
    model_cls=NeoModel,
    config_cls=NeoConfig,
    dram_policy="edge",
)
def _build_neo(dram=None, cores: int = 16, **kwargs) -> NeoModel:
    """Neo takes the caller's DRAM config; cores are fixed by its config."""
    if dram is None:
        dram = DramConfig()
    return NeoModel(dram=dram, **kwargs)


register_variant(
    "neo-s",
    base="neo",
    description="Fig. 18 ablation: Sorting Engine on a GSCore-style rasterizer",
    overrides={"sorting_engine_only": True},
)

register_variant(
    "neo-eager-depth",
    base="neo",
    description="Section 4.4 ablation: eager per-frame depth refresh (+33% sort traffic)",
    overrides={"defer_depth_update": False},
)

register_variant(
    "neo-lite",
    base="neo",
    description="Cost-down Neo: half the Sorting Cores, 2 Rasterization Cores",
    overrides={
        "config": NeoConfig(sorting_cores=8, raster_cores=2),
        "name": "neo-lite",
    },
)
