"""Fig. 4 — GSCore QHD throughput across core counts and DRAM bandwidths.

The motivation study: at edge bandwidth (51.2 GB/s) quadrupling the cores
buys only ~1.1x FPS, while quadrupling bandwidth at 16 cores approaches 4x —
high-resolution 3DGS is memory-bound.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import ExperimentResult

CORE_COUNTS = (4, 8, 16)
BANDWIDTHS_GBPS = (51.2, 102.4, 204.8)

DESCRIPTION = "GSCore QHD FPS vs. core count and DRAM bandwidth"


def plan(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentPlan:
    """Declare the (bandwidth, cores, scene) GSCore grid at QHD."""
    cells = tuple(
        SimJob(
            "gscore",
            scene,
            "qhd",
            frames=num_frames,
            cores=cores,
            bandwidth_gbps=bandwidth,
        )
        for bandwidth in BANDWIDTHS_GBPS
        for cores in CORE_COUNTS
        for scene in scenes
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig04", description=DESCRIPTION)
        for bandwidth in BANDWIDTHS_GBPS:
            for cores in CORE_COUNTS:
                fps = [
                    reports[
                        SimJob(
                            "gscore",
                            scene,
                            "qhd",
                            frames=num_frames,
                            cores=cores,
                            bandwidth_gbps=bandwidth,
                        )
                    ].fps
                    for scene in scenes
                ]
                result.rows.append(
                    {
                        "bandwidth_gbps": bandwidth,
                        "cores": cores,
                        "fps": float(np.mean(fps)),
                    }
                )
        return result

    return ExperimentPlan("fig04", DESCRIPTION, cells, aggregate)


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """Mean GSCore FPS at QHD for every (cores, bandwidth) combination."""
    return execute_plan(plan(scenes=scenes, num_frames=num_frames))


def core_scaling_at(result: ExperimentResult, bandwidth_gbps: float) -> float:
    """FPS ratio from 4 to 16 cores at a given bandwidth."""
    rows = result.filter(bandwidth_gbps=bandwidth_gbps)
    by_cores = {row["cores"]: row["fps"] for row in rows}
    return by_cores[16] / by_cores[4]


def bandwidth_scaling_at(result: ExperimentResult, cores: int) -> float:
    """FPS ratio from 51.2 to 204.8 GB/s at a given core count."""
    rows = [r for r in result.rows if r["cores"] == cores]
    by_bw = {row["bandwidth_gbps"]: row["fps"] for row in rows}
    return by_bw[204.8] / by_bw[51.2]
