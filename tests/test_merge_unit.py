"""Unit tests for the Merge Sort Unit+ model."""

import numpy as np
import pytest

from repro.core.merge_unit import MergeStats, merge_runs, merge_sorted


class TestMergeSorted:
    def test_basic_merge(self):
        keys, vals = merge_sorted(
            np.array([1.0, 3.0, 5.0]), np.array([10, 30, 50]),
            np.array([2.0, 4.0]), np.array([20, 40]),
        )
        assert np.array_equal(keys, [1, 2, 3, 4, 5])
        assert np.array_equal(vals, [10, 20, 30, 40, 50])

    def test_empty_sides(self):
        keys, vals = merge_sorted(
            np.array([1.0, 2.0]), np.array([1, 2]), np.empty(0), np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(keys, [1.0, 2.0])
        keys, vals = merge_sorted(
            np.empty(0), np.empty(0, dtype=np.int64), np.array([1.0]), np.array([9])
        )
        assert np.array_equal(vals, [9])

    def test_stable_ties_prefer_a(self):
        keys, vals = merge_sorted(
            np.array([1.0, 2.0]), np.array([100, 200]),
            np.array([2.0]), np.array([999]),
        )
        assert np.array_equal(keys, [1.0, 2.0, 2.0])
        assert np.array_equal(vals, [100, 200, 999])

    def test_invalid_filter_a(self):
        keys, vals = merge_sorted(
            np.array([1.0, 2.0, 3.0]), np.array([1, 2, 3]),
            np.array([2.5]), np.array([25]),
            valid_a=np.array([True, False, True]),
        )
        assert np.array_equal(keys, [1.0, 2.5, 3.0])
        assert np.array_equal(vals, [1, 25, 3])

    def test_invalid_filter_b(self):
        keys, vals = merge_sorted(
            np.array([1.0]), np.array([1]),
            np.array([0.5, 2.0]), np.array([5, 20]),
            valid_b=np.array([False, True]),
        )
        assert np.array_equal(keys, [1.0, 2.0])

    def test_stats(self):
        stats = MergeStats()
        merge_sorted(
            np.array([1.0, 2.0]), np.array([1, 2]),
            np.array([3.0]), np.array([3]),
            valid_a=np.array([True, False]),
            stats=stats,
        )
        assert stats.merges == 1
        assert stats.elements_in == 3
        assert stats.elements_out == 2
        assert stats.invalid_dropped == 1
        assert stats.cycles == 3

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            merge_sorted(np.zeros(2), np.zeros(3), np.zeros(1), np.zeros(1))
        with pytest.raises(ValueError):
            merge_sorted(
                np.zeros(2), np.zeros(2), np.zeros(1), np.zeros(1),
                valid_a=np.array([True]),
            )

    def test_random_merges_match_numpy(self, rng):
        for _ in range(10):
            a = np.sort(rng.normal(size=rng.integers(0, 30)))
            b = np.sort(rng.normal(size=rng.integers(0, 30)))
            keys, _ = merge_sorted(a, np.arange(a.size), b, np.arange(b.size))
            assert np.array_equal(keys, np.sort(np.concatenate([a, b])))


class TestMergeRuns:
    def test_merges_chunk_runs(self, rng):
        keys = rng.normal(size=70)
        values = np.arange(70)
        runs = [(0, 16), (16, 32), (32, 48), (48, 64), (64, 70)]
        staged = keys.copy()
        for s, e in runs:
            staged[s:e] = np.sort(staged[s:e])
        out_keys, out_vals = merge_runs(staged, values, runs)
        assert np.array_equal(out_keys, np.sort(keys))

    def test_empty(self):
        keys, vals = merge_runs(np.empty(0), np.empty(0, dtype=np.int64), [])
        assert keys.shape == (0,)

    def test_single_run(self):
        keys, vals = merge_runs(np.array([1.0, 2.0]), np.array([1, 2]), [(0, 2)])
        assert np.array_equal(keys, [1.0, 2.0])

    def test_stats_accumulate(self, rng):
        stats = MergeStats()
        keys = np.sort(rng.normal(size=32).reshape(2, 16), axis=1).ravel()
        merge_runs(keys, np.arange(32), [(0, 16), (16, 32)], stats=stats)
        assert stats.merges == 1
        assert stats.elements_in == 32
