"""Disk-backed result cache for experiment artifacts.

Every expensive artifact the reproduction produces — captured workload
geometry, per-system :class:`~repro.hw.stages.SequenceReport`\\ s, and whole
:class:`~repro.experiments.runner.ExperimentResult` tables — is a pure
function of (scene, trajectory, hardware configuration, code version).  The
:class:`ResultCache` persists those artifacts under ``.repro_cache/`` keyed
by a stable hash of exactly that tuple, so a warm invocation never re-renders
a frame or re-simulates a system it has already measured.

Layout::

    .repro_cache/
        experiments/<key>.json    # ExperimentResult rows (human-inspectable)
        reports/<key>.pkl         # SequenceReport objects
        workloads/<key>.pkl       # captured WorkloadModel frame geometry
        tenants/<tenant>/         # per-tenant private namespaces (service)
            reports/<key>.pkl
            ...

Keys mix a canonical JSON encoding of the parameter dict with a digest of
the ``repro`` package's own source, so editing any module under
``src/repro/`` transparently invalidates every stale entry.

Multi-tenant isolation: a cache opened with a ``tenant`` (or derived via
:meth:`ResultCache.for_tenant`) reads and writes only that tenant's
subtree, so two tenants of the simulation service never observe each
other's rows unless both opt into the shared (tenant-less) namespaces.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from pathlib import Path
from typing import Any

import numpy as np

#: Default cache root, overridable via the ``REPRO_CACHE_DIR`` environment
#: variable or an explicit ``root`` argument.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Namespaces with JSON payloads; everything else is pickled.
_JSON_NAMESPACES = frozenset({"experiments", "sweeps"})

#: Directory under the cache root holding per-tenant namespace subtrees.
TENANT_ROOT = "tenants"

#: Filesystem-safe tenant identifiers (also keeps ``..``/``/`` out of paths).
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_code_version_cache: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package's Python source (16 hex chars).

    Hashes every ``*.py`` file under the installed package directory in
    sorted order, so any code change — a new strategy, a tweaked hardware
    constant — yields a different version and therefore different cache keys.
    Computed once per process.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_dir = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars that ``json`` won't take natively.

    ``np.float64`` is a ``float`` subclass and passes through on its own;
    integer and bool scalars are not, so convert them losslessly.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON-cacheable: {type(value).__name__}")


def _canonical(value: Any) -> Any:
    """Recursively convert a payload to a canonical JSON-encodable form."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; float() normalizes np scalars.
        return repr(float(value))
    return repr(value)


def stable_key(payload: dict[str, Any]) -> str:
    """Deterministic hex key for a parameter dict (code version included)."""
    body = json.dumps(
        {"code": code_version(), **_canonical(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()[:32]


class ResultCache:
    """Persistent store for experiment artifacts, keyed by stable hashes.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro_cache`` in the working directory.
    tenant:
        When given, every namespace resolves under
        ``tenants/<tenant>/`` instead of the shared root, so rows written
        by one tenant are invisible to every other tenant (and to the
        shared namespaces).  ``None`` is the shared, pre-existing layout.
    """

    def __init__(self, root: str | Path | None = None, tenant: str | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        if tenant is not None and not _TENANT_NAME.match(tenant):
            raise ValueError(
                f"invalid tenant name {tenant!r}: must match {_TENANT_NAME.pattern}"
            )
        self.root = Path(root)
        self.tenant = tenant
        self.hits = 0
        self.misses = 0

    def for_tenant(self, tenant: str | None) -> "ResultCache":
        """A view of the same store scoped to ``tenant``'s private namespaces.

        ``None`` returns a view of the shared namespaces — the opt-in
        "shared namespace" tenants can choose instead of isolation.
        Hit/miss counters are per-view.
        """
        return ResultCache(self.root, tenant=tenant)

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------
    def _path(self, namespace: str, key: str) -> Path:
        suffix = ".json" if namespace in _JSON_NAMESPACES else ".pkl"
        base = self.root if self.tenant is None else self.root / TENANT_ROOT / self.tenant
        return base / namespace / f"{key}{suffix}"

    def get(self, namespace: str, payload: dict[str, Any]) -> Any | None:
        """Look up an artifact; returns ``None`` on a miss or corrupt entry."""
        path = self._path(namespace, stable_key(payload))
        if not path.exists():
            self.misses += 1
            return None
        try:
            if path.suffix == ".json":
                with open(path, encoding="utf-8") as handle:
                    value = json.load(handle)["value"]
            else:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
        except (OSError, ValueError, KeyError, pickle.UnpicklingError, EOFError):
            # A truncated or stale entry is a miss, not an error.
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, namespace: str, payload: dict[str, Any], value: Any) -> Path:
        """Persist an artifact; writes are atomic (tmp file + rename)."""
        path = self._path(namespace, stable_key(payload))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            if path.suffix == ".json":
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(
                        {"payload": _canonical(payload), "value": value},
                        handle,
                        default=_json_default,
                    )
            else:
                with open(tmp, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _namespace_dirs(self) -> list[tuple[str, Path]]:
        """``(label, path)`` for every namespace directory in the store.

        Shared namespaces are labelled by their bare name (``reports``);
        tenant namespaces by their subtree path (``tenants/<t>/reports``).
        Labels match what :meth:`info` reports and what
        :meth:`clear`'s ``namespace`` filter selects on.  Directories that
        vanish mid-scan (concurrent ``clear``) are silently skipped.
        """
        found: list[tuple[str, Path]] = []
        try:
            top = sorted(p for p in self.root.iterdir() if p.is_dir())
        except OSError:
            return found  # root never created, not a directory, or deleted mid-scan
        for ns_dir in top:
            if ns_dir.name != TENANT_ROOT:
                found.append((ns_dir.name, ns_dir))
                continue
            try:
                tenant_dirs = sorted(p for p in ns_dir.iterdir() if p.is_dir())
            except OSError:
                continue
            for tenant_dir in tenant_dirs:
                try:
                    sub = sorted(p for p in tenant_dir.iterdir() if p.is_dir())
                except OSError:
                    continue
                found.extend(
                    (f"{TENANT_ROOT}/{tenant_dir.name}/{p.name}", p) for p in sub
                )
        return found

    def info(self) -> dict[str, Any]:
        """Summary of the cache contents for ``repro cache info``.

        Reports entry counts and byte sizes per namespace, with tenant
        namespaces listed individually as ``tenants/<tenant>/<namespace>``.
        A root that was never created (or vanishes mid-scan under a
        concurrent ``clear``) reports an empty cache rather than raising.
        """
        namespaces: dict[str, dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for label, ns_dir in self._namespace_dirs():
            entries = 0
            size = 0
            try:
                listing = list(ns_dir.iterdir())
            except OSError:
                continue  # namespace removed mid-scan
            for entry in listing:
                try:
                    if not entry.is_file():
                        continue
                    size += entry.stat().st_size
                except OSError:
                    continue  # deleted between listing and stat
                entries += 1
            namespaces[label] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
        return {
            "root": str(self.root),
            "code_version": code_version(),
            "namespaces": namespaces,
            "total_entries": total_entries,
            "total_bytes": total_bytes,
        }

    def clear(self, namespace: str | None = None) -> int:
        """Delete cached entries; returns the number removed.

        ``namespace`` limits the sweep to one subtree, using the labels
        :meth:`info` reports: a shared namespace (``reports``), one tenant's
        namespace (``tenants/acme/reports``), or a whole tenant
        (``tenants/acme``).  ``None`` clears everything.

        Deliberately surgical: only ``*.json``/``*.pkl`` entries inside the
        cache's namespace subdirectories are deleted, and directories are
        only removed once empty.  Pointing ``--cache-dir`` (or
        ``REPRO_CACHE_DIR``) at a directory holding anything else must never
        destroy that content.
        """
        removed = 0
        selected = []
        for label, ns_dir in self._namespace_dirs():
            if namespace is None or label == namespace or label.startswith(namespace + "/"):
                selected.append(ns_dir)
        for ns_dir in selected:
            for entry in ns_dir.iterdir():
                if entry.is_file() and entry.suffix in {".json", ".pkl"}:
                    entry.unlink()
                    removed += 1
            try:
                ns_dir.rmdir()
            except OSError:
                pass  # non-cache content present; leave it alone
        # Prune now-empty structural directories (tenants/<t>, tenants/, root).
        tenant_root = self.root / TENANT_ROOT
        if tenant_root.is_dir():
            for tenant_dir in list(tenant_root.iterdir()):
                try:
                    tenant_dir.rmdir()
                except OSError:
                    pass
            try:
                tenant_root.rmdir()
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed
