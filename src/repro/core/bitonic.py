"""Bitonic Sorting Unit (BSU) model.

Each of Neo's 16 Sorting Cores contains a BSU that sorts 16-entry sub-chunks
with a bitonic network (paper section 5.3).  This module provides:

* a faithful functional implementation of the bitonic network (compare and
  swap schedule identical to the hardware, so the comparator count is exact),
* a cycle-cost model: the network has ``k(k+1)/2`` stages for ``2^k`` inputs
  and the hardware evaluates one stage per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sub-chunk width of the hardware BSU (Table 1 / section 5.3).
BSU_WIDTH = 16

#: Sentinel key used to pad partial sub-chunks; sorts after any real depth.
PAD_KEY = np.inf


@dataclass
class BitonicStats:
    """Work counters for one or more BSU invocations.

    Attributes
    ----------
    invocations:
        Number of sub-chunk sorts performed.
    stages:
        Total network stages executed (one per cycle in hardware).
    comparators:
        Total compare-and-swap operations (width/2 per stage).
    """

    invocations: int = 0
    stages: int = 0
    comparators: int = 0

    @property
    def cycles(self) -> int:
        """Hardware cycles: one network stage per cycle."""
        return self.stages


def network_stages(width: int) -> int:
    """Number of stages in a bitonic network over ``width = 2^k`` inputs.

    >>> network_stages(16)
    10
    """
    if width < 1 or width & (width - 1):
        raise ValueError(f"width must be a power of two, got {width}")
    k = width.bit_length() - 1
    return k * (k + 1) // 2


def bitonic_sort_16(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    stats: BitonicStats | None = None,
    width: int = BSU_WIDTH,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Sort up to ``width`` key/value pairs with an explicit bitonic network.

    Shorter inputs are padded with ``PAD_KEY`` and the padding is stripped
    from the output, exactly as the hardware pads partial sub-chunks.

    Parameters
    ----------
    keys:
        1-D array of at most ``width`` sort keys.
    values:
        Optional payload moved alongside the keys (e.g. Gaussian IDs).
    stats:
        Optional accumulator for comparator/stage counts.

    Returns
    -------
    ``(sorted_keys, sorted_values)``; values is ``None`` if not provided.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    n = keys.shape[0]
    if n > width:
        raise ValueError(f"BSU width is {width}, got {n} entries")

    padded_keys = np.full(width, PAD_KEY)
    padded_keys[:n] = keys
    if values is not None:
        values = np.asarray(values)
        if values.shape[0] != n:
            raise ValueError("values must align with keys")
        padded_vals = np.zeros(width, dtype=values.dtype)
        padded_vals[:n] = values
    else:
        padded_vals = None

    stage_count = 0
    comparator_count = 0
    # Standard iterative bitonic sort: block size doubles outer, comparison
    # distance halves inner.  Ascending order throughout (depth keys).
    size = 2
    while size <= width:
        stride = size // 2
        while stride >= 1:
            stage_count += 1
            for i in range(width):
                partner = i ^ stride
                if partner > i:
                    comparator_count += 1
                    ascending = (i & size) == 0
                    a, b = padded_keys[i], padded_keys[partner]
                    if (a > b) == ascending:
                        padded_keys[i], padded_keys[partner] = b, a
                        if padded_vals is not None:
                            padded_vals[i], padded_vals[partner] = (
                                padded_vals[partner],
                                padded_vals[i],
                            )
            stride //= 2
        size *= 2

    if stats is not None:
        stats.invocations += 1
        stats.stages += stage_count
        stats.comparators += comparator_count

    out_vals = padded_vals[:n] if padded_vals is not None else None
    return padded_keys[:n], out_vals


def bsu_sort_chunk(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    stats: BitonicStats | None = None,
    width: int = BSU_WIDTH,
) -> tuple[np.ndarray, np.ndarray | None, list[tuple[int, int]]]:
    """Split a chunk into ``width``-entry sub-chunks and BSU-sort each.

    This is the first half of the Sorting Core's chunk pipeline; the MSU+
    then merges the sorted sub-chunks (see :mod:`repro.core.merge_unit`).

    Returns the per-sub-chunk sorted keys/values concatenated in place plus
    the ``(start, end)`` extents of each sorted run.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.shape[0]
    out_keys = np.empty_like(keys)
    out_vals = np.empty(n, dtype=np.asarray(values).dtype) if values is not None else None
    runs: list[tuple[int, int]] = []
    for start in range(0, n, width):
        end = min(start + width, n)
        sub_vals = values[start:end] if values is not None else None
        sorted_keys, sorted_vals = bitonic_sort_16(
            keys[start:end], sub_vals, stats=stats, width=width
        )
        out_keys[start:end] = sorted_keys
        if out_vals is not None:
            out_vals[start:end] = sorted_vals
        runs.append((start, end))
    return out_keys, out_vals, runs
