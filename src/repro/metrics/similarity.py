"""Temporal-similarity analysis of Gaussian tables (paper Figs. 6-7).

Given per-tile sorted ID lists from consecutive frames (functional pipeline)
or a :class:`~repro.hw.workload.WorkloadModel` (paper-scale), compute:

* the per-tile proportion of shared Gaussians between consecutive frames and
  its CDF (Fig. 6);
* the distribution of per-Gaussian sort-order displacement (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.sorting import SortedTiles


@dataclass(frozen=True)
class SimilarityStats:
    """Temporal-similarity summary between two consecutive frames."""

    shared_fractions: np.ndarray
    order_differences: np.ndarray

    def cdf(self, grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) — CDF of the per-tile shared fraction (Fig. 6)."""
        if grid is None:
            grid = np.linspace(0.5, 1.0, 101)
        values = np.sort(self.shared_fractions)
        cdf = np.searchsorted(values, grid, side="right") / max(values.shape[0], 1)
        return grid, cdf

    def fraction_of_tiles_retaining(self, threshold: float) -> float:
        """Share of tiles keeping at least ``threshold`` of their Gaussians."""
        if self.shared_fractions.size == 0:
            return 0.0
        return float(np.mean(self.shared_fractions >= threshold))

    def order_percentiles(self, percentiles=(90, 95, 99)) -> dict[int, float]:
        """Order-difference percentiles (Fig. 7's three bars)."""
        if self.order_differences.size == 0:
            return {int(p): 0.0 for p in percentiles}
        values = np.percentile(self.order_differences, percentiles)
        return {int(p): float(v) for p, v in zip(percentiles, values)}


def tile_shared_fraction(prev_ids: np.ndarray, cur_ids: np.ndarray) -> float:
    """Proportion of the previous frame's tile Gaussians still present."""
    if prev_ids.shape[0] == 0:
        return 1.0
    return float(np.mean(np.isin(prev_ids, cur_ids)))


def tile_order_differences(prev_ids: np.ndarray, cur_ids: np.ndarray) -> np.ndarray:
    """Absolute sort-position shifts of Gaussians shared by both lists.

    Both inputs must be depth-sorted ID lists; the displacement of a shared
    Gaussian is the distance between its positions in the two lists,
    restricted to the shared subset (membership churn excluded).
    """
    shared, prev_pos, cur_pos = np.intersect1d(
        prev_ids, cur_ids, assume_unique=False, return_indices=True
    )
    if shared.shape[0] < 2:
        return np.empty(0)
    prev_rank = np.argsort(np.argsort(prev_pos, kind="stable"))
    cur_rank = np.argsort(np.argsort(cur_pos, kind="stable"))
    return np.abs(prev_rank - cur_rank).astype(np.float64)


def frame_similarity(prev: SortedTiles, cur: SortedTiles) -> SimilarityStats:
    """Similarity statistics between two consecutive functional frames.

    Computed as one segmented array program over the frames' flat ID streams
    instead of a per-tile Python loop: both streams are keyed by
    ``tile * M + id`` (``M`` = one past the largest ID), sorted once, and the
    shared set, per-tile retention counts, and segmented double-argsort
    ranks all come from batched ``searchsorted``/``bincount``/``lexsort``
    passes.  Output is bit-identical to the frozen per-tile loop preserved
    in :mod:`repro.metrics.reference`: sums of 0/1 indicators are exact in
    any order, the retention division sees identical operands, and shared
    entries emerge in the same (ascending tile, ascending ID) order
    ``np.intersect1d`` produced.  Inputs the composite key cannot represent
    (negative IDs, duplicate IDs within a tile, key overflow) fall back to
    the scalar loop.
    """
    if prev.num_tiles != cur.num_tiles:
        raise ValueError("frames must cover the same tile grid")
    stats = _frame_similarity_segmented(prev, cur)
    if stats is None:
        stats = _frame_similarity_loop(prev, cur)
    return stats


def _frame_similarity_loop(prev: SortedTiles, cur: SortedTiles) -> SimilarityStats:
    """Per-tile fallback for inputs outside the composite-key domain."""
    fractions = []
    diffs = []
    for tile in range(prev.num_tiles):
        prev_ids = prev.ids_for(tile)
        if prev_ids.shape[0] == 0:
            continue
        cur_ids = cur.ids_for(tile)
        fractions.append(tile_shared_fraction(prev_ids, cur_ids))
        d = tile_order_differences(prev_ids, cur_ids)
        if d.size:
            diffs.append(d)
    return SimilarityStats(
        shared_fractions=np.asarray(fractions),
        order_differences=np.concatenate(diffs) if diffs else np.empty(0),
    )


def _segment_ranks(local_pos: np.ndarray, seg_id: np.ndarray, seg_starts: np.ndarray) -> np.ndarray:
    """Rank of each entry's position within its segment (double argsort).

    ``seg_id`` must be non-decreasing, so each segment occupies the same
    contiguous index block before and after the ``(segment, position)``
    lexsort — the in-segment rank is then the global sorted index minus the
    segment's start.
    """
    total = local_pos.shape[0]
    order = np.lexsort((local_pos, seg_id))
    ranks = np.empty(total, dtype=np.int64)
    ranks[order] = np.arange(total, dtype=np.int64) - seg_starts[seg_id[order]]
    return ranks


def _frame_similarity_segmented(prev: SortedTiles, cur: SortedTiles) -> SimilarityStats | None:
    """Segmented frame similarity; ``None`` if the inputs need the fallback."""
    num_tiles = prev.num_tiles
    prev_counts = prev.stream.counts()

    lo = 0
    hi = -1
    if prev.num_pairs:
        lo = min(lo, int(prev.ids.min()))
        hi = max(hi, int(prev.ids.max()))
    if cur.num_pairs:
        lo = min(lo, int(cur.ids.min()))
        hi = max(hi, int(cur.ids.max()))
    if lo < 0:
        return None
    m = hi + 2  # strict upper bound on any ID, so keys cannot collide
    if num_tiles and num_tiles * m >= np.iinfo(np.int64).max:
        return None

    kp = prev.stream.tile_of() * m + prev.ids
    kc = cur.stream.tile_of() * m + cur.ids
    op = np.argsort(kp)
    oc = np.argsort(kc)
    skp = kp[op]
    skc = kc[oc]
    if np.any(skp[1:] == skp[:-1]) or np.any(skc[1:] == skc[:-1]):
        return None  # duplicate IDs within a tile: intersect1d semantics differ

    if skc.shape[0]:
        pos = np.searchsorted(skc, skp)
        shared_mask = skc[np.minimum(pos, skc.shape[0] - 1)] == skp
    else:
        shared_mask = np.zeros(skp.shape[0], dtype=bool)

    tile_sorted = prev.stream.tile_of()[op]
    shared_counts = np.bincount(tile_sorted[shared_mask], minlength=num_tiles)
    nonempty = prev_counts > 0
    fractions = shared_counts[nonempty] / prev_counts[nonempty]

    # Order differences only exist for tiles sharing >= 2 Gaussians.
    tile_sh = tile_sorted[shared_mask]
    keep = shared_counts[tile_sh] >= 2
    if not np.any(keep):
        return SimilarityStats(shared_fractions=fractions, order_differences=np.empty(0))

    idx_p = op[shared_mask][keep]  # flat prev entry of each kept shared Gaussian
    keys = skp[shared_mask][keep]
    tile_k = tile_sh[keep]
    idx_c = oc[np.searchsorted(skc, keys)]

    local_p = idx_p - prev.stream.offsets[tile_k]
    local_c = idx_c - cur.stream.offsets[tile_k]

    new_seg = np.empty(tile_k.shape[0], dtype=bool)
    new_seg[0] = True
    new_seg[1:] = tile_k[1:] != tile_k[:-1]
    seg_id = np.cumsum(new_seg) - 1
    seg_starts = np.flatnonzero(new_seg)

    prev_rank = _segment_ranks(local_p, seg_id, seg_starts)
    cur_rank = _segment_ranks(local_c, seg_id, seg_starts)
    return SimilarityStats(
        shared_fractions=fractions,
        order_differences=np.abs(prev_rank - cur_rank).astype(np.float64),
    )


def sequence_similarity(frames: list[SortedTiles]) -> SimilarityStats:
    """Pool similarity statistics over every consecutive frame pair."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    fractions = []
    diffs = []
    for prev, cur in zip(frames, frames[1:]):
        stats = frame_similarity(prev, cur)
        fractions.append(stats.shared_fractions)
        if stats.order_differences.size:
            diffs.append(stats.order_differences)
    return SimilarityStats(
        shared_fractions=np.concatenate(fractions) if fractions else np.empty(0),
        order_differences=np.concatenate(diffs) if diffs else np.empty(0),
    )
