"""System-model registry + vectorized-core golden equivalence tests.

Two contracts pinned here:

* **Golden equivalence** — for every registered system, the shared
  vectorized sequence core (:meth:`repro.hw.system.SystemModel.simulate`)
  is *bit-identical*, field for field, to the frozen pre-refactor scalar
  per-frame loop preserved in :mod:`repro.hw.reference`.
* **Registry semantics** — duplicate registration fails loudly, variants
  inherit and compose overlays, and every unknown-system error reports the
  true registered option list (no hand-maintained tuples anywhere).
"""

import pytest

from repro.experiments.engine import SimJob
from repro.experiments.runner import SYSTEMS, build_system_model, simulate_system
from repro.hw import reference
from repro.hw.config import DramConfig, NeoConfig
from repro.hw.system import (
    FrameBatch,
    SystemModel,
    _REGISTRY,
    get_system,
    iter_systems,
    register_system,
    register_variant,
    registered_systems,
)
from repro.hw.workload import WorkloadModel
from repro.sweeps.spec import HardwareConfig


@pytest.fixture(scope="module")
def workload_model():
    return WorkloadModel.from_scene("family", num_frames=4, num_gaussians=1200)


@pytest.fixture()
def scratch_registry():
    """Let a test register throwaway systems; restores the registry after."""
    before = set(_REGISTRY)
    yield _REGISTRY
    for name in set(_REGISTRY) - before:
        del _REGISTRY[name]


def _assert_reports_identical(got, want) -> None:
    assert got.system == want.system
    assert got.num_frames == want.num_frames
    for g, w in zip(got.frames, want.frames):
        assert g.frame_index == w.frame_index
        # Bitwise equality, not approx: the vectorized core must reproduce
        # the scalar loop's float64 arithmetic exactly.
        assert g.traffic.feature_extraction == w.traffic.feature_extraction
        assert g.traffic.sorting == w.traffic.sorting
        assert g.traffic.rasterization == w.traffic.rasterization
        assert g.memory_time_s == w.memory_time_s
        assert g.compute_time_s == w.compute_time_s


class TestGoldenEquivalence:
    def test_every_registered_system_matches_scalar_reference(self, workload_model):
        for name in registered_systems():
            model, tile = build_system_model(name, dram=DramConfig())
            workloads = workload_model.sequence_workloads("hd", tile)
            _assert_reports_identical(
                model.simulate(workloads, scene="family"),
                reference.scalar_simulate(model, workloads, scene="family"),
            )

    def test_frame_report_matches_scalar_reference(self, workload_model):
        # The single-frame convenience goes through a batch of one; it must
        # agree with the scalar equations frame by frame, including frame 0
        # (Neo's cold-start sort) and later frames (churn-dependent terms).
        for name in registered_systems():
            model, tile = build_system_model(name, dram=DramConfig())
            for w in workload_model.sequence_workloads("hd", tile):
                got = model.frame_report(w)
                want = reference.scalar_frame_report(model, w)
                assert got.memory_time_s == want.memory_time_s, name
                assert got.compute_time_s == want.compute_time_s, name
                assert got.traffic.sorting == want.traffic.sorting, name

    def test_reference_rejects_foreign_models(self):
        class Alien(SystemModel):
            pass

        with pytest.raises(TypeError):
            reference.scalar_frame_report(Alien(), None)


class TestFrameBatch:
    def test_stacks_workload_fields(self, workload_model):
        workloads = workload_model.sequence_workloads("hd", 64)
        batch = FrameBatch.from_workloads(workloads)
        assert batch.num_frames == len(workloads)
        assert list(batch.frame_index) == [w.frame_index for w in workloads]
        assert list(batch.pairs) == [w.pairs for w in workloads]
        assert list(batch.pixels) == [w.width * w.height for w in workloads]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrameBatch.from_workloads([])

    def test_effective_pairs_matches_scalar(self, workload_model):
        from repro.hw.stages import effective_pairs

        workloads = workload_model.sequence_workloads("hd", 16)
        batch = FrameBatch.from_workloads(workloads)
        vec = batch.effective_pairs(250)
        for i, w in enumerate(workloads):
            assert vec[i] == effective_pairs(w, 250)


class TestRegistry:
    def test_systems_tuple_derived_from_registry(self):
        assert SYSTEMS == registered_systems()
        assert set(SYSTEMS) >= {"orin", "orin-neo-sw", "gscore", "neo", "neo-s"}

    def test_new_variants_registered(self):
        for name in ("neo-lite", "gscore-32c", "neo-eager-depth"):
            assert name in registered_systems()

    def test_duplicate_registration_raises(self, scratch_registry):
        from repro.hw.accelerator import NeoModel

        @register_system(
            "test-dup", description="x", model_cls=NeoModel, config_cls=NeoConfig
        )
        def build(dram=None, cores=16, **kwargs):
            return NeoModel(**kwargs)

        with pytest.raises(ValueError, match="already registered"):
            register_system(
                "test-dup", description="x", model_cls=NeoModel, config_cls=NeoConfig
            )(build)

    def test_variant_of_unknown_base_raises(self):
        with pytest.raises(KeyError, match="unregistered"):
            register_variant("test-orphan", base="no-such", description="x", overrides={})

    def test_bad_dram_policy_rejected(self):
        with pytest.raises(ValueError, match="dram_policy"):
            register_system(
                "test-bad", description="x", model_cls=object, config_cls=object,
                dram_policy="quantum",
            )

    def test_variants_inherit_and_compose_overrides(self, scratch_registry):
        spec = register_variant(
            "test-neo-s-lite",
            base="neo-s",
            description="compose check",
            overrides={"config": NeoConfig(sorting_cores=4)},
        )
        # Inherits neo-s's overlay and adds its own on top.
        assert spec.override_kwargs["sorting_engine_only"] is True
        assert spec.override_kwargs["config"].sorting_cores == 4
        model = spec.build(dram=DramConfig())
        assert model.sorting_engine_only
        assert model.config.sorting_cores == 4

    def test_explicit_kwargs_win_over_overlay(self):
        model, _tile = build_system_model("neo-s", sorting_engine_only=False)
        assert not model.sorting_engine_only

    def test_variant_custom_name_survives_ablation_flags(self):
        # Only the canonical "neo" renames to neo-s/neo-eager-depth; a
        # variant's own name is not clobbered by its (or extra) flags.
        model, _ = build_system_model("neo-lite", sorting_engine_only=True)
        assert model.name == "neo-lite"
        assert model.config.sorting_cores == 8

    def test_gscore_32c_rejects_conflicting_cores(self):
        # A cores sweep over a pinned-core variant must fail loudly, not
        # silently return 32-core results under 8-core labels/cache keys.
        with pytest.raises(ValueError, match="pins 32 cores"):
            build_system_model("gscore-32c", cores=8)
        model, _ = build_system_model("gscore-32c", cores=32)
        assert model.config.cores == 32
        # The ubiquitous default (16) counts as "unspecified".
        model, _ = build_system_model("gscore-32c", cores=16)
        assert model.config.cores == 32

    def test_base_gscore_still_honors_cores(self):
        model, _ = build_system_model("gscore", cores=8)
        assert model.config.cores == 8

    def test_systems_attribute_reads_live_registry(self, scratch_registry):
        import repro.experiments.runner as runner

        assert runner.SYSTEMS == registered_systems()
        register_variant(
            "test-late", base="neo", description="late registration", overrides={}
        )
        assert "test-late" in runner.SYSTEMS

    def test_default_tile_size_for_configless_models(self):
        class Bare(SystemModel):
            pass

        assert Bare().tile_size == 16
        model, tile = build_system_model("neo")
        assert tile == model.config.tile_size == 64

    def test_unknown_system_error_lists_registry_keys(self):
        with pytest.raises(KeyError) as exc:
            get_system("tpu")
        message = str(exc.value)
        for name in registered_systems():
            assert name in message

    def test_build_system_model_unknown_lists_options(self):
        with pytest.raises(KeyError, match="neo-lite"):
            build_system_model("tpu")

    def test_simjob_validates_system_at_declaration(self):
        with pytest.raises(KeyError, match="options"):
            SimJob("tpu", "family", "hd")

    def test_sweep_hardware_config_accepts_variants(self):
        hw = HardwareConfig(system="gscore-32c")
        assert hw.system == "gscore-32c"
        with pytest.raises(ValueError, match="neo-lite"):
            HardwareConfig(system="tpu")

    def test_spec_metadata_introspection(self):
        spec = get_system("neo-s")
        assert spec.base == "neo"
        assert spec.dram_policy == "edge"
        assert "sorting_engine_only" in spec.model_fields()
        assert "tile_size" in spec.config_fields()
        orin = get_system("orin")
        assert orin.dram_policy == "native"
        assert orin.base is None

    def test_iter_systems_order_matches_names(self):
        assert tuple(s.name for s in iter_systems()) == registered_systems()


class TestVariantModels:
    def test_variant_tile_sizes_flow_from_config(self):
        _, neo_tile = build_system_model("neo-lite")
        _, gscore_tile = build_system_model("gscore-32c")
        assert neo_tile == 64
        assert gscore_tile == 16

    def test_neo_lite_slower_than_neo_when_compute_bound(self, workload_model):
        # With abundant bandwidth Neo becomes compute-bound, so halving the
        # sorting/raster engines must cost throughput.
        dram = DramConfig(bandwidth_gbps=2048.0)
        workloads = workload_model.sequence_workloads("qhd", 64)
        full, _ = build_system_model("neo", dram=dram)
        lite, _ = build_system_model("neo-lite", dram=dram)
        assert lite.simulate(workloads).fps < full.simulate(workloads).fps

    def test_gscore_32c_beats_16c(self, workload_model):
        workloads = workload_model.sequence_workloads("qhd", 16)
        base, _ = build_system_model("gscore")
        scaled, _ = build_system_model("gscore-32c")
        assert scaled.simulate(workloads).fps > base.simulate(workloads).fps

    def test_simulate_system_accepts_variants(self):
        report = simulate_system("neo-lite", "family", "hd", num_frames=2)
        assert report.system == "neo-lite"
        assert report.fps > 0
