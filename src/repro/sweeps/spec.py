"""Declarative scenario-sweep specifications.

A :class:`SweepSpec` names a cartesian grid over the repo's workload axes —
scene presets (optionally with ``num_gaussians`` scaling), trajectory
archetypes, sorting strategies, and hardware configurations — plus the
shared capture parameters (frames, resolutions).  Specs parse from plain
dicts or JSON, validate every axis against the live registries, and expand
into an ordered list of :class:`SweepPoint`\\ s, each of which is one
independently cacheable unit of work for the executor.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any

from ..hw.config import EDGE_BANDWIDTH_GBPS
from ..hw.system import registered_systems
from ..scene.camera import RESOLUTIONS
from ..scene.datasets import SCENE_SPECS, TRAJECTORY_ARCHETYPES

#: Sorting strategies a sweep point may render with (names understood by
#: :func:`repro.core.strategies.make_strategy`; ``neo`` is the
#: :class:`~repro.core.reuse_update.ReuseUpdateSorter`).
STRATEGIES: tuple[str, ...] = ("full", "periodic", "background", "hierarchical", "neo")


@dataclass(frozen=True)
class HardwareConfig:
    """One hardware point on the sweep grid.

    Parameters
    ----------
    system:
        Performance model to run — any name in the hardware registry
        (:func:`repro.hw.system.registered_systems`; ``repro systems list``
        enumerates them).
    resolution:
        Named target resolution the workload is scaled to.
    bandwidth_gbps:
        DRAM bandwidth for the ASIC models (the GPU always runs at Orin's
        native bandwidth).
    cores:
        Sorting-core count for GSCore sweeps.
    """

    system: str = "neo"
    resolution: str = "qhd"
    bandwidth_gbps: float = EDGE_BANDWIDTH_GBPS
    cores: int = 16

    def __post_init__(self) -> None:
        # Normalize before validating so equivalent inputs ("NEO", 52 vs
        # 52.0) produce identical configs and therefore identical cache keys.
        object.__setattr__(self, "system", str(self.system).lower())
        object.__setattr__(self, "resolution", str(self.resolution).lower())
        object.__setattr__(self, "bandwidth_gbps", float(self.bandwidth_gbps))
        object.__setattr__(self, "cores", int(self.cores))
        if self.system not in registered_systems():
            raise ValueError(
                f"unknown system {self.system!r}; options: {list(registered_systems())}"
            )
        if self.resolution not in RESOLUTIONS:
            raise ValueError(
                f"unknown resolution {self.resolution!r}; options: {sorted(RESOLUTIONS)}"
            )
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def label(self) -> str:
        """Compact identifier used in report rows."""
        return f"{self.system}@{self.bandwidth_gbps:g}GBps/{self.resolution}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return {
            "system": self.system,
            "resolution": self.resolution,
            "bandwidth_gbps": self.bandwidth_gbps,
            "cores": self.cores,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HardwareConfig":
        """Build from a plain dict, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ValueError(f"hardware entry must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown hardware keys {unknown}; options: {sorted(known)}")
        return cls(**payload)


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved grid point: everything needed to evaluate it.

    Points are picklable (they cross the process boundary for parallel
    execution) and hashable, and :meth:`cache_payload` gives the stable
    parameter dict the result cache keys them by.
    """

    index: int
    scene: str
    num_gaussians: int | None
    trajectory: str
    speed: float
    strategy: str
    hardware: HardwareConfig
    frames: int
    capture_width: int
    capture_height: int
    render_width: int
    render_height: int
    measure_quality: bool

    @property
    def label(self) -> str:
        """Human-readable identifier for logs and report rows."""
        gaussians = "default" if self.num_gaussians is None else str(self.num_gaussians)
        return (
            f"{self.scene}[{gaussians}]/{self.trajectory}x{self.speed:g}"
            f"/{self.strategy}/{self.hardware.label}"
        )

    def cache_payload(self) -> dict[str, Any]:
        """Stable parameter dict for :func:`repro.runtime.cache.stable_key`.

        Deliberately excludes ``index`` (a point's identity is its
        parameters, not its position in the grid) so reordering or slicing
        a spec never invalidates previously computed points.
        """
        return {
            "kind": "sweep-point",
            "scene": self.scene,
            "num_gaussians": self.num_gaussians,
            "trajectory": self.trajectory,
            "speed": self.speed,
            "strategy": self.strategy,
            "hardware": self.hardware.to_dict(),
            "frames": self.frames,
            "capture": [self.capture_width, self.capture_height],
            "render": [self.render_width, self.render_height],
            "measure_quality": self.measure_quality,
        }

    def cache_spec(self) -> tuple[str, dict[str, Any]]:
        """(namespace, payload) for the shared execution core
        (:func:`repro.experiments.engine.execute_cells`)."""
        return "sweeps", self.cache_payload()


def _as_tuple(value: Any) -> tuple:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a scenario sweep.

    Every ``*s`` field is one grid axis; :meth:`points` expands the full
    cartesian product in a deterministic order.  Scalars are accepted
    wherever an axis is expected (``scenes="family"`` means a single-entry
    axis), and lists are normalized to tuples so specs stay hashable.

    Parameters
    ----------
    name / description:
        Identity for registries, reports and file names.
    scenes:
        Scene preset names from :data:`repro.scene.datasets.SCENE_SPECS`.
    num_gaussians:
        Functional Gaussian counts to instantiate (``None`` keeps each
        preset's default) — the scaling axis.
    trajectories:
        Archetypes from :data:`repro.scene.datasets.TRAJECTORY_ARCHETYPES`.
    speeds:
        Camera-motion multipliers (Fig. 17b-style rapid-movement stress).
    strategies:
        Sorting strategies from :data:`STRATEGIES`.
    hardware:
        :class:`HardwareConfig` grid entries.
    frames:
        Frames per sequence (shared by all points).
    capture_width / capture_height:
        Resolution the workload-model geometry is captured at.
    render_width / render_height:
        Resolution of the functional quality render.
    measure_quality:
        When false, points skip the functional render (and its PSNR/SSIM
        columns) and only run the hardware models — much cheaper for
        hardware-axis sweeps like the bandwidth study.
    """

    name: str
    description: str = ""
    scenes: tuple[str, ...] = ("family",)
    num_gaussians: tuple[int | None, ...] = (None,)
    trajectories: tuple[str, ...] = ("orbit",)
    speeds: tuple[float, ...] = (1.0,)
    strategies: tuple[str, ...] = ("neo",)
    hardware: tuple[HardwareConfig, ...] = field(default_factory=lambda: (HardwareConfig(),))
    frames: int = 6
    capture_width: int = 480
    capture_height: int = 270
    render_width: int = 160
    render_height: int = 90
    measure_quality: bool = True

    def __post_init__(self) -> None:
        for axis in ("scenes", "num_gaussians", "trajectories", "speeds", "strategies",
                     "hardware"):
            object.__setattr__(self, axis, _as_tuple(getattr(self, axis)))
        if not self.name or not isinstance(self.name, str):
            raise ValueError("spec needs a non-empty name")
        # Normalize for stable cache keys: equivalent spellings of the same
        # grid ("Family", speed 2 vs 2.0, hardware given as dicts) must
        # expand to identical points.
        for axis in ("scenes", "trajectories", "strategies"):
            object.__setattr__(
                self, axis, tuple(str(v).lower() for v in getattr(self, axis))
            )
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))
        object.__setattr__(
            self,
            "hardware",
            tuple(
                hw if isinstance(hw, HardwareConfig) else HardwareConfig.from_dict(hw)
                for hw in self.hardware
            ),
        )
        for axis in ("scenes", "num_gaussians", "trajectories", "speeds", "strategies",
                     "hardware"):
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must have at least one entry")
        unknown = sorted(set(self.scenes) - set(SCENE_SPECS))
        if unknown:
            raise ValueError(f"unknown scenes {unknown}; options: {sorted(SCENE_SPECS)}")
        unknown = sorted(set(self.trajectories) - set(TRAJECTORY_ARCHETYPES))
        if unknown:
            raise ValueError(
                f"unknown trajectories {unknown}; options: {list(TRAJECTORY_ARCHETYPES)}"
            )
        unknown = sorted(set(self.strategies) - set(STRATEGIES))
        if unknown:
            raise ValueError(f"unknown strategies {unknown}; options: {list(STRATEGIES)}")
        for count in self.num_gaussians:
            if count is not None and (not isinstance(count, int) or count < 8):
                raise ValueError(f"num_gaussians entries must be ints >= 8 or null, got {count!r}")
        for speed in self.speeds:
            if speed <= 0:
                raise ValueError("speeds must be positive")
        if self.frames < 2:
            raise ValueError("frames must be >= 2 (churn metrics need a predecessor)")
        for dim in (self.capture_width, self.capture_height,
                    self.render_width, self.render_height):
            if dim < 16:
                raise ValueError("capture/render dimensions must be >= 16 px")

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Grid size (product of axis lengths) without materializing it."""
        return (
            len(self.scenes)
            * len(self.num_gaussians)
            * len(self.trajectories)
            * len(self.speeds)
            * len(self.strategies)
            * len(self.hardware)
        )

    def points(self) -> list[SweepPoint]:
        """Expand the cartesian grid in deterministic axis-major order."""
        grid = itertools.product(
            self.scenes,
            self.num_gaussians,
            self.trajectories,
            self.speeds,
            self.strategies,
            self.hardware,
        )
        return [
            SweepPoint(
                index=i,
                scene=scene,
                num_gaussians=count,
                trajectory=trajectory,
                speed=speed,
                strategy=strategy,
                hardware=hardware,
                frames=self.frames,
                capture_width=self.capture_width,
                capture_height=self.capture_height,
                render_width=self.render_width,
                render_height=self.render_height,
                measure_quality=self.measure_quality,
            )
            for i, (scene, count, trajectory, speed, strategy, hardware) in enumerate(grid)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (JSON-ready, round-trips)."""
        return {
            "name": self.name,
            "description": self.description,
            "scenes": list(self.scenes),
            "num_gaussians": list(self.num_gaussians),
            "trajectories": list(self.trajectories),
            "speeds": list(self.speeds),
            "strategies": list(self.strategies),
            "hardware": [hw.to_dict() for hw in self.hardware],
            "frames": self.frames,
            "capture_width": self.capture_width,
            "capture_height": self.capture_height,
            "render_width": self.render_width,
            "render_height": self.render_height,
            "measure_quality": self.measure_quality,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SweepSpec":
        """Build a validated spec from a plain dict, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ValueError(f"sweep spec must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown sweep-spec keys {unknown}; options: {sorted(known)}")
        # __post_init__ normalizes axes, including hardware entries given as
        # plain dicts.
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from a JSON document."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"sweep spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def to_json(self) -> str:
        """Serialize to a stable, human-editable JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
