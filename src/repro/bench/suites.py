"""The named benchmarks behind ``repro bench``.

Every bench times a vectorized path against its frozen scalar reference on
the *same* inputs and checks bit-identity of the outputs while doing so —
a speedup with diverging results is a failure, not a win.  Floors are set
well below typical measurements so CI noise cannot flake the gate; the
recorded ``speedup`` is the number that tracks the perf trajectory.
"""

from __future__ import annotations

import time

import numpy as np

from ..pipeline import reference as pipeline_ref
from ..pipeline.rasterizer import rasterize
from ..pipeline.renderer import Renderer, aggregate_timings
from ..pipeline.sorting import kendall_tau_distance, sort_tiles
from ..pipeline.tiling import TileGrid, assign_to_tiles
from ..pipeline.projection import project_gaussians
from ..pipeline.culling import frustum_cull
from ..scene.datasets import default_trajectory, load_scene
from .core import BenchRecord, register_bench
from .synthetic import NUM_FRAMES, synthetic_workloads

#: Scene preset every pipeline bench renders (deterministic synthetic scene).
BENCH_SCENE = "family"


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` calls, plus the last value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _prepared_frames(num_gaussians: int, num_frames: int, width: int, height: int):
    """Render-ready (projected, grid, assignment) tuples for a trajectory."""
    scene = load_scene(BENCH_SCENE, num_gaussians=num_gaussians)
    cameras = default_trajectory(
        BENCH_SCENE, num_frames=num_frames, width=width, height=height
    )
    frames = []
    for camera in cameras:
        culled = frustum_cull(scene, camera)
        projected = project_gaussians(scene, camera, culled.visible_ids)
        grid = TileGrid.for_camera(camera, 16)
        frames.append((projected, grid, assign_to_tiles(projected, grid)))
    return scene, cameras, frames


def reports_identical(got, want) -> bool:
    """Bitwise comparison of two SequenceReports, frame by frame.

    Shared with ``benchmarks/test_vectorized_core.py`` so the bench gate and
    the pytest gate can never drift on what "identical" means.
    """
    return all(
        g.traffic.feature_extraction == s.traffic.feature_extraction
        and g.traffic.sorting == s.traffic.sorting
        and g.traffic.rasterization == s.traffic.rasterization
        and g.memory_time_s == s.memory_time_s
        and g.compute_time_s == s.compute_time_s
        for g, s in zip(got.frames, want.frames)
    )


def _raster_results_equal(got, want) -> bool:
    """Bitwise comparison of two RasterResults (image, valid bits, stats)."""
    if not np.array_equal(got.image, want.image):
        return False
    if got.valid_bits.keys() != want.valid_bits.keys():
        return False
    for tile, bits in got.valid_bits.items():
        if not np.array_equal(bits, want.valid_bits[tile]):
            return False
    return got.stats == want.stats


@register_bench(
    "raster_chunked",
    "chunked-vectorized rasterizer vs the scalar per-Gaussian blending loop",
)
def bench_raster_chunked(quick: bool) -> BenchRecord:
    gaussians, frames_n, w, h, repeats = (
        (2000, 1, 320, 180, 2) if quick else (6000, 3, 480, 270, 3)
    )
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)
    sorted_frames = [(p, g, sort_tiles(a)) for p, g, a in frames]

    base_s, base_out = _best_of(
        lambda: [pipeline_ref.rasterize(st, p, g) for p, g, st in sorted_frames], repeats
    )
    opt_s, opt_out = _best_of(
        lambda: [rasterize(st, p, g) for p, g, st in sorted_frames], repeats
    )
    identical = all(_raster_results_equal(a, b) for a, b in zip(opt_out, base_out))
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.3,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "sort_batched",
    "single concatenated lexsort vs the per-tile sorting loop",
)
def bench_sort_batched(quick: bool) -> BenchRecord:
    # The sort itself is milliseconds either way; a sub-millisecond quick
    # workload would be noise-dominated, so quick keeps the full pair table
    # (the scene prep it pays for is a second or two) and trims repeats.
    gaussians, frames_n, w, h = 6000, 3, 480, 270
    repeats = 5 if quick else 7
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)

    base_s, base_out = _best_of(
        lambda: [pipeline_ref.sort_tiles(a) for _, _, a in frames], repeats
    )
    opt_s, opt_out = _best_of(lambda: [sort_tiles(a) for _, _, a in frames], repeats)
    identical = all(
        np.array_equal(x.tile_rows[t], y.tile_rows[t])
        and np.array_equal(x.tile_ids[t], y.tile_ids[t])
        and np.array_equal(x.tile_depths[t], y.tile_depths[t])
        for x, y in zip(opt_out, base_out)
        for t in range(x.num_tiles)
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.1,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "order_metrics",
    "argsort-rank Kendall-tau distance vs the rank-dict + Python merge sort",
)
def bench_order_metrics(quick: bool) -> BenchRecord:
    n = 1500 if quick else 6000
    rng = np.random.default_rng(20260730)
    ids = rng.choice(10**7, size=n, replace=False)
    order_a = rng.permutation(ids)
    order_b = rng.permutation(ids)

    base_s, base_val = _best_of(
        lambda: pipeline_ref.kendall_tau_distance(order_a, order_b), 3
    )
    opt_s, opt_val = _best_of(lambda: kendall_tau_distance(order_a, order_b), 3)
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=2.0,
        identical=opt_val == base_val,
        detail={"table_length": n},
    )


def _reference_render_sequence(scene, cameras):
    """Render a trajectory through the frozen scalar sort + raster stages."""
    results = []
    for camera in cameras:
        culled = frustum_cull(scene, camera)
        projected = project_gaussians(scene, camera, culled.visible_ids)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(projected, grid)
        sorted_tiles = pipeline_ref.sort_tiles(assignment)
        results.append(pipeline_ref.rasterize(sorted_tiles, projected, grid))
    return results


@register_bench(
    "render_sequence",
    "end-to-end vectorized pipeline vs the scalar reference on a long trajectory",
)
def bench_render_sequence(quick: bool) -> BenchRecord:
    gaussians, frames_n, w, h = (4000, 8, 320, 180) if quick else (4000, NUM_FRAMES, 320, 180)
    scene = load_scene(BENCH_SCENE, num_gaussians=gaussians)
    cameras = default_trajectory(BENCH_SCENE, num_frames=frames_n, width=w, height=h)

    start = time.perf_counter()
    base_out = _reference_render_sequence(scene, cameras)
    base_s = time.perf_counter() - start

    renderer = Renderer(scene)
    start = time.perf_counter()
    records = renderer.render_sequence(cameras)
    opt_s = time.perf_counter() - start

    identical = all(
        _raster_results_equal(rec.raster, ref_res)
        for rec, ref_res in zip(records, base_out)
    )
    stage_totals = aggregate_timings(records)
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.5,
        identical=identical,
        detail={
            "gaussians": gaussians,
            "frames": frames_n,
            "resolution": [w, h],
            "stage_seconds": stage_totals.as_dict(),
            "baseline_ms_per_frame": base_s * 1e3 / frames_n,
            "optimized_ms_per_frame": opt_s * 1e3 / frames_n,
        },
    )


@register_bench(
    "hw_system",
    "vectorized system-model sequence core vs the per-frame scalar loop (neo)",
)
def bench_hw_system(quick: bool) -> BenchRecord:
    from ..experiments.runner import build_system_model
    from ..hw import reference as hw_ref

    # The simulation core is sub-millisecond either way; the full 200-frame
    # trajectory is what makes the measurement stable, so quick keeps it.
    num_frames = NUM_FRAMES
    model, tile = build_system_model("neo")
    workloads = synthetic_workloads(num_frames, tile)

    base_s, base_report = _best_of(lambda: hw_ref.scalar_simulate(model, workloads), 3)
    opt_s, opt_report = _best_of(lambda: model.simulate(workloads), 3)
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.3,
        identical=reports_identical(opt_report, base_report),
        detail={"system": "neo", "frames": num_frames},
    )
