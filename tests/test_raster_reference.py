"""Golden tests: vectorized pipeline hot paths vs the frozen scalar reference.

The chunked rasterizer, the batched tile sort, and the vectorized order
metrics must be *bit-identical* to :mod:`repro.pipeline.reference` — images,
``valid_bits``, and every :class:`RasterStats` counter — across subtile
sizes, termination settings, chunk sizes, and both density-dispatch paths.
"""

import numpy as np
import pytest

import repro.pipeline.rasterizer as rasterizer_mod
from repro.pipeline import reference as ref
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.projection import ProjectedGaussians, project_gaussians
from repro.pipeline.rasterizer import MIN_ALPHA, rasterize, rasterize_tile
from repro.pipeline.sorting import _count_inversions, kendall_tau_distance, sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles
from repro.hw.workload import WorkloadModel


def _assert_raster_equal(got, want):
    assert np.array_equal(got.image, want.image)
    assert got.valid_bits.keys() == want.valid_bits.keys()
    for tile, bits in got.valid_bits.items():
        assert np.array_equal(bits, want.valid_bits[tile])
    assert got.stats == want.stats


def _random_projection(rng, n, extent=64.0, opacity_range=(0.05, 1.0)):
    """A synthetic ProjectedGaussians table with varied splat shapes."""
    radii = rng.uniform(0.5, 12.0, size=n)
    sigma = (radii / 3.0) ** 2 * rng.uniform(0.5, 1.5, size=n)
    ids = rng.choice(10 * n, size=n, replace=False)
    return ProjectedGaussians(
        ids=np.sort(ids).astype(np.int64),
        means2d=rng.uniform(-8.0, extent + 8.0, size=(n, 2)),
        cov2d=np.stack([np.diag([s, s]) for s in sigma]),
        conic=np.stack([1.0 / sigma, rng.uniform(-0.05, 0.05, n) / sigma, 1.0 / sigma], axis=1),
        depths=rng.uniform(0.5, 20.0, size=n),
        radii=radii,
        colors=rng.uniform(0.0, 1.0, size=(n, 3)),
        opacities=rng.uniform(*opacity_range, size=n),
    )


class TestChunkedRasterizerGolden:
    @pytest.mark.parametrize("tile_size", [16, 64])
    @pytest.mark.parametrize("subtile", [8, 4, None])
    def test_scene_frames_bitwise_identical(self, small_scene, camera, tile_size, subtile):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, tile_size)
        sorted_tiles = sort_tiles(assign_to_tiles(proj, grid))
        for termination in (1e-4, 0.5, 0.0):
            got = rasterize(
                sorted_tiles, proj, grid, subtile_size=subtile, termination=termination
            )
            want = ref.rasterize(
                sorted_tiles, proj, grid, subtile_size=subtile, termination=termination
            )
            _assert_raster_equal(got, want)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 64, 4096])
    def test_chunk_size_never_changes_results(self, small_scene, camera, chunk_size):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        sorted_tiles = sort_tiles(assign_to_tiles(proj, grid))
        got = rasterize(sorted_tiles, proj, grid, chunk_size=chunk_size)
        want = ref.rasterize(sorted_tiles, proj, grid)
        _assert_raster_equal(got, want)

    def test_random_splats_stress(self):
        # Random opacities (many below MIN_ALPHA), conics with off-diagonal
        # terms, off-screen splats, small chunks: exercises dead-member
        # compression, bbox masking, and mid-chunk termination replay.
        rng = np.random.default_rng(20260730)
        for trial in range(6):
            n = int(rng.integers(5, 160))
            proj = _random_projection(rng, n, opacity_range=(0.001, 1.0))
            rows = np.arange(n, dtype=np.int64)[np.argsort(proj.depths, kind="stable")]
            for chunk in (3, 32):
                for sub in (8, None):
                    fb_a = Framebuffer(width=64, height=48)
                    fb_b = Framebuffer(width=64, height=48)
                    got = rasterize_tile(
                        fb_a, proj, rows, (0, 0, 64, 48), subtile_size=sub,
                        chunk_size=chunk,
                    )
                    want = ref.rasterize_tile(fb_b, proj, rows, (0, 0, 64, 48), subtile_size=sub)
                    assert np.array_equal(got[0], want[0])
                    assert got[1] == want[1]
                    assert np.array_equal(fb_a.color, fb_b.color)
                    assert np.array_equal(fb_a.transmittance, fb_b.transmittance)

    def test_sparse_large_tile_forced_through_chunked_path(self, monkeypatch):
        # The density dispatch would send this sparse 64 px tile scalar;
        # force the chunked path and require the same bits anyway.
        monkeypatch.setattr(rasterizer_mod, "CHUNKED_MIN_COVERAGE", -1.0)
        rng = np.random.default_rng(7)
        proj = _random_projection(rng, 120)
        rows = np.arange(120, dtype=np.int64)[np.argsort(proj.depths, kind="stable")]
        fb_a = Framebuffer(width=64, height=64)
        fb_b = Framebuffer(width=64, height=64)
        got = rasterize_tile(fb_a, proj, rows, (0, 0, 64, 64), chunk_size=16)
        want = ref.rasterize_tile(fb_b, proj, rows, (0, 0, 64, 64))
        assert np.array_equal(got[0], want[0]) and got[1] == want[1]
        assert np.array_equal(fb_a.color, fb_b.color)
        assert np.array_equal(fb_a.transmittance, fb_b.transmittance)


class TestRasterizerEdgeCases:
    def _splat(self, x, y, radius=4.0, opacity=0.9, depth=1.0, gid=0):
        sigma2 = (radius / 3.0) ** 2
        return ProjectedGaussians(
            ids=np.array([gid], dtype=np.int64),
            means2d=np.array([[x, y]], dtype=np.float64),
            cov2d=np.array([[[sigma2, 0.0], [0.0, sigma2]]]),
            conic=np.array([[1.0 / sigma2, 0.0, 1.0 / sigma2]]),
            depths=np.array([depth], dtype=np.float64),
            radii=np.array([radius], dtype=np.float64),
            colors=np.array([[1.0, 0.2, 0.1]], dtype=np.float64),
            opacities=np.array([opacity], dtype=np.float64),
        )

    def _merge(self, *projs):
        return ProjectedGaussians(
            ids=np.concatenate([p.ids for p in projs]),
            means2d=np.concatenate([p.means2d for p in projs]),
            cov2d=np.concatenate([p.cov2d for p in projs]),
            conic=np.concatenate([p.conic for p in projs]),
            depths=np.concatenate([p.depths for p in projs]),
            radii=np.concatenate([p.radii for p in projs]),
            colors=np.concatenate([p.colors for p in projs]),
            opacities=np.concatenate([p.opacities for p in projs]),
        )

    def _both(self, proj, rows, bounds, width, height, **kwargs):
        fb_a = Framebuffer(width=width, height=height)
        fb_b = Framebuffer(width=width, height=height)
        got = rasterize_tile(fb_a, proj, rows, bounds, **kwargs)
        ref_kwargs = {k: v for k, v in kwargs.items() if k != "chunk_size"}
        want = ref.rasterize_tile(fb_b, proj, rows, bounds, **ref_kwargs)
        assert np.array_equal(got[0], want[0])
        assert got[1] == want[1]
        assert np.array_equal(fb_a.color, fb_b.color)
        assert np.array_equal(fb_a.transmittance, fb_b.transmittance)
        return got

    def test_single_pixel_tile(self):
        proj = self._merge(
            self._splat(0.5, 0.5, gid=0),
            self._splat(0.4, 0.6, opacity=0.99, depth=2.0, gid=1),
        )
        valid, stats = self._both(proj, np.array([0, 1]), (0, 0, 1, 1), 1, 1)
        assert stats.blend_ops > 0

    def test_single_pixel_tiles_full_grid(self, tiny_scene, camera):
        proj = project_gaussians(tiny_scene, camera)
        grid = TileGrid(width=24, height=18, tile_size=1)
        sorted_tiles = sort_tiles(assign_to_tiles(proj, grid))
        got = rasterize(sorted_tiles, proj, grid)
        want = ref.rasterize(sorted_tiles, proj, grid)
        _assert_raster_equal(got, want)

    def test_subtile_none(self):
        proj = self._merge(*[self._splat(8.0 + i, 8.0, gid=i, depth=1.0 + i) for i in range(5)])
        self._both(proj, np.arange(5), (0, 0, 16, 16), 16, 16, subtile_size=None)

    def test_all_transparent_chunk(self):
        # Opacity far below MIN_ALPHA everywhere: every member is rejected,
        # no pixel changes, yet every splat is still processed and counted.
        splats = [
            self._splat(8.0, 8.0, opacity=MIN_ALPHA / 10.0, depth=1.0 + i, gid=i)
            for i in range(20)
        ]
        proj = self._merge(*splats)
        valid, stats = self._both(proj, np.arange(20), (0, 0, 16, 16), 16, 16, chunk_size=8)
        assert stats.gaussians_processed == 20
        assert stats.early_terminated_tiles == 0

    def test_termination_lands_mid_chunk(self):
        # A stack of near-opaque splats drives transmittance under the
        # threshold partway into a chunk; the replay must stop on the same
        # Gaussian (same processed/blend counts) as the scalar loop.
        splats = [
            self._splat(8.0, 8.0, radius=30.0, opacity=0.99, depth=1.0 + i, gid=i)
            for i in range(40)
        ]
        proj = self._merge(*splats)
        for chunk in (4, 8, 64):
            valid, stats = self._both(
                proj, np.arange(40), (0, 0, 16, 16), 16, 16, chunk_size=chunk
            )
            assert stats.early_terminated_tiles == 1
            assert stats.gaussians_processed < 40

    def test_transparent_tail_after_termination_threshold(self):
        # Opaque stack followed by sub-MIN_ALPHA members: termination fires
        # at a member the chunked path dropped as a no-op, which is exactly
        # the dead-member bookkeeping corner.
        splats = [
            self._splat(8.0, 8.0, radius=30.0, opacity=0.99, depth=1.0 + i, gid=i)
            for i in range(12)
        ] + [
            self._splat(8.0, 8.0, opacity=MIN_ALPHA / 10.0, depth=100.0 + i, gid=100 + i)
            for i in range(12)
        ]
        proj = self._merge(*splats)
        for chunk in (6, 12, 24, 64):
            self._both(proj, np.arange(24), (0, 0, 16, 16), 16, 16, chunk_size=chunk)

    def test_empty_rows_and_degenerate_bounds(self):
        proj = self._splat(4.0, 4.0)
        valid, stats = self._both(proj, np.empty(0, dtype=np.int64), (0, 0, 16, 16), 16, 16)
        assert valid.shape == (0,)
        fb = Framebuffer(width=16, height=16)
        valid, stats = rasterize_tile(fb, proj, np.array([0]), (8, 8, 8, 16))
        assert valid.shape == (1,) and stats.blend_ops == 0

    def test_rejects_nonpositive_chunk(self):
        proj = self._splat(4.0, 4.0)
        fb = Framebuffer(width=16, height=16)
        with pytest.raises(ValueError):
            rasterize_tile(fb, proj, np.array([0]), (0, 0, 16, 16), chunk_size=0)


class TestBatchedSortGolden:
    @pytest.mark.parametrize("tile_size", [16, 64])
    def test_scene_assignment_identical(self, small_scene, camera, tile_size):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, tile_size)
        assignment = assign_to_tiles(proj, grid)
        got = sort_tiles(assignment)
        want = ref.sort_tiles(assignment)
        assert got.num_tiles == want.num_tiles
        for t in range(got.num_tiles):
            assert np.array_equal(got.rows_for(t), want.rows_for(t))
            assert np.array_equal(got.ids_for(t), want.ids_for(t))
            assert np.array_equal(got.depths_for(t), want.depths_for(t))

    def test_duplicate_depths_tie_break_on_id(self):
        rng = np.random.default_rng(11)
        n = 60
        proj = _random_projection(rng, n)
        # Heavy depth ties: quantize so the ID tie-break actually decides.
        proj = ProjectedGaussians(
            ids=proj.ids, means2d=proj.means2d, cov2d=proj.cov2d, conic=proj.conic,
            depths=np.round(proj.depths), radii=proj.radii, colors=proj.colors,
            opacities=proj.opacities,
        )
        grid = TileGrid(width=64, height=64, tile_size=16)
        assignment = assign_to_tiles(proj, grid)
        got = sort_tiles(assignment)
        want = ref.sort_tiles(assignment)
        for t in range(got.num_tiles):
            assert np.array_equal(got.rows_for(t), want.rows_for(t))
            assert np.array_equal(got.depths_for(t), want.depths_for(t))


class TestOrderMetricsGolden:
    def test_kendall_random_permutations(self):
        rng = np.random.default_rng(23)
        for _ in range(50):
            n = int(rng.integers(2, 200))
            ids = rng.choice(10_000, size=n, replace=False)
            a = rng.permutation(ids)
            b = rng.permutation(ids)
            assert kendall_tau_distance(a, b) == ref.kendall_tau_distance(a, b)

    def test_inversion_counter_matches_scalar_merge_sort(self):
        rng = np.random.default_rng(5)
        for _ in range(100):
            seq = rng.permutation(int(rng.integers(2, 400)))
            assert _count_inversions(seq) == ref._count_inversions(seq.astype(np.int64))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            kendall_tau_distance(np.array([1, 1, 2]), np.array([1, 2, 1]))

    def test_inversion_counter_extremes(self):
        assert _count_inversions(np.arange(10)) == 0
        assert _count_inversions(np.arange(10)[::-1]) == 45
        assert _count_inversions(np.array([1, 0])) == 1
        assert _count_inversions(np.array([0])) == 0


class TestWorkloadVectorizedQueries:
    @pytest.fixture(scope="class")
    def model(self):
        return WorkloadModel.from_scene("family", num_frames=3, num_gaussians=900)

    def test_shared_fraction_matches_mask_scan(self, model):
        for frame in (1, 2):
            for tile_size in (16, 64):
                prev = model.frame_stream(frame - 1, "hd", tile_size)
                tiles, rows = prev.tile_of(), prev.values
                cur_keys = model._pair_keys(frame, model._resolve("hd"), tile_size)
                prev_ids = model.frames[frame - 1].ids[rows]
                prev_keys = tiles.astype(np.int64) * (1 << 32) + prev_ids
                retained = np.isin(prev_keys, cur_keys)
                want = np.asarray(
                    [retained[tiles == t].mean() for t in np.unique(tiles)]
                )
                got = model.shared_fraction_per_tile(frame, "hd", tile_size)
                assert np.array_equal(got, want)

    def test_chunks_match_scalar_ceil_div(self, model):
        for frame in (0, 1, 2):
            workload = model.frame_workload(frame, "qhd", 64)
            tiles = model.frame_stream(frame, "qhd", 64).tile_of()
            occupancy = np.bincount(tiles, minlength=workload.num_tiles)
            want = float(
                sum(-(-int(c * model.count_scale) // 256) for c in occupancy[occupancy > 0])
            )
            assert workload.chunks == want
