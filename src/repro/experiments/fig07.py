"""Fig. 7 — per-tile sort-order differences between consecutive frames.

Temporal-similarity motivation: at the 99th percentile a Gaussian shifts by
only tens of positions out of the thousands in its tile.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult, get_workload_model

NUM_FRAMES = 6

#: Dense capture: order displacement needs fine rank resolution.
CAPTURE_GAUSSIANS = 20000

PERCENTILES = (90, 95, 99)

DESCRIPTION = "Sort-order difference percentiles between consecutive frames"


def plan(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    tile_size: int = 64,
    num_frames: int = NUM_FRAMES,
    num_gaussians: int = CAPTURE_GAUSSIANS,
) -> ExperimentPlan:
    """No simulation cells: the work is per-scene workload capture."""

    def aggregate(_cells) -> ExperimentResult:
        result = ExperimentResult(name="fig07", description=DESCRIPTION)
        for scene in scenes:
            wm = get_workload_model(scene, num_frames=num_frames, num_gaussians=num_gaussians)
            diffs = np.concatenate(
                [
                    wm.order_differences(frame, resolution, tile_size)
                    for frame in range(1, wm.num_frames)
                ]
            )
            workload = wm.frame_workload(1, resolution, tile_size)
            row = {"scene": scene, "mean_occupancy": workload.mean_occupancy}
            for p in PERCENTILES:
                row[f"p{p}"] = float(np.percentile(diffs, p))
            row["p99_relative"] = row["p99"] / max(workload.mean_occupancy, 1.0)
            result.rows.append(row)
        return result

    return ExperimentPlan("fig07", DESCRIPTION, (), aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    tile_size: int = 64,
    num_frames: int = NUM_FRAMES,
    num_gaussians: int = CAPTURE_GAUSSIANS,
) -> ExperimentResult:
    """Order-difference percentiles per scene (positions at nominal occupancy)."""
    return execute_plan(
        plan(
            scenes=scenes,
            resolution=resolution,
            tile_size=tile_size,
            num_frames=num_frames,
            num_gaussians=num_gaussians,
        )
    )
