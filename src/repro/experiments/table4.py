"""Table 4 — per-component area/power breakdown of the Neo accelerator.

Key claim: the hardware Neo adds beyond a GSCore-style design (the MSU+ and
the ITUs) costs only ~9 % of total area and power.
"""

from __future__ import annotations

from ..hw.area_power import engine_summaries, neo_breakdown, neo_summary
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

DESCRIPTION = "Neo component-level area (mm^2) / power (mW) breakdown"


def plan() -> ExperimentPlan:
    """No simulation cells: a pure analytic table."""

    def aggregate(_cells) -> ExperimentResult:
        result = ExperimentResult(name="table4", description=DESCRIPTION)
        for entry in neo_breakdown():
            result.rows.append(
                {"component": entry.name, "area_mm2": entry.area_mm2, "power_mw": entry.power_mw}
            )
        for entry in engine_summaries():
            result.rows.append(
                {
                    "component": f"[{entry.name}]",
                    "area_mm2": entry.area_mm2,
                    "power_mw": entry.power_mw,
                }
            )
        total = neo_summary()
        result.rows.append(
            {"component": "Total", "area_mm2": total.area_mm2, "power_mw": total.power_mw}
        )
        return result

    return ExperimentPlan("table4", DESCRIPTION, (), aggregate)


def run() -> ExperimentResult:
    """Component rows plus engine roll-ups and the total."""
    return execute_plan(plan())


def added_hardware_share() -> dict[str, float]:
    """Area/power share of the units Neo adds (MSU+ and ITU)."""
    total = neo_summary()
    added_area = added_power = 0.0
    for entry in neo_breakdown():
        if entry.name in ("Merge Sort Unit+", "Intersection Test Unit"):
            added_area += entry.area_mm2
            added_power += entry.power_mw
    return {
        "area_share": added_area / total.area_mm2,
        "power_share": added_power / total.power_mw,
    }
