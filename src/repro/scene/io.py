"""Scene serialization: save/load Gaussian scenes as ``.npz`` archives.

Trained 3DGS models are normally distributed as PLY files; this module
provides the equivalent persistence for :class:`GaussianScene` using numpy's
archive format (no external dependencies, exact round-trip), so synthetic
scenes can be generated once and shared across runs, and externally-trained
models converted to this layout can be loaded directly.
"""

from __future__ import annotations

import os

import numpy as np

from .gaussians import GaussianScene

#: Archive schema version, stored alongside the arrays.
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("means", "scales", "quats", "opacities", "sh_coeffs")


def save_scene(path: str | os.PathLike, scene: GaussianScene) -> None:
    """Write a scene to ``path`` as a compressed ``.npz`` archive.

    The archive stores the five attribute arrays plus the scene name and a
    format version; :func:`load_scene_file` restores an identical scene.
    """
    np.savez_compressed(
        path,
        means=scene.means,
        scales=scene.scales,
        quats=scene.quats,
        opacities=scene.opacities,
        sh_coeffs=scene.sh_coeffs,
        name=np.array(scene.name),
        format_version=np.array(FORMAT_VERSION),
    )


def load_scene_file(path: str | os.PathLike) -> GaussianScene:
    """Load a scene previously written by :func:`save_scene`.

    Raises
    ------
    ValueError
        If the archive is missing required arrays or has an unsupported
        format version.
    """
    with np.load(path, allow_pickle=False) as archive:
        missing = [k for k in _REQUIRED_KEYS if k not in archive]
        if missing:
            raise ValueError(f"{path}: not a scene archive (missing {missing})")
        version = int(archive["format_version"]) if "format_version" in archive else 0
        if version > FORMAT_VERSION:
            raise ValueError(
                f"{path}: format version {version} newer than supported {FORMAT_VERSION}"
            )
        name = str(archive["name"]) if "name" in archive else "scene"
        return GaussianScene(
            means=archive["means"],
            scales=archive["scales"],
            quats=archive["quats"],
            opacities=archive["opacities"],
            sh_coeffs=archive["sh_coeffs"],
            name=name,
        )
