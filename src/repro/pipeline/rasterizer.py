"""Tile-based alpha-blending rasterization (pipeline stage 4).

Per tile, Gaussians are blended front-to-back in depth order; a pixel stops
accumulating once its transmittance drops below the termination threshold.
The rasterizer also models the two hardware-relevant behaviours of Neo's
Rasterization Engine:

* **Subtile intersection testing** (ITU): each tile is subdivided into
  subtiles; a Gaussian is only blended into subtiles its bounding circle
  overlaps, and the per-tile OR of those bitmaps doubles as the *valid bit*
  that flags outgoing Gaussians for the next frame's deferred deletion.
* **Blend-op accounting**: the number of (Gaussian, subtile) and
  (Gaussian, pixel) operations feeds the hardware timing model.

**Chunked-vectorized core.**  Front-to-back compositing looks inherently
sequential (each Gaussian needs the transmittance its predecessors left
behind), but the recurrence is a running product: the transmittance a
Gaussian sees is ``T_in = T_0 * prod_{j<k} (1 - alpha_j)`` and its color
contribution ``T_in * alpha_k * c_k`` depends on no other contribution.
The blending loop therefore processes Gaussians in depth-ordered *chunks*:
one batched evaluation produces the whole chunk's alpha maps over the
tile's pixel grid, an exclusive cumulative product along the chunk axis
recovers every per-Gaussian incoming transmittance, and a cumulative sum
accumulates the color.  Both cumulations are seeded with the tile's
incoming state and evaluated with ``ufunc.accumulate`` (strictly
sequential, never pairwise), so every intermediate float is produced by
the same operations in the same order as the scalar loop — images,
``valid_bits``, and every :class:`RasterStats` counter are bit-identical
to the frozen scalar reference in :mod:`repro.pipeline.reference`.  Early
termination is detected at chunk granularity from the cumulative-product
stack; a chunk that would terminate mid-way is replayed through the
scalar path so the stop lands on exactly the same Gaussian.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend import core_ops
from .framebuffer import Framebuffer
from .projection import ProjectedGaussians
from .sorting import SortedTiles
from .tiling import TileGrid

#: Ops the chunked/sparse blending cores dispatch through the pluggable
#: array backend.  The scalar replay path stays on plain numpy: it exists
#: to pin termination semantics, not to be fast.
_XP = core_ops(
    "rasterizer",
    "exp",
    "minimum",
    "where",
    "accumulate_multiply",
    "accumulate_add",
    "repeat",
    "cumsum",
)

#: Contributions below 1/255 are invisible at 8-bit output and skipped,
#: matching the reference CUDA rasterizer.
MIN_ALPHA = 1.0 / 255.0

#: Alpha ceiling (reference implementation clips at 0.99).
MAX_ALPHA = 0.99

#: A pixel is finalized once its transmittance falls below this.
TERMINATION_THRESHOLD = 1e-4

#: Subtile edge used by the Neo accelerator (Table 1).
NEO_SUBTILE_SIZE = 8

#: Gaussians blended per batched chunk.  Large enough to amortize the
#: per-chunk dispatch overhead, small enough that a mid-chunk termination
#: (which falls back to the scalar path for that chunk) stays cheap and the
#: per-chunk ``(chunk, tile_h, tile_w)`` temporaries stay cache-friendly.
RASTER_CHUNK_SIZE = 64

#: Tiles up to this many pixels always take the chunked path: the whole-tile
#: batched evaluation costs microseconds per Gaussian, far below the scalar
#: loop's per-splat Python overhead, regardless of splat density.
CHUNKED_MAX_DENSE_AREA = 512

#: For larger tiles the chunked path evaluates every splat over the whole
#: tile, so it only wins when splat bboxes cover a reasonable fraction of
#: it.  Below this mean coverage the scalar loop's sparsity exploitation
#: beats the batched math (e.g. 64 px Neo tiles where bboxes cover ~8% of
#: the tile) and the tile is blended scalar.  Both paths are bit-identical;
#: the dispatch is purely a throughput choice.
CHUNKED_MIN_COVERAGE = 0.25


@dataclass
class RasterStats:
    """Workload counters accumulated over a frame.

    Attributes
    ----------
    gaussians_processed:
        Tile-Gaussian pairs walked by the blending loop.
    blend_ops:
        (Gaussian, pixel) alpha evaluations actually performed.
    subtile_tests:
        (Gaussian, subtile) intersection tests performed by the ITU model.
    subtile_hits:
        Tests that found an overlap (work routed to an SCU).
    early_terminated_tiles:
        Tiles whose blending loop exited before exhausting their list.
    """

    gaussians_processed: int = 0
    blend_ops: int = 0
    subtile_tests: int = 0
    subtile_hits: int = 0
    early_terminated_tiles: int = 0

    def merge(self, other: "RasterStats") -> None:
        """Accumulate another tile's counters into this frame total."""
        self.gaussians_processed += other.gaussians_processed
        self.blend_ops += other.blend_ops
        self.subtile_tests += other.subtile_tests
        self.subtile_hits += other.subtile_hits
        self.early_terminated_tiles += other.early_terminated_tiles


@dataclass
class RasterResult:
    """Frame output: image, per-tile valid bits, and workload counters.

    ``valid_bits[t]`` aligns with the sorted row list of tile ``t`` and is
    ``True`` where the Gaussian intersected at least one subtile — the signal
    Neo's ITU feeds back to the Sorting Engine for lazy deletion.
    """

    image: np.ndarray
    valid_bits: dict[int, np.ndarray] = field(default_factory=dict)
    stats: RasterStats = field(default_factory=RasterStats)


def _subtile_bitmaps(
    means: np.ndarray,
    radii: np.ndarray,
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    subtile: int,
) -> np.ndarray:
    """Conservative circle-vs-rectangle intersection bitmaps, batched.

    Returns a ``(n, subtiles_y, subtiles_x)`` boolean array for all ``n``
    Gaussians at once.  The per-element math matches the scalar formulation
    (clamp the center to each subtile rect; overlap iff the clamped point is
    within the radius), so the batched result is bitwise-identical to a
    per-Gaussian loop.
    """
    sxs = np.arange(x0, x1, subtile)
    sys_ = np.arange(y0, y1, subtile)
    cx = means[:, 0][:, None]
    cy = means[:, 1][:, None]
    qx = np.clip(cx, sxs[None, :], np.minimum(sxs + subtile, x1)[None, :])
    qy = np.clip(cy, sys_[None, :], np.minimum(sys_ + subtile, y1)[None, :])
    dx2 = (qx - cx) ** 2  # (n, subtiles_x)
    dy2 = (qy - cy) ** 2  # (n, subtiles_y)
    r2 = radii * radii
    return dx2[:, None, :] + dy2[:, :, None] <= r2[:, None, None]


def _scalar_blend_range(
    start: int,
    n: int,
    px: np.ndarray,
    py: np.ndarray,
    trans: np.ndarray,
    color: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    radii: np.ndarray,
    opacities: np.ndarray,
    colors: np.ndarray,
    valid: np.ndarray,
    termination: float,
    stats: RasterStats,
) -> None:
    """Blend Gaussians ``start..n-1`` one at a time (the pre-chunking loop).

    The chunked core replays a chunk through this path when the cumulative
    transmittance shows termination landing *inside* it, so the stop falls
    on exactly the Gaussian the scalar loop would have stopped at.
    """
    x0 = px[0] - 0.5
    y0 = py[0] - 0.5
    w = px.shape[0]
    h = py.shape[0]
    for i in range(start, n):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        if not valid[i]:
            continue
        stats.gaussians_processed += 1
        cx, cy = means[i]
        r = radii[i]
        # Restrict evaluation to the splat's pixel bbox within the tile.
        gx0 = max(int(np.floor(cx - r) - x0), 0)
        gx1 = min(int(np.ceil(cx + r) - x0) + 1, w)
        gy0 = max(int(np.floor(cy - r) - y0), 0)
        gy1 = min(int(np.ceil(cy + r) - y0) + 1, h)
        if gx0 >= gx1 or gy0 >= gy1:
            continue

        dx = px[gx0:gx1] - cx
        dy = py[gy0:gy1] - cy
        a, b, c = conics[i]
        power = -0.5 * (
            a * dx[None, :] ** 2 + c * dy[:, None] ** 2
        ) - b * dy[:, None] * dx[None, :]
        stats.blend_ops += power.size
        alpha = np.minimum(opacities[i] * np.exp(np.minimum(power, 0.0)), MAX_ALPHA)
        alpha[power > 0] = 0.0
        significant = alpha >= MIN_ALPHA
        if not significant.any():
            continue
        alpha = np.where(significant, alpha, 0.0)

        t_block = trans[gy0:gy1, gx0:gx1]
        weight = t_block * alpha
        color[gy0:gy1, gx0:gx1] += weight[..., None] * colors[i][None, None, :]
        trans[gy0:gy1, gx0:gx1] = t_block * (1.0 - alpha)


def _sparse_blend_range(
    px: np.ndarray,
    py: np.ndarray,
    trans: np.ndarray,
    color: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    radii: np.ndarray,
    opacities: np.ndarray,
    colors: np.ndarray,
    valid: np.ndarray,
    gx0: np.ndarray,
    gx1: np.ndarray,
    gy0: np.ndarray,
    gy1: np.ndarray,
    bbox_areas: np.ndarray,
    termination: float,
    stats: RasterStats,
    chunk_size: int,
) -> None:
    """Sparse-tile blending via a flat concatenated bbox gather.

    For sparse large tiles the whole-tile chunked path wastes most of its
    flops on empty pixels, but the scalar loop pays per-splat Python overhead
    for the alpha math.  This path batches the expensive part instead: for a
    chunk of splats it gathers every splat's pixel bbox into one flat array
    (exactly ``bbox_areas`` worth of pixels — no padding) and evaluates all
    alpha maps in one vectorized pass.  Compositing then only slices the
    precomputed map per significant splat and performs the three cheap blend
    ops.

    The gathered ``px[col] - cx`` / ``py[row] - cy`` operands are the same
    float values the scalar loop's bbox slices produce, and every subsequent
    arithmetic op is elementwise in the same order, so bbox pixels carry
    bit-identical alphas; insignificant pixels are forced to ``0.0`` exactly
    as the scalar ``np.where`` does.

    Termination mirrors the dense chunked path's argument: the scalar loop
    checks max transmittance before *every* Gaussian, and transmittance is
    non-increasing, so if the state before the chunk's last member still
    clears the threshold no earlier check fired either.  The chunk is blended
    without per-splat checks up to its last member; if the pre-last-member
    state then sits below the threshold, the chunk is rolled back to its
    entry snapshot and replayed through :func:`_scalar_blend_range`, landing
    the stop on the same Gaussian with the same counters as
    :func:`repro.pipeline.reference.rasterize_tile`.
    """
    n = means.shape[0]
    bw = gx1 - gx0
    xp = _XP()

    for s in range(0, n, chunk_size):
        # The pre-splat check for Gaussian ``s`` (and, transitively, every
        # earlier member of the chunk whose pre-state can only be >= this).
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            return
        e = min(s + chunk_size, n)

        # Splats the scalar loop evaluates alpha for: valid, non-empty bbox
        # (bbox_areas is already zero for the rest).
        idx = np.flatnonzero(bbox_areas[s:e] > 0) + s
        k = idx.shape[0]
        if k == 0:
            stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
            continue

        areas = bbox_areas[idx]
        starts = np.zeros(k + 1, dtype=np.int64)
        xp.cumsum(areas, out=starts[1:])
        total = int(starts[-1])
        local = np.arange(total, dtype=np.int64) - xp.repeat(starts[:-1], areas)
        bw_rep = xp.repeat(bw[idx], areas)
        rows_f = xp.repeat(gy0[idx], areas) + local // bw_rep
        cols_f = xp.repeat(gx0[idx], areas) + local % bw_rep

        dx = px[cols_f] - xp.repeat(means[idx, 0], areas)
        dy = py[rows_f] - xp.repeat(means[idx, 1], areas)
        a = xp.repeat(conics[idx, 0], areas)
        b = xp.repeat(conics[idx, 1], areas)
        c = xp.repeat(conics[idx, 2], areas)
        power = -0.5 * (a * dx**2 + c * dy**2) - b * dy * dx
        alpha = xp.minimum(
            xp.repeat(opacities[idx], areas) * xp.exp(xp.minimum(power, 0.0)),
            MAX_ALPHA,
        )
        ok = (power <= 0.0) & (alpha >= MIN_ALPHA)
        alpha = xp.where(ok, alpha, 0.0)
        sig = np.logical_or.reduceat(ok, starts[:-1])

        snap_trans = trans.copy()
        snap_color = color.copy()
        deferred = -1
        for j in np.flatnonzero(sig).tolist():
            i = int(idx[j])
            if i == e - 1:
                # Blended only after the chunk's final pre-splat check.
                deferred = j
                break
            st, en = starts[j], starts[j + 1]
            al = alpha[st:en].reshape(gy1[i] - gy0[i], gx1[i] - gx0[i])
            t_block = trans[gy0[i] : gy1[i], gx0[i] : gx1[i]]
            weight = t_block * al
            color[gy0[i] : gy1[i], gx0[i] : gx1[i]] += (
                weight[..., None] * colors[i][None, None, :]
            )
            trans[gy0[i] : gy1[i], gx0[i] : gx1[i]] = t_block * (1.0 - al)

        # State before the chunk's last member: below the threshold means a
        # pre-splat check fired somewhere inside this chunk — roll back and
        # replay scalar so the stop lands on the exact Gaussian.
        if e - s > 1 and trans.max() < termination:
            trans[:] = snap_trans
            color[:] = snap_color
            _scalar_blend_range(
                s, n, px, py, trans, color, means, conics, radii,
                opacities, colors, valid, termination, stats,
            )
            return

        if deferred >= 0:
            i = e - 1
            st, en = starts[deferred], starts[deferred + 1]
            al = alpha[st:en].reshape(gy1[i] - gy0[i], gx1[i] - gx0[i])
            t_block = trans[gy0[i] : gy1[i], gx0[i] : gx1[i]]
            weight = t_block * al
            color[gy0[i] : gy1[i], gx0[i] : gx1[i]] += (
                weight[..., None] * colors[i][None, None, :]
            )
            trans[gy0[i] : gy1[i], gx0[i] : gx1[i]] = t_block * (1.0 - al)

        stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
        stats.blend_ops += int(bbox_areas[s:e].sum())


def rasterize_tile(
    framebuffer: Framebuffer,
    projected: ProjectedGaussians,
    rows: np.ndarray,
    bounds: tuple[int, int, int, int],
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
    chunk_size: int = RASTER_CHUNK_SIZE,
) -> tuple[np.ndarray, RasterStats]:
    """Blend one tile's sorted Gaussians into the framebuffer.

    Parameters
    ----------
    rows:
        Row indices into ``projected``, already depth-sorted front-to-back.
    bounds:
        Tile pixel rectangle ``(x0, y0, x1, y1)``, exclusive upper.
    subtile_size:
        Edge of the ITU subtiles; ``None`` disables subtiling (pure per-pixel
        evaluation over the whole tile).
    chunk_size:
        Gaussians evaluated per batched blending step (see module docstring);
        results are bit-identical for every value ``>= 1``.

    Returns
    -------
    ``(valid_bits, stats)`` where ``valid_bits[i]`` is True if Gaussian
    ``rows[i]`` touched any subtile of this tile.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    x0, y0, x1, y1 = bounds
    stats = RasterStats()
    n = rows.shape[0]
    if n == 0 or x0 >= x1 or y0 >= y1:
        return np.zeros(n, dtype=bool), stats

    px = np.arange(x0, x1) + 0.5
    py = np.arange(y0, y1) + 0.5
    trans = framebuffer.transmittance[y0:y1, x0:x1]
    color = framebuffer.color[y0:y1, x0:x1]

    means = projected.means2d[rows]
    conics = projected.conic[rows]
    radii = projected.radii[rows]
    opacities = projected.opacities[rows]
    colors = projected.colors[rows]

    sub = subtile_size
    # Valid bits are *geometric*: the ITU runs intersection tests for the
    # whole list (it is pipelined ahead of the SCUs and cheap), regardless
    # of whether blending terminates early, so a Gaussian's membership in
    # the tile is judged independently of its visual contribution.
    if sub is not None:
        bitmaps = _subtile_bitmaps(means, radii, x0, y0, x1, y1, sub)
        stats.subtile_tests += bitmaps.size
        subtile_hits = np.count_nonzero(bitmaps, axis=(1, 2)).astype(np.int64)
        valid = subtile_hits > 0
        stats.subtile_hits += int(subtile_hits.sum())
    else:
        # No subtiling: test the splat's bounding circle against the tile.
        qx = np.clip(means[:, 0], x0, x1)
        qy = np.clip(means[:, 1], y0, y1)
        dist2 = (qx - means[:, 0]) ** 2 + (qy - means[:, 1]) ** 2
        valid = dist2 <= radii**2
        subtile_hits = valid.astype(np.int64)

    w = x1 - x0
    h = y1 - y0
    # Per-splat pixel bboxes, clipped to the tile — the same integers the
    # scalar loop derives one splat at a time.  Blending restricts each
    # splat's alpha map to its bbox, and blend_ops counts bbox pixels.
    gx0 = np.maximum(np.floor(means[:, 0] - radii).astype(np.int64) - x0, 0)
    gx1 = np.minimum(np.ceil(means[:, 0] + radii).astype(np.int64) - x0 + 1, w)
    gy0 = np.maximum(np.floor(means[:, 1] - radii).astype(np.int64) - y0, 0)
    gy1 = np.minimum(np.ceil(means[:, 1] + radii).astype(np.int64) - y0 + 1, h)
    bbox_areas = np.where(
        valid & (gx1 > gx0) & (gy1 > gy0), (gx1 - gx0) * (gy1 - gy0), 0
    )

    tile_area = h * w
    if tile_area > CHUNKED_MAX_DENSE_AREA and (
        int(bbox_areas.sum()) < CHUNKED_MIN_COVERAGE * n * tile_area
    ):
        # Sparse large tile: whole-tile batched evaluation would waste most
        # of its flops on empty pixels; the flat-gather path batches only
        # each splat's own pixels.
        _sparse_blend_range(
            px, py, trans, color, means, conics, radii, opacities, colors,
            valid, gx0, gx1, gy0, gy1, bbox_areas, termination, stats,
            chunk_size,
        )
        return valid, stats

    xs = np.arange(w)
    ys = np.arange(h)
    xp = _XP()

    for s in range(0, n, chunk_size):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        e = min(s + chunk_size, n)
        k = e - s

        # Batched alpha maps over the whole tile grid.  Every arithmetic op
        # is elementwise in the same order as the scalar loop, so values at
        # bbox pixels are bit-identical; pixels outside a splat's bbox (or
        # belonging to invalid splats) get alpha 0, which composites as a
        # bitwise no-op (multiply by 1.0, add of exact zero).
        dx = px[None, :] - means[s:e, 0][:, None]  # (k, w)
        dy = py[None, :] - means[s:e, 1][:, None]  # (k, h)
        a = conics[s:e, 0][:, None, None]
        b = conics[s:e, 1][:, None, None]
        c = conics[s:e, 2][:, None, None]
        power = -0.5 * (
            a * dx[:, None, :] ** 2 + c * dy[:, :, None] ** 2
        ) - b * dy[:, :, None] * dx[:, None, :]
        alpha = xp.minimum(
            opacities[s:e][:, None, None] * xp.exp(xp.minimum(power, 0.0)), MAX_ALPHA
        )
        in_x = (xs[None, :] >= gx0[s:e, None]) & (xs[None, :] < gx1[s:e, None])
        in_y = (ys[None, :] >= gy0[s:e, None]) & (ys[None, :] < gy1[s:e, None])
        if not valid[s:e].all():
            in_x &= valid[s:e, None]
        ok = (power <= 0.0) & (alpha >= MIN_ALPHA)
        ok &= in_y[:, :, None]
        ok &= in_x[:, None, :]
        alpha = xp.where(ok, alpha, 0.0)

        # Members whose alpha map is identically zero composite as bitwise
        # no-ops (multiply by 1.0, add of exact zero) — drop them from the
        # cumulative passes.  Counters still come from the full chunk.
        live = ok.any(axis=(1, 2))
        k_live = int(np.count_nonzero(live))
        if k_live:
            if k_live < k:
                alpha = alpha[live]
            chunk_colors = colors[s:e][live]

            # Exclusive cumulative product of (1 - alpha) seeded with the
            # tile's incoming transmittance: tstack[j] is the transmittance
            # each pixel presents to live member j.  ufunc.accumulate
            # multiplies strictly left-to-right, reproducing the scalar
            # recurrence bit-for-bit.
            tstack = np.empty((k_live + 1, h, w))
            tstack[0] = trans
            np.subtract(1.0, alpha, out=tstack[1:])
            # In-place accumulate is safe (each level is read before it is
            # overwritten) and halves the pass's temporaries.
            tstack = xp.accumulate_multiply(tstack, axis=0, out=tstack)

            # The scalar loop checks max transmittance before *every*
            # Gaussian.  Transmittance is non-increasing, so if the state
            # before the chunk's last member still clears the threshold no
            # earlier check fired either; otherwise replay the chunk scalar
            # so the stop lands on the same Gaussian with the same counters.
            # (Dropped members leave transmittance untouched, so that state
            # sits at cumulation level k_live - 1 when the last member is
            # live and k_live when it was dropped.)
            last_check = k_live - 1 if live[k - 1] else k_live
            if k > 1 and tstack[last_check].max() < termination:
                _scalar_blend_range(
                    s, n, px, py, trans, color, means, conics, radii,
                    opacities, colors, valid, termination, stats,
                )
                return valid, stats

            # color += T_in * alpha * c, accumulated in chunk order and
            # seeded with the incoming color so the additions associate
            # exactly as the scalar loop's.
            weights = tstack[:k_live] * alpha
            contribs = np.empty((k_live + 1, h, w, 3))
            contribs[0] = color
            np.multiply(
                weights[..., None], chunk_colors[:, None, None, :], out=contribs[1:]
            )
            contribs = xp.accumulate_add(contribs, axis=0, out=contribs)
            color[:] = contribs[k_live]
            trans[:] = tstack[k_live]

        stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
        stats.blend_ops += int(bbox_areas[s:e].sum())

    return valid, stats


def rasterize(
    sorted_tiles: SortedTiles,
    projected: ProjectedGaussians,
    grid: TileGrid,
    background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
    chunk_size: int = RASTER_CHUNK_SIZE,
) -> RasterResult:
    """Rasterize a full frame from per-tile sorted Gaussian lists."""
    framebuffer = Framebuffer(width=grid.width, height=grid.height, background=background)
    result = RasterResult(image=np.empty(0))
    for tile in range(grid.num_tiles):
        rows = sorted_tiles.rows_for(tile)
        if rows.shape[0] == 0:
            continue
        valid, stats = rasterize_tile(
            framebuffer,
            projected,
            rows,
            grid.tile_pixel_bounds(tile),
            subtile_size=subtile_size,
            termination=termination,
            chunk_size=chunk_size,
        )
        result.valid_bits[tile] = valid
        result.stats.merge(stats)
    result.image = framebuffer.finalize()
    return result
