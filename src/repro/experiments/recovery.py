"""Accuracy restoration after abrupt camera motion (paper section 4.3).

Dynamic Partial Sorting may need a few frames to re-establish exact ordering
after a large viewpoint change; the paper argues this is self-correcting
("positive feedback loop") and costs negligible quality.  This experiment
injects a camera jump mid-sequence and tracks Neo's per-frame quality and
ordering error against exact sorting: quality dips at the jump and recovers
within a handful of frames without any full re-sort.
"""

from __future__ import annotations

import numpy as np

from ..core.strategies import NeoSortStrategy
from ..metrics.image import psnr
from ..pipeline.renderer import Renderer
from ..pipeline.sorting import order_quality
from ..scene.camera import Camera
from ..scene.trajectory import TrajectoryConfig, orbit_trajectory
from ..scene.datasets import load_scene, scene_spec
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

DESCRIPTION = "Accuracy restoration after an abrupt camera jump"


def jump_trajectory(
    scene_name: str,
    num_frames: int,
    jump_frame: int,
    jump_degrees: float,
    width: int,
    height: int,
) -> list[Camera]:
    """A gentle orbit with one abrupt angular jump at ``jump_frame``."""
    spec = scene_spec(scene_name)
    config = TrajectoryConfig(num_frames=num_frames, width=width, height=height)
    base = orbit_trajectory(
        np.zeros(3),
        radius=spec.camera_radius,
        config=config,
        height_offset=spec.camera_radius * 0.2,
        far=spec.depth_spread * 20.0,
    )
    # Replay the orbit with the post-jump frames advanced by jump_degrees.
    shifted_config = TrajectoryConfig(
        num_frames=num_frames + int(jump_degrees / 0.5), width=width, height=height
    )
    shifted = orbit_trajectory(
        np.zeros(3),
        radius=spec.camera_radius,
        config=shifted_config,
        height_offset=spec.camera_radius * 0.2,
        far=spec.depth_spread * 20.0,
    )
    offset = int(jump_degrees / 0.5)
    return base[:jump_frame] + shifted[jump_frame + offset : num_frames + offset]


def mean_order_quality(record) -> float:
    """Mean adjacent-pair depth-sortedness across nonempty tiles."""
    sorted_tiles = record.sorted_tiles
    scores = [
        order_quality(depths)
        for tile in range(sorted_tiles.num_tiles)
        if (depths := sorted_tiles.depths_for(tile)).shape[0] > 1
    ]
    return float(np.mean(scores)) if scores else 1.0


def plan(
    scene_name: str = "family",
    num_frames: int = 16,
    jump_frame: int = 6,
    jump_degrees: float = 10.0,
    width: int = 224,
    height: int = 126,
    num_gaussians: int = 2000,
) -> ExperimentPlan:
    """No simulation cells: the work is a pair of functional renders."""
    if not 0 < jump_frame < num_frames - 3:
        raise ValueError("jump_frame must leave room to observe recovery")

    def aggregate(_cells) -> ExperimentResult:
        scene = load_scene(scene_name, num_gaussians=num_gaussians)
        cameras = jump_trajectory(
            scene_name, num_frames, jump_frame, jump_degrees, width, height
        )

        reference = Renderer(scene).render_sequence(cameras)
        neo = NeoSortStrategy()
        records = Renderer(scene, strategy=neo).render_sequence(cameras)

        result = ExperimentResult(
            name="recovery",
            description=f"Accuracy restoration after a {jump_degrees:g} deg camera jump",
        )
        for i, (ref, rec) in enumerate(zip(reference, records)):
            result.rows.append(
                {
                    "frame": i,
                    "is_jump": i == jump_frame,
                    "psnr_vs_exact": psnr(ref.image, rec.image),
                    "order_quality": mean_order_quality(rec),
                    "incoming": neo.frame_stats[i].incoming_entries,
                }
            )
        return result

    return ExperimentPlan("recovery", DESCRIPTION, (), aggregate)


def run(
    scene_name: str = "family",
    num_frames: int = 16,
    jump_frame: int = 6,
    jump_degrees: float = 10.0,
    width: int = 224,
    height: int = 126,
    num_gaussians: int = 2000,
) -> ExperimentResult:
    """Per-frame PSNR-vs-exact and ordering quality around a camera jump."""
    return execute_plan(
        plan(
            scene_name=scene_name,
            num_frames=num_frames,
            jump_frame=jump_frame,
            jump_degrees=jump_degrees,
            width=width,
            height=height,
            num_gaussians=num_gaussians,
        )
    )


def recovery_frames(result: ExperimentResult, threshold_db: float = 45.0) -> int:
    """Frames after the jump until PSNR re-crosses ``threshold_db``.

    Returns the number of post-jump frames below the threshold (0 means the
    jump was absorbed immediately).
    """
    jump = next(r["frame"] for r in result.rows if r["is_jump"])
    below = 0
    for row in result.rows[jump:]:
        if row["psnr_vs_exact"] < threshold_db:
            below += 1
        else:
            break
    return below
