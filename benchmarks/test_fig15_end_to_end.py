"""Bench: Fig. 15 — end-to-end throughput of Orin AGX, GSCore and Neo."""

import pytest

from repro.experiments import fig15

from conftest import run_once

pytestmark = pytest.mark.slow


def test_fig15_end_to_end(benchmark, bench_frames):
    result = run_once(benchmark, fig15.run, num_frames=bench_frames)
    print("\n" + result.to_text())
    ratios = fig15.speedups(result)
    print(ratios)

    # Paper: Neo beats Orin by 5.0/7.2/10.0x and GSCore by 1.8/3.3/5.6x at
    # HD/FHD/QHD; both gaps widen with resolution; Neo sustains ~99 FPS at
    # QHD (real-time at AR/VR resolution).
    assert (
        ratios["hd"]["vs_orin"]
        < ratios["fhd"]["vs_orin"]
        < ratios["qhd"]["vs_orin"]
    )
    assert (
        ratios["hd"]["vs_gscore"]
        < ratios["fhd"]["vs_gscore"]
        < ratios["qhd"]["vs_gscore"]
    )
    assert 6.0 < ratios["qhd"]["vs_orin"] < 15.0
    assert 3.5 < ratios["qhd"]["vs_gscore"] < 8.0
    assert ratios["qhd"]["neo_fps"] > 80.0

    # Neo wins every (scene, resolution) cell, not just the means.
    for row in result.rows:
        assert row["neo"] > row["gscore"] > 0
        assert row["neo"] > row["orin"] > 0
