"""Quickstart: render a scene with exact sorting and with Neo's
reuse-and-update sorting, and compare quality and sorting traffic.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import FullResortStrategy, NeoSortStrategy
from repro.metrics import psnr, ssim
from repro.pipeline import Renderer
from repro.scene import default_trajectory, load_scene


def main() -> None:
    # 1. Load a synthetic stand-in for the Tanks-and-Temples "family" scene
    #    (reduced Gaussian count for pure-Python rendering).
    scene = load_scene("family", num_gaussians=2500)
    print(f"scene: {scene.name}, {len(scene)} Gaussians, SH degree {scene.sh_degree}")

    # 2. A gentle orbit, the capture style of the paper's benchmarks.
    cameras = default_trajectory("family", num_frames=8, width=320, height=180)

    # 3. Render with exact per-frame sorting (the reference 3DGS pipeline).
    exact = FullResortStrategy()
    reference = Renderer(scene, strategy=exact).render_sequence(cameras)

    # 4. Render the same frames with Neo's reuse-and-update sorting.
    neo = NeoSortStrategy()
    records = Renderer(scene, strategy=neo).render_sequence(cameras)

    # 5. Compare: quality is indistinguishable while the sorting stage
    #    touches memory far less (and the gap widens at paper scale, where
    #    the full sort needs multiple merge passes).
    print(f"\n{'frame':>5} {'psnr(dB)':>9} {'ssim':>6} {'reuse':>6} {'incoming':>8}")
    for i, (ref, rec) in enumerate(zip(reference, records)):
        stats = neo.frame_stats[i]
        print(
            f"{i:>5} {psnr(ref.image, rec.image):>9.1f} "
            f"{ssim(ref.image, rec.image):>6.3f} "
            f"{stats.reuse_fraction:>6.2f} {stats.incoming_entries:>8}"
        )

    exact_bytes = exact.total_traffic().total_bytes
    neo_bytes = neo.total_traffic().total_bytes
    print(f"\nsorting traffic, exact: {exact_bytes / 1e6:.2f} MB")
    print(f"sorting traffic, neo:   {neo_bytes / 1e6:.2f} MB")
    print(
        "note: at this reduced scale per-tile lists fit in one on-chip chunk, "
        "so the exact sort is also single-pass; see benchmarks/test_fig16_traffic.py "
        "for the paper-scale comparison (Neo cuts sorting traffic >80%)."
    )


if __name__ == "__main__":
    main()
