"""Frustum culling: discard Gaussians invisible from the camera (stage 1).

Culling happens in camera space on the Gaussian centers, padded by each
Gaussian's world-space extent so splats straddling the frustum boundary
survive.  This mirrors the conservative culling of reference 3DGS, which
keeps a Gaussian if its center lies inside a slightly inflated frustum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scene.camera import Camera
from ..scene.gaussians import GaussianScene

#: Frustum inflation factor; reference 3DGS keeps centers within 1.3x the
#: frustum tangents to tolerate splat extent.
FRUSTUM_MARGIN = 1.3


@dataclass(frozen=True)
class CullingResult:
    """Outcome of frustum culling.

    Attributes
    ----------
    visible_ids:
        Indices of surviving Gaussians, in scene order.
    num_tested:
        Total Gaussians tested (scene size).
    """

    visible_ids: np.ndarray
    num_tested: int

    @property
    def num_visible(self) -> int:
        """Number of Gaussians that survived culling."""
        return int(self.visible_ids.shape[0])

    @property
    def cull_rate(self) -> float:
        """Fraction of Gaussians discarded."""
        if self.num_tested == 0:
            return 0.0
        return 1.0 - self.num_visible / self.num_tested


def frustum_cull(
    scene: GaussianScene,
    camera: Camera,
    margin: float = FRUSTUM_MARGIN,
    pad_sigmas: float = 3.0,
) -> CullingResult:
    """Return the Gaussians whose padded centers fall inside the view frustum.

    Parameters
    ----------
    margin:
        Multiplier on the frustum tangents (>1 inflates the frustum).
    pad_sigmas:
        World-space padding as a multiple of each Gaussian's largest scale,
        so large splats near the boundary are retained.
    """
    if margin < 1.0:
        raise ValueError("margin must be >= 1.0 (conservative culling)")
    cam_points = camera.transform_points(scene.means)
    z = cam_points[:, 2]
    pad = pad_sigmas * scene.scales.max(axis=1)

    in_depth = (z + pad > camera.near) & (z - pad < camera.far)
    # Lateral test against the inflated frustum planes: |x| <= tan * z + pad.
    safe_z = np.maximum(z, camera.near)
    lim_x = margin * camera.tan_half_fov_x * safe_z + pad
    lim_y = margin * camera.tan_half_fov_y * safe_z + pad
    in_lateral = (np.abs(cam_points[:, 0]) <= lim_x) & (np.abs(cam_points[:, 1]) <= lim_y)

    visible = np.flatnonzero(in_depth & in_lateral)
    return CullingResult(visible_ids=visible, num_tested=len(scene))
