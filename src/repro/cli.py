"""Command-line interface: regenerate paper artifacts and render scenes.

Usage::

    python -m repro list                      # available experiments/scenes
    python -m repro run fig15                 # regenerate one figure/table
    python -m repro run all                   # regenerate everything
    python -m repro render family out.ppm     # render one frame to a PPM
    python -m repro simulate neo family qhd   # one system/scene/resolution
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_list(_args) -> int:
    from .experiments import list_experiments
    from .scene.datasets import SCENE_SPECS

    print("experiments:", ", ".join(list_experiments()))
    print("scenes:     ", ", ".join(sorted(SCENE_SPECS)))
    print("systems:    ", "orin, orin-neo-sw, gscore, neo, neo-s")
    return 0


def _cmd_run(args) -> int:
    from .experiments import list_experiments, run_experiment

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name)
        print(result.to_text())
        print()
    return 0


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an HxWx3 float image in [0, 1] as a binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an HxWx3 image")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())


def _cmd_render(args) -> int:
    from .core.strategies import make_strategy
    from .pipeline.renderer import Renderer
    from .scene.datasets import default_trajectory, load_scene

    scene = load_scene(args.scene, num_gaussians=args.gaussians)
    cameras = default_trajectory(
        args.scene, num_frames=args.frame + 1, width=args.width, height=args.height
    )
    renderer = Renderer(scene, strategy=make_strategy(args.strategy))
    records = renderer.render_sequence(cameras)
    write_ppm(args.output, records[-1].image)
    stats = records[-1].stats
    print(
        f"wrote {args.output}: {args.width}x{args.height}, "
        f"{stats.num_visible} visible Gaussians, {stats.num_pairs} pairs, "
        f"strategy={args.strategy}"
    )
    return 0


def _cmd_simulate(args) -> int:
    from .experiments.runner import simulate_system

    report = simulate_system(
        args.system,
        args.scene,
        args.resolution,
        num_frames=args.frames,
        bandwidth_gbps=args.bandwidth,
    )
    traffic = report.total_traffic
    print(f"system:      {report.system}")
    print(f"scene:       {report.scene} @ {args.resolution}")
    print(f"throughput:  {report.fps:.1f} FPS (mean latency {report.mean_latency_s * 1e3:.2f} ms)")
    print(f"traffic/60f: {report.traffic_gb_for(60):.1f} GB")
    fracs = traffic.fractions()
    print(
        "stage split: "
        f"feature {fracs['feature_extraction']:.0%}, "
        f"sorting {fracs['sorting']:.0%}, "
        f"raster {fracs['rasterization']:.0%}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neo (ASPLOS 2026) reproduction: experiments, rendering, simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, scenes, and systems")

    run_p = sub.add_parser("run", help="regenerate a paper figure/table (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. fig15, table2, all")

    render_p = sub.add_parser("render", help="render one frame to a PPM image")
    render_p.add_argument("scene", help="scene preset name")
    render_p.add_argument("output", help="output .ppm path")
    render_p.add_argument("--width", type=int, default=480)
    render_p.add_argument("--height", type=int, default=270)
    render_p.add_argument("--frame", type=int, default=0, help="trajectory frame index")
    render_p.add_argument("--gaussians", type=int, default=3000)
    render_p.add_argument(
        "--strategy", default="full",
        choices=("full", "periodic", "background", "hierarchical", "neo"),
    )

    sim_p = sub.add_parser("simulate", help="simulate one system on one workload")
    sim_p.add_argument("system", choices=("orin", "orin-neo-sw", "gscore", "neo", "neo-s"))
    sim_p.add_argument("scene")
    sim_p.add_argument("resolution", choices=("hd", "fhd", "qhd", "uhd"))
    sim_p.add_argument("--frames", type=int, default=12)
    sim_p.add_argument("--bandwidth", type=float, default=51.2, help="DRAM GB/s")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "render": _cmd_render,
        "simulate": _cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
