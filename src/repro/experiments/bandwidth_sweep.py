"""Extension experiment: sensitivity to DRAM bandwidth.

The flip side of Neo's traffic reduction (not a numbered figure, but the
direct consequence of section 6.2's claim that Neo "can perform computations
without being bottlenecked by the bandwidth constraints"): sweeping the
memory system across the 17.8-59.7 GB/s practical on-device range cited in
section 3.2 and beyond, Neo reaches the 60 FPS SLO at a fraction of the
bandwidth GSCore would need — GSCore stays memory-bound and sub-real-time
even at 4x the edge budget.

.. note::
   Since the sweep subsystem landed, this driver is a thin wrapper over
   :mod:`repro.sweeps`: it declares the bandwidth axis as a
   :class:`~repro.sweeps.spec.SweepSpec` hardware grid, executes it through
   the :class:`~repro.sweeps.executor.SweepRunner` (reusing the active
   :class:`~repro.experiments.runner.RunnerConfig` cache), and pivots the
   per-system rows back into this experiment's historical one-row-per-
   bandwidth schema.
"""

from __future__ import annotations

from ..scene.datasets import MILL19, scene_spec
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult, get_runner_config, resolve_frames

BANDWIDTHS_GBPS = (17.8, 25.6, 38.4, 51.2, 76.8, 102.4, 204.8)

DESCRIPTION = "FPS vs DRAM bandwidth: Neo saturates, GSCore stays memory-bound"


def plan(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    bandwidths=BANDWIDTHS_GBPS,
) -> ExperimentPlan:
    """No engine cells: delegates to the sweep executor (same shared core).

    The sweep's point grid is built inside ``aggregate`` because its frame
    count and cache come from the :class:`~repro.experiments.runner.
    RunnerConfig` active at *execution* time, not at plan-build time.
    """

    def aggregate(_cells) -> ExperimentResult:
        from ..sweeps import HardwareConfig, SweepRunner, SweepSpec

        resolved = scene_spec(scene).name  # resolve case like the pre-sweep driver did
        spec = SweepSpec(
            name="bandwidth_sweep",
            description=DESCRIPTION,
            scenes=(resolved,),
            trajectories=("flythrough",) if resolved in MILL19 else ("orbit",),
            strategies=("neo",),
            hardware=tuple(
                HardwareConfig(
                    system=system, resolution=resolution, bandwidth_gbps=bandwidth
                )
                for bandwidth in bandwidths
                for system in ("neo", "gscore")
            ),
            frames=resolve_frames(num_frames),
            measure_quality=False,
        )
        sweep = SweepRunner(jobs=1, cache=get_runner_config().cache).run(spec).report

        result = ExperimentResult(name=spec.name, description=spec.description)
        for bandwidth in bandwidths:
            neo = sweep.filter(system="neo", bandwidth_gbps=float(bandwidth))[0]
            gscore = sweep.filter(system="gscore", bandwidth_gbps=float(bandwidth))[0]
            result.rows.append(
                {
                    "bandwidth_gbps": bandwidth,
                    "neo_fps": neo["fps"],
                    "gscore_fps": gscore["fps"],
                    "neo_realtime": neo["fps"] >= 60.0,
                }
            )
        return result

    return ExperimentPlan("bandwidth_sweep", DESCRIPTION, (), aggregate)


def run(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    bandwidths=BANDWIDTHS_GBPS,
) -> ExperimentResult:
    """Neo and GSCore FPS across DRAM bandwidths at QHD."""
    return execute_plan(
        plan(scene=scene, resolution=resolution, num_frames=num_frames, bandwidths=bandwidths)
    )


def realtime_bandwidth(result: ExperimentResult, system: str = "neo", slo_fps: float = 60.0) -> float:
    """Smallest swept bandwidth at which ``system`` meets the FPS SLO.

    Returns infinity if the system never reaches the SLO in the sweep.
    """
    key = f"{system}_fps"
    for row in sorted(result.rows, key=lambda r: r["bandwidth_gbps"]):
        if row[key] >= slo_fps:
            return row["bandwidth_gbps"]
    return float("inf")
