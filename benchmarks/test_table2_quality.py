"""Bench: Table 2 — rendering quality of original 3DGS vs Neo."""

from repro.experiments import table2

from conftest import run_once


def test_table2_quality(benchmark):
    result = run_once(benchmark, table2.run, num_frames=3)
    print("\n" + result.to_text())

    # Paper: PSNR delta <= 0.1 dB and LPIPS delta <= 0.001 on every scene —
    # reuse-and-update sorting is visually indistinguishable from exact
    # per-frame sorting.
    for row in result.rows:
        assert abs(row["psnr_delta"]) <= 0.15, row["scene"]
        assert abs(row["lpips_delta"]) <= 0.002, row["scene"]
        assert row["psnr_neo"] > 25.0, row["scene"]
