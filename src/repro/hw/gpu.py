"""Orin AGX edge-GPU performance model (roofline style).

The GPU executes the reference 3DGS pipeline: culling + feature extraction
kernels, CUB radix sort over the duplicated (tile|depth key, Gaussian ID)
stream, and the tile-based alpha-blending CUDA kernel.  The model charges
per-stage DRAM traffic and takes each stage's time as the maximum of its
memory service time and its compute time (stages run back-to-back on the
GPU; no cross-stage overlap).

With ``neo_software=True`` the model reproduces the Neo-SW study of
section 4.5 / Fig. 10: the sorting stage switches to the reuse-and-update
algorithm (table streamed once per frame, small incoming tables) which cuts
sorting traffic by >80 %, but the insertion/deletion steps have irregular
access patterns that cap SIMD efficiency, so sorting becomes compute-bound
and the stage speedup saturates near 1.5x; rasterization is untouched and
still dominates GPU runtime.

The per-sequence loop lives in :class:`~repro.hw.system.SystemModel`; this
module supplies only the GPU's equations, vectorized over the frame axis.

Calibration constants (``_BLEND_RATE``, ``_SORT_SW_RATE``, ...) are fitted
to the paper's measured Orin numbers (Figs. 10, 15, 16) and documented
inline; the *structure* (what is read/written how many times) follows the
reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import GpuConfig
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
)
from .system import (
    FrameBatch,
    ReportBatch,
    SystemModel,
    TrafficBatch,
    register_system,
    register_variant,
)

#: Achievable fraction of peak DRAM bandwidth for the GPU's mostly-streaming
#: kernels (CUB is heavily optimized; scattered tile gathers lower the mix).
_GPU_DRAM_EFFICIENCY = 0.85

#: Mean blended pixels a (Gaussian, tile) pair touches before early
#: termination, as a fraction of the tile area.  Splats at paper scale are
#: larger than a 16 px tile, so a processed pair touches most of the tile.
_BLEND_TILE_COVERAGE = 0.5

#: Front-most Gaussians per 16 px tile processed before transmittance
#: saturates (calibrated so rasterization time matches Fig. 10's 63.5 ms
#: at QHD: the paper reports rasterization as 68.8 % of GPU runtime).
_TERMINATION_DEPTH_16 = 250

#: Effective blend throughput (blended pixels/s).  Orin's SMs sustain far
#: below peak FP32 on this kernel due to alpha-blend serialization and
#: divergence; fitted to Orin's measured FPS (Fig. 15).
_BLEND_RATE = 6.0e9

#: Feature-extraction compute rate (Gaussians/s): projection + SH eval.
_FEATURE_RATE = 3.0e9

#: Pair throughput of the Neo-SW merge/insert/delete path (pairs/s);
#: irregular accesses limit SIMD lanes, capping the sorting-stage speedup
#: near the paper's 1.54x.
_SORT_SW_RATE = 2.6e9


@dataclass
class OrinGpuModel(SystemModel):
    """Performance model of the NVIDIA Orin AGX baseline.

    Parameters
    ----------
    config:
        GPU parameters (bandwidth, radix passes, tile size).
    neo_software:
        Run the sorting stage with the software Neo algorithm (Fig. 10).
    """

    config: GpuConfig = field(default_factory=GpuConfig)
    neo_software: bool = False
    name: str = "orin-agx"

    def __post_init__(self) -> None:
        if self.neo_software:
            self.name = "orin-agx-neo-sw"

    # ------------------------------------------------------------------
    def stacked(self, axes) -> "OrinGpuModel | None":
        """The GPU carries its own memory system (``dram_policy="native"``)
        and its factory drops the ``cores`` knob, so both sweep axes stack
        trivially: every cell's report is the same as the scalar run's.
        """
        if set(axes) <= {"bandwidth_gbps", "cores"}:
            return self
        return None

    # ------------------------------------------------------------------
    def batch_traffic(self, batch: FrameBatch) -> TrafficBatch:
        """DRAM bytes per stage for every frame in the batch."""
        cfg = self.config
        visible = batch.visible
        total = batch.num_gaussians
        pairs = batch.pairs

        feature = (
            visible * FEATURE_3D_BYTES
            + (total - visible) * CULL_PROBE_BYTES
            + visible * FEATURE_2D_BYTES
        )

        if self.neo_software:
            # Reuse-and-update in software: stream the table once
            # (read + write) and handle the small incoming tables.
            entry = 8  # 32-bit ID + 32-bit depth
            sorting = 2 * pairs * entry + 2 * batch.incoming_pairs * entry
        else:
            # Duplication writes the (key, value) stream once; each radix
            # pass reads and writes it in full.
            entry = cfg.sort_entry_bytes
            sorting = pairs * entry * (1 + 2 * cfg.sort_passes)

        blended = batch.effective_pairs(_TERMINATION_DEPTH_16)
        raster = blended * FEATURE_2D_BYTES + batch.pixels * PIXEL_BYTES
        return TrafficBatch(
            feature_extraction=feature, sorting=sorting, rasterization=raster
        )

    # ------------------------------------------------------------------
    def batch_report(self, batch: FrameBatch) -> ReportBatch:
        """Latency and traffic per frame (stages execute sequentially)."""
        cfg = self.config
        traffic = self.batch_traffic(batch)
        bandwidth = cfg.bandwidth_gbps * 1e9 * _GPU_DRAM_EFFICIENCY

        feature_time = np.maximum(
            traffic.feature_extraction / bandwidth,
            batch.num_gaussians / _FEATURE_RATE,
        )

        if self.neo_software:
            sort_compute = batch.pairs / _SORT_SW_RATE
        else:
            sort_compute = 0.0  # CUB radix is bandwidth-bound on Orin
        sort_time = np.maximum(traffic.sorting / bandwidth, sort_compute)

        blended = batch.effective_pairs(_TERMINATION_DEPTH_16)
        blend_pixels = blended * (cfg.tile_size**2) * _BLEND_TILE_COVERAGE
        raster_time = np.maximum(traffic.rasterization / bandwidth, blend_pixels / _BLEND_RATE)

        memory_time = (
            traffic.feature_extraction + traffic.sorting + traffic.rasterization
        ) / bandwidth
        compute_residual = (feature_time + sort_time + raster_time) - memory_time
        return ReportBatch(
            traffic=traffic,
            memory_time_s=memory_time,
            compute_time_s=np.maximum(compute_residual, 0.0),
        )


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
@register_system(
    "orin",
    description="NVIDIA Orin AGX edge GPU running the reference 3DGS pipeline",
    model_cls=OrinGpuModel,
    config_cls=GpuConfig,
    dram_policy="native",
)
def _build_orin(dram=None, cores: int = 16, **kwargs) -> OrinGpuModel:
    """The GPU always runs at Orin's native bandwidth (``dram`` ignored)."""
    return OrinGpuModel(**kwargs)


register_variant(
    "orin-neo-sw",
    base="orin",
    description="Fig. 10 study: Neo's reuse-and-update sorting as CUDA kernels",
    overrides={"neo_software": True},
)
