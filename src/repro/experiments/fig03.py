"""Fig. 3 — GSCore throughput vs. resolution (motivation).

GSCore with the paper's original 4-core / 51.2 GB/s edge configuration:
above the 60 FPS SLO at HD, collapsing at FHD and QHD.
"""

from __future__ import annotations

from ..scene.datasets import TANKS_AND_TEMPLES
from .runner import ExperimentResult, simulate_system

RESOLUTIONS = ("hd", "fhd", "qhd")


def run(
    scenes=TANKS_AND_TEMPLES,
    num_frames: int | None = None,
    cores: int = 4,
    bandwidth_gbps: float = 51.2,
) -> ExperimentResult:
    """GSCore FPS per scene per resolution (paper config: 4 cores, 51.2 GB/s)."""
    result = ExperimentResult(
        name="fig03",
        description="GSCore throughput (FPS) at HD/FHD/QHD, 4 cores @ 51.2 GB/s",
    )
    for scene in scenes:
        for resolution in RESOLUTIONS:
            report = simulate_system(
                "gscore",
                scene,
                resolution,
                num_frames=num_frames,
                cores=cores,
                bandwidth_gbps=bandwidth_gbps,
            )
            result.rows.append(
                {"scene": scene, "resolution": resolution, "fps": report.fps}
            )
    return result
