"""Tour of the sorting-reuse design space (section 4.1 / Fig. 19).

Renders the same orbit with five sorting strategies — exact per-frame,
periodic, background, hierarchical, and Neo's reuse-and-update — and prints
per-strategy quality and functional sorting traffic, reproducing the
trade-offs that motivated Neo's incremental-update design.

Run:
    python examples/sorting_strategies_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.core import make_strategy
from repro.metrics import psnr
from repro.pipeline import Renderer
from repro.scene import default_trajectory, load_scene

STRATEGIES = {
    "full": {},
    "periodic": {"period": 6},
    "background": {"lag": 2},
    "hierarchical": {},
    "neo": {},
}


def main() -> None:
    scene = load_scene("playground", num_gaussians=2000)
    cameras = default_trajectory("playground", num_frames=12, width=256, height=144)
    reference = Renderer(scene).render_sequence(cameras)

    print(f"{'strategy':>13} {'mean PSNR':>10} {'min PSNR':>9} {'sort MB':>8}")
    for name, kwargs in STRATEGIES.items():
        strategy = make_strategy(name, **kwargs)
        records = Renderer(scene, strategy=strategy).render_sequence(cameras)
        quality = [
            psnr(ref.image, rec.image)
            for ref, rec in zip(reference[1:], records[1:])
        ]
        traffic = strategy.total_traffic().total_bytes
        print(
            f"{name:>13} {np.mean(quality):>10.1f} {np.min(quality):>9.1f} "
            f"{traffic / 1e6:>8.2f}"
        )

    print(
        "\nReading the table:\n"
        "  - full re-sort is exact but pays the whole sort every frame;\n"
        "  - periodic skips frames cheaply but quality decays between\n"
        "    refreshes (its min PSNR is the worst);\n"
        "  - background sustains full traffic AND renders with a stale\n"
        "    viewpoint's order;\n"
        "  - hierarchical (GSCore) is exact but re-streams tables;\n"
        "  - neo keeps quality within a hair of exact on a single cheap\n"
        "    reuse pass — the paper's design point."
    )


if __name__ == "__main__":
    main()
