"""Fig. 3 — GSCore throughput vs. resolution (motivation).

GSCore with the paper's original 4-core / 51.2 GB/s edge configuration:
above the 60 FPS SLO at HD, collapsing at FHD and QHD.
"""

from __future__ import annotations

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import ExperimentResult

RESOLUTIONS = ("hd", "fhd", "qhd")

DESCRIPTION = "GSCore throughput (FPS) at HD/FHD/QHD, 4 cores @ 51.2 GB/s"


def plan(
    scenes=TANKS_AND_TEMPLES,
    num_frames: int | None = None,
    cores: int = 4,
    bandwidth_gbps: float = 51.2,
) -> ExperimentPlan:
    """Declare the (scene, resolution) GSCore grid plus its aggregation."""
    cells = tuple(
        SimJob(
            "gscore",
            scene,
            resolution,
            frames=num_frames,
            cores=cores,
            bandwidth_gbps=bandwidth_gbps,
        )
        for scene in scenes
        for resolution in RESOLUTIONS
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig03", description=DESCRIPTION)
        for job in cells:
            result.rows.append(
                {"scene": job.scene, "resolution": job.resolution, "fps": reports[job].fps}
            )
        return result

    return ExperimentPlan("fig03", DESCRIPTION, cells, aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    num_frames: int | None = None,
    cores: int = 4,
    bandwidth_gbps: float = 51.2,
) -> ExperimentResult:
    """GSCore FPS per scene per resolution (paper config: 4 cores, 51.2 GB/s)."""
    return execute_plan(
        plan(scenes=scenes, num_frames=num_frames, cores=cores, bandwidth_gbps=bandwidth_gbps)
    )
