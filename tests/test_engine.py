"""Tests for the plan/execute experiment engine.

Covers the SimJob value object, the shared execute_cells core (dedup, cache
probe, parallel fan-out), cross-figure cell dedup, serial-vs-parallel
byte-identical artifacts, the golden all-17-experiments plan/run equivalence,
and the new `repro experiments` CLI surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.cli import main
from repro.experiments import (
    ExperimentEngine,
    ExperimentResult,
    RunnerConfig,
    SimJob,
    execute_cells,
    experiment_descriptions,
    list_experiments,
    runner_config,
    simulate_system,
)
from repro.experiments import (
    bandwidth_sweep,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig09,
    fig10,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    recovery,
    table2,
    table3,
    table4,
)
from repro.experiments import runner as runner_mod
from repro.runtime import ResultCache

FAST_SCENES = ("family", "horse")


# ----------------------------------------------------------------------
# SimJob
# ----------------------------------------------------------------------
class TestSimJob:
    def test_equal_cells_collapse(self):
        a = SimJob("gscore", "family", "qhd", frames=4, cores=4)
        b = SimJob("gscore", "family", "qhd", frames=4, cores=4.0, speed=1)
        assert a == b
        assert len({a, b}) == 1

    def test_make_sorts_model_kwargs(self):
        a = SimJob.make("neo", "family", "hd", frames=3, b=2, a=1)
        b = SimJob.make("neo", "family", "hd", frames=3, a=1, b=2)
        assert a == b
        assert a.kwargs == {"a": 1, "b": 2}

    def test_resolved_pins_config_frames(self):
        job = SimJob("neo", "family", "hd")
        with runner_config(RunnerConfig(frames=5)):
            assert job.resolved().frames == 5
        assert job.resolved().frames == 12  # DEFAULT_FRAMES
        pinned = SimJob("neo", "family", "hd", frames=7)
        assert pinned.resolved() is pinned

    def test_cache_payload_requires_resolved_frames(self):
        with pytest.raises(ValueError):
            SimJob("neo", "family", "hd").cache_payload()

    def test_cache_key_interops_with_simulate_system(self, tmp_path):
        # A report written by simulate_system must be a cache hit for the
        # SimJob spelling of the same cell (shared disk entries).
        cache = ResultCache(tmp_path / "cache")
        with runner_config(RunnerConfig(cache=cache)):
            simulate_system("neo", "horse", "hd", num_frames=3, speed=1.25)
        job = SimJob("neo", "horse", "hd", frames=3, speed=1.25)
        assert cache.get(*job.cache_spec()) is not None


# ----------------------------------------------------------------------
# execute_cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FakeCell:
    key: int

    def cache_spec(self):
        return "fakes", {"kind": "fake", "key": self.key}


def _eval_fake(cell: FakeCell) -> int:
    return cell.key * 10


class TestExecuteCells:
    def test_dedup_and_alignment(self):
        cells = [FakeCell(1), FakeCell(2), FakeCell(1), FakeCell(3)]
        batch = execute_cells(cells, _eval_fake, jobs=1, cache=None)
        assert batch.values == [10, 20, 10, 30]
        assert batch.requested == 4
        assert batch.unique == 3
        assert batch.deduplicated == 1
        assert batch.computed == 3
        assert batch.from_cache == [False, False, False, False]

    def test_warm_run_serves_every_cell_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = [FakeCell(1), FakeCell(2)]
        cold = execute_cells(cells, _eval_fake, jobs=1, cache=cache)
        assert cold.computed == 2
        warm = execute_cells(cells, _eval_fake, jobs=1, cache=cache)
        assert warm.computed == 0
        assert warm.hits == 2
        assert warm.values == cold.values
        assert warm.from_cache == [True, True]

    def test_parallel_matches_serial(self):
        cells = [FakeCell(i) for i in range(5)]
        serial = execute_cells(cells, _eval_fake, jobs=1, cache=None)
        parallel = execute_cells(cells, _eval_fake, jobs=3, cache=None)
        assert serial.values == parallel.values


# ----------------------------------------------------------------------
# Cross-figure dedup
# ----------------------------------------------------------------------
class TestCrossFigureDedup:
    def test_shared_cells_simulate_exactly_once(self, monkeypatch):
        # fig03's QHD column (gscore, 4 cores, 51.2 GB/s) is also fig04's
        # (bandwidth=51.2, cores=4) point: the engine must simulate each of
        # those shared cells exactly once across the two figures.
        calls: list[tuple] = []
        real = runner_mod._simulate_system_uncached

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "_simulate_system_uncached", counting)
        engine = ExperimentEngine(jobs=1, cache=None)
        run = engine.run_plans(
            [
                fig03.plan(scenes=FAST_SCENES, num_frames=3),
                fig04.plan(scenes=FAST_SCENES, num_frames=3),
            ]
        )
        # fig03: 2 scenes x 3 resolutions; fig04: 3 bw x 3 cores x 2 scenes;
        # overlap: (qhd, 4 cores, 51.2) x 2 scenes.
        assert run.cells.requested == 6 + 18
        assert run.cells.deduplicated == 2
        assert run.cells.computed == 22
        assert len(calls) == 22

    def test_dedup_across_fig15_fig16_fig18(self, monkeypatch):
        # fig16 (scene x {orin,gscore,neo} @ qhd) and fig18's gscore/neo qhd
        # cells are all contained in fig15's resolution sweep.
        calls: list[tuple] = []
        real = runner_mod._simulate_system_uncached

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "_simulate_system_uncached", counting)
        engine = ExperimentEngine(jobs=1, cache=None)
        run = engine.run_plans(
            [
                fig15.plan(scenes=FAST_SCENES, num_frames=3),
                fig16.plan(scenes=FAST_SCENES, num_frames=3),
                fig18.plan(scenes=FAST_SCENES, num_frames=3),
            ]
        )
        # fig15: 3 res x 2 scenes x 3 systems = 18 (unique)
        # fig16: 2 scenes x 3 systems = 6, all shared with fig15's qhd rows
        # fig18: 3 variants x 2 scenes = 6, gscore/neo shared (4), neo-s new (2)
        assert run.cells.requested == 18 + 6 + 6
        assert run.cells.unique == 20
        assert run.cells.deduplicated == 10
        assert len(calls) == 20

    def test_rows_match_standalone_runs(self):
        engine = ExperimentEngine(jobs=1, cache=None)
        run = engine.run_plans(
            [
                fig15.plan(scenes=FAST_SCENES, num_frames=3),
                fig16.plan(scenes=FAST_SCENES, num_frames=3),
            ]
        )
        assert run.outcomes[0].result.rows == fig15.run(scenes=FAST_SCENES, num_frames=3).rows
        assert run.outcomes[1].result.rows == fig16.run(scenes=FAST_SCENES, num_frames=3).rows


# ----------------------------------------------------------------------
# Engine registry path
# ----------------------------------------------------------------------
class TestEngineRun:
    def test_whole_result_cache_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        names = ["fig03", "table3", "table4"]
        cold = ExperimentEngine(jobs=1, frames=3, cache=cache).run(names)
        assert not cold.all_cached
        warm = ExperimentEngine(jobs=1, frames=3, cache=cache).run(names)
        assert warm.all_cached
        for c, w in zip(cold.outcomes, warm.outcomes):
            assert w.from_cache
            assert c.result.rows == w.result.rows

    def test_cell_less_experiments_through_pool(self):
        serial = ExperimentEngine(jobs=1, cache=None).run(["table3", "table4"])
        parallel = ExperimentEngine(jobs=2, cache=None).run(["table3", "table4"])
        for s, p in zip(serial.outcomes, parallel.outcomes):
            assert s.result.rows == p.result.rows
        assert serial.cells.requested == 0

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            ExperimentEngine(jobs=1, cache=None).run(["fig99"])

    def test_duplicate_names_collapse(self):
        run = ExperimentEngine(jobs=1, cache=None).run(["table3", "table3"])
        assert [o.name for o in run.outcomes] == ["table3", "table3"]
        assert run.outcomes[0].result.rows == run.outcomes[1].result.rows

    def test_same_named_plans_keep_their_own_outcomes(self):
        # Two parameterizations of the same driver share the plan name;
        # run_plans must track them by identity, not clobber by name.
        run = ExperimentEngine(jobs=1, cache=None).run_plans(
            [
                fig03.plan(scenes=("family",), num_frames=3),
                fig03.plan(scenes=("horse",), num_frames=3),
            ]
        )
        assert [r["scene"] for r in run.outcomes[0].result.rows] == ["family"] * 3
        assert [r["scene"] for r in run.outcomes[1].result.rows] == ["horse"] * 3

    def test_dispatched_experiment_reports_worker_elapsed(self):
        run = ExperimentEngine(jobs=1, cache=None).run(["fig09"])
        (outcome,) = run.outcomes
        assert not outcome.from_cache
        assert outcome.elapsed_s > 0.0

    def test_cell_cache_shared_with_simulate_system(self, tmp_path, monkeypatch):
        # Cells computed by the engine must be cache hits for direct
        # simulate_system calls (and vice versa).
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(jobs=1, frames=3, cache=cache)
        engine.run_plans([fig03.plan(scenes=("horse",), num_frames=3)])

        monkeypatch.setattr(
            runner_mod,
            "_simulate_system_uncached",
            lambda *a, **k: pytest.fail("expected a report cache hit"),
        )
        runner_mod._workload_model_cached.cache_clear()
        with runner_config(RunnerConfig(cache=cache)):
            report = simulate_system(
                "gscore", "horse", "hd", num_frames=3, cores=4, bandwidth_gbps=51.2
            )
        assert report.fps > 0


# ----------------------------------------------------------------------
# Serial vs parallel byte-identical artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_columns_union_and_to_text(self):
        result = ExperimentResult("x", "y", rows=[{"a": 1}, {"a": 2, "b": 3.5}])
        assert result.columns() == ["a", "b"]
        lines = result.to_text().splitlines()
        assert "b" in lines[1]  # header carries the late column
        assert "-" in lines[2]  # first row has no 'b' cell

    def test_json_csv_writers_deterministic(self, tmp_path):
        result = table3.run()
        a = result.write_json(tmp_path / "a.json").read_bytes()
        b = result.write_json(tmp_path / "b.json").read_bytes()
        assert a == b
        payload = json.loads(a)
        assert payload["name"] == "table3"
        assert payload["rows"] == result.rows
        assert len(payload["code_version"]) == 16
        csv_text = result.write_csv(tmp_path / "a.csv").read_text()
        assert csv_text.splitlines()[0] == ",".join(result.columns())
        assert len(csv_text.splitlines()) == len(result.rows) + 1

    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        plans = [
            fig03.plan(scenes=FAST_SCENES, num_frames=3),
            fig16.plan(scenes=FAST_SCENES, num_frames=3),
        ]
        serial = ExperimentEngine(jobs=1, cache=None).run_plans(plans)
        parallel = ExperimentEngine(jobs=2, cache=None).run_plans(plans)
        for s, p in zip(serial.outcomes, parallel.outcomes):
            s_path = s.result.write_json(tmp_path / f"serial-{s.name}.json")
            p_path = p.result.write_json(tmp_path / f"parallel-{p.name}.json")
            assert s_path.read_bytes() == p_path.read_bytes()
            s_csv = s.result.write_csv(tmp_path / f"serial-{s.name}.csv")
            p_csv = p.result.write_csv(tmp_path / f"parallel-{p.name}.csv")
            assert s_csv.read_bytes() == p_csv.read_bytes()


# ----------------------------------------------------------------------
# Golden: every registered experiment, plan path vs direct run()
# ----------------------------------------------------------------------
#: Fast parameterizations: every driver exercised end-to-end, test-sized.
GOLDEN_PARAMS = {
    "bandwidth_sweep": (bandwidth_sweep, {"num_frames": 3, "bandwidths": (25.6, 51.2)}),
    "fig03": (fig03, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig04": (fig04, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig05": (fig05, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig06": (fig06, {"scenes": ("family",), "num_frames": 3, "num_gaussians": 800}),
    "fig07": (fig07, {"scenes": ("family",), "num_frames": 3, "num_gaussians": 800}),
    "fig09": (fig09, {"length": 128, "chunk_size": 16, "iterations": 3,
                      "shuffle_distance": 12}),
    "fig10": (fig10, {"scenes": ("family",), "num_frames": 3}),
    "fig15": (fig15, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig16": (fig16, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig17": (fig17, {"num_frames": 3}),
    "fig18": (fig18, {"scenes": FAST_SCENES, "num_frames": 3}),
    "fig19": (fig19, {"num_frames": 4, "width": 128, "height": 72,
                      "num_gaussians": 600, "period": 2, "lag": 1}),
    "recovery": (recovery, {"num_frames": 10, "jump_frame": 4, "width": 128,
                            "height": 72, "num_gaussians": 600}),
    "table2": (table2, {"scenes": ("family",), "num_frames": 2, "width": 128,
                        "height": 72, "num_gaussians": 600}),
    "table3": (table3, {}),
    "table4": (table4, {}),
}


@pytest.mark.slow
class TestGoldenAllExperiments:
    def test_params_cover_every_registered_experiment(self):
        assert sorted(GOLDEN_PARAMS) == list_experiments()

    def test_all_17_row_identical_run_vs_engine(self):
        # The acceptance bar for the plan/execute refactor: for every
        # registered experiment, the declarative plan executed through the
        # engine (parallel, deduped) produces rows identical to the driver's
        # own serial run() at the same parameters.
        plans = [module.plan(**kwargs) for module, kwargs in GOLDEN_PARAMS.values()]
        engine_run = ExperimentEngine(jobs=2, cache=None).run_plans(plans)
        for (name, (module, kwargs)), outcome in zip(
            GOLDEN_PARAMS.items(), engine_run.outcomes
        ):
            direct = module.run(**kwargs)
            assert outcome.result.name == direct.name, name
            assert outcome.result.rows == direct.rows, name


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliExperiments:
    def test_list_flag_shows_descriptions(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        descriptions = experiment_descriptions()
        assert len(descriptions) == 17
        for name, description in descriptions.items():
            assert name in out
            assert description in out

    def test_only_filters_selection(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        rc = main(
            ["experiments", "table3", "fig09", "--only", "table*",
             "--cache-dir", cache_dir]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig09" not in out

    def test_only_without_match_errors(self, capsys):
        assert main(["experiments", "table3", "--only", "nope*"]) == 2
        assert "--only" in capsys.readouterr().err

    def test_out_artifacts_cold_warm_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        assert main(
            ["experiments", "table3", "table4", "--cache-dir", cache_dir,
             "--out", str(cold_dir)]
        ) == 0
        rc = main(
            ["experiments", "table3", "table4", "--cache-dir", cache_dir,
             "--out", str(warm_dir), "--require-cached"]
        )
        assert rc == 0
        capsys.readouterr()
        for name in ("table3", "table4"):
            for suffix in (".json", ".csv"):
                cold = (cold_dir / f"{name}{suffix}").read_bytes()
                warm = (warm_dir / f"{name}{suffix}").read_bytes()
                assert cold == warm

    def test_require_cached_fails_cold(self, tmp_path, capsys):
        rc = main(
            ["experiments", "table3", "--cache-dir", str(tmp_path / "cache"),
             "--require-cached"]
        )
        assert rc == 1
        assert "--require-cached" in capsys.readouterr().err

    def test_cell_stats_line(self, tmp_path, capsys):
        rc = main(
            ["experiments", "fig03", "--frames", "3", "--no-cache",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells:" in out
        assert "deduped across figures" in out
