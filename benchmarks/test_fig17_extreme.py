"""Bench: Fig. 17 — large-scale scenes and rapid camera movement."""

from repro.experiments import fig17

from conftest import run_once


def test_fig17a_large_scenes(benchmark, bench_frames):
    result = run_once(benchmark, fig17.run_large_scenes, num_frames=bench_frames)
    print("\n" + result.to_text())

    # Paper: Neo averages ~65 FPS on Mill-19 while Orin and GSCore drop
    # below ~14 and ~25 FPS.
    neo_mean = sum(r["neo"] for r in result.rows) / len(result.rows)
    assert neo_mean > 45.0
    for row in result.rows:
        assert row["neo"] > 2.0 * row["orin"]
        assert row["neo"] > 1.8 * row["gscore"]
        assert row["orin"] < 20.0
        assert row["gscore"] < 30.0


def test_fig17b_camera_speed(benchmark, bench_frames):
    result = run_once(benchmark, fig17.run_camera_speed, num_frames=bench_frames)
    print("\n" + result.to_text())

    # Paper: even at 16x camera speed Neo stays above the 60 FPS SLO;
    # reusability (and thus FPS) degrades monotonically with speed.
    fps = [row["fps"] for row in result.rows]
    assert all(f > 60.0 for f in fps)
    assert fps[0] >= fps[-1]
    churn = [row["mean_sorting_bytes"] for row in result.rows]
    assert churn[-1] > churn[0]  # faster motion -> more incoming traffic
