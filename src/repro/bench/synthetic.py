"""Deterministic synthetic workloads shared by benchmarks and CI smoke.

The pipeline benches render a reduced synthetic scene through the real
functional pipeline; the system-model bench instead synthesizes paper-scale
:class:`~repro.hw.workload.FrameWorkload` trajectories analytically (no
scene capture), isolating the simulation core being timed.
"""

from __future__ import annotations

import numpy as np

from ..hw.workload import FrameWorkload

#: Long-trajectory length for the full benches; roughly 3x the paper's
#: 60-frame sequences.
NUM_FRAMES = 200


def synthetic_workloads(num_frames: int = NUM_FRAMES, tile: int = 16) -> list[FrameWorkload]:
    """A deterministic paper-scale trajectory, synthesized analytically.

    Counts drift sinusoidally around Mill-19-like magnitudes so frame 0's
    cold start, churn terms, and early-termination clamping all exercise.
    """
    rng = np.random.default_rng(20260730)
    width, height = 2560, 1440
    num_tiles = (width // tile) * (height // tile)
    workloads = []
    for i in range(num_frames):
        pairs = 3.0e6 * (1.0 + 0.2 * np.sin(i / 9.0)) + float(rng.integers(0, 10_000))
        incoming = 0.0 if i == 0 else pairs * (0.05 + 0.02 * np.cos(i / 5.0))
        nonempty = int(num_tiles * 0.9)
        workloads.append(
            FrameWorkload(
                frame_index=i,
                width=width,
                height=height,
                tile_size=tile,
                num_gaussians=2.0e6,
                visible=1.1e6 * (1.0 + 0.1 * np.sin(i / 7.0)),
                pairs=pairs,
                incoming_pairs=incoming,
                outgoing_pairs=incoming,
                nonempty_tiles=nonempty,
                num_tiles=num_tiles,
                mean_occupancy=pairs / nonempty,
                chunks=float(int(pairs) // 256),
                mean_radius_px=24.0,
            )
        )
    return workloads
