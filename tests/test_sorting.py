"""Unit tests for the reference sorting stage and order metrics."""

import numpy as np
import pytest

from repro.pipeline.projection import project_gaussians
from repro.pipeline.sorting import (
    is_depth_sorted,
    kendall_tau_distance,
    order_quality,
    sort_tiles,
)
from repro.pipeline.tiling import TileGrid, assign_to_tiles


class TestSortTiles:
    def test_all_tiles_sorted(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        assignment = assign_to_tiles(proj, TileGrid.for_camera(camera, 16))
        sorted_tiles = sort_tiles(assignment)
        for t in range(sorted_tiles.num_tiles):
            assert is_depth_sorted(sorted_tiles.depths_for(t))

    def test_rows_ids_depths_consistent(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        assignment = assign_to_tiles(proj, TileGrid.for_camera(camera, 16))
        sorted_tiles = sort_tiles(assignment)
        for t in range(sorted_tiles.num_tiles):
            rows = sorted_tiles.rows_for(t)
            assert np.array_equal(sorted_tiles.ids_for(t), proj.ids[rows])
            assert np.array_equal(sorted_tiles.depths_for(t), proj.depths[rows])

    def test_preserves_pair_count(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        assignment = assign_to_tiles(proj, TileGrid.for_camera(camera, 16))
        assert sort_tiles(assignment).num_pairs == assignment.num_pairs

    def test_deterministic_tie_break(self):
        # Equal depths break on Gaussian ID.
        from repro.pipeline.projection import ProjectedGaussians

        n = 4
        proj = ProjectedGaussians(
            ids=np.array([7, 3, 9, 1]),
            means2d=np.full((n, 2), 8.0),
            cov2d=np.tile(np.eye(2), (n, 1, 1)),
            conic=np.tile(np.array([1.0, 0.0, 1.0]), (n, 1)),
            depths=np.ones(n),
            radii=np.full(n, 2.0),
            colors=np.full((n, 3), 0.5),
            opacities=np.full(n, 0.9),
        )
        assignment = assign_to_tiles(proj, TileGrid(width=16, height=16, tile_size=16))
        sorted_tiles = sort_tiles(assignment)
        assert list(sorted_tiles.ids_for(0)) == [1, 3, 7, 9]


class TestOrderMetrics:
    def test_is_depth_sorted(self):
        assert is_depth_sorted(np.array([1.0, 2.0, 2.0, 3.0]))
        assert not is_depth_sorted(np.array([1.0, 0.5]))
        assert is_depth_sorted(np.array([1.0]))
        assert is_depth_sorted(np.array([1.0, 0.99]), tolerance=0.1)

    def test_order_quality(self):
        assert order_quality(np.array([1.0, 2.0, 3.0])) == 1.0
        assert order_quality(np.array([3.0, 2.0, 1.0])) == 0.0
        assert order_quality(np.array([1.0, 3.0, 2.0, 4.0])) == pytest.approx(2 / 3)
        assert order_quality(np.array([5.0])) == 1.0

    def test_kendall_identical(self):
        order = np.array([4, 2, 9, 1])
        assert kendall_tau_distance(order, order) == 0.0

    def test_kendall_reversed(self):
        order = np.arange(10)
        assert kendall_tau_distance(order, order[::-1]) == 1.0

    def test_kendall_single_swap(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([1, 0, 2, 3])
        assert kendall_tau_distance(a, b) == pytest.approx(1 / 6)

    def test_kendall_rejects_different_sets(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(np.array([1, 2]), np.array([1, 3]))

    def test_kendall_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(np.array([1, 2]), np.array([1, 2, 3]))

    def test_kendall_matches_bruteforce(self, rng):
        for _ in range(5):
            n = 12
            a = rng.permutation(n)
            b = rng.permutation(n)
            pos_b = {v: i for i, v in enumerate(b)}
            seq = [pos_b[v] for v in a]
            brute = sum(
                1
                for i in range(n)
                for j in range(i + 1, n)
                if seq[i] > seq[j]
            )
            expected = brute / (n * (n - 1) / 2)
            assert kendall_tau_distance(a, b) == pytest.approx(expected)
