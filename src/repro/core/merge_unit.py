"""Merge Sort Unit+ (MSU+) model.

The MSU+ is the second half of Neo's Sorting Core (paper section 5.3).  It
merges two sorted streams one element per cycle and, *during the same merge
pass*, (a) filters out entries whose valid bit was cleared by the previous
frame's rasterization (lazy deletion) and (b) admits newly incoming entries
(insertion) — avoiding the entry-shifting cost an eager delete would incur.

Functionally this is a k-way capable two-input merge with invalid-entry
filters on both inputs (Figure 12's "Invalid Bit Filter" blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MergeStats:
    """Work counters for MSU+ activity.

    Attributes
    ----------
    merges:
        Number of merge passes performed.
    elements_in:
        Total elements consumed across both inputs (one per cycle each).
    elements_out:
        Elements emitted (invalid entries are consumed but not emitted).
    invalid_dropped:
        Entries removed by the invalid-bit filter.
    """

    merges: int = 0
    elements_in: int = 0
    elements_out: int = 0
    invalid_dropped: int = 0

    @property
    def cycles(self) -> int:
        """Hardware cycles: the unit retires one input element per cycle."""
        return self.elements_in


def merge_sorted(
    keys_a: np.ndarray,
    values_a: np.ndarray,
    keys_b: np.ndarray,
    values_b: np.ndarray,
    valid_a: np.ndarray | None = None,
    valid_b: np.ndarray | None = None,
    stats: MergeStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted (key, value) streams, dropping invalid entries.

    Parameters
    ----------
    keys_a, keys_b:
        Non-decreasing key arrays (depths).
    values_a, values_b:
        Payloads (Gaussian IDs) aligned with the keys.
    valid_a, valid_b:
        Optional boolean masks; ``False`` entries are filtered out while the
        streams drain, mirroring the hardware's invalid-bit filters.

    Returns
    -------
    ``(keys, values)`` of the merged, filtered output.
    """
    keys_a = np.asarray(keys_a, dtype=np.float64)
    keys_b = np.asarray(keys_b, dtype=np.float64)
    values_a = np.asarray(values_a)
    values_b = np.asarray(values_b)
    if keys_a.shape != values_a.shape or keys_b.shape != values_b.shape:
        raise ValueError("keys and values must align")

    na, nb = keys_a.shape[0], keys_b.shape[0]
    if stats is not None:
        stats.merges += 1
        stats.elements_in += na + nb

    if valid_a is not None:
        valid_a = np.asarray(valid_a, dtype=bool)
        if valid_a.shape[0] != na:
            raise ValueError("valid_a must align with keys_a")
        if stats is not None:
            stats.invalid_dropped += int(np.count_nonzero(~valid_a))
        keys_a, values_a = keys_a[valid_a], values_a[valid_a]
    if valid_b is not None:
        valid_b = np.asarray(valid_b, dtype=bool)
        if valid_b.shape[0] != nb:
            raise ValueError("valid_b must align with keys_b")
        if stats is not None:
            stats.invalid_dropped += int(np.count_nonzero(~valid_b))
        keys_b, values_b = keys_b[valid_b], values_b[valid_b]

    # Stable two-way merge (a-side wins ties), vectorized with searchsorted:
    # position of each b element among a's elements, then scatter.
    out_n = keys_a.shape[0] + keys_b.shape[0]
    out_keys = np.empty(out_n, dtype=np.float64)
    out_vals = np.empty(out_n, dtype=values_a.dtype if values_a.size else values_b.dtype)
    insert_at = np.searchsorted(keys_a, keys_b, side="right")
    b_positions = insert_at + np.arange(keys_b.shape[0])
    mask = np.ones(out_n, dtype=bool)
    mask[b_positions] = False
    out_keys[mask] = keys_a
    out_vals[mask] = values_a
    out_keys[b_positions] = keys_b
    out_vals[b_positions] = values_b

    if stats is not None:
        stats.elements_out += out_n
    return out_keys, out_vals


def merge_runs(
    keys: np.ndarray,
    values: np.ndarray,
    runs: list[tuple[int, int]],
    stats: MergeStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge adjacent sorted runs pairwise until one run remains.

    Models the MSU+ tree-merging of the BSU's 16-entry sorted sub-chunks into
    a fully sorted 256-entry chunk (log2(16) = 4 merge levels).
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values)
    segments = [(keys[s:e], values[s:e]) for s, e in runs]
    if not segments:
        return keys[:0], values[:0]
    while len(segments) > 1:
        merged: list[tuple[np.ndarray, np.ndarray]] = []
        for i in range(0, len(segments) - 1, 2):
            ka, va = segments[i]
            kb, vb = segments[i + 1]
            merged.append(merge_sorted(ka, va, kb, vb, stats=stats))
        if len(segments) % 2:
            merged.append(segments[-1])
        segments = merged
    return segments[0]
