"""Large-scene flythrough: the Mill-19 scenario of Fig. 17(a).

Renders an aerial flythrough of the synthetic "building" scene functionally
(small scale), measures how much of each tile's Gaussian table survives
between frames, and projects end-to-end performance at paper scale for all
three systems.

Run:
    python examples/large_scene_flythrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NeoSortStrategy
from repro.hw import WorkloadModel, get_system
from repro.metrics import sequence_similarity
from repro.pipeline import Renderer
from repro.scene import default_trajectory, load_scene


def main() -> None:
    scene_name = "building"
    print(f"Functional flythrough of '{scene_name}' (reduced scale)...")
    scene = load_scene(scene_name, num_gaussians=3000)
    cameras = default_trajectory(scene_name, num_frames=8, width=256, height=144)

    neo = NeoSortStrategy()
    records = Renderer(scene, strategy=neo).render_sequence(cameras)
    stats = sequence_similarity([r.sorted_tiles for r in records])
    print(
        f"  tiles retaining >=78% of Gaussians between frames: "
        f"{stats.fraction_of_tiles_retaining(0.78):.1%}"
    )
    print(
        f"  mean reuse fraction across frames: "
        f"{np.mean([fs.reuse_fraction for fs in neo.frame_stats[1:]]):.1%}"
    )

    print("\nPaper-scale projection (QHD, 51.2 GB/s edge memory):")
    wm = WorkloadModel.from_scene(scene_name, num_frames=10)
    for label in ("orin", "gscore", "neo"):
        # Registry-built backends bring their own tile size (64 px for Neo,
        # 16 px for the GPU and GSCore).
        model = get_system(label).build()
        workloads = wm.sequence_workloads("qhd", model.tile_size)
        report = model.simulate(workloads, scene=scene_name)
        print(
            f"  {label:>7}: {report.fps:6.1f} FPS, "
            f"{report.traffic_gb_for(60):6.1f} GB / 60 frames"
        )
    print(
        "\nEven with millions of Gaussians in view, temporal reuse holds on\n"
        "aerial paths, so Neo alone stays near the real-time threshold\n"
        "(Fig. 17a)."
    )


if __name__ == "__main__":
    main()
