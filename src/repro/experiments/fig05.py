"""Fig. 5 — DRAM traffic breakdown for GPU-based 3DGS and GSCore.

Traffic to render 60 frames at HD/FHD/QHD, broken down by pipeline stage.
Key claim: sorting dominates — up to ~91 % of GPU traffic and ~69 % of
GSCore traffic at QHD.
"""

from __future__ import annotations

from ..scene.datasets import TANKS_AND_TEMPLES
from .runner import (
    PAPER_TRAFFIC_FRAMES,
    ExperimentResult,
    simulate_system,
)

RESOLUTIONS = ("hd", "fhd", "qhd")
SYSTEMS = ("orin", "gscore")


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """Stage-level traffic (GB / 60 frames), averaged over scenes."""
    result = ExperimentResult(
        name="fig05",
        description="DRAM traffic breakdown (GB / 60 frames): GPU vs GSCore",
    )
    for system in SYSTEMS:
        for resolution in RESOLUTIONS:
            feature = sorting = raster = 0.0
            for scene in scenes:
                report = simulate_system(system, scene, resolution, num_frames=num_frames)
                scale = PAPER_TRAFFIC_FRAMES / report.num_frames / 1e9
                total = report.total_traffic
                feature += total.feature_extraction * scale
                sorting += total.sorting * scale
                raster += total.rasterization * scale
            n = len(scenes)
            feature, sorting, raster = feature / n, sorting / n, raster / n
            total_gb = feature + sorting + raster
            result.rows.append(
                {
                    "system": system,
                    "resolution": resolution,
                    "feature_gb": feature,
                    "sorting_gb": sorting,
                    "raster_gb": raster,
                    "total_gb": total_gb,
                    "sorting_share": sorting / total_gb if total_gb else 0.0,
                }
            )
    return result
