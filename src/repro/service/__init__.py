"""Long-running multi-tenant simulation service.

``repro serve`` turns the experiment engine into a server: concurrent
clients submit :class:`~repro.experiments.engine.SimJob` cells over a
newline-delimited JSON protocol; identical in-flight cells coalesce into
one execution, a bounded queue applies explicit backpressure, a persistent
worker pool keeps scenes warm, and results land in per-tenant
:class:`~repro.runtime.cache.ResultCache` namespaces.  ``repro loadgen``
replays seeded mixed traffic against it and writes the schema'd
``BENCH_service.json`` artifact the service-smoke CI job gates on.
"""

from .loadgen import (
    SERVICE_BENCH_SCHEMA,
    LoadGenConfig,
    LoadGenResult,
    build_traffic,
    run_loadgen,
    summarize,
    write_service_bench,
)
from .server import ServiceConfig, ServiceMetrics, SimulationServer, serve

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "LoadGenConfig",
    "LoadGenResult",
    "ServiceConfig",
    "ServiceMetrics",
    "SimulationServer",
    "build_traffic",
    "run_loadgen",
    "serve",
    "summarize",
    "write_service_bench",
]
