"""Unit tests for image-quality metrics."""

import numpy as np
import pytest

from repro.metrics.image import lpips_proxy, mse, psnr, quality_report, ssim, to_luminance


@pytest.fixture()
def image(rng):
    return rng.random((36, 48, 3))


class TestPsnr:
    def test_identical_capped(self, image):
        assert psnr(image, image) == 99.0

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_monotone_in_noise(self, image, rng):
        small = np.clip(image + rng.normal(0, 0.01, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.1, image.shape), 0, 1)
        assert psnr(image, small) > psnr(image, large)

    def test_shape_mismatch(self, image):
        with pytest.raises(ValueError):
            psnr(image, image[:10])

    def test_mse(self):
        assert mse(np.zeros((4, 4)), np.ones((4, 4))) == 1.0


class TestLuminance:
    def test_weights_sum_to_one(self):
        white = np.ones((2, 2, 3))
        assert np.allclose(to_luminance(white), 1.0)

    def test_grayscale_passthrough(self):
        gray = np.random.default_rng(0).random((4, 4))
        assert np.array_equal(to_luminance(gray), gray)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            to_luminance(np.zeros((2, 2, 4)))


class TestSsim:
    def test_identical_is_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_decreases_with_noise(self, image, rng):
        noisy = np.clip(image + rng.normal(0, 0.2, image.shape), 0, 1)
        assert ssim(image, noisy) < 0.95

    def test_symmetric(self, image, rng):
        other = np.clip(image + rng.normal(0, 0.05, image.shape), 0, 1)
        assert ssim(image, other) == pytest.approx(ssim(other, image))


class TestLpipsProxy:
    def test_identical_is_zero(self, image):
        assert lpips_proxy(image, image) == 0.0

    def test_monotone_in_structural_noise(self, image, rng):
        small = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.2, image.shape), 0, 1)
        assert lpips_proxy(image, small) < lpips_proxy(image, large)

    def test_sensitive_to_popping_artifacts(self, rng):
        # A localized patch swap (the artifact bad sorting causes) must
        # register even though global statistics barely change.
        base = rng.random((64, 64, 3)) * 0.2 + 0.4
        popped = base.copy()
        popped[10:20, 10:20] = base[30:40, 30:40]
        assert lpips_proxy(base, popped) > 0.0

    def test_small_images(self):
        a = np.zeros((4, 4, 3))
        assert lpips_proxy(a, a) == 0.0


class TestQualityReport:
    def test_bundle(self, image):
        report = quality_report(image, image)
        assert report["psnr"] == 99.0
        assert report["ssim"] == pytest.approx(1.0)
        assert report["lpips"] == 0.0
