"""The named benchmarks behind ``repro bench``.

Every bench times a vectorized path against its frozen scalar reference on
the *same* inputs and checks bit-identity of the outputs while doing so —
a speedup with diverging results is a failure, not a win.  Floors are set
well below typical measurements so CI noise cannot flake the gate; the
recorded ``speedup`` is the number that tracks the perf trajectory.
"""

from __future__ import annotations

import time

import numpy as np

from ..pipeline import reference as pipeline_ref
from ..pipeline.rasterizer import rasterize, rasterize_tiled
from ..pipeline.renderer import Renderer, aggregate_timings
from ..pipeline.sorting import kendall_tau_distance, sort_tiles
from ..pipeline.tiling import TileGrid, assign_to_tiles
from ..pipeline.projection import project_gaussians
from ..pipeline.culling import frustum_cull
from ..scene.datasets import default_trajectory, load_scene
from .core import BenchRecord, register_bench
from .synthetic import NUM_FRAMES, synthetic_workloads

#: Scene preset every pipeline bench renders (deterministic synthetic scene).
BENCH_SCENE = "family"


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` calls, plus the last value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _best_of_scaled(fn, repeats: int = 3, inner: int = 20) -> tuple[float, object]:
    """Per-call minimum timed over ``inner`` back-to-back calls.

    For sub-millisecond paths a single call sits inside timer noise, which
    makes very large speedup ratios (and the CI trend gate built on them)
    flake; widening the timed window to ``inner`` calls stabilizes them.
    """
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            value = fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best, value


def _prepared_frames(num_gaussians: int, num_frames: int, width: int, height: int):
    """Render-ready (projected, grid, assignment) tuples for a trajectory."""
    scene = load_scene(BENCH_SCENE, num_gaussians=num_gaussians)
    cameras = default_trajectory(
        BENCH_SCENE, num_frames=num_frames, width=width, height=height
    )
    frames = []
    for camera in cameras:
        culled = frustum_cull(scene, camera)
        projected = project_gaussians(scene, camera, culled.visible_ids)
        grid = TileGrid.for_camera(camera, 16)
        frames.append((projected, grid, assign_to_tiles(projected, grid)))
    return scene, cameras, frames


def reports_identical(got, want) -> bool:
    """Bitwise comparison of two SequenceReports, frame by frame.

    Shared with ``benchmarks/test_vectorized_core.py`` so the bench gate and
    the pytest gate can never drift on what "identical" means.
    """
    return all(
        g.traffic.feature_extraction == s.traffic.feature_extraction
        and g.traffic.sorting == s.traffic.sorting
        and g.traffic.rasterization == s.traffic.rasterization
        and g.memory_time_s == s.memory_time_s
        and g.compute_time_s == s.compute_time_s
        for g, s in zip(got.frames, want.frames)
    )


def _raster_results_equal(got, want) -> bool:
    """Bitwise comparison of two RasterResults (image, valid bits, stats)."""
    if not np.array_equal(got.image, want.image):
        return False
    if got.valid_bits.keys() != want.valid_bits.keys():
        return False
    for tile, bits in got.valid_bits.items():
        if not np.array_equal(bits, want.valid_bits[tile]):
            return False
    return got.stats == want.stats


@register_bench(
    "raster_chunked",
    "chunked per-tile-loop rasterizer vs the scalar per-Gaussian blending loop",
)
def bench_raster_chunked(quick: bool) -> BenchRecord:
    gaussians, frames_n, w, h, repeats = (
        (2000, 1, 320, 180, 2) if quick else (6000, 3, 480, 270, 3)
    )
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)
    sorted_frames = [(p, g, sort_tiles(a)) for p, g, a in frames]

    base_s, base_out = _best_of(
        lambda: [pipeline_ref.rasterize(st, p, g) for p, g, st in sorted_frames], repeats
    )
    opt_s, opt_out = _best_of(
        lambda: [rasterize_tiled(st, p, g) for p, g, st in sorted_frames], repeats
    )
    identical = all(_raster_results_equal(a, b) for a, b in zip(opt_out, base_out))
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.3,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "raster_bucketed",
    "occupancy-bucketed whole-frame blending vs the chunked per-tile loop",
)
def bench_raster_bucketed(quick: bool) -> BenchRecord:
    # Same size in both modes: bucketing amortizes per-tile launch overhead,
    # so a shrunken quick frame (fewer, emptier tiles) would sit far from
    # the committed full-mode ratio and trip the CI trend gate.
    gaussians, frames_n, w, h = 6000, 3, 480, 270
    repeats = 2 if quick else 3
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)
    sorted_frames = [(p, g, sort_tiles(a)) for p, g, a in frames]

    base_s, base_out = _best_of(
        lambda: [rasterize_tiled(st, p, g) for p, g, st in sorted_frames], repeats
    )
    opt_s, opt_out = _best_of(
        lambda: [rasterize(st, p, g) for p, g, st in sorted_frames], repeats
    )
    # The gate is bit-identity against the frozen *scalar* pin, not merely
    # against the chunked loop (itself pinned elsewhere).
    ref_out = [pipeline_ref.rasterize(st, p, g) for p, g, st in sorted_frames]
    identical = all(
        _raster_results_equal(a, b) for a, b in zip(opt_out, ref_out)
    ) and all(_raster_results_equal(a, b) for a, b in zip(base_out, ref_out))
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.6,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "sort_batched",
    "single concatenated lexsort vs the per-tile sorting loop",
)
def bench_sort_batched(quick: bool) -> BenchRecord:
    # The sort itself is milliseconds either way; a sub-millisecond quick
    # workload would be noise-dominated, so quick keeps the full pair table
    # (the scene prep it pays for is a second or two) and trims repeats.
    gaussians, frames_n, w, h = 6000, 3, 480, 270
    repeats = 5 if quick else 7
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)

    base_s, base_out = _best_of(
        lambda: [pipeline_ref.sort_tiles(a) for _, _, a in frames], repeats
    )
    opt_s, opt_out = _best_of(lambda: [sort_tiles(a) for _, _, a in frames], repeats)
    identical = all(
        np.array_equal(x.stream.offsets, y.stream.offsets)
        and np.array_equal(x.stream.values, y.stream.values)
        and np.array_equal(x.ids, y.ids)
        and np.array_equal(x.depths, y.depths)
        for x, y in zip(opt_out, base_out)
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.1,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "order_metrics",
    "argsort-rank Kendall-tau distance vs the rank-dict + Python merge sort",
)
def bench_order_metrics(quick: bool) -> BenchRecord:
    # Same size in both modes: the argsort path's speedup grows with the
    # table length, so a smaller quick workload would sit far from the
    # committed full-mode baseline and trip the CI trend gate; the scalar
    # merge sort only takes ~40 ms at this size.
    n = 6000
    rng = np.random.default_rng(20260730)
    ids = rng.choice(10**7, size=n, replace=False)
    order_a = rng.permutation(ids)
    order_b = rng.permutation(ids)

    base_s, base_val = _best_of(
        lambda: pipeline_ref.kendall_tau_distance(order_a, order_b), 5
    )
    opt_s, opt_val = _best_of_scaled(
        lambda: kendall_tau_distance(order_a, order_b), 5, 10
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=2.0,
        identical=opt_val == base_val,
        detail={"table_length": n},
    )


def _reference_render_sequence(scene, cameras):
    """Render a trajectory through the frozen scalar sort + raster stages."""
    results = []
    for camera in cameras:
        culled = frustum_cull(scene, camera)
        projected = project_gaussians(scene, camera, culled.visible_ids)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(projected, grid)
        sorted_tiles = pipeline_ref.sort_tiles(assignment)
        results.append(pipeline_ref.rasterize(sorted_tiles, projected, grid))
    return results


@register_bench(
    "render_sequence",
    "end-to-end vectorized pipeline vs the scalar reference on a long trajectory",
)
def bench_render_sequence(quick: bool) -> BenchRecord:
    gaussians, frames_n, w, h = (4000, 8, 320, 180) if quick else (4000, NUM_FRAMES, 320, 180)
    scene = load_scene(BENCH_SCENE, num_gaussians=gaussians)
    cameras = default_trajectory(BENCH_SCENE, num_frames=frames_n, width=w, height=h)

    start = time.perf_counter()
    base_out = _reference_render_sequence(scene, cameras)
    base_s = time.perf_counter() - start

    renderer = Renderer(scene)
    start = time.perf_counter()
    records = renderer.render_sequence(cameras)
    opt_s = time.perf_counter() - start

    identical = all(
        _raster_results_equal(rec.raster, ref_res)
        for rec, ref_res in zip(records, base_out)
    )
    stage_totals = aggregate_timings(records)
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.5,
        identical=identical,
        detail={
            "gaussians": gaussians,
            "frames": frames_n,
            "resolution": [w, h],
            "stage_seconds": stage_totals.as_dict(),
            "baseline_ms_per_frame": base_s * 1e3 / frames_n,
            "optimized_ms_per_frame": opt_s * 1e3 / frames_n,
        },
    )


@register_bench(
    "hw_system",
    "vectorized system-model sequence core vs the per-frame scalar loop (neo)",
)
def bench_hw_system(quick: bool) -> BenchRecord:
    from ..experiments.runner import build_system_model
    from ..hw import reference as hw_ref

    # The simulation core is sub-millisecond either way; the full 200-frame
    # trajectory is what makes the measurement stable, so quick keeps it.
    num_frames = NUM_FRAMES
    model, tile = build_system_model("neo")
    workloads = synthetic_workloads(num_frames, tile)

    base_s, base_report = _best_of(lambda: hw_ref.scalar_simulate(model, workloads), 3)
    opt_s, opt_report = _best_of(lambda: model.simulate(workloads), 3)
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.3,
        identical=reports_identical(opt_report, base_report),
        detail={"system": "neo", "frames": num_frames},
    )


@register_bench(
    "order_differences",
    "segmented intersect + ECDF order differences vs the per-tile interp loop",
)
def bench_order_differences(quick: bool) -> BenchRecord:
    from ..hw import reference as hw_ref
    from ..hw.workload import WorkloadModel

    num_frames, tile_size = (3, 64) if quick else (6, 64)
    wm = WorkloadModel.from_scene(BENCH_SCENE, num_frames=num_frames)
    resolution = "qhd"
    width, height = wm._resolve(resolution)
    frames = range(1, num_frames)
    # Prebuild both sides' inputs so the timing covers the query alone — the
    # historical ``_pair_cache`` amortized pair building the same way the
    # stream cache does now.
    pair_cache = {
        f: hw_ref._scalar_frame_pairs(wm, f, width, height, tile_size)
        for f in range(num_frames)
    }
    for f in range(num_frames):
        wm.frame_stream(f, resolution, tile_size)

    base_s, base_out = _best_of(
        lambda: [
            hw_ref.scalar_order_differences_pairs(
                pair_cache[f - 1],
                pair_cache[f],
                wm.frames[f - 1],
                wm.frames[f],
                wm.count_scale,
            )
            for f in frames
        ],
        3,
    )
    opt_s, opt_out = _best_of(
        lambda: [wm.order_differences(f, resolution, tile_size) for f in frames], 3
    )
    identical = all(np.array_equal(a, b) for a, b in zip(opt_out, base_out))
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=2.0,
        identical=identical,
        detail={"resolution": resolution, "tile": tile_size, "frames": num_frames},
    )


@register_bench(
    "similarity",
    "segmented frame similarity vs the frozen per-tile intersect loop",
)
def bench_similarity(quick: bool) -> BenchRecord:
    from ..metrics import reference as metrics_ref
    from ..metrics.similarity import frame_similarity

    gaussians, frames_n, w, h = (2000, 2, 320, 180) if quick else (6000, 4, 480, 270)
    _, _, frames = _prepared_frames(gaussians, frames_n, w, h)
    sorted_frames = [sort_tiles(a) for _, _, a in frames]
    frame_pairs = list(zip(sorted_frames, sorted_frames[1:]))

    base_s, base_out = _best_of(
        lambda: [metrics_ref.frame_similarity(p, c) for p, c in frame_pairs], 3
    )
    opt_s, opt_out = _best_of(
        lambda: [frame_similarity(p, c) for p, c in frame_pairs], 3
    )
    identical = all(
        np.array_equal(a.shared_fractions, b.shared_fractions)
        and np.array_equal(a.order_differences, b.order_differences)
        for a, b in zip(opt_out, base_out)
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.3,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "resolution": [w, h]},
    )


@register_bench(
    "raster_engine",
    "array ITU/SCU pipeline recurrence vs the per-tile timeline loop",
)
def bench_raster_engine(quick: bool) -> BenchRecord:
    from ..hw import reference as hw_ref
    from ..hw.raster_engine import RasterEngineSim

    # Same size in both modes: the speedup is scale-dependent (the
    # vectorized path is near-constant time), so a smaller quick workload
    # would sit far from the committed full-mode baseline and trip the CI
    # trend gate; even the scalar loop only takes ~200 ms at this size.
    tiles = 8000
    rng = np.random.default_rng(20260807)
    gaussians = rng.integers(0, 1200, tiles)
    gaussians[rng.random(tiles) < 0.2] = 0
    hits = rng.integers(0, 20000, tiles)
    gl, hl = gaussians.tolist(), hits.tolist()
    sim = RasterEngineSim()

    base_s, base_out = _best_of(
        lambda: hw_ref.scalar_raster_engine_frame(sim, gl, hl), 3
    )
    opt_s, opt_out = _best_of_scaled(lambda: sim.simulate_frame(gl, hl), 3, 20)
    identical = (
        opt_out.total_cycles == base_out.total_cycles
        and opt_out.tiles == base_out.tiles
        and opt_out.scu_cycles == base_out.scu_cycles
        and opt_out.itu_cycles == base_out.itu_cycles
        and np.array_equal(opt_out.tile_total_cycles, base_out.tile_total_cycles)
        and np.array_equal(opt_out.tile_scu_stall_cycles, base_out.tile_scu_stall_cycles)
        and np.array_equal(opt_out.tile_itu_idle_cycles, base_out.tile_itu_idle_cycles)
        and opt_out.mean_pipeline_efficiency == base_out.mean_pipeline_efficiency
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.5,
        identical=identical,
        detail={"tiles": tiles},
    )


@register_bench(
    "sorting_engine",
    "batched chunk/transfer tables + int event loop vs the per-job loop",
)
def bench_sorting_engine(quick: bool) -> BenchRecord:
    from ..hw import reference as hw_ref
    from ..hw.sorting_engine import SortingEngineSim

    tiles = 1500 if quick else 6000
    rng = np.random.default_rng(20260807)
    occ = rng.integers(0, 1500, tiles)
    occ[rng.random(tiles) < 0.2] = 0
    sim = SortingEngineSim()

    base_s, base_out = _best_of(
        lambda: hw_ref.scalar_sorting_engine_simulate(
            sim, hw_ref.scalar_jobs_from_occupancy(occ, sim.config.chunk_size)
        ),
        3,
    )
    opt_s, opt_out = _best_of(lambda: sim.simulate_frame(occ), 3)
    identical = (
        opt_out.total_cycles == base_out.total_cycles
        and opt_out.compute_cycles == base_out.compute_cycles
        and opt_out.dram_busy_cycles == base_out.dram_busy_cycles
        and opt_out.chunks == base_out.chunks
        and opt_out.entries == base_out.entries
        and all(
            a.busy_cycles == b.busy_cycles
            and a.chunks == b.chunks
            and a.finish_cycle == b.finish_cycle
            for a, b in zip(opt_out.cores, base_out.cores)
        )
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.1,
        identical=identical,
        detail={"tiles": tiles},
    )


def _sim(job):
    """Module-level evaluate for execute_cells (workers pickle the callable)."""
    return job.simulate()


@register_bench(
    "batched_rollout",
    "one stacked multi-rollout pass over a bandwidth sweep vs one sim per cell",
)
def bench_batched_rollout(quick: bool) -> BenchRecord:
    from ..experiments.engine import SimJob, execute_cells

    # The speedup scales with cells x frames (one stacked pass amortizes the
    # per-cell capture), so a shrunken quick grid would report a third of the
    # full-mode ratio and flake the trend gate; the full grid costs ~1.5 s,
    # so quick keeps it.
    cells_n, frames_n = 24, 12
    bandwidths = np.linspace(25.6, 204.8, cells_n)
    cells = [
        SimJob.make(
            "neo", BENCH_SCENE, "qhd", frames=frames_n, bandwidth_gbps=float(b)
        ).resolved()
        for b in bandwidths
    ]
    # Warm the lru-cached workload model so both sides time simulation, not
    # the shared one-off scene capture.
    _sim(cells[0])

    base_s, base_batch = _best_of(
        lambda: execute_cells(cells, _sim, cache=None), 3
    )
    opt_s, opt_batch = _best_of(
        lambda: execute_cells(cells, _sim, cache=None, batched=True), 3
    )
    rollout = opt_batch.rollout
    identical = rollout is not None and rollout.fallback == 0 and all(
        reports_identical(got, want)
        for got, want in zip(opt_batch.values, base_batch.values)
    )
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.2,
        identical=identical,
        detail={"system": "neo", "cells": cells_n, "frames": frames_n},
    )


@register_bench(
    "raster_sparse",
    "flat bbox-gather blending vs the scalar loop on sparse 64 px tiles",
)
def bench_raster_sparse(quick: bool) -> BenchRecord:
    gaussians, frames_n, w, h, repeats = (
        (2000, 1, 320, 180, 2) if quick else (6000, 2, 480, 270, 3)
    )
    # 64 px tiles with small splats: mean bbox coverage sits far below
    # CHUNKED_MIN_COVERAGE, so rasterize takes the sparse gather path.
    scene = load_scene(BENCH_SCENE, num_gaussians=gaussians)
    cameras = default_trajectory(
        BENCH_SCENE, num_frames=frames_n, width=w, height=h
    )
    frames = []
    for camera in cameras:
        culled = frustum_cull(scene, camera)
        projected = project_gaussians(scene, camera, culled.visible_ids)
        grid = TileGrid.for_camera(camera, 64)
        frames.append((projected, grid, sort_tiles(assign_to_tiles(projected, grid))))

    base_s, base_out = _best_of(
        lambda: [pipeline_ref.rasterize(st, p, g) for p, g, st in frames], repeats
    )
    opt_s, opt_out = _best_of(
        lambda: [rasterize(st, p, g) for p, g, st in frames], repeats
    )
    identical = all(_raster_results_equal(a, b) for a, b in zip(opt_out, base_out))
    return BenchRecord(
        quick=quick,
        baseline_ms=base_s * 1e3,
        optimized_ms=opt_s * 1e3,
        speedup=base_s / opt_s if opt_s else float("inf"),
        floor=1.15,
        identical=identical,
        detail={"gaussians": gaussians, "frames": frames_n, "tile": 64},
    )
