"""Bench: Table 4 — Neo component-level area/power breakdown."""

import pytest

from repro.experiments import table4

from conftest import run_once


def test_table4_breakdown(benchmark):
    result = run_once(benchmark, table4.run)
    print("\n" + result.to_text())

    rows = {r["component"]: r for r in result.rows}
    # Paper Table 4 engine roll-ups.
    assert rows["[Preprocessing Engine]"]["power_mw"] == pytest.approx(194.9, abs=1.0)
    assert rows["[Sorting Engine]"]["area_mm2"] == pytest.approx(0.053, abs=0.002)
    assert rows["[Rasterization Engine]"]["power_mw"] == pytest.approx(443.9, abs=2.0)
    assert rows["Total"]["area_mm2"] == pytest.approx(0.387, abs=0.005)

    # Neo's added hardware (MSU+ and ITUs) costs ~9% of area and power.
    share = table4.added_hardware_share()
    print("added hardware share:", share)
    assert share["area_share"] == pytest.approx(0.0904, abs=0.01)
    assert share["power_share"] == pytest.approx(0.0891, abs=0.01)
