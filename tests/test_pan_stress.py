"""Stress test: panning, the hardest motion for reuse-and-update sorting.

A pure pan changes the visible tile set quickly while depths barely move —
the opposite regime from the orbit captures.  It stresses insertion and
lazy deletion (the MSU+ path) rather than reordering; Neo must stay correct
and keep churn bounded.
"""

import numpy as np
import pytest

from repro.core import NeoSortStrategy
from repro.metrics import psnr
from repro.pipeline import Renderer
from repro.scene import TrajectoryConfig, load_scene, pan_trajectory


@pytest.fixture(scope="module")
def pan_run():
    scene = load_scene("playground", num_gaussians=1200)
    config = TrajectoryConfig(num_frames=8, width=192, height=108)
    cameras = pan_trajectory(
        eye=np.array([8.0, 1.5, 0.0]),
        initial_target=np.zeros(3),
        config=config,
        degrees_per_frame=2.0,
    )
    neo = NeoSortStrategy()
    records = Renderer(scene, strategy=neo).render_sequence(cameras)
    reference = Renderer(scene).render_sequence(cameras)
    return neo, records, reference


class TestPanStress:
    def test_quality_holds_under_pan(self, pan_run):
        _, records, reference = pan_run
        for ref, rec in zip(reference[1:], records[1:]):
            assert psnr(ref.image, rec.image) > 40.0

    def test_churn_dominated_by_membership_not_reordering(self, pan_run):
        neo, _, _ = pan_run
        # Panning moves tiles across the screen: per-frame incoming counts
        # exceed the orbit regime but the machinery keeps up.
        incoming = [fs.incoming_entries for fs in neo.frame_stats[2:]]
        deleted = [fs.deleted_entries for fs in neo.frame_stats[2:]]
        assert max(incoming) > 0
        assert max(deleted) > 0
        # Insertion and deletion roughly balance in steady state (the view
        # gains about as many pairs as it loses each frame).
        assert np.mean(incoming) == pytest.approx(np.mean(deleted), rel=0.8)

    def test_tables_never_accumulate_garbage(self, pan_run):
        neo, records, _ = pan_run
        total_table = sum(len(t) for t in neo.tables.values())
        current_pairs = records[-1].stats.num_pairs
        # Lazy deletion lags one frame, so the tables may exceed the live
        # pair count slightly, but must not grow unboundedly.
        assert total_table < 1.5 * current_pairs + 100
