"""Command-line interface: regenerate paper artifacts and render scenes.

Usage::

    repro list                            # available experiments/scenes
    repro run fig15                       # regenerate one figure/table
    repro experiments --list              # experiment ids + descriptions
    repro experiments --all --jobs 4      # engine: cell dedup + parallel fan-out
    repro experiments --all --only 'fig1*' --out out/   # subset + artifacts
    repro experiments fig03 --no-cache    # force recomputation
    repro sweep list                      # predefined scenario sweeps
    repro sweep run --spec motion_stress --jobs 4 --out out/
    repro sweep report out/motion_stress.json
    repro cache info                      # cache location and per-namespace size
    repro cache clear                     # drop every cached artifact
    repro cache clear --namespace tenants/acme   # one tenant's rows only
    repro serve --port 7341 --workers 4   # multi-tenant simulation service
    repro loadgen --port 7341 --verify --out BENCH_service.json
    repro bench --list                    # named performance benchmarks
    repro bench --quick --out BENCH_pipeline.json   # CI identity+floor gate
    repro render family out.ppm           # render one frame to a PPM
    repro simulate neo family qhd         # one system/scene/resolution
    repro systems list                    # registered hardware backends
    repro systems show neo-s              # one backend's knobs and overlays
    repro backends list                   # pluggable array backends (numpy, torch)
    repro backends show torch             # dispatch table: native ops vs fallback
    repro experiments --all --batched     # stack compatible cells into one rollout
    repro bench --backend torch           # run the vectorized cores on torch
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _cmd_list(_args) -> int:
    from .experiments import list_experiments
    from .hw.system import registered_systems
    from .scene.datasets import SCENE_SPECS

    print("experiments:", ", ".join(list_experiments()))
    print("scenes:     ", ", ".join(sorted(SCENE_SPECS)))
    print("systems:    ", ", ".join(registered_systems()))
    return 0


def _cmd_systems(args) -> int:
    from .hw.system import get_system, iter_systems

    if args.systems_command == "list":
        specs = list(iter_systems())
        if args.ids:
            for spec in specs:
                print(spec.name)
            return 0
        width = max(len(spec.name) for spec in specs)
        for spec in specs:
            origin = f"= {spec.base} + overlay" if spec.base else spec.model_cls.__name__
            print(
                f"{spec.name:{width}s}  {origin:24s} "
                f"[{spec.dram_policy}]  {spec.description}"
            )
        return 0

    # show
    try:
        spec = get_system(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"system:      {spec.name}")
    print(f"description: {spec.description}")
    print(f"model:       {spec.model_cls.__name__}")
    print(f"dram policy: {spec.dram_policy} "
          f"({'honors --bandwidth' if spec.dram_policy == 'edge' else 'fixed native memory system'})")
    if spec.base:
        print(f"base:        {spec.base}")
        overlay = ", ".join(f"{k}={v!r}" for k, v in spec.overrides)
        print(f"overlay:     {overlay}")
    print("model kwargs:")
    for name, default in spec.model_fields().items():
        print(f"  {name:22s} default {default}")
    print(f"config fields ({spec.config_cls.__name__}):")
    for name, default in spec.config_fields().items():
        print(f"  {name:22s} default {default}")
    return 0


def _cmd_backends(args) -> int:
    from .backend import (
        CORE_REQUIREMENTS,
        OP_SIGNATURES,
        backend_names,
        get_backend,
        resolution_table,
    )

    if args.backends_command == "list":
        width = max(len(name) for name in backend_names())
        for name in backend_names():
            backend = get_backend(name)
            status = "available" if backend.available else "unavailable"
            native = len(backend.native_ops())
            print(
                f"{name:{width}s}  {status:11s} "
                f"{native:2d}/{len(OP_SIGNATURES)} ops native  {backend.detail}"
            )
        return 0

    # show
    try:
        backend = get_backend(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    table = resolution_table(args.name)
    print(f"backend:   {backend.name}")
    print(f"available: {backend.available}")
    print(f"detail:    {backend.detail}")
    print("dispatch (op -> serving backend):")
    for op in sorted(OP_SIGNATURES):
        served_by = table[op]
        tag = "" if served_by == backend.name else "  (fallback)"
        print(f"  {op:20s} {served_by}{tag}")
    print("per-core requirements:")
    for core, ops in sorted(CORE_REQUIREMENTS.items()):
        print(f"  {core:16s} {', '.join(sorted(ops))}")
    return 0


def _activate_backend(name: str | None) -> int:
    """Activate an array backend by name; returns an exit code (0 = ok).

    Activating an unavailable backend is allowed — every op falls back to
    numpy — but a notice is printed so a silent typo'd environment doesn't
    masquerade as an accelerated run.
    """
    if name is None:
        return 0
    from .backend import get_backend, set_active

    try:
        backend = set_active(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if not backend.available:
        print(
            f"note: backend {name!r} is unavailable ({backend.detail}); "
            "all ops fall back to numpy",
            file=sys.stderr,
        )
    else:
        missing = get_backend("numpy").native_ops() - backend.native_ops()
        if missing:
            print(
                f"note: backend {name!r} serves {len(backend.native_ops())} ops "
                f"natively; {', '.join(sorted(missing))} fall back to numpy",
                file=sys.stderr,
            )
    return 0


def _cmd_run(args) -> int:
    from .experiments import list_experiments, run_experiment

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name)
        print(result.to_text())
        print()
    return 0


def _cmd_experiments(args) -> int:
    from .experiments import experiment_descriptions, list_experiments
    from .experiments.engine import ExperimentEngine
    from .runtime import ResultCache

    if args.list:
        for name, description in experiment_descriptions().items():
            print(f"{name:16s} {description}")
        return 0

    if args.all:
        names = list_experiments()
    elif args.names:
        names = args.names
    else:
        print("error: name at least one experiment or pass --all", file=sys.stderr)
        return 2

    code = _activate_backend(args.backend)
    if code:
        return code

    if args.only:
        import fnmatch

        patterns = [p.strip() for p in args.only.split(",") if p.strip()]
        names = [
            n for n in names if any(fnmatch.fnmatch(n.lower(), p.lower()) for p in patterns)
        ]
        if not names:
            print(f"error: no selected experiment matches --only {args.only!r}",
                  file=sys.stderr)
            return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = ExperimentEngine(
        jobs=args.jobs, frames=args.frames, cache=cache, batched=args.batched
    )
    try:
        run = engine.run(names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    for outcome in run.outcomes:
        print(outcome.result.to_text())
        origin = "cache hit" if outcome.from_cache else f"computed in {outcome.elapsed_s:.2f}s"
        print(f"-- {outcome.name}: {origin}")
        print()
    hits = sum(1 for o in run.outcomes if o.from_cache)
    cells = run.cells
    print(
        f"{len(run.outcomes)} experiment(s) in {run.elapsed_s:.2f}s wall "
        f"(jobs={args.jobs}, {hits} from cache, cache "
        f"{'disabled' if cache is None else 'at ' + str(cache.root)})"
    )
    if cells.requested:
        print(
            f"cells: {cells.requested} declared, {cells.unique} unique "
            f"({cells.deduplicated} deduped across figures), "
            f"{cells.hits} cache hits, {cells.computed} simulated"
        )
    if args.out:
        _write_experiment_files(run.outcomes, args.out)
    if args.json:
        payload = {
            "elapsed_s": run.elapsed_s,
            "jobs": args.jobs,
            "cells": {
                "declared": cells.requested,
                "unique": cells.unique,
                "deduplicated": cells.deduplicated,
                "cache_hits": cells.hits,
                "simulated": cells.computed,
            },
            "experiments": [
                {
                    "name": o.name,
                    "from_cache": o.from_cache,
                    "elapsed_s": o.elapsed_s,
                    "rows": o.result.rows,
                }
                for o in run.outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    if args.require_cached and not run.all_cached:
        recomputed = sum(1 for o in run.outcomes if not o.from_cache)
        print(
            f"error: --require-cached but {recomputed} experiment(s) were recomputed "
            f"({cells.computed} cell(s) simulated)",
            file=sys.stderr,
        )
        return 1
    return 0


def _write_experiment_files(outcomes, out_dir: str) -> None:
    """Write <name>.json/.csv artifacts under ``out_dir`` and announce them.

    Artifacts are deterministic — a pure function of (result, code version) —
    so serial/parallel and cold/warm runs write byte-identical files.
    """
    import os

    for outcome in outcomes:
        base = os.path.join(out_dir, outcome.result.name)
        for path in (
            outcome.result.write_json(base + ".json"),
            outcome.result.write_csv(base + ".csv"),
        ):
            print(f"wrote {path}")


def _cmd_sweep(args) -> int:
    from .runtime import ResultCache
    from .sweeps import SweepReport, SweepRunner, list_sweep_specs, resolve_spec
    from .sweeps.registry import PREDEFINED

    if args.sweep_command == "list":
        for name in list_sweep_specs():
            spec = PREDEFINED[name]
            print(f"{name:18s} {spec.num_points:3d} points  {spec.description}")
        return 0

    if args.sweep_command == "report":
        try:
            report = SweepReport.load_json(args.source)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load sweep report {args.source!r}: {exc}", file=sys.stderr)
            return 2
        print(report.to_markdown())
        if args.out:
            _write_sweep_files(report, args.out)
        return 0

    # run
    try:
        spec = resolve_spec(args.spec)
    except (KeyError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    code = _activate_backend(args.backend)
    if code:
        return code
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(jobs=args.jobs, cache=cache, batched=args.batched)
    outcome = runner.run(spec)
    report = outcome.report

    print(report.to_markdown(max_rows=args.max_rows))
    print()
    print(
        f"{report.num_points} point(s) in {outcome.elapsed_s:.2f}s wall "
        f"(jobs={args.jobs}, {outcome.hits} from cache, cache "
        f"{'disabled' if cache is None else 'at ' + str(cache.root)})"
    )
    if outcome.rollout is not None:
        rollout = outcome.rollout
        print(
            f"batched rollout: {rollout.stacked} point(s) stacked into "
            f"{rollout.groups} group(s), {rollout.fallback} fell back"
        )
    if args.out:
        _write_sweep_files(report, args.out)
    if args.require_cached and not outcome.all_cached:
        print(
            f"error: --require-cached but {outcome.misses} point(s) were recomputed",
            file=sys.stderr,
        )
        return 1
    return 0


def _write_sweep_files(report, out_dir: str) -> None:
    """Write <name>.json/.csv/.md under ``out_dir`` and announce the paths."""
    import os

    base = os.path.join(out_dir, report.name)
    for path in (
        report.write_json(base + ".json"),
        report.write_csv(base + ".csv"),
        report.write_markdown(base + ".md"),
    ):
        print(f"wrote {path}")


def _cmd_bench(args) -> int:
    from .bench import bench_descriptions, list_benchmarks, run_benchmarks, write_bench_json

    if args.list:
        for name, description in bench_descriptions().items():
            print(f"{name:18s} {description}")
        return 0

    # Validate names up front so a KeyError raised *inside* a benchmark
    # body surfaces as a traceback, not a bogus usage error.
    available = list_benchmarks()
    unknown = [n for n in (args.names or []) if n not in available]
    if unknown:
        print(
            f"error: unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(available)}",
            file=sys.stderr,
        )
        return 2
    code = _activate_backend(args.backend)
    if code:
        return code
    records = run_benchmarks(args.names or None, quick=args.quick, profile=args.profile)

    for record in records:
        print(record.to_text())
        if args.profile:
            for row in record.detail.get("profile", [])[:5]:
                print(
                    f"    {row['cumtime_s']*1e3:9.1f} ms cum  "
                    f"{row['tottime_s']*1e3:9.1f} ms self  "
                    f"{row['ncalls']:>8} calls  {row['function']}"
                )
    if args.out:
        print(f"wrote {write_bench_json(args.out, records, args.quick)}")

    failed = [r for r in records if not r.passed]
    if failed and not args.no_gate:
        for record in failed:
            reason = (
                "diverged from the scalar reference"
                if not record.identical
                else f"{record.speedup:.2f}x below the {record.floor:.2f}x floor"
            )
            print(f"error: benchmark {record.name} {reason}", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    from .runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        info = cache.info()
        print(f"root:         {info['root']}")
        print(f"code version: {info['code_version']}")
        if not info["namespaces"]:
            print("(empty)")
        width = max((len(n) for n in info["namespaces"]), default=12)
        for name, stats in info["namespaces"].items():
            print(
                f"  {name:{width}s} {stats['entries']:5d} entries  "
                f"{stats['bytes'] / 1e6:8.2f} MB"
            )
        print(f"total:        {info['total_entries']} entries, {info['total_bytes'] / 1e6:.2f} MB")
    else:  # clear
        removed = cache.clear(namespace=args.namespace)
        scope = f" from namespace {args.namespace!r}" if args.namespace else ""
        print(
            f"removed {removed} cached entr{'y' if removed == 1 else 'ies'}"
            f"{scope} from {cache.root}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_timeout_s=args.timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        batched=args.batched,
    )
    try:
        serve(config, announce=lambda line: print(line, flush=True))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from .service import LoadGenConfig, run_loadgen, summarize, write_service_bench

    def _csv(value: str) -> tuple[str, ...]:
        return tuple(part.strip() for part in value.split(",") if part.strip())

    config = LoadGenConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        rate=args.rate,
        tenants=args.tenants,
        seed=args.seed,
        frames=args.frames,
        scenes=_csv(args.scenes),
        systems=_csv(args.systems),
        resolutions=_csv(args.resolutions),
        pool_size=args.pool_size,
        timeout_s=args.timeout,
        retries=args.retries,
        shared_cache=args.shared_cache,
        wait_server_s=args.wait_server,
    )
    try:
        result = asyncio.run(run_loadgen(config, verify=args.verify))
    except OSError as exc:
        print(
            f"error: cannot reach server at {config.host}:{config.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    print(summarize(result))
    if args.out:
        print(f"wrote {write_service_bench(args.out, result)}")
    if not result.ok:
        print(
            "error: replay saw service errors or verification mismatches",
            file=sys.stderr,
        )
        return 1
    server = result.server_stats.get("metrics", {})
    if args.assert_coalesce and not server.get("coalesced", 0):
        print(
            "error: --assert-coalesce but no request coalesced into a shared "
            "execution (traffic had no concurrent duplicates?)",
            file=sys.stderr,
        )
        return 1
    return 0


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an HxWx3 float image in [0, 1] as a binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an HxWx3 image")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())


def _cmd_render(args) -> int:
    from .core.strategies import make_strategy
    from .pipeline.renderer import Renderer
    from .scene.datasets import default_trajectory, load_scene

    scene = load_scene(args.scene, num_gaussians=args.gaussians)
    cameras = default_trajectory(
        args.scene, num_frames=args.frame + 1, width=args.width, height=args.height
    )
    renderer = Renderer(scene, strategy=make_strategy(args.strategy))
    records = renderer.render_sequence(cameras)
    write_ppm(args.output, records[-1].image)
    stats = records[-1].stats
    print(
        f"wrote {args.output}: {args.width}x{args.height}, "
        f"{stats.num_visible} visible Gaussians, {stats.num_pairs} pairs, "
        f"strategy={args.strategy}"
    )
    return 0


def _cmd_simulate(args) -> int:
    from .experiments.runner import simulate_system

    report = simulate_system(
        args.system,
        args.scene,
        args.resolution,
        num_frames=args.frames,
        bandwidth_gbps=args.bandwidth,
    )
    traffic = report.total_traffic
    print(f"system:      {report.system}")
    print(f"scene:       {report.scene} @ {args.resolution}")
    print(f"throughput:  {report.fps:.1f} FPS (mean latency {report.mean_latency_s * 1e3:.2f} ms)")
    print(f"traffic/60f: {report.traffic_gb_for(60):.1f} GB")
    fracs = traffic.fractions()
    print(
        "stage split: "
        f"feature {fracs['feature_extraction']:.0%}, "
        f"sorting {fracs['sorting']:.0%}, "
        f"raster {fracs['rasterization']:.0%}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neo (ASPLOS 2026) reproduction: experiments, rendering, simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, scenes, and systems")

    run_p = sub.add_parser("run", help="regenerate a paper figure/table (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. fig15, table2, all")

    exp_p = sub.add_parser(
        "experiments",
        help="run experiments through the shared plan/execute engine "
             "(cross-figure cell dedup, cell-granular parallelism, disk cache)",
    )
    exp_p.add_argument("names", nargs="*", help="experiment ids (e.g. fig15 table2)")
    exp_p.add_argument("--all", action="store_true", help="run every registered experiment")
    exp_p.add_argument(
        "--list", action="store_true",
        help="list registered experiments with their one-line descriptions",
    )
    exp_p.add_argument(
        "--only", default=None,
        help="comma-separated glob filter on the selected ids (e.g. 'fig1*,table*')",
    )
    exp_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cell-granular fan-out (default 1)",
    )
    exp_p.add_argument(
        "--frames", type=int, default=None,
        help="override frames per sequence (drivers with pinned frame counts ignore it)",
    )
    exp_p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    exp_p.add_argument("--cache-dir", default=None, help="cache root (default .repro_cache)")
    exp_p.add_argument(
        "--backend", default=None,
        help="array backend for the vectorized cores (see `repro backends list`)",
    )
    exp_p.add_argument(
        "--batched", action="store_true",
        help="stack compatible sweep cells into batched multi-rollouts",
    )
    exp_p.add_argument(
        "--out", default=None,
        help="directory to write deterministic per-experiment <name>.json/.csv artifacts into",
    )
    exp_p.add_argument("--json", default=None, help="also write results/timings to a JSON file")
    exp_p.add_argument(
        "--require-cached", action="store_true",
        help="exit nonzero unless every experiment was served from the cache "
             "(CI warm-run assertion)",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="declarative scenario sweeps over scenes/trajectories/strategies/hardware",
    )
    sweep_sub = sweep_p.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="execute a sweep spec (name or JSON file)")
    sweep_run.add_argument(
        "--spec", required=True,
        help="predefined sweep name (see `repro sweep list`) or path to a spec .json",
    )
    sweep_run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    sweep_run.add_argument(
        "--batched", action="store_true",
        help="stack cache-miss points sharing a workload capture into "
             "batched multi-rollouts (rows stay byte-identical)",
    )
    sweep_run.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    sweep_run.add_argument("--cache-dir", default=None, help="cache root (default .repro_cache)")
    sweep_run.add_argument(
        "--backend", default=None,
        help="array backend for the vectorized cores (see `repro backends list`)",
    )
    sweep_run.add_argument(
        "--out", default=None,
        help="directory to write <name>.json/.csv/.md report files into",
    )
    sweep_run.add_argument(
        "--max-rows", type=int, default=None,
        help="cap the rows printed to stdout (files always get all rows)",
    )
    sweep_run.add_argument(
        "--require-cached", action="store_true",
        help="exit nonzero unless every point was served from the cache "
             "(CI warm-run assertion)",
    )

    sweep_sub.add_parser("list", help="list predefined sweeps")

    sweep_report = sweep_sub.add_parser(
        "report", help="render a previously written sweep report JSON"
    )
    sweep_report.add_argument("source", help="path to a <name>.json written by `sweep run --out`")
    sweep_report.add_argument(
        "--out", default=None,
        help="also (re)write <name>.json/.csv/.md report files into this directory",
    )

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=("info", "clear"))
    cache_p.add_argument("--cache-dir", default=None, help="cache root (default .repro_cache)")
    cache_p.add_argument(
        "--namespace", default=None,
        help="clear only this namespace, as printed by `cache info` "
             "(e.g. reports, tenants/acme, tenants/acme/reports)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="multi-tenant simulation service: cross-client job coalescing, "
             "bounded-queue backpressure, warm scene residency, per-tenant caches",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7341, help="0 picks a free port")
    serve_p.add_argument(
        "--workers", type=int, default=2, help="simulation worker pool size (default 2)"
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="pending executions admitted before requests are rejected (default 64)",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=60.0,
        help="default per-request timeout in seconds (requests may override)",
    )
    serve_p.add_argument(
        "--cache-dir", default=".repro_cache",
        help="root for per-tenant result namespaces (default .repro_cache)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true", help="serve without any disk persistence"
    )
    serve_p.add_argument(
        "--batched", action="store_true",
        help="drain queued executions per worker pass and stack compatible "
             "cells into one rollout (reports stay byte-identical)",
    )

    loadgen_p = sub.add_parser(
        "loadgen",
        help="replay seeded open-loop mixed traffic against a running server "
             "and write the BENCH_service.json artifact",
    )
    loadgen_p.add_argument("--host", default="127.0.0.1")
    loadgen_p.add_argument("--port", type=int, default=7341)
    loadgen_p.add_argument("--requests", type=int, default=120)
    loadgen_p.add_argument(
        "--rate", type=float, default=150.0, help="open-loop arrival rate, req/s"
    )
    loadgen_p.add_argument("--tenants", type=int, default=4)
    loadgen_p.add_argument("--seed", type=int, default=0)
    loadgen_p.add_argument("--frames", type=int, default=2)
    loadgen_p.add_argument(
        "--scenes", default="family,horse", help="comma-separated scene presets"
    )
    loadgen_p.add_argument(
        "--systems", default="neo,gscore,orin", help="comma-separated system ids"
    )
    loadgen_p.add_argument("--resolutions", default="hd")
    loadgen_p.add_argument(
        "--pool-size", type=int, default=10,
        help="distinct cells sampled from the grid (smaller = more overlap)",
    )
    loadgen_p.add_argument("--timeout", type=float, default=120.0)
    loadgen_p.add_argument(
        "--retries", type=int, default=3, help="rejection retries per request"
    )
    loadgen_p.add_argument(
        "--shared-cache", action="store_true",
        help="opt every tenant into the shared cache namespace",
    )
    loadgen_p.add_argument(
        "--wait-server", type=float, default=0.0,
        help="seconds to keep retrying the initial connect (CI startup races)",
    )
    loadgen_p.add_argument(
        "--out", default=None, help="write the BENCH_service.json artifact here"
    )
    loadgen_p.add_argument(
        "--verify", action="store_true",
        help="re-run every responded cell directly through execute_cells and "
             "require byte-identical reports",
    )
    loadgen_p.add_argument(
        "--assert-coalesce", action="store_true",
        help="exit nonzero unless at least one request coalesced (CI gate)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="named performance benchmarks: vectorized paths vs frozen scalar "
             "references, with a bit-identity + speedup-floor gate",
    )
    bench_p.add_argument("names", nargs="*", help="benchmark names (default: all)")
    bench_p.add_argument(
        "--list", action="store_true", help="list benchmarks with descriptions"
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="reduced workloads for CI smoke (floors unchanged)",
    )
    bench_p.add_argument(
        "--out", default=None, help="write the BENCH_*.json artifact to this path"
    )
    bench_p.add_argument(
        "--no-gate", action="store_true",
        help="report results but exit 0 even on identity/floor failures",
    )
    bench_p.add_argument(
        "--backend", default=None,
        help="array backend for the vectorized cores (see `repro backends list`)",
    )
    bench_p.add_argument(
        "--profile", action="store_true",
        help="run each benchmark under cProfile and record the top functions "
             "by cumulative time in its detail (timings include tracing "
             "overhead; don't commit profiled artifacts)",
    )

    render_p = sub.add_parser("render", help="render one frame to a PPM image")
    render_p.add_argument("scene", help="scene preset name")
    render_p.add_argument("output", help="output .ppm path")
    render_p.add_argument("--width", type=int, default=480)
    render_p.add_argument("--height", type=int, default=270)
    render_p.add_argument("--frame", type=int, default=0, help="trajectory frame index")
    render_p.add_argument("--gaussians", type=int, default=3000)
    render_p.add_argument(
        "--strategy", default="full",
        choices=("full", "periodic", "background", "hierarchical", "neo"),
    )

    from .hw.system import registered_systems

    sim_p = sub.add_parser("simulate", help="simulate one system on one workload")
    sim_p.add_argument("system", choices=registered_systems())
    sim_p.add_argument("scene")
    sim_p.add_argument("resolution", choices=("hd", "fhd", "qhd", "uhd"))
    sim_p.add_argument("--frames", type=int, default=12)
    sim_p.add_argument("--bandwidth", type=float, default=51.2, help="DRAM GB/s")

    systems_p = sub.add_parser(
        "systems", help="inspect the pluggable hardware-backend registry"
    )
    systems_sub = systems_p.add_subparsers(dest="systems_command", required=True)
    systems_list = systems_sub.add_parser(
        "list", help="registered systems: id, origin, DRAM policy, description"
    )
    systems_list.add_argument(
        "--ids", action="store_true", help="print bare system ids only (script-friendly)"
    )
    systems_show = systems_sub.add_parser(
        "show", help="one system's metadata, accepted kwargs, and config fields"
    )
    systems_show.add_argument("name", help="registered system id (see `repro systems list`)")

    backends_p = sub.add_parser(
        "backends", help="inspect the pluggable array-backend registry"
    )
    backends_sub = backends_p.add_subparsers(dest="backends_command", required=True)
    backends_sub.add_parser(
        "list", help="registered array backends: availability and native op counts"
    )
    backends_show = backends_sub.add_parser(
        "show", help="one backend's dispatch table and per-core op requirements"
    )
    backends_show.add_argument("name", help="backend name (see `repro backends list`)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "bench": _cmd_bench,
        "render": _cmd_render,
        "simulate": _cmd_simulate,
        "systems": _cmd_systems,
        "backends": _cmd_backends,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
