"""End-to-end 3DGS renderer: culling -> features -> sorting -> rasterization.

The sorting stage is pluggable so Neo's reuse-and-update strategies (and the
periodic / background / hierarchical baselines in :mod:`repro.core`) can be
swapped in without touching the rest of the pipeline.  Each rendered frame
also yields a :class:`FrameStats` workload snapshot consumed by the hardware
performance models in :mod:`repro.hw`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..scene.camera import Camera
from ..scene.gaussians import GaussianScene
from .culling import CullingResult, frustum_cull
from .projection import ProjectedGaussians, project_gaussians
from .rasterizer import NEO_SUBTILE_SIZE, RasterResult, rasterize
from .sorting import SortedTiles, sort_tiles
from .tiling import GPU_TILE_SIZE, TileAssignment, TileGrid, assign_to_tiles


@runtime_checkable
class SortStrategy(Protocol):
    """Interface for pluggable sorting-stage implementations.

    A strategy sees each frame's tile assignment and returns depth-sorted
    per-tile lists; stateful strategies (Neo) also receive rasterization
    feedback (valid bits / refreshed depths) afterwards.
    """

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        """Produce per-tile orderings for this frame."""
        ...

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        """Receive post-rasterization feedback (may be a no-op)."""
        ...


class ExactSortStrategy:
    """Baseline: re-sort every tile from scratch each frame (reference 3DGS)."""

    name = "exact"
    #: Frames are independent under exact sorting, so trajectories may be
    #: sharded across processes (see :func:`repro.runtime.parallel_render_sequence`).
    stateless = True

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        return sort_tiles(assignment)

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        return None


@dataclass
class FrameStats:
    """Per-frame workload statistics for the hardware models.

    Attributes
    ----------
    frame_index:
        Position in the rendered sequence.
    num_gaussians:
        Scene size before culling.
    num_visible:
        Gaussians surviving culling and projection validity checks.
    num_pairs:
        Tile-Gaussian pairs after duplication (the sorting workload).
    occupancy:
        Per-tile Gaussian counts.
    blend_ops / subtile_tests / subtile_hits / gaussians_processed:
        Rasterization counters (see :class:`RasterStats`).
    """

    frame_index: int
    num_gaussians: int
    num_visible: int
    num_pairs: int
    occupancy: np.ndarray
    blend_ops: int
    subtile_tests: int
    subtile_hits: int
    gaussians_processed: int

    @property
    def mean_occupancy(self) -> float:
        """Mean Gaussians per nonempty tile."""
        nonzero = self.occupancy[self.occupancy > 0]
        return float(nonzero.mean()) if nonzero.size else 0.0


@dataclass
class StageTimings:
    """Wall-clock seconds each pipeline stage spent on one frame.

    Collected unconditionally — five ``perf_counter`` reads per frame are
    noise next to any stage — and consumed by ``repro bench``, which needs
    a per-stage attribution of where a sequence's time went.
    """

    cull_s: float = 0.0
    project_s: float = 0.0
    tile_s: float = 0.0
    sort_s: float = 0.0
    raster_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Sum over the instrumented stages."""
        return self.cull_s + self.project_s + self.tile_s + self.sort_s + self.raster_s

    def merge(self, other: "StageTimings") -> None:
        """Accumulate another frame's stage times into this total."""
        self.cull_s += other.cull_s
        self.project_s += other.project_s
        self.tile_s += other.tile_s
        self.sort_s += other.sort_s
        self.raster_s += other.raster_s

    def as_dict(self) -> dict[str, float]:
        """Stage-name -> seconds mapping (JSON-friendly)."""
        return {
            "cull_s": self.cull_s,
            "project_s": self.project_s,
            "tile_s": self.tile_s,
            "sort_s": self.sort_s,
            "raster_s": self.raster_s,
            "total_s": self.total_s,
        }


def aggregate_timings(records: list["FrameRecord"]) -> StageTimings:
    """Sum per-stage timings over a rendered sequence."""
    total = StageTimings()
    for record in records:
        total.merge(record.timings)
    return total


@dataclass
class FrameRecord:
    """Everything produced while rendering one frame."""

    camera: Camera
    culling: CullingResult
    projected: ProjectedGaussians
    assignment: TileAssignment
    sorted_tiles: SortedTiles
    raster: RasterResult
    stats: FrameStats
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def image(self) -> np.ndarray:
        """The rendered RGB image."""
        return self.raster.image


@dataclass
class Renderer:
    """Configured 3DGS rendering pipeline for one scene.

    Parameters
    ----------
    scene:
        The Gaussian scene to render.
    tile_size:
        Tile edge in pixels (16 for GPU-style, 64 for Neo's accelerator).
    subtile_size:
        ITU subtile edge; ``None`` disables subtile testing.
    background:
        RGB background composited under the splats.
    strategy:
        Sorting strategy; defaults to exact per-frame sorting.
    """

    scene: GaussianScene
    tile_size: int = GPU_TILE_SIZE
    subtile_size: int | None = NEO_SUBTILE_SIZE
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    strategy: SortStrategy = field(default_factory=ExactSortStrategy)

    def render(self, camera: Camera, frame_index: int = 0) -> FrameRecord:
        """Render one frame and return the full record."""
        t0 = time.perf_counter()
        culling = frustum_cull(self.scene, camera)
        t1 = time.perf_counter()
        projected = project_gaussians(self.scene, camera, culling.visible_ids)
        t2 = time.perf_counter()
        grid = TileGrid.for_camera(camera, self.tile_size)
        assignment = assign_to_tiles(projected, grid)
        t3 = time.perf_counter()
        sorted_tiles = self.strategy.sort_frame(assignment, frame_index)
        t4 = time.perf_counter()
        raster = rasterize(
            sorted_tiles,
            projected,
            grid,
            background=self.background,
            subtile_size=self.subtile_size,
        )
        t5 = time.perf_counter()
        timings = StageTimings(
            cull_s=t1 - t0,
            project_s=t2 - t1,
            tile_s=t3 - t2,
            sort_s=t4 - t3,
            raster_s=t5 - t4,
        )
        self.strategy.observe_raster(frame_index, sorted_tiles, raster)
        stats = FrameStats(
            frame_index=frame_index,
            num_gaussians=len(self.scene),
            num_visible=len(projected),
            num_pairs=assignment.num_pairs,
            occupancy=assignment.occupancy(),
            blend_ops=raster.stats.blend_ops,
            subtile_tests=raster.stats.subtile_tests,
            subtile_hits=raster.stats.subtile_hits,
            gaussians_processed=raster.stats.gaussians_processed,
        )
        return FrameRecord(
            camera=camera,
            culling=culling,
            projected=projected,
            assignment=assignment,
            sorted_tiles=sorted_tiles,
            raster=raster,
            stats=stats,
            timings=timings,
        )

    def render_sequence(self, cameras: list[Camera], jobs: int = 1) -> list[FrameRecord]:
        """Render a camera trajectory, threading frame indices through.

        With ``jobs > 1`` and a stateless strategy, frames are sharded
        across a process pool; the merged records are bitwise-identical to
        the serial path.  Stateful strategies always render serially.
        """
        if jobs > 1:
            from ..runtime.parallel import parallel_render_sequence

            return parallel_render_sequence(self, cameras, jobs)
        return [self.render(camera, frame_index=i) for i, camera in enumerate(cameras)]
