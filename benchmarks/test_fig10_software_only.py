"""Bench: Fig. 10 — software-only Neo on Orin AGX."""

from repro.experiments import fig10

from conftest import run_once


def test_fig10_software_only(benchmark, bench_frames):
    result = run_once(benchmark, fig10.run, num_frames=bench_frames)
    print("\n" + result.to_text())
    ratios = fig10.summary(result)
    print(ratios)

    # Paper: 70.4% total traffic cut (82.8% in sorting), but only ~1.1x
    # end-to-end speedup — the motivation for hardware co-design.
    assert ratios["traffic_reduction"] > 0.6
    assert ratios["sorting_traffic_reduction"] > 0.75
    assert 1.0 < ratios["speedup"] < 1.5
