"""Frozen scalar reference for the temporal-similarity metrics.

This module preserves, verbatim, the pre-vectorization per-tile loop of
:func:`repro.metrics.similarity.frame_similarity` (and the per-tile helpers
it calls) before the tile-stream segmented rewrite landed.  It mirrors
:mod:`repro.pipeline.reference` / :mod:`repro.hw.reference` and exists for
two callers only:

* the **golden equivalence tests**, which assert the segmented
  ``frame_similarity`` is *bit-identical* to this loop — every shared
  fraction and every order-difference entry, in the same order;
* the **benchmark subsystem** (``repro bench``), which times the loop
  against the segmented path and records the speedup in
  ``BENCH_pipeline.json``.

Because this is a historical pin, it must only change when the metric's
definition deliberately changes — keep it in lockstep with
:mod:`repro.metrics.similarity`.
"""

from __future__ import annotations

import numpy as np

from ..pipeline.sorting import SortedTiles
from .similarity import SimilarityStats


def tile_shared_fraction(prev_ids: np.ndarray, cur_ids: np.ndarray) -> float:
    """Proportion of the previous frame's tile Gaussians still present."""
    if prev_ids.shape[0] == 0:
        return 1.0
    return float(np.mean(np.isin(prev_ids, cur_ids)))


def tile_order_differences(prev_ids: np.ndarray, cur_ids: np.ndarray) -> np.ndarray:
    """Absolute sort-position shifts of Gaussians shared by both lists."""
    shared, prev_pos, cur_pos = np.intersect1d(
        prev_ids, cur_ids, assume_unique=False, return_indices=True
    )
    if shared.shape[0] < 2:
        return np.empty(0)
    prev_rank = np.argsort(np.argsort(prev_pos, kind="stable"))
    cur_rank = np.argsort(np.argsort(cur_pos, kind="stable"))
    return np.abs(prev_rank - cur_rank).astype(np.float64)


def frame_similarity(prev: SortedTiles, cur: SortedTiles) -> SimilarityStats:
    """Per-tile Python loop (frozen pre-segmentation reference)."""
    if prev.num_tiles != cur.num_tiles:
        raise ValueError("frames must cover the same tile grid")
    fractions = []
    diffs = []
    for tile in range(prev.num_tiles):
        prev_ids = prev.ids_for(tile)
        if prev_ids.shape[0] == 0:
            continue
        cur_ids = cur.ids_for(tile)
        fractions.append(tile_shared_fraction(prev_ids, cur_ids))
        d = tile_order_differences(prev_ids, cur_ids)
        if d.size:
            diffs.append(d)
    return SimilarityStats(
        shared_fractions=np.asarray(fractions),
        order_differences=np.concatenate(diffs) if diffs else np.empty(0),
    )
