"""Sweep execution: evaluate grid points, in parallel, through the cache.

One :class:`~repro.sweeps.spec.SweepPoint` evaluates to one flat metrics
row:

* **hardware side** — the point's scene + trajectory is captured into a
  :class:`~repro.hw.workload.WorkloadModel` (culling + projection only) and
  fed to the configured system model, yielding FPS / latency / DRAM-traffic
  columns;
* **functional side** (``measure_quality``) — the scene is rendered through
  the point's sorting strategy and compared frame-by-frame against the
  exact-sort reference, yielding PSNR / SSIM / sorting-traffic columns.

Point evaluation is a pure function of the point's parameters, so rows are
cached in the ``sweeps`` namespace of the
:class:`~repro.runtime.cache.ResultCache` and the executor only dispatches
cache misses.  Execution goes through the same core as the figure drivers —
:func:`repro.experiments.engine.execute_cells` — which dedupes identical
points, probes the cache, fans misses out through
:func:`repro.runtime.parallel.parallel_map`, and merges in deterministic
grid order.  Heavyweight intermediates (scenes, workload captures,
reference renders) are additionally memoized per process, so points that
share a (scene, trajectory) pair don't repeat the geometry work within a
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

import numpy as np

from ..core.strategies import make_strategy
from ..experiments.engine import RolloutStats, execute_cells
from ..experiments.runner import build_system_model
from ..hw.config import DramConfig
from ..hw.workload import WorkloadModel
from ..metrics.image import psnr, ssim
from ..pipeline.renderer import Renderer
from ..runtime.cache import ResultCache, code_version
from ..scene.datasets import archetype_trajectory, load_scene, scene_spec
from .report import SweepReport
from .spec import SweepPoint, SweepSpec


# ----------------------------------------------------------------------
# Per-process memoization of shared intermediates
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def _scene(name: str, num_gaussians: int | None):
    return load_scene(name, num_gaussians=num_gaussians)


@lru_cache(maxsize=8)
def _workload_model(
    scene: str,
    num_gaussians: int | None,
    trajectory: str,
    speed: float,
    frames: int,
    width: int,
    height: int,
) -> WorkloadModel:
    cameras = archetype_trajectory(
        scene, trajectory, num_frames=frames, speed=speed, width=width, height=height
    )
    return WorkloadModel.from_render(
        _scene(scene, num_gaussians),
        cameras,
        nominal_gaussians=scene_spec(scene).nominal_gaussians,
        scene_name=scene,
    )


@lru_cache(maxsize=4)
def _reference_images(
    scene: str,
    num_gaussians: int | None,
    trajectory: str,
    speed: float,
    frames: int,
    width: int,
    height: int,
) -> tuple[np.ndarray, ...]:
    """Exact-sort renders all strategies at this point are judged against."""
    cameras = archetype_trajectory(
        scene, trajectory, num_frames=frames, speed=speed, width=width, height=height
    )
    renderer = Renderer(_scene(scene, num_gaussians))
    return tuple(record.image for record in renderer.render_sequence(cameras))


# ----------------------------------------------------------------------
# Point evaluation
# ----------------------------------------------------------------------
def evaluate_point(point: SweepPoint) -> dict[str, Any]:
    """Compute one grid point's metrics row (pure, deterministic)."""
    model, workloads = _point_model(point)
    seq = model.simulate(workloads, scene=point.scene)
    return _point_row(point, seq, workloads)


def _point_model(point: SweepPoint):
    """The point's system model plus its captured workload sequence."""
    hw = point.hardware
    wm = _workload_model(
        point.scene,
        point.num_gaussians,
        point.trajectory,
        point.speed,
        point.frames,
        point.capture_width,
        point.capture_height,
    )
    model, tile = build_system_model(
        hw.system, dram=DramConfig(bandwidth_gbps=hw.bandwidth_gbps), cores=hw.cores
    )
    return model, wm.sequence_workloads(hw.resolution, tile)


def _point_row(point: SweepPoint, seq, workloads) -> dict[str, Any]:
    """Assemble the metrics row from a simulated sequence report.

    Shared by the per-point and batched-rollout paths so both produce
    byte-identical rows from byte-identical reports.
    """
    hw = point.hardware
    row: dict[str, Any] = {
        "point": point.label,
        "scene": point.scene,
        "num_gaussians": point.num_gaussians,
        "trajectory": point.trajectory,
        "speed": float(point.speed),
        "strategy": point.strategy,
        "system": hw.system,
        "resolution": hw.resolution,
        "bandwidth_gbps": float(hw.bandwidth_gbps),
        "cores": int(hw.cores),
        "frames": int(point.frames),
        "fps": float(seq.fps),
        "mean_latency_ms": float(seq.mean_latency_s * 1e3),
        "traffic_gb_60f": float(seq.traffic_gb_for(60)),
        "sorting_traffic_frac": float(seq.total_traffic.fractions()["sorting"]),
        "mean_visible": float(np.mean([w.visible for w in workloads])),
        "mean_pairs": float(np.mean([w.pairs for w in workloads])),
        "mean_churn_frac": float(np.mean([w.churn_fraction for w in workloads[1:]]))
        if len(workloads) > 1
        else 0.0,
    }

    if point.measure_quality:
        cameras = archetype_trajectory(
            point.scene,
            point.trajectory,
            num_frames=point.frames,
            speed=point.speed,
            width=point.render_width,
            height=point.render_height,
        )
        strategy = make_strategy(point.strategy)
        records = Renderer(_scene(point.scene, point.num_gaussians), strategy=strategy)\
            .render_sequence(cameras)
        references = _reference_images(
            point.scene,
            point.num_gaussians,
            point.trajectory,
            point.speed,
            point.frames,
            point.render_width,
            point.render_height,
        )
        psnrs = [psnr(ref, rec.image) for ref, rec in zip(references, records)]
        ssims = [ssim(ref, rec.image) for ref, rec in zip(references, records)]
        traffic = strategy.total_traffic()
        row.update(
            {
                "mean_psnr_db": float(np.mean(psnrs)),
                "min_psnr_db": float(np.min(psnrs)),
                "mean_ssim": float(np.mean(ssims)),
                "func_sort_mb": float(traffic.total_bytes / 1e6),
            }
        )
    return row


# ----------------------------------------------------------------------
# Batched rollouts over the sweep grid
# ----------------------------------------------------------------------
#: SweepPoint fields that must agree for points to share one stacked
#: rollout: everything that shapes the captured workload sequence or the
#: model construction.  The remaining hardware knobs
#: (``bandwidth_gbps``/``cores``) become the rollout's cell axes, exactly
#: as :data:`~repro.experiments.engine.ROLLOUT_AXIS_FIELDS` does for
#: :class:`~repro.experiments.engine.SimJob` cells.  ``strategy`` and the
#: quality fields are deliberately absent — they only affect the
#: functional (render) side of the row, which never stacks.
SWEEP_ROLLOUT_GROUP_FIELDS = (
    "scene",
    "num_gaussians",
    "trajectory",
    "speed",
    "frames",
    "capture_width",
    "capture_height",
)


def rollout_sweep_misses(points: list[SweepPoint]) -> tuple[dict, RolloutStats | None]:
    """Batched-miss handler for :func:`~repro.experiments.engine.execute_cells`.

    Groups cache-miss points on :data:`SWEEP_ROLLOUT_GROUP_FIELDS` plus the
    hardware ``(system, resolution)`` pair, simulates each group as one
    stacked pass through
    :meth:`~repro.hw.system.SystemModel.simulate_rollout` with
    bandwidth/cores as cell axes, and assembles rows through the same
    :func:`_point_row` the per-point path uses — so batched rows are
    byte-identical to unbatched ones.  Points whose quality metrics are
    requested still render per-point (image comparison cannot stack), and
    a model that cannot stack a knob falls back to per-point simulation
    for that group only.
    """
    groups: dict[tuple, list[SweepPoint]] = {}
    for point in points:
        key = tuple(getattr(point, f) for f in SWEEP_ROLLOUT_GROUP_FIELDS)
        key += (point.hardware.system, point.hardware.resolution)
        groups.setdefault(key, []).append(point)
    if not groups:
        return {}, None

    stats = RolloutStats(groups=len(groups))
    values: dict[SweepPoint, dict[str, Any]] = {}
    for group in groups.values():
        model, workloads = _point_model(group[0])
        reports = model.simulate_rollout(
            workloads,
            {
                "bandwidth_gbps": np.array(
                    [p.hardware.bandwidth_gbps for p in group], dtype=np.float64
                ),
                "cores": np.array(
                    [float(p.hardware.cores) for p in group], dtype=np.float64
                ),
            },
            scene=group[0].scene,
        )
        if reports is None:
            stats.fallback += len(group)
            for point in group:
                values[point] = evaluate_point(point)
            continue
        stats.stacked += len(group)
        for point, seq in zip(group, reports):
            values[point] = _point_row(point, seq, workloads)
    return values, stats


# ----------------------------------------------------------------------
# Grid execution
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """A sweep's report plus execution provenance (not serialized).

    The report itself is a pure function of (spec, code version); hit/miss
    counts and wall time describe *this* execution and are reported on
    stdout only, so cold, warm, serial and parallel runs all produce
    byte-identical report files.
    """

    report: SweepReport
    hits: int
    misses: int
    elapsed_s: float
    #: Stacking accounting when the runner ran batched (``None`` otherwise).
    rollout: RolloutStats | None = None

    @property
    def all_cached(self) -> bool:
        """True when every point was served from the result cache."""
        return self.misses == 0


@dataclass
class SweepRunner:
    """Executes sweep specs as a thin client of the shared execution core.

    :func:`~repro.experiments.engine.execute_cells` does the heavy lifting —
    dedup of identical points, cache probe, parallel fan-out of the misses,
    deterministic grid-order merge — exactly as it does for the figure
    drivers' simulation cells.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss evaluation; ``1`` runs in-process.
    cache:
        Result cache consulted per point, or ``None`` to recompute
        everything.
    batched:
        Route cache misses through :func:`rollout_sweep_misses` — points
        sharing a workload capture stack into one array rollout instead of
        evaluating one process each.  Rows stay byte-identical to the
        unbatched path.
    """

    jobs: int = 1
    cache: ResultCache | None = field(default_factory=ResultCache)
    batched: bool = False

    def run(self, spec: SweepSpec) -> SweepOutcome:
        """Execute every grid point and aggregate rows in grid order."""
        points = spec.points()
        batch = execute_cells(
            points,
            evaluate_point,
            jobs=self.jobs,
            cache=self.cache,
            batched=self.batched,
            rollout_misses=rollout_sweep_misses,
        )

        report = SweepReport(
            name=spec.name,
            description=spec.description,
            spec=spec.to_dict(),
            code_version=code_version(),
            rows=list(batch.values),
        )
        return SweepOutcome(
            report=report,
            hits=batch.hits,
            misses=batch.computed,
            elapsed_s=batch.elapsed_s,
            rollout=batch.rollout,
        )
