"""Fig. 17 — extreme AR/VR scenarios: large scenes and rapid camera motion.

(a) Mill-19 Building / Rubble aerial scenes at QHD: Neo sustains >60 FPS
    while Orin and GSCore fall far below.
(b) Camera speed-ups of 2-16x on Tanks-and-Temples: Gaussian reusability
    drops but Neo stays above the 60 FPS SLO.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import MILL19, TANKS_AND_TEMPLES
from .runner import ExperimentResult, simulate_system

SPEEDS = (1.0, 2.0, 4.0, 8.0, 16.0)
SYSTEMS = ("orin", "gscore", "neo")


def run_large_scenes(
    scenes=MILL19, resolution: str = "qhd", num_frames: int | None = None
) -> ExperimentResult:
    """Fig. 17(a): throughput on the large-scale aerial scenes."""
    result = ExperimentResult(
        name="fig17a",
        description="Large-scale scenes (Mill-19) at QHD: FPS per system",
    )
    for scene in scenes:
        row = {"scene": scene}
        for system in SYSTEMS:
            row[system] = simulate_system(
                system, scene, resolution, num_frames=num_frames
            ).fps
        result.rows.append(row)
    return result


def run_camera_speed(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    speeds=SPEEDS,
) -> ExperimentResult:
    """Fig. 17(b): Neo throughput under increasingly rapid camera motion."""
    if scene not in TANKS_AND_TEMPLES:
        raise ValueError(f"expected a Tanks-and-Temples scene, got {scene!r}")
    result = ExperimentResult(
        name="fig17b",
        description="Neo QHD FPS under rapid camera movement (speed multipliers)",
    )
    for speed in speeds:
        report = simulate_system(
            "neo", scene, resolution, num_frames=num_frames, speed=speed
        )
        churn = float(
            np.mean(
                [
                    f.traffic.sorting
                    for f in report.frames[1:]
                ]
            )
        )
        result.rows.append(
            {
                "speed": speed,
                "fps": report.fps,
                "mean_sorting_bytes": churn,
            }
        )
    return result


def run(num_frames: int | None = None) -> ExperimentResult:
    """Both panels merged into one result (rows tagged by panel).

    Panel (a) rows carry per-system FPS on the large scenes; panel (b)
    rows carry Neo's FPS at each camera-speed multiplier.
    """
    merged = ExperimentResult(
        name="fig17",
        description="Extreme AR/VR scenarios: large scenes and rapid motion",
    )
    for row in run_large_scenes(num_frames=num_frames).rows:
        merged.rows.append(
            {
                "panel": "a",
                "case": row["scene"],
                "orin": row["orin"],
                "gscore": row["gscore"],
                "neo": row["neo"],
            }
        )
    for row in run_camera_speed(num_frames=num_frames).rows:
        merged.rows.append(
            {
                "panel": "b",
                "case": f"speed x{row['speed']:g}",
                "orin": "-",
                "gscore": "-",
                "neo": row["fps"],
            }
        )
    return merged
