"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import numpy as np


def geometric_mean(values) -> float:
    """Geometric mean of positive values (speedup aggregation).

    >>> round(geometric_mean([1.0, 4.0]), 2)
    2.0
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values) -> float:
    """Harmonic mean (correct FPS averaging across equal-length runs)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("harmonic_mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("harmonic_mean requires positive values")
    return float(arr.size / np.sum(1.0 / arr))


def percentile_summary(values, percentiles=(50, 90, 95, 99)) -> dict[int, float]:
    """Named percentiles of a sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {int(p): 0.0 for p in percentiles}
    out = np.percentile(arr, percentiles)
    return {int(p): float(v) for p, v in zip(percentiles, out)}


def empirical_cdf(values, grid) -> np.ndarray:
    """F(x) evaluated on ``grid`` for the sample ``values``."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    grid = np.asarray(grid, dtype=np.float64)
    if arr.size == 0:
        return np.zeros_like(grid)
    return np.searchsorted(arr, grid, side="right") / arr.size


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (0 when both are 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)
