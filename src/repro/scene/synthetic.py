"""Synthetic 3DGS scene generation.

We do not ship trained Tanks-and-Temples models (hundreds of MB each,
requiring GPU training), so scenes are generated procedurally.  What matters
for reproducing the paper is the *sorting workload*: per-tile Gaussian
occupancy, depth distributions, and frame-to-frame churn.  The generator
therefore controls:

* total Gaussian count and spatial extent,
* clustering (objects of interest vs. scattered background/floaters),
* scale distribution (log-normal, as observed in trained 3DGS models),
* opacity distribution (bimodal: near-opaque surface splats plus a
  translucent tail).

Each paper scene becomes a :class:`SceneSpec` preset (see
:mod:`repro.scene.datasets`) whose knobs were tuned so the temporal-similarity
statistics land in the ranges of the paper's Figs. 6-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .gaussians import GaussianScene
from .sh import num_sh_coeffs, rgb_to_sh_dc


@dataclass(frozen=True)
class ClusterSpec:
    """A blob of Gaussians representing one object / surface region.

    Parameters
    ----------
    center:
        Cluster centroid in world space.
    extent:
        Per-axis standard deviation of Gaussian centers within the cluster.
    fraction:
        Share of the scene's Gaussians assigned to this cluster.
    base_color:
        Mean albedo of the cluster's splats.
    """

    center: tuple[float, float, float]
    extent: tuple[float, float, float]
    fraction: float
    base_color: tuple[float, float, float] = (0.5, 0.5, 0.5)


@dataclass(frozen=True)
class SceneSpec:
    """Full recipe for one synthetic scene.

    Parameters
    ----------
    name:
        Scene identifier (matches the paper's benchmark names).
    nominal_gaussians:
        Gaussian count of the paper-scale trained model; the hardware model
        extrapolates workload statistics to this count.
    functional_gaussians:
        Count actually instantiated for pure-Python functional rendering.
    extent:
        Half-width of the scene bounding volume (world units).
    clusters:
        Object clusters; remaining mass becomes scattered background.
    log_scale_mean / log_scale_sigma:
        Parameters of the log-normal splat-size distribution.
    opaque_fraction:
        Share of splats drawn from the near-opaque mode.
    sh_degree:
        SH degree for color coefficients.
    seed:
        Deterministic generation seed.
    camera_radius:
        Suggested orbit radius for the default trajectory.
    depth_spread:
        Characteristic front-to-back depth range seen by the default
        trajectory, controls how much reordering camera motion causes.
    """

    name: str
    nominal_gaussians: int
    functional_gaussians: int
    extent: float
    clusters: tuple[ClusterSpec, ...] = field(default_factory=tuple)
    log_scale_mean: float = -3.0
    log_scale_sigma: float = 0.7
    opaque_fraction: float = 0.6
    sh_degree: int = 2
    seed: int = 0
    camera_radius: float = 8.0
    depth_spread: float = 10.0

    def __post_init__(self) -> None:
        if self.nominal_gaussians <= 0 or self.functional_gaussians <= 0:
            raise ValueError("gaussian counts must be positive")
        total = sum(c.fraction for c in self.clusters)
        if total > 1.0 + 1e-9:
            raise ValueError(f"cluster fractions sum to {total:.3f} > 1")

    @property
    def scale_ratio(self) -> float:
        """Functional-to-nominal Gaussian count ratio (workload extrapolation)."""
        return self.functional_gaussians / self.nominal_gaussians


def _random_unit_quaternions(rng: np.random.Generator, n: int) -> np.ndarray:
    quats = rng.normal(size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return quats


def _sample_positions(spec: SceneSpec, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Sample Gaussian centers and per-Gaussian base colors."""
    positions = np.empty((n, 3))
    colors = np.empty((n, 3))
    cluster_fraction = sum(c.fraction for c in spec.clusters)
    counts = [int(round(c.fraction * n)) for c in spec.clusters]
    background = n - sum(counts)
    if background < 0:  # rounding overshoot: trim the largest cluster
        counts[int(np.argmax(counts))] += background
        background = 0

    offset = 0
    for cluster, count in zip(spec.clusters, counts):
        center = np.asarray(cluster.center)
        extent = np.asarray(cluster.extent)
        positions[offset : offset + count] = rng.normal(center, extent, size=(count, 3))
        base = np.asarray(cluster.base_color)
        colors[offset : offset + count] = np.clip(
            base + rng.normal(0.0, 0.08, size=(count, 3)), 0.02, 0.98
        )
        offset += count

    if background:
        # Scattered background splats fill the scene volume uniformly; they
        # model distant geometry and training floaters.
        positions[offset:] = rng.uniform(-spec.extent, spec.extent, size=(background, 3))
        colors[offset:] = rng.uniform(0.15, 0.85, size=(background, 3))

    if cluster_fraction == 0 and n:
        colors[:] = rng.uniform(0.15, 0.85, size=(n, 3))
    return positions, colors


def generate_scene(spec: SceneSpec, num_gaussians: int | None = None) -> GaussianScene:
    """Instantiate a :class:`GaussianScene` from a :class:`SceneSpec`.

    Parameters
    ----------
    spec:
        Scene recipe.
    num_gaussians:
        Override for the instantiated count (defaults to
        ``spec.functional_gaussians``); useful for quick tests.
    """
    n = num_gaussians if num_gaussians is not None else spec.functional_gaussians
    if n <= 0:
        raise ValueError("num_gaussians must be positive")
    rng = np.random.default_rng(spec.seed)

    positions, colors = _sample_positions(spec, rng, n)

    scales = np.exp(rng.normal(spec.log_scale_mean, spec.log_scale_sigma, size=(n, 3)))
    # Keep splats small relative to the scene so per-tile occupancy stays in a
    # realistic band even at reduced functional counts.
    scales = np.clip(scales, 1e-4, spec.extent / 4.0)

    quats = _random_unit_quaternions(rng, n)

    opaque = rng.random(n) < spec.opaque_fraction
    opacities = np.where(
        opaque,
        rng.beta(8.0, 1.5, size=n),  # near-opaque surface splats
        rng.beta(1.5, 4.0, size=n),  # translucent tail / floaters
    )
    opacities = np.clip(opacities, 1e-3, 1.0)

    k = num_sh_coeffs(spec.sh_degree)
    sh = np.zeros((n, k, 3))
    sh[:, 0, :] = rgb_to_sh_dc(colors)
    if k > 1:
        # Mild view dependence: higher bands carry a small random signal.
        sh[:, 1:, :] = rng.normal(0.0, 0.02, size=(n, k - 1, 3))

    return GaussianScene(
        means=positions,
        scales=scales,
        quats=quats,
        opacities=opacities,
        sh_coeffs=sh,
        name=spec.name,
    )
