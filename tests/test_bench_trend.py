"""Tests for the CI bench-trend gate (benchmarks/bench_trend.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "bench_trend.py"
_spec = importlib.util.spec_from_file_location("bench_trend", _SCRIPT)
bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trend)


def artifact(path, speedups):
    payload = {
        "schema": "repro-bench/1",
        "benchmarks": [
            {"name": name, "speedup": speedup} for name, speedup in speedups.items()
        ],
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self):
        lines, ok = bench_trend.compare(
            {"raster": {"speedup": 2.5}}, {"raster": {"speedup": 2.0}}, 0.25
        )
        assert ok
        assert "ok" in lines[0]

    def test_regression_beyond_threshold_fails(self):
        lines, ok = bench_trend.compare(
            {"raster": {"speedup": 2.5}}, {"raster": {"speedup": 1.5}}, 0.25
        )
        assert not ok
        assert "REGRESSED" in lines[0]

    def test_improvement_passes(self):
        _, ok = bench_trend.compare(
            {"raster": {"speedup": 2.0}}, {"raster": {"speedup": 3.0}}, 0.25
        )
        assert ok

    def test_missing_benchmark_fails(self):
        lines, ok = bench_trend.compare({"raster": {"speedup": 2.5}}, {}, 0.25)
        assert not ok
        assert "MISSING" in lines[0]

    def test_new_benchmark_is_note_only(self):
        lines, ok = bench_trend.compare(
            {"raster": {"speedup": 2.5}},
            {"raster": {"speedup": 2.5}, "sort": {"speedup": 1.4}},
            0.25,
        )
        assert ok
        assert any("new benchmark" in line for line in lines)


def staged(total_speedup, baseline_ms, stage_seconds):
    return {
        "speedup": total_speedup,
        "baseline_ms": baseline_ms,
        "detail": {"stage_seconds": stage_seconds},
    }


class TestStageCompare:
    def test_stage_regression_fails_even_when_total_passes(self):
        # Raster got 4x slower while sort got faster; the total speedup is
        # flat, which is exactly the blind spot the stage gate closes.
        base = {
            "render": staged(
                2.0, 2000.0, {"raster_s": 1.0, "sort_s": 0.5, "total_s": 1.5}
            )
        }
        fresh = {
            "render": staged(
                2.0, 2000.0, {"raster_s": 4.0, "sort_s": 0.1, "total_s": 4.1}
            )
        }
        lines, ok = bench_trend.compare(base, fresh, 0.25)
        assert not ok
        assert any("REGRESSED" in line and "raster_s" in line for line in lines)
        assert any("raster_s regressed" in line for line in lines)

    def test_stage_regression_names_the_stage(self):
        base = {"render": staged(2.0, 2000.0, {"raster_s": 1.0, "sort_s": 0.5})}
        fresh = {"render": staged(2.0, 2000.0, {"raster_s": 4.0, "sort_s": 0.5})}
        lines, regressed = bench_trend.compare_stages(
            base["render"], fresh["render"], 0.5, 0.05
        )
        assert regressed == ["raster_s"]
        assert not any("sort_s" in line and "REGRESSED" in line for line in lines)

    def test_tiny_stage_noise_is_info_only(self):
        # cull is 0.1% of stage time; a 10x swing there must not gate.
        base = {
            "render": staged(2.0, 2000.0, {"raster_s": 1.0, "cull_s": 0.001})
        }
        fresh = {
            "render": staged(2.0, 2000.0, {"raster_s": 1.0, "cull_s": 0.01})
        }
        lines, ok = bench_trend.compare(base, fresh, 0.25)
        assert ok
        assert any("info only" in line and "cull_s" in line for line in lines)

    def test_stages_within_threshold_pass(self):
        base = {"render": staged(2.0, 2000.0, {"raster_s": 1.0, "sort_s": 0.5})}
        fresh = {"render": staged(1.9, 2000.0, {"raster_s": 1.2, "sort_s": 0.6})}
        lines, ok = bench_trend.compare(base, fresh, 0.25)
        assert ok

    def test_benchmarks_without_stages_unaffected(self):
        lines, ok = bench_trend.compare(
            {"raster": {"speedup": 2.5}}, {"raster": {"speedup": 2.4}}, 0.25
        )
        assert ok
        assert not any("stage" in line for line in lines)

    def test_missing_stage_in_fresh_fails(self):
        base = {"render": staged(2.0, 2000.0, {"raster_s": 1.0})}
        fresh = {"render": staged(2.0, 2000.0, {"blend_s": 1.0})}
        _, regressed = bench_trend.compare_stages(
            base["render"], fresh["render"], 0.5, 0.05
        )
        assert regressed == ["raster_s"]

    def test_stage_threshold_is_configurable(self, tmp_path):
        def payload(raster):
            return {
                "schema": "repro-bench/1",
                "benchmarks": [
                    {
                        "name": "render",
                        "speedup": 2.0,
                        "baseline_ms": 2000.0,
                        "detail": {"stage_seconds": {"raster_s": raster}},
                    }
                ],
            }
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(payload(1.0)))
        fresh.write_text(json.dumps(payload(2.5)))
        args = ["--baseline", str(base), "--fresh", str(fresh)]
        assert bench_trend.main(args) == 1
        assert bench_trend.main(args + ["--max-stage-regression", "0.8"]) == 0


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        base = artifact(tmp_path / "base.json", {"raster": 2.5, "sort": 1.3})
        fresh = artifact(tmp_path / "fresh.json", {"raster": 2.4, "sort": 1.25})
        assert bench_trend.main(["--baseline", base, "--fresh", fresh]) == 0
        out = capsys.readouterr().out
        assert "bench trend" in out and "raster" in out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = artifact(tmp_path / "base.json", {"raster": 2.5})
        fresh = artifact(tmp_path / "fresh.json", {"raster": 1.0})
        assert bench_trend.main(["--baseline", base, "--fresh", fresh]) == 1
        assert "refresh the committed baseline" in capsys.readouterr().err

    def test_threshold_is_configurable(self, tmp_path):
        base = artifact(tmp_path / "base.json", {"raster": 2.0})
        fresh = artifact(tmp_path / "fresh.json", {"raster": 1.2})
        args = ["--baseline", base, "--fresh", fresh]
        assert bench_trend.main(args) == 1
        assert bench_trend.main(args + ["--max-regression", "0.5"]) == 0

    def test_missing_fresh_file_exit_two(self, tmp_path, capsys):
        base = artifact(tmp_path / "base.json", {"raster": 2.5})
        code = bench_trend.main(
            ["--baseline", base, "--fresh", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_empty_baseline_exit_two(self, tmp_path, capsys):
        base = artifact(tmp_path / "base.json", {})
        fresh = artifact(tmp_path / "fresh.json", {"raster": 2.5})
        assert bench_trend.main(["--baseline", base, "--fresh", fresh]) == 2
        assert "no benchmarks in baseline" in capsys.readouterr().err

    def test_committed_baseline_compares_clean_against_itself(self):
        baseline_path = str(_SCRIPT.parent.parent / "BENCH_pipeline.json")
        if not Path(baseline_path).exists():
            pytest.skip("no committed baseline in this checkout")
        code = bench_trend.main(
            ["--baseline", baseline_path, "--fresh", baseline_path]
        )
        assert code == 0

    def test_committed_baseline_gates_bucketed_rasterization(self):
        # The trend gate only protects entries recorded in the committed
        # baseline; the bucketed rasterizer must be one of them, with the
        # committed full-mode speedup clearing its own CI floor.
        baseline_path = _SCRIPT.parent.parent / "BENCH_pipeline.json"
        if not baseline_path.exists():
            pytest.skip("no committed baseline in this checkout")
        benches = bench_trend.load_benchmarks(str(baseline_path))
        assert "raster_bucketed" in benches
        entry = benches["raster_bucketed"]
        assert entry["identical"] is True
        assert entry["speedup"] >= entry["floor"] >= 1.6
