"""Tests for the declarative scenario-sweep subsystem."""

import json

import pytest

from repro.cli import main
from repro.runtime import ResultCache, stable_key
from repro.sweeps import (
    HardwareConfig,
    SweepReport,
    SweepRunner,
    SweepSpec,
    get_sweep_spec,
    list_sweep_specs,
    read_csv_rows,
    resolve_spec,
)

#: A deliberately tiny spec: 2 points, small scene, short sequence.
TINY = SweepSpec(
    name="tiny",
    scenes=("family",),
    num_gaussians=(128,),
    trajectories=("orbit", "teleport"),
    strategies=("neo",),
    hardware=(HardwareConfig(system="neo", resolution="hd"),),
    frames=3,
    capture_width=160,
    capture_height=90,
    render_width=96,
    render_height=54,
)


class TestSpecParsing:
    def test_dict_roundtrip(self):
        spec = SweepSpec.from_dict(TINY.to_dict())
        assert spec == TINY

    def test_json_roundtrip(self):
        assert SweepSpec.from_json(TINY.to_json()) == TINY

    def test_scalars_promote_to_axes(self):
        spec = SweepSpec(name="s", scenes="family", strategies="full", speeds=2.0)
        assert spec.scenes == ("family",)
        assert spec.strategies == ("full",)
        assert spec.speeds == (2.0,)

    def test_hardware_dicts_parse(self):
        spec = SweepSpec.from_dict(
            {
                "name": "hw",
                "hardware": [{"system": "gscore", "cores": 8}, {"system": "neo"}],
            }
        )
        assert spec.hardware[0].system == "gscore"
        assert spec.hardware[0].cores == 8
        assert spec.hardware[1].resolution == "qhd"

    def test_hardware_dicts_accepted_by_direct_constructor(self):
        # The constructor must normalize dict entries too, not just from_dict.
        spec = SweepSpec(name="hw", hardware=[{"system": "gscore"}])
        assert spec.hardware[0] == HardwareConfig(system="gscore")
        with pytest.raises(ValueError, match="hardware entry must be a dict"):
            SweepSpec(name="hw", hardware=("neo",))

    def test_equivalent_spellings_normalize_to_identical_specs(self):
        # Case and int-vs-float spelling must not change grid cache keys.
        a = SweepSpec(name="n", scenes=("Family",), speeds=(2,),
                      hardware=(HardwareConfig(system="neo", bandwidth_gbps=52),))
        b = SweepSpec(name="n", scenes=("family",), speeds=(2.0,),
                      hardware=(HardwareConfig(system="NEO", bandwidth_gbps=52.0),))
        assert a == b
        keys_a = [stable_key(p.cache_payload()) for p in a.points()]
        keys_b = [stable_key(p.cache_payload()) for p in b.points()]
        assert keys_a == keys_b

    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"scenes": ("atlantis",)}, "unknown scenes"),
            ({"trajectories": ("spiral",)}, "unknown trajectories"),
            ({"strategies": ("quantum",)}, "unknown strategies"),
            ({"frames": 1}, "frames"),
            ({"speeds": (0.0,)}, "speeds"),
            ({"num_gaussians": (4,)}, "num_gaussians"),
            ({"scenes": ()}, "at least one"),
            ({"render_width": 2}, "dimensions"),
        ],
    )
    def test_validation_errors(self, overrides, message):
        payload = {**TINY.to_dict(), **overrides}
        with pytest.raises(ValueError, match=message):
            SweepSpec.from_dict(payload)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep-spec keys"):
            SweepSpec.from_dict({"name": "x", "scens": ["family"]})
        with pytest.raises(ValueError, match="unknown hardware keys"):
            HardwareConfig.from_dict({"system": "neo", "bandwith": 51.2})

    def test_bad_hardware_values(self):
        with pytest.raises(ValueError, match="unknown system"):
            HardwareConfig(system="tpu")
        with pytest.raises(ValueError, match="unknown resolution"):
            HardwareConfig(resolution="8k")
        with pytest.raises(ValueError, match="bandwidth"):
            HardwareConfig(bandwidth_gbps=-1.0)

    def test_invalid_json_text(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            SweepSpec.from_json("{nope")


class TestGridExpansion:
    def test_count_is_axis_product(self):
        spec = SweepSpec(
            name="grid",
            scenes=("family", "horse"),
            num_gaussians=(64, 128, None),
            trajectories=("orbit", "pan"),
            speeds=(1.0, 2.0),
            strategies=("neo", "full"),
            hardware=(HardwareConfig(), HardwareConfig(system="gscore")),
        )
        assert spec.num_points == 2 * 3 * 2 * 2 * 2 * 2
        points = spec.points()
        assert len(points) == spec.num_points
        assert [p.index for p in points] == list(range(spec.num_points))
        # Every point is distinct.
        assert len({stable_key(p.cache_payload()) for p in points}) == spec.num_points

    def test_point_cache_keys_deterministic(self):
        first = [stable_key(p.cache_payload()) for p in TINY.points()]
        reparsed = SweepSpec.from_json(TINY.to_json())
        second = [stable_key(p.cache_payload()) for p in reparsed.points()]
        assert first == second

    def test_cache_key_independent_of_grid_position(self):
        # Slicing a spec down must not change the surviving point's key.
        wide = TINY
        narrow = SweepSpec.from_dict({**TINY.to_dict(), "trajectories": ["teleport"]})
        wide_keys = {
            p.trajectory: stable_key(p.cache_payload()) for p in wide.points()
        }
        (narrow_point,) = narrow.points()
        assert stable_key(narrow_point.cache_payload()) == wide_keys["teleport"]

    def test_cache_key_sensitive_to_parameters(self):
        base = TINY.points()[0]
        other = SweepSpec.from_dict({**TINY.to_dict(), "frames": 4}).points()[0]
        assert stable_key(base.cache_payload()) != stable_key(other.cache_payload())


class TestExecutor:
    def test_serial_parallel_and_warm_reports_identical(self, tmp_path):
        serial = SweepRunner(jobs=1, cache=None).run(TINY)
        assert serial.misses == TINY.num_points

        cache = ResultCache(tmp_path / "cache")
        parallel = SweepRunner(jobs=2, cache=cache).run(TINY)
        assert json.dumps(serial.report.to_dict(), sort_keys=True) == json.dumps(
            parallel.report.to_dict(), sort_keys=True
        )

        warm = SweepRunner(jobs=2, cache=cache).run(TINY)
        assert warm.all_cached
        assert warm.hits == TINY.num_points
        assert json.dumps(warm.report.to_dict(), sort_keys=True) == json.dumps(
            serial.report.to_dict(), sort_keys=True
        )

    def test_rows_carry_both_model_and_quality_metrics(self):
        report = SweepRunner(jobs=1, cache=None).run(TINY).report
        assert report.num_points == 2
        for row in report.rows:
            assert row["fps"] > 0
            assert row["traffic_gb_60f"] > 0
            assert 0 < row["mean_ssim"] <= 1.0
            assert row["mean_psnr_db"] >= row["min_psnr_db"]
            assert row["func_sort_mb"] > 0

    def test_measure_quality_false_skips_render_columns(self):
        spec = SweepSpec.from_dict({**TINY.to_dict(), "measure_quality": False})
        report = SweepRunner(jobs=1, cache=None).run(spec).report
        for row in report.rows:
            assert "mean_psnr_db" not in row
            assert row["fps"] > 0

    def test_batched_rows_byte_identical_and_stacked(self):
        # Four points sharing one workload capture, differing only in the
        # stackable hardware knobs, must collapse into one rollout group —
        # and produce byte-identical rows either way.
        spec = SweepSpec.from_dict(
            {
                **TINY.to_dict(),
                "trajectories": ["orbit"],
                "measure_quality": False,
                "hardware": [
                    {"system": "neo", "resolution": "hd", "bandwidth_gbps": 20},
                    {"system": "neo", "resolution": "hd", "bandwidth_gbps": 52},
                    {"system": "gscore", "resolution": "hd", "cores": 8},
                    {"system": "gscore", "resolution": "hd", "cores": 16},
                ],
            }
        )
        plain = SweepRunner(jobs=1, cache=None).run(spec)
        batched = SweepRunner(jobs=1, cache=None, batched=True).run(spec)
        assert plain.rollout is None
        assert batched.rollout is not None
        assert batched.rollout.groups == 2
        assert batched.rollout.stacked == spec.num_points
        assert batched.rollout.fallback == 0
        assert json.dumps(batched.report.to_dict(), sort_keys=True) == json.dumps(
            plain.report.to_dict(), sort_keys=True
        )

    def test_batched_quality_points_still_render_identically(self, tmp_path):
        # measure_quality rows add the functional (render) columns, which
        # never stack; the batched path must still produce them unchanged
        # and populate the cache so a warm run is all hits.
        cache = ResultCache(tmp_path / "cache")
        plain = SweepRunner(jobs=1, cache=None).run(TINY)
        batched = SweepRunner(jobs=1, cache=cache, batched=True).run(TINY)
        assert json.dumps(batched.report.to_dict(), sort_keys=True) == json.dumps(
            plain.report.to_dict(), sort_keys=True
        )
        warm = SweepRunner(jobs=1, cache=cache, batched=True).run(TINY)
        assert warm.all_cached


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        return SweepRunner(jobs=1, cache=None).run(TINY).report

    def test_json_roundtrip(self, report, tmp_path):
        path = report.write_json(tmp_path / "r.json")
        loaded = SweepReport.load_json(path)
        assert loaded.name == report.name
        assert loaded.code_version == report.code_version
        assert loaded.spec == report.spec
        assert loaded.rows == report.rows

    def test_csv_roundtrip(self, report, tmp_path):
        path = report.write_csv(tmp_path / "r.csv")
        rows = read_csv_rows(path)
        assert len(rows) == report.num_points
        for original, parsed in zip(report.rows, rows):
            for key, value in original.items():
                if isinstance(value, float):
                    assert parsed[key] == pytest.approx(value)
                else:
                    assert parsed[key] == value

    def test_markdown_table(self, report):
        text = report.to_markdown()
        assert " fps " in text
        assert report.rows[0]["point"] in text
        capped = report.to_markdown(max_rows=1)
        assert "1 more rows omitted" in capped

    def test_load_json_rejects_non_reports(self, tmp_path):
        path = tmp_path / "not_report.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="missing keys"):
            SweepReport.load_json(path)


class TestRegistry:
    def test_predefined_specs_listed_and_valid(self):
        names = list_sweep_specs()
        for expected in ("smoke", "neo_vs_baselines", "motion_stress", "scaling"):
            assert expected in names
        for name in names:
            spec = get_sweep_spec(name)
            assert spec.num_points >= 2
            # Each predefined spec re-validates through a dict round-trip.
            assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_sweep_spec("nope")
        with pytest.raises(KeyError):
            resolve_spec("nope")

    def test_resolve_spec_file(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(TINY.to_json())
        assert resolve_spec(str(path)) == TINY
        with pytest.raises(FileNotFoundError):
            resolve_spec(str(tmp_path / "missing.json"))


class TestSweepCli:
    def test_run_cold_then_warm_require_cached(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(TINY.to_json())
        cache_dir = str(tmp_path / "cache")
        out_cold = tmp_path / "cold"
        out_warm = tmp_path / "warm"

        rc = main(
            ["sweep", "run", "--spec", str(spec_path), "--cache-dir", cache_dir,
             "--out", str(out_cold)]
        )
        assert rc == 0
        assert "0 from cache" in capsys.readouterr().out

        rc = main(
            ["sweep", "run", "--spec", str(spec_path), "--cache-dir", cache_dir,
             "--out", str(out_warm), "--require-cached"]
        )
        assert rc == 0
        assert f"{TINY.num_points} from cache" in capsys.readouterr().out

        cold = (out_cold / "tiny.json").read_bytes()
        warm = (out_warm / "tiny.json").read_bytes()
        assert cold == warm
        assert (out_cold / "tiny.csv").exists()
        assert (out_cold / "tiny.md").exists()

    def test_require_cached_fails_cold(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(TINY.to_json())
        rc = main(
            ["sweep", "run", "--spec", str(spec_path), "--cache-dir",
             str(tmp_path / "cache"), "--require-cached"]
        )
        assert rc == 1
        assert "recomputed" in capsys.readouterr().err

    def test_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "motion_stress" in out and "smoke" in out

    def test_report_roundtrip(self, tmp_path, capsys):
        report = SweepRunner(jobs=1, cache=None).run(TINY).report
        path = report.write_json(tmp_path / "tiny.json")
        assert main(["sweep", "report", str(path)]) == 0
        assert report.rows[0]["point"] in capsys.readouterr().out

    def test_report_bad_source(self, tmp_path, capsys):
        assert main(["sweep", "report", str(tmp_path / "missing.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_run_unknown_spec(self, capsys):
        assert main(["sweep", "run", "--spec", "definitely_not_a_spec"]) == 2
        assert "unknown sweep" in capsys.readouterr().err
