"""Unit tests for frustum culling."""

import numpy as np
import pytest

from repro.pipeline.culling import CullingResult, frustum_cull
from repro.scene import Camera, GaussianScene, look_at


def _point_scene(points) -> GaussianScene:
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    return GaussianScene(
        means=points,
        scales=np.full((n, 3), 1e-3),
        quats=quats,
        opacities=np.full(n, 0.9),
        sh_coeffs=np.zeros((n, 1, 3)),
    )


@pytest.fixture()
def forward_camera():
    return Camera.from_fov(
        width=100, height=100, fov_y_degrees=90.0,
        world_to_camera=look_at(np.zeros(3), np.array([0.0, 0.0, 10.0])),
        near=0.5, far=100.0,
    )


class TestFrustumCull:
    def test_keeps_points_in_front(self, forward_camera):
        scene = _point_scene([[0, 0, 5], [0, 0, 50]])
        result = frustum_cull(scene, forward_camera)
        assert result.num_visible == 2

    def test_discards_behind_camera(self, forward_camera):
        scene = _point_scene([[0, 0, -5], [0, 0, 5]])
        result = frustum_cull(scene, forward_camera)
        assert list(result.visible_ids) == [1]

    def test_discards_beyond_far(self, forward_camera):
        scene = _point_scene([[0, 0, 500]])
        assert frustum_cull(scene, forward_camera).num_visible == 0

    def test_discards_far_lateral(self, forward_camera):
        # 90 degree fov: at z=5 the frustum half-width is 5; 1.3x margin ~ 6.5.
        scene = _point_scene([[20, 0, 5], [3, 0, 5]])
        result = frustum_cull(scene, forward_camera)
        assert list(result.visible_ids) == [1]

    def test_margin_keeps_boundary_points(self, forward_camera):
        scene = _point_scene([[5.8, 0, 5]])  # outside strict frustum, inside 1.3x
        assert frustum_cull(scene, forward_camera).num_visible == 1

    def test_large_gaussian_near_boundary_kept(self, forward_camera):
        scene = _point_scene([[8.0, 0, 5]])
        strict = frustum_cull(scene, forward_camera)
        assert strict.num_visible == 0
        fat = GaussianScene(
            means=scene.means,
            scales=np.full((1, 3), 1.0),  # 3-sigma pad = 3 units
            quats=scene.quats,
            opacities=scene.opacities,
            sh_coeffs=scene.sh_coeffs,
        )
        assert frustum_cull(fat, forward_camera).num_visible == 1

    def test_rejects_margin_below_one(self, forward_camera):
        scene = _point_scene([[0, 0, 5]])
        with pytest.raises(ValueError):
            frustum_cull(scene, forward_camera, margin=0.5)

    def test_cull_rate(self, forward_camera):
        scene = _point_scene([[0, 0, 5], [0, 0, -5], [0, 0, 500], [0, 0, 2]])
        result = frustum_cull(scene, forward_camera)
        assert result.cull_rate == pytest.approx(0.5)

    def test_empty_scene(self, forward_camera):
        result = frustum_cull(_point_scene(np.zeros((0, 3))), forward_camera)
        assert result.num_visible == 0
        assert result.cull_rate == 0.0

    def test_visible_ids_sorted(self, small_scene, camera):
        result = frustum_cull(small_scene, camera)
        assert isinstance(result, CullingResult)
        assert (np.diff(result.visible_ids) > 0).all()
