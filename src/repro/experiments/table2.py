"""Table 2 — rendering-quality comparison: original 3DGS vs Neo.

The claim: Neo's reuse-and-update sorting degrades quality imperceptibly
(PSNR delta <= 0.1 dB, LPIPS delta <= 0.001).  The paper measures both
pipelines against captured ground-truth photographs; synthetic scenes have
no photographs, so both pipelines are measured against a golden reference
rendered with exact sorting at 2x supersampling and box-downsampled.  Both
pipelines then sit tens of dB away from the reference for the *same*
reason (finite sampling), and the table's quantity of interest — the delta
Neo's approximate ordering introduces on top — is preserved.
"""

from __future__ import annotations

import numpy as np

from ..core.strategies import NeoSortStrategy
from ..metrics.image import lpips_proxy, psnr
from ..pipeline.renderer import ExactSortStrategy, Renderer
from ..scene.datasets import TANKS_AND_TEMPLES, default_trajectory, load_scene
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

DESCRIPTION = "Quality: original 3DGS vs Neo (PSNR dB / LPIPS proxy)"


def _golden_frames(scene, cameras) -> list[np.ndarray]:
    """Golden reference: exact sorting at 2x resolution, box-downsampled."""
    golden = []
    renderer = Renderer(scene, strategy=ExactSortStrategy())
    for i, camera in enumerate(cameras):
        hi_cam = camera.with_resolution(camera.width * 2, camera.height * 2)
        record = renderer.render(hi_cam, frame_index=i)
        image = record.image
        down = 0.25 * (
            image[0::2, 0::2] + image[1::2, 0::2] + image[0::2, 1::2] + image[1::2, 1::2]
        )
        golden.append(down)
    return golden


def plan(
    scenes=TANKS_AND_TEMPLES,
    num_frames: int = 5,
    width: int = 224,
    height: int = 126,
    num_gaussians: int = 2500,
) -> ExperimentPlan:
    """No simulation cells: the work is golden / exact / Neo renders."""

    def aggregate(_cells) -> ExperimentResult:
        return _measure(scenes, num_frames, width, height, num_gaussians)

    return ExperimentPlan("table2", DESCRIPTION, (), aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    num_frames: int = 5,
    width: int = 224,
    height: int = 126,
    num_gaussians: int = 2500,
) -> ExperimentResult:
    """Per-scene PSNR/LPIPS of exact sorting and Neo against a golden render."""
    return execute_plan(
        plan(
            scenes=scenes,
            num_frames=num_frames,
            width=width,
            height=height,
            num_gaussians=num_gaussians,
        )
    )


def _measure(scenes, num_frames, width, height, num_gaussians) -> ExperimentResult:
    result = ExperimentResult(name="table2", description=DESCRIPTION)
    for scene_name in scenes:
        scene = load_scene(scene_name, num_gaussians=num_gaussians)
        cameras = default_trajectory(
            scene_name, num_frames=num_frames, width=width, height=height
        )
        golden = _golden_frames(scene, cameras)

        exact = Renderer(scene, strategy=ExactSortStrategy()).render_sequence(cameras)
        neo = Renderer(scene, strategy=NeoSortStrategy()).render_sequence(cameras)

        def _mean_quality(records):
            scores_psnr = [psnr(g, r.image) for g, r in zip(golden, records)]
            scores_lpips = [lpips_proxy(g, r.image) for g, r in zip(golden, records)]
            return float(np.mean(scores_psnr)), float(np.mean(scores_lpips))

        base_psnr, base_lpips = _mean_quality(exact)
        neo_psnr, neo_lpips = _mean_quality(neo)
        result.rows.append(
            {
                "scene": scene_name,
                "psnr_3dgs": base_psnr,
                "lpips_3dgs": base_lpips,
                "psnr_neo": neo_psnr,
                "lpips_neo": neo_lpips,
                "psnr_delta": base_psnr - neo_psnr,
                "lpips_delta": neo_lpips - base_lpips,
            }
        )
    return result
