"""Unit tests for the GaussianScene container."""

import numpy as np
import pytest

from repro.scene.gaussians import (
    FEATURE_TABLE_ENTRY_BYTES,
    GaussianScene,
    build_covariances,
    quaternions_to_rotations,
)


def _make_scene(n=10, seed=0, sh_k=4):
    rng = np.random.default_rng(seed)
    quats = rng.normal(size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return GaussianScene(
        means=rng.normal(size=(n, 3)),
        scales=rng.uniform(0.01, 0.2, size=(n, 3)),
        quats=quats,
        opacities=rng.uniform(0.1, 1.0, size=n),
        sh_coeffs=rng.normal(size=(n, sh_k, 3)) * 0.1,
        name="test",
    )


class TestRotations:
    def test_identity_quaternion(self):
        rot = quaternions_to_rotations(np.array([[1.0, 0, 0, 0]]))
        assert np.allclose(rot[0], np.eye(3))

    def test_orthonormal(self, rng):
        quats = rng.normal(size=(25, 4))
        rot = quaternions_to_rotations(quats)
        eye = rot @ rot.transpose(0, 2, 1)
        assert np.allclose(eye, np.eye(3)[None], atol=1e-10)
        assert np.allclose(np.linalg.det(rot), 1.0)

    def test_unnormalized_quats_accepted(self):
        rot_a = quaternions_to_rotations(np.array([[2.0, 0, 0, 0]]))
        assert np.allclose(rot_a[0], np.eye(3))

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            quaternions_to_rotations(np.zeros((1, 4)))


class TestCovariances:
    def test_diagonal_for_identity_rotation(self):
        scales = np.array([[1.0, 2.0, 3.0]])
        cov = build_covariances(scales, np.array([[1.0, 0, 0, 0]]))
        assert np.allclose(cov[0], np.diag([1.0, 4.0, 9.0]))

    def test_positive_definite(self, rng):
        scales = rng.uniform(0.05, 1.0, size=(30, 3))
        quats = rng.normal(size=(30, 4))
        cov = build_covariances(scales, quats)
        eig = np.linalg.eigvalsh(cov)
        assert (eig > 0).all()

    def test_determinant_is_scale_product_squared(self, rng):
        scales = rng.uniform(0.1, 1.0, size=(10, 3))
        quats = rng.normal(size=(10, 4))
        cov = build_covariances(scales, quats)
        assert np.allclose(np.linalg.det(cov), np.prod(scales, axis=1) ** 2)


class TestScene:
    def test_len_and_properties(self):
        scene = _make_scene(12)
        assert len(scene) == 12
        assert scene.num_gaussians == 12
        assert scene.sh_degree == 1
        assert scene.feature_table_bytes() == 12 * FEATURE_TABLE_ENTRY_BYTES

    def test_covariances_cached(self):
        scene = _make_scene(5)
        assert scene.covariances() is scene.covariances()

    def test_subset_preserves_order(self):
        scene = _make_scene(10)
        sub = scene.subset(np.array([3, 1, 7]))
        assert len(sub) == 3
        assert np.allclose(sub.means[0], scene.means[3])
        assert np.allclose(sub.means[1], scene.means[1])

    def test_bounding_box(self):
        scene = _make_scene(50)
        lo, hi = scene.bounding_box()
        assert (lo <= scene.means).all() and (scene.means <= hi).all()

    def test_concatenate(self):
        a, b = _make_scene(4, seed=1), _make_scene(6, seed=2)
        merged = GaussianScene.concatenate([a, b])
        assert len(merged) == 10
        assert np.allclose(merged.means[:4], a.means)

    def test_concatenate_rejects_mixed_degrees(self):
        a = _make_scene(4, sh_k=1)
        b = _make_scene(4, sh_k=4)
        with pytest.raises(ValueError):
            GaussianScene.concatenate([a, b])

    def test_validation_rejects_bad_scales(self):
        scene = _make_scene(3)
        with pytest.raises(ValueError):
            GaussianScene(
                means=scene.means,
                scales=np.zeros((3, 3)),
                quats=scene.quats,
                opacities=scene.opacities,
                sh_coeffs=scene.sh_coeffs,
            )

    def test_validation_rejects_bad_opacities(self):
        scene = _make_scene(3)
        bad = scene.opacities.copy()
        bad[0] = 1.5
        with pytest.raises(ValueError):
            GaussianScene(
                means=scene.means,
                scales=scene.scales,
                quats=scene.quats,
                opacities=bad,
                sh_coeffs=scene.sh_coeffs,
            )

    def test_validation_rejects_misaligned_arrays(self):
        scene = _make_scene(3)
        with pytest.raises(ValueError):
            GaussianScene(
                means=scene.means,
                scales=scene.scales[:2],
                quats=scene.quats,
                opacities=scene.opacities,
                sh_coeffs=scene.sh_coeffs,
            )
