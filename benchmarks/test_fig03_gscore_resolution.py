"""Bench: Fig. 3 — GSCore throughput vs resolution (4 cores, 51.2 GB/s)."""

import numpy as np

from repro.experiments import fig03

from conftest import run_once


def test_fig03_gscore_resolution(benchmark, bench_frames):
    result = run_once(benchmark, fig03.run, num_frames=bench_frames)
    print("\n" + result.to_text())

    by_res = {
        res: np.mean([r["fps"] for r in result.rows if r["resolution"] == res])
        for res in ("hd", "fhd", "qhd")
    }
    # Paper: 66.7 / 31.1 / 15.8 FPS — monotone collapse with resolution,
    # QHD far below the 60 FPS SLO, roughly 2x per resolution step.
    assert by_res["hd"] > by_res["fhd"] > by_res["qhd"]
    assert by_res["qhd"] < 30.0
    assert by_res["hd"] / by_res["qhd"] > 2.0
