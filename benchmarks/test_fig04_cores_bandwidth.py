"""Bench: Fig. 4 — GSCore QHD FPS across core counts and DRAM bandwidths."""

import pytest

from repro.experiments import fig04

from conftest import run_once

pytestmark = pytest.mark.slow


def test_fig04_cores_bandwidth(benchmark, bench_frames):
    result = run_once(benchmark, fig04.run, num_frames=bench_frames)
    print("\n" + result.to_text())

    # Paper: at 51.2 GB/s, 4x cores buys only ~1.12x; at 16 cores, 4x
    # bandwidth buys ~3.8x — memory bandwidth is the bottleneck.
    core_gain = fig04.core_scaling_at(result, 51.2)
    bw_gain = fig04.bandwidth_scaling_at(result, 16)
    assert core_gain < 1.5
    assert bw_gain > 2.5
    assert bw_gain > 2 * core_gain

    # Only the highest-bandwidth, highest-core corner reaches the 60 FPS SLO.
    best = result.filter(bandwidth_gbps=204.8, cores=16)[0]["fps"]
    worst = result.filter(bandwidth_gbps=51.2, cores=4)[0]["fps"]
    assert best > 45.0
    assert worst < 25.0
