"""NumPy backend: the default, the fallback target, and the bit-identity anchor.

Every op is the numpy call the cores made before the shim existed — an
alias where the vocabulary signature matches numpy's, a minimal wrapper
where the vocabulary flattens a ufunc-method spelling (``reduceat``,
``accumulate_*``).  Running under this backend therefore *is* the frozen
reference execution the `test_*_reference.py` suites pin, not an
approximation of it.
"""

from __future__ import annotations

import numpy as np


def _reduceat(data, starts, ufunc=np.add):
    return ufunc.reduceat(data, starts)


#: Inner-block size above which the level-loop formulation of
#: ``accumulate_multiply`` beats ``ufunc.accumulate``.  The generic strided
#: accumulate inner loop runs ~8x slower than a contiguous vectorized
#: multiply, so for large planes a Python loop over levels — performing
#: the *identical* multiply sequence ``out[m] = out[m - 1] * a[m]``,
#: strictly left to right — is both bit-identical and much faster.  Small
#: planes stay on ``ufunc.accumulate`` where per-call overhead dominates.
_LEVEL_LOOP_MIN_INNER = 4096


def _accumulate_multiply(a, axis=0, out=None):
    if axis == 0 and a.ndim >= 2 and a[0].size >= _LEVEL_LOOP_MIN_INNER:
        if out is None:
            out = a.copy()
        elif out is not a:
            out[...] = a
        for m in range(1, out.shape[0]):
            np.multiply(out[m - 1], out[m], out=out[m])
        return out
    return np.multiply.accumulate(a, axis=axis, out=out)


def _accumulate_add(a, axis=0, out=None):
    return np.add.accumulate(a, axis=axis, out=out)


def build():
    from .dispatch import Backend

    return Backend(
        name="numpy",
        available=True,
        detail=f"numpy {np.__version__}",
        ops={
            "argsort": np.argsort,
            "lexsort": np.lexsort,
            "sort": np.sort,
            "searchsorted": np.searchsorted,
            "cumsum": np.cumsum,
            "repeat": np.repeat,
            "reduceat": _reduceat,
            "accumulate_multiply": _accumulate_multiply,
            "accumulate_add": _accumulate_add,
            "exp": np.exp,
            "minimum": np.minimum,
            "maximum": np.maximum,
            "where": np.where,
            "clip": np.clip,
            "frexp": np.frexp,
        },
    )
