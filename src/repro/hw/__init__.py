"""Hardware performance models: Neo accelerator, GSCore, Orin AGX GPU."""

from .accelerator import NeoModel
from .area_power import (
    AreaPowerEntry,
    gscore_summary,
    neo_breakdown,
    neo_summary,
    scale_technology,
)
from .config import (
    EDGE_BANDWIDTH_GBPS,
    ORIN_BANDWIDTH_GBPS,
    DramConfig,
    GpuConfig,
    GSCoreConfig,
    NeoConfig,
)
from .dram import DramModel, TrafficLedger
from .energy import (
    DRAM_PJ_PER_BYTE,
    EnergyReport,
    efficiency_comparison,
    energy_report,
)
from .gpu import OrinGpuModel
from .gscore import GSCoreModel
from .preprocess_engine import PreprocessEngineSim, PreprocessReport
from .raster_engine import (
    RasterEngineReport,
    RasterEngineSim,
    SubtileGroupWork,
    TileTimeline,
    groups_for_tile,
    rasterize_tile_timeline,
)
from .sorting_engine import (
    ChunkJob,
    SortingEngineReport,
    SortingEngineSim,
    chunk_compute_cycles,
    jobs_from_occupancy,
)
from .stages import (
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    FrameReport,
    SequenceReport,
    StageTraffic,
    effective_pairs,
)
from .system import (
    FrameBatch,
    ReportBatch,
    SystemModel,
    SystemSpec,
    TrafficBatch,
    get_system,
    iter_systems,
    register_system,
    register_variant,
    registered_systems,
)
from .workload import FrameGeometry, FrameWorkload, WorkloadModel, pair_lists

__all__ = [
    "AreaPowerEntry",
    "DRAM_PJ_PER_BYTE",
    "DramConfig",
    "DramModel",
    "EnergyReport",
    "efficiency_comparison",
    "energy_report",
    "EDGE_BANDWIDTH_GBPS",
    "FEATURE_2D_BYTES",
    "FEATURE_3D_BYTES",
    "FrameBatch",
    "FrameGeometry",
    "FrameReport",
    "FrameWorkload",
    "GSCoreConfig",
    "GSCoreModel",
    "GpuConfig",
    "NeoConfig",
    "NeoModel",
    "ORIN_BANDWIDTH_GBPS",
    "OrinGpuModel",
    "ChunkJob",
    "PreprocessEngineSim",
    "PreprocessReport",
    "RasterEngineReport",
    "RasterEngineSim",
    "SortingEngineReport",
    "SortingEngineSim",
    "SubtileGroupWork",
    "TileTimeline",
    "chunk_compute_cycles",
    "groups_for_tile",
    "jobs_from_occupancy",
    "rasterize_tile_timeline",
    "ReportBatch",
    "SequenceReport",
    "StageTraffic",
    "SystemModel",
    "SystemSpec",
    "TrafficBatch",
    "TrafficLedger",
    "WorkloadModel",
    "effective_pairs",
    "get_system",
    "iter_systems",
    "register_system",
    "register_variant",
    "registered_systems",
    "gscore_summary",
    "neo_breakdown",
    "neo_summary",
    "pair_lists",
    "scale_technology",
]
