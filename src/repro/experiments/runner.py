"""Shared infrastructure for the per-figure experiment drivers.

Each driver in this package regenerates one table or figure from the paper:
it builds the required workloads, runs the relevant system models or the
functional pipeline, and returns an :class:`ExperimentResult` whose rows
mirror the figure's data series.  Workload models are cached per
(scene, frames, speed, count) so multi-figure runs don't re-project scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..hw.accelerator import NeoModel
from ..hw.config import DramConfig, GSCoreConfig
from ..hw.gpu import OrinGpuModel
from ..hw.gscore import GSCoreModel
from ..hw.stages import SequenceReport
from ..hw.workload import WorkloadModel

#: Frames simulated per sequence.  The paper renders 60; traffic totals are
#: reported via :meth:`SequenceReport.traffic_gb_for` so the extrapolation
#: is explicit.
DEFAULT_FRAMES = 12

#: Frames the paper's traffic figures accumulate over.
PAPER_TRAFFIC_FRAMES = 60


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig15"``).
    description:
        What the paper figure/table shows.
    rows:
        One dict per data point, mirroring the figure's series.
    """

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the rows as an aligned text table."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        keys = list(self.rows[0].keys())
        widths = {
            k: max(len(k), *(len(_fmt(r.get(k))) for r in self.rows)) for k in keys
        }
        header = "  ".join(k.ljust(widths[k]) for k in keys)
        lines = [f"== {self.name}: {self.description} ==", header]
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys))
        return "\n".join(lines)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]

    def filter(self, **conditions) -> "list[dict]":
        """Rows matching all key=value conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


@lru_cache(maxsize=64)
def get_workload_model(
    scene: str,
    num_frames: int = DEFAULT_FRAMES,
    speed: float = 1.0,
    num_gaussians: int | None = None,
) -> WorkloadModel:
    """Memoized workload-model capture for a scene preset."""
    return WorkloadModel.from_scene(
        scene, num_frames=num_frames, speed=speed, num_gaussians=num_gaussians
    )


def simulate_system(
    system: str,
    scene: str,
    resolution: str,
    num_frames: int = DEFAULT_FRAMES,
    speed: float = 1.0,
    cores: int = 16,
    bandwidth_gbps: float = 51.2,
    **model_kwargs,
) -> SequenceReport:
    """Simulate one (system, scene, resolution) cell.

    ``system`` is one of ``"orin"``, ``"gscore"``, ``"neo"``, ``"neo-s"``,
    ``"orin-neo-sw"``.  ASIC models use the edge DRAM bandwidth; the GPU
    always runs at Orin's native 204.8 GB/s.
    """
    wm = get_workload_model(scene, num_frames=num_frames, speed=speed)
    dram = DramConfig(bandwidth_gbps=bandwidth_gbps)
    if system == "orin":
        model = OrinGpuModel(**model_kwargs)
        tile = model.config.tile_size
    elif system == "orin-neo-sw":
        model = OrinGpuModel(neo_software=True, **model_kwargs)
        tile = model.config.tile_size
    elif system == "gscore":
        model = GSCoreModel(config=GSCoreConfig(cores=cores), dram=dram, **model_kwargs)
        tile = model.config.tile_size
    elif system == "neo":
        model = NeoModel(dram=dram, **model_kwargs)
        tile = model.config.tile_size
    elif system == "neo-s":
        model = NeoModel(dram=dram, sorting_engine_only=True, **model_kwargs)
        tile = model.config.tile_size
    else:
        raise KeyError(f"unknown system {system!r}")
    workloads = wm.sequence_workloads(resolution, tile)
    return model.simulate(workloads, scene=scene)
