"""Extension experiment: sensitivity to DRAM bandwidth.

The flip side of Neo's traffic reduction (not a numbered figure, but the
direct consequence of section 6.2's claim that Neo "can perform computations
without being bottlenecked by the bandwidth constraints"): sweeping the
memory system across the 17.8-59.7 GB/s practical on-device range cited in
section 3.2 and beyond, Neo reaches the 60 FPS SLO at a fraction of the
bandwidth GSCore would need — GSCore stays memory-bound and sub-real-time
even at 4x the edge budget.
"""

from __future__ import annotations

from ..hw.accelerator import NeoModel
from ..hw.config import DramConfig, GSCoreConfig
from ..hw.gscore import GSCoreModel
from .runner import ExperimentResult, get_workload_model

BANDWIDTHS_GBPS = (17.8, 25.6, 38.4, 51.2, 76.8, 102.4, 204.8)


def run(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    bandwidths=BANDWIDTHS_GBPS,
) -> ExperimentResult:
    """Neo and GSCore FPS across DRAM bandwidths at QHD."""
    wm = get_workload_model(scene, num_frames=num_frames)
    w64 = wm.sequence_workloads(resolution, 64)
    w16 = wm.sequence_workloads(resolution, 16)
    result = ExperimentResult(
        name="bandwidth_sweep",
        description="FPS vs DRAM bandwidth: Neo saturates, GSCore stays memory-bound",
    )
    for bandwidth in bandwidths:
        dram = DramConfig(bandwidth_gbps=bandwidth)
        neo = NeoModel(dram=dram).simulate(w64, scene=scene)
        gscore = GSCoreModel(config=GSCoreConfig(), dram=dram).simulate(w16, scene=scene)
        result.rows.append(
            {
                "bandwidth_gbps": bandwidth,
                "neo_fps": neo.fps,
                "gscore_fps": gscore.fps,
                "neo_realtime": neo.fps >= 60.0,
            }
        )
    return result


def realtime_bandwidth(result: ExperimentResult, system: str = "neo", slo_fps: float = 60.0) -> float:
    """Smallest swept bandwidth at which ``system`` meets the FPS SLO.

    Returns infinity if the system never reaches the SLO in the sweep.
    """
    key = f"{system}_fps"
    for row in sorted(result.rows, key=lambda r: r["bandwidth_gbps"]):
        if row[key] >= slo_fps:
            return row["bandwidth_gbps"]
    return float("inf")
