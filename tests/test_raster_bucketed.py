"""Randomized property suite: bucketed whole-frame rasterization vs the pin.

The occupancy-bucketed :func:`repro.pipeline.rasterizer.rasterize` must be
bit-identical to the frozen scalar reference — images, ``valid_bits``, and
every :class:`RasterStats` counter — across tile sizes, subtile sizes,
skewed occupancy distributions (one mega-tile among near-empty ones),
all-empty frames, single-pixel tiles, and forced mid-stack termination.
"""

import numpy as np
import pytest

from repro.pipeline import reference as ref
from repro.pipeline.projection import ProjectedGaussians
from repro.pipeline.rasterizer import rasterize
from repro.pipeline.sorting import sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles


def _assert_raster_equal(got, want):
    assert np.array_equal(got.image, want.image)
    assert got.valid_bits.keys() == want.valid_bits.keys()
    for tile, bits in got.valid_bits.items():
        assert np.array_equal(bits, want.valid_bits[tile])
    assert got.stats == want.stats


def _projection(rng, means2d, radii, opacities, depths=None, colors=None):
    """ProjectedGaussians from explicit placements (random shapes otherwise)."""
    n = len(means2d)
    means2d = np.asarray(means2d, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    sigma = (radii / 3.0) ** 2 * rng.uniform(0.5, 1.5, size=n)
    ids = np.sort(rng.choice(10 * n + 10, size=n, replace=False)).astype(np.int64)
    return ProjectedGaussians(
        ids=ids,
        means2d=means2d,
        cov2d=np.stack([np.diag([s, s]) for s in sigma]),
        conic=np.stack(
            [1.0 / sigma, rng.uniform(-0.05, 0.05, n) / sigma, 1.0 / sigma], axis=1
        ),
        depths=rng.uniform(0.5, 20.0, size=n) if depths is None else np.asarray(depths, dtype=np.float64),
        radii=radii,
        colors=rng.uniform(0.0, 1.0, size=(n, 3)) if colors is None else np.asarray(colors, dtype=np.float64),
        opacities=np.asarray(opacities, dtype=np.float64),
    )


def _random_frame(rng, n, width, height):
    return _projection(
        rng,
        means2d=rng.uniform((-8.0, -8.0), (width + 8.0, height + 8.0), size=(n, 2)),
        radii=rng.uniform(0.5, 12.0, size=n),
        # Many opacities below MIN_ALPHA: exercises the validity masking.
        opacities=rng.uniform(0.001, 1.0, size=n),
    )


def _compare(proj, grid, **kwargs):
    sorted_tiles = sort_tiles(assign_to_tiles(proj, grid))
    got = rasterize(sorted_tiles, proj, grid, **kwargs)
    kwargs.pop("chunk_size", None)  # the scalar pin has no chunking knob
    want = ref.rasterize(sorted_tiles, proj, grid, **kwargs)
    _assert_raster_equal(got, want)
    return got


class TestBucketedRandomized:
    @pytest.mark.parametrize("tile_size", [16, 64])
    @pytest.mark.parametrize("subtile", [8, 4, None])
    def test_random_frames_bitwise_identical(self, tile_size, subtile):
        rng = np.random.default_rng(1000 * tile_size + (subtile or 0))
        for trial in range(3):
            n = int(rng.integers(20, 200))
            proj = _random_frame(rng, n, width=120, height=72)
            grid = TileGrid(width=120, height=72, tile_size=tile_size)
            for termination in (1e-4, 0.5):
                _compare(proj, grid, subtile_size=subtile, termination=termination)

    def test_skewed_occupancy_mega_tile(self):
        # One tile loaded with a deep stack, the rest nearly empty: the
        # mega-tile lands in its own occupancy bucket, the near-empty tiles
        # in shallow ones — every combination must match the pin.
        rng = np.random.default_rng(42)
        heavy_n, light_n = 160, 24
        heavy = rng.uniform((17.0, 17.0), (30.0, 30.0), size=(heavy_n, 2))
        light = rng.uniform((0.0, 0.0), (128.0, 80.0), size=(light_n, 2))
        proj = _projection(
            rng,
            means2d=np.concatenate([heavy, light]),
            radii=np.concatenate(
                [rng.uniform(0.5, 5.0, heavy_n), rng.uniform(0.5, 2.0, light_n)]
            ),
            opacities=rng.uniform(0.01, 1.0, heavy_n + light_n),
        )
        grid = TileGrid(width=128, height=80, tile_size=16)
        got = _compare(proj, grid)
        assert got.stats.blend_ops > 0

    def test_all_empty_frame(self):
        # Every splat falls outside the image: the stream has no nonempty
        # tiles and both paths must return the bare background.
        rng = np.random.default_rng(7)
        proj = _projection(
            rng,
            means2d=np.full((5, 2), -500.0),
            radii=np.full(5, 1.5),
            opacities=np.full(5, 0.9),
        )
        grid = TileGrid(width=64, height=48, tile_size=16)
        got = _compare(proj, grid, background=(0.2, 0.4, 0.6))
        assert np.array_equal(got.image[..., 0], np.full((48, 64), 0.2))
        assert got.stats.blend_ops == 0
        assert not got.valid_bits

    def test_single_pixel_tiles(self):
        # tile_size=1 makes every tile one pixel — maximal tile count,
        # minimal occupancy, and edge tiles everywhere.
        rng = np.random.default_rng(11)
        proj = _random_frame(rng, 40, width=24, height=16)
        grid = TileGrid(width=24, height=16, tile_size=1)
        _compare(proj, grid)

    @pytest.mark.parametrize("chunk_size", [3, 64])
    def test_forced_mid_stack_termination(self, chunk_size):
        # Deep stacks of near-opaque splats with an aggressive termination
        # threshold: tiles must stop partway down the stack, and the
        # bucketed stop selection must reproduce the scalar loop's exact
        # early-termination point and stats.
        rng = np.random.default_rng(23)
        n = 48
        proj = _projection(
            rng,
            means2d=np.tile([[24.0, 24.0]], (n, 1)) + rng.uniform(-3, 3, size=(n, 2)),
            radii=np.full(n, 20.0),
            opacities=np.full(n, 0.99),
            depths=np.arange(1, n + 1, dtype=np.float64),
        )
        grid = TileGrid(width=48, height=48, tile_size=16)
        got = _compare(proj, grid, termination=0.5, chunk_size=chunk_size)
        assert got.stats.early_terminated_tiles > 0
        # Termination must have cut the work short of the full stack.
        assert got.stats.gaussians_processed < n * grid.num_tiles
