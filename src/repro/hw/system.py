"""Shared system-model base and the pluggable hardware-backend registry.

Two things live here, deliberately together because they form one contract:

* :class:`SystemModel` — the base every hardware backend (Orin GPU, GSCore,
  Neo, ...) derives from.  It owns the generic per-sequence loop — workload
  list → :class:`~repro.hw.stages.StageTraffic` →
  :class:`~repro.hw.stages.FrameReport` →
  :class:`~repro.hw.stages.SequenceReport` — **vectorized across frames**:
  per-frame workload statistics are stacked into a :class:`FrameBatch` of
  NumPy arrays and each backend supplies only its model-specific traffic and
  latency equations as elementwise array expressions.  Because every
  operation is an IEEE-754 elementwise op on float64, the vectorized core is
  bit-identical to the historical per-frame Python loop (pinned by the
  golden equivalence tests against :mod:`repro.hw.reference`).

* The **system registry** — ``@register_system`` declares a backend by name
  with its metadata (description, DRAM policy, config class) and a factory;
  :func:`register_variant` derives further systems purely declaratively as
  keyword overlays on a base entry (``neo-s`` = ``neo`` +
  ``sorting_engine_only=True``).  Every consumer — the experiment runner,
  the engine's :class:`~repro.experiments.engine.SimJob` validation, sweep
  specs, the CLI — resolves system names through :func:`get_system`, so an
  unknown name always reports the true option list and registering a new
  backend is one decorator away.
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, fields
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..backend import core_ops
from .stages import FrameReport, SequenceReport, StageTraffic
from .workload import FrameWorkload

#: Ops the FrameBatch core dispatches through the pluggable array backend.
_XP = core_ops("system", "minimum", "where")


# ----------------------------------------------------------------------
# FrameBatch: per-frame workload statistics stacked over the frame axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrameBatch:
    """Workload statistics for a frame sequence as arrays over the frame axis.

    Field-for-field mirror of :class:`~repro.hw.workload.FrameWorkload`, with
    every per-frame scalar stacked into a length-``num_frames`` array so the
    models' traffic/latency equations evaluate once per sequence instead of
    once per frame.
    """

    frame_index: np.ndarray
    width: np.ndarray
    height: np.ndarray
    num_gaussians: np.ndarray
    visible: np.ndarray
    pairs: np.ndarray
    incoming_pairs: np.ndarray
    outgoing_pairs: np.ndarray
    nonempty_tiles: np.ndarray
    mean_occupancy: np.ndarray

    @classmethod
    def from_workloads(cls, workloads: list[FrameWorkload]) -> "FrameBatch":
        """Stack a workload list into frame-axis arrays.

        One pass over the workloads into a single (frames, fields) float64
        matrix — this is on the hot path of every ``simulate()`` call.  The
        integer-valued columns (frame index, dimensions, tile counts) are
        exact in float64, so sharing one dtype costs no precision.
        """
        if not workloads:
            raise ValueError("need at least one workload")
        data = np.array(
            [
                (
                    w.frame_index,
                    w.width,
                    w.height,
                    w.num_gaussians,
                    w.visible,
                    w.pairs,
                    w.incoming_pairs,
                    w.outgoing_pairs,
                    w.nonempty_tiles,
                    w.mean_occupancy,
                )
                for w in workloads
            ],
            dtype=np.float64,
        )
        return cls(*data.T)

    @property
    def num_frames(self) -> int:
        """Frames in the batch."""
        return int(self.frame_index.shape[0])

    @property
    def pixels(self) -> np.ndarray:
        """Output pixels per frame (framebuffer size)."""
        return self.width * self.height

    def effective_pairs(self, termination_depth: float) -> np.ndarray:
        """Vectorized :func:`repro.hw.stages.effective_pairs` (per frame)."""
        xp = _XP()
        per_tile = xp.minimum(self.mean_occupancy, termination_depth)
        return xp.where(self.nonempty_tiles == 0, 0.0, per_tile * self.nonempty_tiles)


@dataclass(frozen=True)
class TrafficBatch:
    """Per-stage DRAM traffic in bytes, as arrays over the frame axis."""

    feature_extraction: np.ndarray
    sorting: np.ndarray
    rasterization: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """All bytes moved, per frame (same accumulation order as
        :attr:`repro.hw.stages.StageTraffic.total`)."""
        return self.feature_extraction + self.sorting + self.rasterization


@dataclass(frozen=True)
class ReportBatch:
    """Per-frame report columns (traffic + latency split) as arrays."""

    traffic: TrafficBatch
    memory_time_s: np.ndarray
    compute_time_s: np.ndarray


def stacked_copy(obj: Any, **overrides: Any) -> Any:
    """Shallow-copy a (frozen) dataclass instance with raw field overrides.

    ``copy.copy`` + ``object.__setattr__`` skips ``__init__`` and
    ``__post_init__`` on purpose: batched rollouts substitute *array*-valued
    parameters (e.g. a ``(cells, 1)`` bandwidth column) into configs whose
    scalar validation already ran per cell — re-running it on an array would
    raise on the ambiguous truth value, and there is nothing left to check.
    """
    new = copy.copy(obj)
    for name, value in overrides.items():
        object.__setattr__(new, name, value)
    return new


# ----------------------------------------------------------------------
# SystemModel: the shared simulation core
# ----------------------------------------------------------------------
class SystemModel:
    """Base class for hardware performance models.

    Subclasses provide the two vectorized hooks and inherit the whole
    per-sequence loop plus the single-frame conveniences:

    * :meth:`batch_traffic` — per-stage DRAM bytes per frame, matching what
      the historical ``frame_traffic`` reported (e.g. Neo reports only the
      streamed component here);
    * :meth:`batch_report` — full report columns: reported traffic plus the
      memory/compute latency split.

    The scalar entry points (:meth:`frame_traffic`, :meth:`frame_report`)
    are single-frame batches through the same equations, so a model's
    physics lives in exactly one place.
    """

    name: str = "system"

    @property
    def tile_size(self) -> int:
        """Rasterization tile size in pixels, used to bin workloads.

        Backends with a hardware-config dataclass inherit it from
        ``config.tile_size``; backends without one default to the 16 px
        baseline tile (override for anything else).
        """
        tile = getattr(getattr(self, "config", None), "tile_size", None)
        return 16 if tile is None else tile

    # -- model-specific vectorized equations ---------------------------
    def batch_traffic(self, batch: FrameBatch) -> TrafficBatch:
        """Per-stage DRAM bytes for every frame in the batch."""
        raise NotImplementedError

    def batch_report(self, batch: FrameBatch) -> ReportBatch:
        """Traffic and latency decomposition for every frame in the batch."""
        raise NotImplementedError

    # -- generic sequence loop (vectorized) ----------------------------
    def simulate(
        self, workloads: list[FrameWorkload], scene: str = "scene"
    ) -> SequenceReport:
        """Simulate a frame sequence and aggregate the reports.

        One :class:`FrameBatch` is built for the whole sequence and the
        model's equations run once over the frame axis; the resulting arrays
        are unpacked into the per-frame :class:`FrameReport` rows the
        experiment drivers consume.
        """
        if not workloads:
            raise ValueError("need at least one workload")
        batch = FrameBatch.from_workloads(workloads)
        rep = self.batch_report(batch)
        report = SequenceReport(
            system=self.name,
            scene=scene,
            resolution=(workloads[0].width, workloads[0].height),
        )
        # tolist() converts whole columns to Python floats in one C pass
        # (bit-exact), keeping the unpack loop off the per-frame hot path.
        columns = zip(
            np.broadcast_to(rep.traffic.feature_extraction, batch.pairs.shape).tolist(),
            np.broadcast_to(rep.traffic.sorting, batch.pairs.shape).tolist(),
            np.broadcast_to(rep.traffic.rasterization, batch.pairs.shape).tolist(),
            np.broadcast_to(rep.memory_time_s, batch.pairs.shape).tolist(),
            np.broadcast_to(rep.compute_time_s, batch.pairs.shape).tolist(),
        )
        report.frames = [
            FrameReport(
                frame_index=w.frame_index,
                traffic=StageTraffic(
                    feature_extraction=feature,
                    sorting=sorting,
                    rasterization=raster,
                ),
                memory_time_s=memory,
                compute_time_s=compute,
            )
            for w, (feature, sorting, raster, memory, compute) in zip(workloads, columns)
        ]
        return report

    # -- batched multi-rollout (stacked parameter axis) ----------------
    def stacked(self, axes: Mapping[str, np.ndarray]) -> "SystemModel | None":
        """A copy of this model whose sweep parameters carry a cell axis.

        ``axes`` maps parameter name (``"bandwidth_gbps"``, ``"cores"``) to
        a ``(cells, 1)`` float64 column holding each cell's value; only
        parameters that actually *vary* across the stacked cells appear.
        Returns ``None`` when the model cannot stack one of them — callers
        fall back to per-cell simulation for that group, never fail.

        Each subclass overrides this for exactly the knobs its factory
        reads; a knob the factory provably ignores is stacked by ignoring
        it (per-cell results are constant along that axis, matching what
        per-cell runs produce).  The base model declares no support.
        """
        return None if axes else self

    def simulate_rollout(
        self,
        workloads: list[FrameWorkload],
        cell_axes: Mapping[str, np.ndarray],
        scene: str = "scene",
    ) -> "list[SequenceReport] | None":
        """Simulate many parameter cells over one workload list at once.

        ``cell_axes`` maps parameter name to a length-``cells`` array of
        per-cell values.  The varying parameters are reshaped to
        ``(cells, 1)`` columns and substituted into a stacked copy of the
        model, so the elementwise traffic/latency equations broadcast the
        batch's ``(frames,)`` fields to ``(cells, frames)`` in a single
        evaluation.  Because every equation is an elementwise IEEE-754 op
        on float64, element ``(c, f)`` sees exactly the scalar operands
        cell ``c``'s own ``simulate`` call would — the returned per-cell
        reports are *byte-identical* to per-cell runs (pinned by
        ``tests/test_backend.py``).

        Returns ``None`` when the model cannot stack a varying parameter.
        """
        if not workloads:
            raise ValueError("need at least one workload")
        if not cell_axes:
            raise ValueError("need at least one cell axis")
        columns = {
            name: np.asarray(values, dtype=np.float64).reshape(-1, 1)
            for name, values in cell_axes.items()
        }
        cell_counts = {col.shape[0] for col in columns.values()}
        if len(cell_counts) != 1:
            raise ValueError("cell axes must have equal length")
        (cells,) = cell_counts
        varying = {
            name: col
            for name, col in columns.items()
            if np.any(col != col.flat[0])
        }
        model = self.stacked(varying)
        if model is None:
            return None

        batch = FrameBatch.from_workloads(workloads)
        rep = model.batch_report(batch)
        shape = (cells, batch.num_frames)
        # Broadcast + tolist mirrors simulate()'s unpack: whole columns to
        # Python floats in one C pass, bit-exact.  Parameters the model
        # ignored (or that did not vary) leave a (frames,) column, which
        # broadcasts to identical rows — exactly the per-cell outcome.
        stacked_columns = [
            np.broadcast_to(col, shape).tolist()
            for col in (
                rep.traffic.feature_extraction,
                rep.traffic.sorting,
                rep.traffic.rasterization,
                rep.memory_time_s,
                rep.compute_time_s,
            )
        ]
        reports = []
        for c in range(cells):
            report = SequenceReport(
                system=self.name,
                scene=scene,
                resolution=(workloads[0].width, workloads[0].height),
            )
            report.frames = [
                FrameReport(
                    frame_index=w.frame_index,
                    traffic=StageTraffic(
                        feature_extraction=feature,
                        sorting=sorting,
                        rasterization=raster,
                    ),
                    memory_time_s=memory,
                    compute_time_s=compute,
                )
                for w, feature, sorting, raster, memory, compute in zip(
                    workloads, *(col[c] for col in stacked_columns)
                )
            ]
            reports.append(report)
        return reports

    # -- single-frame conveniences -------------------------------------
    def frame_traffic(self, workload: FrameWorkload) -> StageTraffic:
        """DRAM bytes per stage for one frame."""
        traffic = self.batch_traffic(FrameBatch.from_workloads([workload]))
        return StageTraffic(
            feature_extraction=float(traffic.feature_extraction[0]),
            sorting=float(traffic.sorting[0]),
            rasterization=float(traffic.rasterization[0]),
        )

    def frame_report(self, workload: FrameWorkload) -> FrameReport:
        """Latency and traffic for one frame."""
        return self.simulate([workload]).frames[0]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemSpec:
    """One registered hardware backend (or derived variant).

    Parameters
    ----------
    name:
        Registry key (``"neo"``, ``"gscore-32c"``, ...).
    description:
        One-line summary shown by ``repro systems list``.
    factory:
        ``factory(dram=..., cores=..., **model_kwargs) -> SystemModel``.
        ASIC factories honor the given :class:`~repro.hw.config.DramConfig`;
        GPU-class factories ignore it (see ``dram_policy``).
    model_cls / config_cls:
        The model dataclass and its hardware-configuration dataclass, used
        to derive the accepted-kwargs schema for ``repro systems show``.
    dram_policy:
        ``"edge"`` — the model runs on the caller-supplied DRAM
        configuration (bandwidth sweeps apply); ``"native"`` — the model
        carries its own fixed memory system (the Orin GPU always runs at
        204.8 GB/s regardless of the requested edge bandwidth).
    base:
        Name of the base system for derived variants, ``None`` for roots.
    overrides:
        Keyword overlay applied before the caller's ``model_kwargs`` when
        building a variant, stored as sorted items so specs stay hashable.
    """

    name: str
    description: str
    factory: Callable[..., SystemModel]
    model_cls: type
    config_cls: type
    dram_policy: str = "edge"
    base: str | None = None
    overrides: tuple[tuple[str, Any], ...] = ()

    @property
    def override_kwargs(self) -> dict[str, Any]:
        """The variant overlay as a plain dict."""
        return dict(self.overrides)

    def build(self, dram=None, cores: int = 16, **model_kwargs) -> SystemModel:
        """Instantiate the model; explicit ``model_kwargs`` win over the
        variant overlay."""
        merged = {**self.override_kwargs, **model_kwargs}
        return self.factory(dram=dram, cores=cores, **merged)

    def model_fields(self) -> dict[str, str]:
        """Accepted model kwargs: dataclass field -> default (as text)."""
        return {f.name: _default_repr(f) for f in fields(self.model_cls)}

    def config_fields(self) -> dict[str, str]:
        """Hardware-configuration knobs: field -> default (as text)."""
        return {f.name: _default_repr(f) for f in fields(self.config_cls)}


def _default_repr(field) -> str:
    from dataclasses import MISSING

    if field.default is not MISSING:
        return repr(field.default)
    if field.default_factory is not MISSING:  # type: ignore[misc]
        return repr(field.default_factory())
    return "(required)"


_REGISTRY: dict[str, SystemSpec] = {}


def _register(spec: SystemSpec) -> SystemSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"system {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_system(
    name: str,
    *,
    description: str,
    model_cls: type,
    config_cls: type,
    dram_policy: str = "edge",
) -> Callable:
    """Decorator: register ``factory`` as the builder for system ``name``."""
    if dram_policy not in ("edge", "native"):
        raise ValueError(f"dram_policy must be 'edge' or 'native', got {dram_policy!r}")

    def decorate(factory: Callable[..., SystemModel]) -> Callable[..., SystemModel]:
        _register(
            SystemSpec(
                name=name,
                description=description,
                factory=factory,
                model_cls=model_cls,
                config_cls=config_cls,
                dram_policy=dram_policy,
            )
        )
        return factory

    return decorate


def register_variant(
    name: str,
    *,
    base: str,
    description: str,
    overrides: Mapping[str, Any],
) -> SystemSpec:
    """Register a derived system as a declarative overlay on ``base``.

    The variant inherits the base's factory, metadata, and any overlay of
    its own (overlays compose, nearest variant winning), so e.g. ``neo-s``
    is exactly ``neo`` built with ``sorting_engine_only=True``.
    """
    if base not in _REGISTRY:
        raise KeyError(f"variant {name!r} derives from unregistered system {base!r}")
    base_spec = _REGISTRY[base]
    merged = {**base_spec.override_kwargs, **dict(overrides)}
    return _register(
        SystemSpec(
            name=name,
            description=description,
            factory=base_spec.factory,
            model_cls=base_spec.model_cls,
            config_cls=base_spec.config_cls,
            dram_policy=base_spec.dram_policy,
            base=base_spec.name,
            overrides=tuple(sorted(merged.items())),
        )
    )


def _ensure_populated() -> None:
    """Import the model modules so their registrations have run.

    Lazy (inside the accessors, not at module import) so ``hw.system`` never
    circularly imports the model modules that import it.
    """
    from . import accelerator, gpu, gscore  # noqa: F401


def registered_systems() -> tuple[str, ...]:
    """All registered system names, in registration order."""
    _ensure_populated()
    return tuple(_REGISTRY)


def get_system(name: str) -> SystemSpec:
    """Look up a system spec; unknown names report the true option list."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; options: {list(_REGISTRY)}"
        ) from None


def iter_systems() -> Iterator[SystemSpec]:
    """Iterate every registered spec in registration order."""
    _ensure_populated()
    return iter(tuple(_REGISTRY.values()))
