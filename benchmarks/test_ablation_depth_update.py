"""Ablation bench: deferred vs eager depth update (section 4.4).

Without the deferred update the sorting stage pays an extra streamed
read+write of every table per frame — the paper reports 33.2 % higher
total Neo traffic.  Quality is unaffected (the deferred variant sorts on
one-frame-stale depths, which Dynamic Partial Sorting absorbs).
"""

import numpy as np

from repro.core.strategies import NeoSortStrategy
from repro.hw.accelerator import NeoModel
from repro.hw.workload import WorkloadModel
from repro.metrics.image import psnr
from repro.pipeline.renderer import Renderer
from repro.scene import default_trajectory, load_scene


def _run():
    # Hardware-model traffic comparison at paper scale.
    wm = WorkloadModel.from_scene("family", num_frames=8)
    workloads = wm.sequence_workloads("qhd", 64)
    deferred = NeoModel().simulate(workloads)
    eager = NeoModel(defer_depth_update=False).simulate(workloads)

    # Functional quality comparison.
    scene = load_scene("family", num_gaussians=1600)
    cameras = default_trajectory("family", num_frames=5, width=192, height=108)
    reference = Renderer(scene).render_sequence(cameras)
    records_deferred = Renderer(scene, strategy=NeoSortStrategy()).render_sequence(cameras)
    records_eager = Renderer(
        scene, strategy=NeoSortStrategy(defer_depth_update=False)
    ).render_sequence(cameras)
    q_deferred = float(np.mean(
        [psnr(a.image, b.image) for a, b in zip(reference[1:], records_deferred[1:])]
    ))
    q_eager = float(np.mean(
        [psnr(a.image, b.image) for a, b in zip(reference[1:], records_eager[1:])]
    ))
    return {
        "deferred_gb60": deferred.traffic_gb_for(60),
        "eager_gb60": eager.traffic_gb_for(60),
        "deferred_psnr": q_deferred,
        "eager_psnr": q_eager,
    }


def test_ablation_depth_update(benchmark):
    row = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(row)

    overhead = row["eager_gb60"] / row["deferred_gb60"] - 1.0
    # Paper: +33.2% traffic without deferral.
    assert 0.15 < overhead < 0.60
    # Stale-by-one-frame depths cost essentially nothing in quality.
    assert row["deferred_psnr"] > 45.0
    assert abs(row["deferred_psnr"] - row["eager_psnr"]) < 10.0
