"""Scene presets standing in for the paper's benchmark datasets.

The paper evaluates six Tanks-and-Temples scenes (Family, Francis, Horse,
Lighthouse, Playground, Train) plus two Mill-19 aerial scenes (Building,
Rubble) for the large-scale scenario of Fig. 17(a).  Each preset pairs a
:class:`~repro.scene.synthetic.SceneSpec` with a default camera trajectory
matching the capture style (orbits around a subject for T&T, flythroughs for
Mill-19).

``nominal_gaussians`` reflect typical trained-model sizes for these datasets
(order 10^6 for T&T, 10^6-10^7 for Mill-19); ``functional_gaussians`` are the
reduced counts instantiated for pure-Python rendering.  The hardware model
scales measured workload statistics back to the nominal count.
"""

from __future__ import annotations

import numpy as np

from .camera import Camera
from .synthetic import ClusterSpec, SceneSpec, generate_scene
from .trajectory import (
    TrajectoryConfig,
    dolly_trajectory,
    flythrough_trajectory,
    orbit_trajectory,
    pan_trajectory,
    shake_trajectory,
    teleport_trajectory,
)
from .gaussians import GaussianScene

#: Scenes from the Tanks and Temples dataset used across Figs. 3, 5-7, 15-16.
TANKS_AND_TEMPLES: tuple[str, ...] = (
    "family",
    "francis",
    "horse",
    "lighthouse",
    "playground",
    "train",
)

#: Mill-19 aerial scenes used for the large-scale scenario (Fig. 17a).
MILL19: tuple[str, ...] = ("building", "rubble")

_FUNCTIONAL_N = 4000
_FUNCTIONAL_N_LARGE = 7000


def _subject_clusters(
    subject_color: tuple[float, float, float],
    subject_extent: tuple[float, float, float] = (1.2, 1.4, 1.2),
    ground_fraction: float = 0.25,
) -> tuple[ClusterSpec, ...]:
    """Standard T&T composition: a central subject above a ground plane."""
    return (
        ClusterSpec(center=(0.0, 0.5, 0.0), extent=subject_extent, fraction=0.45,
                    base_color=subject_color),
        ClusterSpec(center=(0.0, -1.0, 0.0), extent=(6.0, 0.25, 6.0), fraction=ground_fraction,
                    base_color=(0.45, 0.42, 0.38)),
    )


SCENE_SPECS: dict[str, SceneSpec] = {
    # --- Tanks and Temples -------------------------------------------------
    "family": SceneSpec(
        name="family",
        nominal_gaussians=1_100_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=9.0,
        clusters=_subject_clusters((0.65, 0.5, 0.4)),
        log_scale_mean=-3.1,
        log_scale_sigma=0.65,
        opaque_fraction=0.65,
        seed=11,
        camera_radius=6.0,
        depth_spread=9.0,
    ),
    "francis": SceneSpec(
        name="francis",
        nominal_gaussians=1_000_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=10.0,
        clusters=_subject_clusters((0.75, 0.72, 0.66), subject_extent=(0.9, 2.2, 0.9)),
        log_scale_mean=-3.0,
        log_scale_sigma=0.70,
        opaque_fraction=0.62,
        seed=12,
        camera_radius=7.0,
        depth_spread=11.0,
    ),
    "horse": SceneSpec(
        name="horse",
        nominal_gaussians=950_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=8.0,
        clusters=_subject_clusters((0.35, 0.32, 0.3), subject_extent=(1.6, 1.1, 0.8)),
        log_scale_mean=-3.2,
        log_scale_sigma=0.60,
        opaque_fraction=0.68,
        seed=13,
        camera_radius=5.5,
        depth_spread=8.0,
    ),
    "lighthouse": SceneSpec(
        name="lighthouse",
        nominal_gaussians=1_300_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=14.0,
        clusters=(
            ClusterSpec(center=(0.0, 2.5, 0.0), extent=(0.9, 3.5, 0.9), fraction=0.35,
                        base_color=(0.8, 0.75, 0.7)),
            ClusterSpec(center=(0.0, -1.0, 0.0), extent=(9.0, 0.3, 9.0), fraction=0.3,
                        base_color=(0.35, 0.45, 0.5)),
        ),
        log_scale_mean=-2.8,
        log_scale_sigma=0.75,
        opaque_fraction=0.58,
        seed=14,
        camera_radius=9.0,
        depth_spread=16.0,
    ),
    "playground": SceneSpec(
        name="playground",
        nominal_gaussians=1_250_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=12.0,
        clusters=(
            ClusterSpec(center=(-1.5, 0.3, 0.5), extent=(1.5, 1.0, 1.5), fraction=0.25,
                        base_color=(0.7, 0.3, 0.25)),
            ClusterSpec(center=(2.0, 0.2, -1.0), extent=(1.2, 0.9, 1.2), fraction=0.2,
                        base_color=(0.25, 0.45, 0.7)),
            ClusterSpec(center=(0.0, -0.8, 0.0), extent=(8.0, 0.25, 8.0), fraction=0.3,
                        base_color=(0.4, 0.5, 0.3)),
        ),
        log_scale_mean=-3.0,
        log_scale_sigma=0.72,
        opaque_fraction=0.6,
        seed=15,
        camera_radius=8.0,
        depth_spread=13.0,
    ),
    "train": SceneSpec(
        name="train",
        nominal_gaussians=1_050_000,
        functional_gaussians=_FUNCTIONAL_N,
        extent=13.0,
        clusters=(
            ClusterSpec(center=(0.0, 0.4, 0.0), extent=(4.5, 1.0, 1.0), fraction=0.4,
                        base_color=(0.45, 0.35, 0.3)),
            ClusterSpec(center=(0.0, -0.9, 0.0), extent=(9.0, 0.2, 7.0), fraction=0.25,
                        base_color=(0.5, 0.48, 0.45)),
        ),
        log_scale_mean=-2.9,
        log_scale_sigma=0.7,
        opaque_fraction=0.6,
        seed=16,
        camera_radius=8.5,
        depth_spread=14.0,
    ),
    # --- Mill-19 (large-scale aerial) --------------------------------------
    "building": SceneSpec(
        name="building",
        nominal_gaussians=3_800_000,
        functional_gaussians=_FUNCTIONAL_N_LARGE,
        extent=60.0,
        clusters=(
            ClusterSpec(center=(0.0, 6.0, 0.0), extent=(14.0, 8.0, 14.0), fraction=0.45,
                        base_color=(0.6, 0.58, 0.55)),
            ClusterSpec(center=(0.0, -1.0, 0.0), extent=(45.0, 0.6, 45.0), fraction=0.3,
                        base_color=(0.4, 0.42, 0.38)),
        ),
        log_scale_mean=-1.55,
        log_scale_sigma=0.8,
        opaque_fraction=0.55,
        seed=21,
        camera_radius=45.0,
        depth_spread=80.0,
    ),
    "rubble": SceneSpec(
        name="rubble",
        nominal_gaussians=3_400_000,
        functional_gaussians=_FUNCTIONAL_N_LARGE,
        extent=55.0,
        clusters=(
            ClusterSpec(center=(0.0, 1.0, 0.0), extent=(20.0, 3.0, 20.0), fraction=0.5,
                        base_color=(0.55, 0.5, 0.45)),
            ClusterSpec(center=(0.0, -1.0, 0.0), extent=(40.0, 0.5, 40.0), fraction=0.25,
                        base_color=(0.45, 0.43, 0.4)),
        ),
        log_scale_mean=-1.65,
        log_scale_sigma=0.78,
        opaque_fraction=0.55,
        seed=22,
        camera_radius=40.0,
        depth_spread=70.0,
    ),
}


def scene_spec(name: str) -> SceneSpec:
    """Look up a scene preset by name (case-insensitive)."""
    key = name.lower()
    if key not in SCENE_SPECS:
        raise KeyError(f"unknown scene {name!r}; options: {sorted(SCENE_SPECS)}")
    return SCENE_SPECS[key]


def load_scene(name: str, num_gaussians: int | None = None) -> GaussianScene:
    """Generate the synthetic scene registered under ``name``."""
    return generate_scene(scene_spec(name), num_gaussians=num_gaussians)


#: Trajectory archetypes :func:`archetype_trajectory` can build for any scene.
TRAJECTORY_ARCHETYPES: tuple[str, ...] = (
    "orbit",
    "dolly",
    "pan",
    "flythrough",
    "shake",
    "teleport",
)


def archetype_trajectory(
    name: str,
    archetype: str,
    num_frames: int = 60,
    speed: float = 1.0,
    width: int = 1280,
    height: int = 720,
) -> list[Camera]:
    """Build a named camera-motion archetype sized to a scene preset.

    Every archetype is parameterized by the preset's ``camera_radius`` /
    ``extent`` / ``depth_spread`` so the same motion style transfers across
    scenes: ``orbit`` and ``flythrough`` reproduce the default captures,
    ``dolly``/``pan`` isolate translation and rotation, and
    ``shake``/``teleport`` are abrupt-motion stress cases (tremor jitter and
    zero-coherence viewpoint jumps).
    """
    spec = scene_spec(name)
    config = TrajectoryConfig(
        num_frames=num_frames, speed=speed, width=width, height=height
    )
    radius = spec.camera_radius
    far = spec.depth_spread * 20.0
    center = np.zeros(3)
    if archetype == "orbit":
        return orbit_trajectory(
            center=center,
            radius=radius,
            config=config,
            height_offset=radius * 0.2,
            far=far,
        )
    if archetype == "dolly":
        return dolly_trajectory(
            start=np.array([radius * 1.6, radius * 0.25, 0.0]),
            end=np.array([radius * 0.5, radius * 0.1, 0.0]),
            target=center,
            config=config,
            far=far,
        )
    if archetype == "pan":
        return pan_trajectory(
            eye=np.array([radius, radius * 0.2, 0.0]),
            initial_target=center,
            config=config,
            far=far,
        )
    if archetype == "flythrough":
        altitude = spec.extent * 0.5
        waypoints = np.array(
            [
                [-radius, altitude, -radius],
                [radius, altitude, -radius * 0.3],
                [radius * 0.4, altitude * 0.8, radius],
                [-radius, altitude, radius * 0.5],
            ]
        )
        return flythrough_trajectory(waypoints, config, far=max(far, 2000.0))
    if archetype == "shake":
        return shake_trajectory(
            eye=np.array([radius, radius * 0.2, 0.0]),
            target=center,
            config=config,
            amplitude=radius * 0.03,
            far=far,
        )
    if archetype == "teleport":
        return teleport_trajectory(
            center=center,
            radius=radius,
            config=config,
            hold_frames=2,
            height_offset=radius * 0.2,
            far=far,
        )
    raise KeyError(
        f"unknown trajectory archetype {archetype!r}; options: {list(TRAJECTORY_ARCHETYPES)}"
    )


def default_trajectory(
    name: str,
    num_frames: int = 60,
    speed: float = 1.0,
    width: int = 1280,
    height: int = 720,
) -> list[Camera]:
    """Build the default camera trajectory for a scene preset.

    Tanks-and-Temples scenes use a slow inward-looking orbit (matching the
    hand-held circling captures); Mill-19 scenes use an aerial flythrough.
    """
    archetype = "flythrough" if scene_spec(name).name in MILL19 else "orbit"
    return archetype_trajectory(
        name, archetype, num_frames=num_frames, speed=speed, width=width, height=height
    )
