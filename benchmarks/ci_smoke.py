"""CI benchmark smoke: fig03 serial vs parallel, with equality checks.

Two determinism-under-parallelism probes, timed and written to a JSON
artifact:

* **Experiment level** — a few fast drivers (``fig03`` plus companions, so
  the pool genuinely fans out) through the
  :class:`~repro.runtime.ParallelRunner` at ``jobs=1`` vs ``jobs=N`` with
  caching disabled; row lists must be identical.
* **Frame level** — a short trajectory through
  :meth:`~repro.pipeline.renderer.Renderer.render_sequence` serial vs
  sharded; images must be bitwise-identical.

Not a pytest module on purpose: it is invoked directly by the workflow's
benchmark job (``python benchmarks/ci_smoke.py --out timing.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def experiment_smoke(experiments: list[str], jobs: int, frames: int) -> dict:
    from repro.runtime import ParallelRunner

    timings = {}
    rows = {}
    for label, n_jobs in (("serial", 1), ("parallel", jobs)):
        runner = ParallelRunner(jobs=n_jobs, frames=frames, cache=None)
        start = time.perf_counter()
        outcomes = runner.run(experiments)
        timings[label] = time.perf_counter() - start
        rows[label] = [o.result.rows for o in outcomes]

    return {
        "experiments": experiments,
        "frames": frames,
        "serial_s": timings["serial"],
        "parallel_s": timings["parallel"],
        "speedup": timings["serial"] / timings["parallel"] if timings["parallel"] else 0.0,
        "rows_identical": rows["serial"] == rows["parallel"],
        "num_rows": sum(len(r) for r in rows["serial"]),
    }


def render_smoke(jobs: int, num_frames: int = 8) -> dict:
    import numpy as np

    from repro.pipeline.renderer import Renderer
    from repro.scene.datasets import default_trajectory, load_scene

    scene = load_scene("family", num_gaussians=1500)
    cameras = default_trajectory("family", num_frames=num_frames, width=320, height=180)
    renderer = Renderer(scene)

    start = time.perf_counter()
    serial = renderer.render_sequence(cameras)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = renderer.render_sequence(cameras, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = all(
        np.array_equal(a.image, b.image) and a.stats.blend_ops == b.stats.blend_ops
        for a, b in zip(serial, parallel)
    )
    return {
        "num_frames": num_frames,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "frames_identical": identical,
    }


def vectorized_smoke(num_frames: int = 200, floor: float | None = None) -> dict:
    """Vectorized sequence core vs the per-frame scalar loop, per system.

    Reuses the micro-bench in ``benchmarks/test_vectorized_core.py`` on its
    synthetic long trajectory: every base system must produce bit-identical
    reports and clear the bench's speedup floor (the equations vectorize
    ~20x; end-to-end the shared report-construction cost caps the visible
    win).
    """
    from test_vectorized_core import SPEEDUP_FLOOR, SYSTEMS, measure

    if floor is None:
        floor = SPEEDUP_FLOOR
    per_system = [measure(system, num_frames) for system in SYSTEMS]
    return {
        "frames": num_frames,
        "floor": floor,
        "systems": per_system,
        "identical": all(s["identical"] for s in per_system),
        "above_floor": all(s["speedup"] > floor for s in per_system),
    }


def cached_smoke(experiments: list[str], frames: int, cache_dir: str) -> dict:
    """Run the same drivers through the disk cache and report hit counts.

    The CI workflow persists ``cache_dir`` across runs (keyed on the package
    source digest), so on a warm run this phase is pure cache hits and the
    artifact records the skip; the equality probes above stay uncached on
    purpose — recomputing both sides is their whole point.
    """
    from repro.runtime import ParallelRunner, ResultCache

    cache = ResultCache(cache_dir)
    start = time.perf_counter()
    outcomes = ParallelRunner(jobs=1, frames=frames, cache=cache).run(experiments)
    return {
        "cache_dir": cache_dir,
        "elapsed_s": time.perf_counter() - start,
        "hits": sum(1 for o in outcomes if o.from_cache),
        "misses": sum(1 for o in outcomes if not o.from_cache),
    }


def run_smoke(experiments: list[str], jobs: int, frames: int, cache_dir: str | None) -> dict:
    summary = {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "experiment_level": experiment_smoke(experiments, jobs, frames),
        "frame_level": render_smoke(jobs),
        "vectorized_core": vectorized_smoke(),
    }
    if cache_dir:
        summary["cached_level"] = cached_smoke(experiments, frames, cache_dir)
    summary["ok"] = (
        summary["experiment_level"]["rows_identical"]
        and summary["frame_level"]["frames_identical"]
        and summary["vectorized_core"]["identical"]
        and summary["vectorized_core"]["above_floor"]
    )
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiments",
        default="fig03,fig05,table3",
        help="comma-separated list; several experiments so the pool genuinely fans out",
    )
    parser.add_argument("--jobs", type=int, default=max(2, (os.cpu_count() or 2)))
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--out", default="timing.json")
    parser.add_argument(
        "--cache-dir", default=None,
        help="also run a disk-cached pass against this directory and report hits "
             "(CI persists it across runs, so warm runs skip recomputation)",
    )
    args = parser.parse_args(argv)

    summary = run_smoke(args.experiments.split(","), args.jobs, args.frames, args.cache_dir)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(json.dumps(summary, indent=2))
    if not summary["ok"]:
        print(
            "FAIL: parallel output differs from serial output, or the "
            "vectorized core diverged from / fell behind the per-frame loop",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
