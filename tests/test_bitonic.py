"""Unit tests for the Bitonic Sorting Unit model."""

import numpy as np
import pytest

from repro.core.bitonic import (
    BSU_WIDTH,
    BitonicStats,
    bitonic_sort_16,
    bsu_sort_chunk,
    network_stages,
)


class TestNetworkStages:
    def test_known_sizes(self):
        assert network_stages(2) == 1
        assert network_stages(4) == 3
        assert network_stages(8) == 6
        assert network_stages(16) == 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            network_stages(12)
        with pytest.raises(ValueError):
            network_stages(0)


class TestBitonicSort16:
    def test_sorts_full_width(self, rng):
        keys = rng.normal(size=16)
        out, _ = bitonic_sort_16(keys)
        assert np.array_equal(out, np.sort(keys))

    def test_sorts_partial_width(self, rng):
        keys = rng.normal(size=9)
        out, _ = bitonic_sort_16(keys)
        assert out.shape == (9,)
        assert np.array_equal(out, np.sort(keys))

    def test_values_travel_with_keys(self, rng):
        keys = rng.normal(size=16)
        values = np.arange(16)
        out_keys, out_vals = bitonic_sort_16(keys, values)
        assert np.array_equal(out_keys, keys[np.argsort(keys)])
        assert np.array_equal(keys[out_vals], out_keys)

    def test_stats_counts(self):
        stats = BitonicStats()
        bitonic_sort_16(np.arange(16.0), stats=stats)
        assert stats.invocations == 1
        assert stats.stages == network_stages(16)
        assert stats.comparators == network_stages(16) * 8
        assert stats.cycles == stats.stages

    def test_rejects_oversized_input(self):
        with pytest.raises(ValueError):
            bitonic_sort_16(np.zeros(17))

    def test_rejects_misaligned_values(self):
        with pytest.raises(ValueError):
            bitonic_sort_16(np.zeros(4), np.zeros(3))

    def test_duplicate_keys(self):
        keys = np.array([3.0, 1.0, 3.0, 1.0, 2.0])
        out, _ = bitonic_sort_16(keys)
        assert np.array_equal(out, np.sort(keys))

    def test_single_element(self):
        out, _ = bitonic_sort_16(np.array([5.0]))
        assert np.array_equal(out, [5.0])


class TestBsuSortChunk:
    def test_runs_are_sorted(self, rng):
        keys = rng.normal(size=100)
        values = np.arange(100)
        out_keys, out_vals, runs = bsu_sort_chunk(keys, values)
        assert len(runs) == 7  # ceil(100/16)
        for start, end in runs:
            assert np.array_equal(out_keys[start:end], np.sort(out_keys[start:end]))
        # The full array is a permutation carrying values with keys.
        assert np.array_equal(np.sort(out_keys), np.sort(keys))
        assert np.array_equal(keys[out_vals], out_keys)

    def test_stats_accumulate(self, rng):
        stats = BitonicStats()
        bsu_sort_chunk(rng.normal(size=64), stats=stats)
        assert stats.invocations == 4
        assert stats.stages == 4 * network_stages(BSU_WIDTH)
