"""Table 3 — area and power of the GSCore and Neo accelerators at 7 nm / 1 GHz."""

from __future__ import annotations

from ..hw.area_power import gscore_summary, neo_summary
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

DESCRIPTION = "Accelerator area/power at 7 nm, 1 GHz"


def plan() -> ExperimentPlan:
    """No simulation cells: a pure analytic table."""

    def aggregate(_cells) -> ExperimentResult:
        result = ExperimentResult(name="table3", description=DESCRIPTION)
        for entry in (gscore_summary(), neo_summary()):
            result.rows.append(
                {
                    "device": entry.name,
                    "technology": "7 nm",
                    "frequency": "1 GHz",
                    "area_mm2": entry.area_mm2,
                    "power_mw": entry.power_mw,
                }
            )
        return result

    return ExperimentPlan("table3", DESCRIPTION, (), aggregate)


def run() -> ExperimentResult:
    """Total area (mm^2) and power (mW) for both accelerators."""
    return execute_plan(plan())
