"""Benchmark registry, result schema, and JSON artifact writer."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

#: Artifact schema identifier; bump when the JSON layout changes.
BENCH_SCHEMA = "repro-bench/1"


@dataclass
class BenchRecord:
    """Outcome of one named benchmark.

    Attributes
    ----------
    baseline_ms / optimized_ms:
        Best-of-N wall-clock of the frozen scalar reference vs the
        vectorized path, in milliseconds.
    speedup:
        ``baseline_ms / optimized_ms``.
    floor:
        Conservative speedup the CI gate enforces (well under the typical
        measurement so machine noise cannot flake the job).
    identical:
        Whether the two paths produced bit-identical results on the timed
        workload.
    detail:
        Bench-specific extras (per-stage timings, workload shape, ...).
    """

    quick: bool
    baseline_ms: float
    optimized_ms: float
    speedup: float
    floor: float
    identical: bool
    detail: dict = field(default_factory=dict)
    #: Stamped from the registry by :func:`run_benchmarks` so the CLI list,
    #: the table, and the JSON artifact can never disagree.
    name: str = ""
    description: str = ""

    @property
    def passed(self) -> bool:
        """Identity held and the speedup cleared the floor."""
        return self.identical and self.speedup >= self.floor

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "description": self.description,
            "quick": self.quick,
            "baseline_ms": self.baseline_ms,
            "optimized_ms": self.optimized_ms,
            "speedup": self.speedup,
            "floor": self.floor,
            "identical": self.identical,
            "passed": self.passed,
            "detail": self.detail,
        }

    def to_text(self) -> str:
        """One summary line for the CLI table."""
        status = "ok" if self.passed else ("DIVERGED" if not self.identical else "BELOW FLOOR")
        return (
            f"{self.name:18s} baseline {self.baseline_ms:9.1f} ms   "
            f"vectorized {self.optimized_ms:9.1f} ms   "
            f"{self.speedup:5.2f}x (floor {self.floor:.2f}x)  [{status}]"
        )


_REGISTRY: dict[str, tuple[str, Callable[[bool], BenchRecord]]] = {}


def register_bench(name: str, description: str):
    """Register a benchmark; the wrapped callable maps ``quick`` to a record."""

    def decorate(fn: Callable[[bool], BenchRecord]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = (description, fn)
        return fn

    return decorate


def list_benchmarks() -> list[str]:
    """Registered benchmark names, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def bench_descriptions() -> dict[str, str]:
    """Name -> one-line description."""
    _ensure_loaded()
    return {name: desc for name, (desc, _) in _REGISTRY.items()}


#: Rows kept from a ``--profile`` capture, per benchmark.
PROFILE_TOP_N = 15


def _profile_summary(profiler, top_n: int = PROFILE_TOP_N) -> list[dict]:
    """The ``top_n`` functions by cumulative time, as plain dicts.

    ``pstats`` keys stats by ``(file, line, function)``; the summary keeps
    that identity plus call counts and tottime/cumtime so the JSON artifact
    is greppable without re-running the profiler.
    """
    import pstats

    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, function), (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        rows.append(
            {
                "function": function,
                "location": f"{filename}:{line}",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:top_n]


def run_benchmarks(
    names: list[str] | None = None, quick: bool = False, profile: bool = False
) -> list[BenchRecord]:
    """Run the named benchmarks (all when ``names`` is empty) in order.

    With ``profile=True`` each benchmark runs under :mod:`cProfile` and its
    record's ``detail["profile"]`` carries the top functions by cumulative
    time.  Profiled timings are slower (tracing overhead applies to both
    sides of every comparison), so profile runs are for attribution, not
    for committing bench artifacts.
    """
    _ensure_loaded()
    selected = names or list(_REGISTRY)
    unknown = [n for n in selected if n not in _REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(_REGISTRY)}"
        )
    records = []
    for name in selected:
        description, fn = _REGISTRY[name]
        if profile:
            import cProfile

            profiler = cProfile.Profile()
            record = profiler.runcall(fn, quick)
            record.detail["profile"] = _profile_summary(profiler)
        else:
            record = fn(quick)
        record.name = name
        record.description = description
        records.append(record)
    return records


def bench_report(records: list[BenchRecord], quick: bool) -> dict:
    """Schema'd artifact payload for a benchmark run."""
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "quick": quick,
        "ok": all(r.passed for r in records),
        "benchmarks": [r.as_dict() for r in records],
    }


def write_bench_json(path: str, records: list[BenchRecord], quick: bool) -> str:
    """Write the artifact JSON and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench_report(records, quick), handle, indent=2)
        handle.write("\n")
    return path


def _ensure_loaded() -> None:
    """Import the suite modules so their ``@register_bench`` hooks run."""
    from . import suites  # noqa: F401
