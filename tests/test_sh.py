"""Unit tests for spherical harmonics evaluation."""

import numpy as np
import pytest

from repro.scene.sh import (
    SH_C0,
    eval_sh_color,
    normalize_directions,
    num_sh_coeffs,
    rgb_to_sh_dc,
    sh_basis,
)


class TestNumCoeffs:
    def test_degrees(self):
        assert [num_sh_coeffs(d) for d in range(4)] == [1, 4, 9, 16]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            num_sh_coeffs(4)
        with pytest.raises(ValueError):
            num_sh_coeffs(-1)


class TestBasis:
    def test_degree0_is_constant(self):
        dirs = normalize_directions(np.random.default_rng(0).normal(size=(10, 3)))
        basis = sh_basis(dirs, 0)
        assert basis.shape == (10, 1)
        assert np.allclose(basis, SH_C0)

    def test_shapes_per_degree(self):
        dirs = np.array([[0.0, 0.0, 1.0]])
        for degree in range(4):
            assert sh_basis(dirs, degree).shape == (1, (degree + 1) ** 2)

    def test_band1_is_linear_in_direction(self):
        dirs = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        basis = sh_basis(dirs, 1)
        # Band-1 terms: (-C1*y, C1*z, -C1*x)
        assert basis[0, 3] < 0 and basis[0, 1] == 0 and basis[0, 2] == 0
        assert basis[1, 1] < 0 and basis[1, 2] == 0 and basis[1, 3] == 0
        assert basis[2, 2] > 0 and basis[2, 1] == 0 and basis[2, 3] == 0

    def test_rotational_invariance_of_band_energy(self, rng):
        # The summed squared basis within each band is direction-independent.
        dirs = normalize_directions(rng.normal(size=(50, 3)))
        basis = sh_basis(dirs, 2)
        band1 = np.sum(basis[:, 1:4] ** 2, axis=1)
        band2 = np.sum(basis[:, 4:9] ** 2, axis=1)
        assert np.allclose(band1, band1[0], rtol=1e-9)
        assert np.allclose(band2, band2[0], rtol=1e-9)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            sh_basis(np.zeros((3, 2)), 1)


class TestEvalColor:
    def test_dc_roundtrip(self):
        rgb = np.array([[0.2, 0.5, 0.9], [1.0, 0.0, 0.3]])
        sh = np.zeros((2, 1, 3))
        sh[:, 0, :] = rgb_to_sh_dc(rgb)
        dirs = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        out = eval_sh_color(sh, dirs)
        assert np.allclose(out, rgb, atol=1e-12)

    def test_view_dependence_with_band1(self):
        sh = np.zeros((1, 4, 3))
        sh[0, 0, :] = rgb_to_sh_dc(np.array([[0.5, 0.5, 0.5]]))
        sh[0, 2, 0] = 0.3  # z-dependent red channel
        up = eval_sh_color(np.repeat(sh, 2, axis=0), np.array([[0, 0, 1.0], [0, 0, -1.0]]))
        assert up[0, 0] > up[1, 0]
        assert np.allclose(up[:, 1:], 0.5)

    def test_colors_clamped_non_negative(self):
        sh = np.full((1, 1, 3), -10.0)
        out = eval_sh_color(sh, np.array([[0.0, 0.0, 1.0]]))
        assert (out >= 0).all()

    def test_degree_cannot_exceed_stored(self):
        sh = np.zeros((1, 4, 3))
        with pytest.raises(ValueError):
            eval_sh_color(sh, np.array([[0.0, 0.0, 1.0]]), degree=2)

    def test_rejects_non_square_coeff_count(self):
        with pytest.raises(ValueError):
            eval_sh_color(np.zeros((1, 5, 3)), np.array([[0.0, 0.0, 1.0]]))


class TestNormalizeDirections:
    def test_unit_length(self, rng):
        out = normalize_directions(rng.normal(size=(20, 3)) * 7)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_vector_maps_to_z(self):
        out = normalize_directions(np.zeros((1, 3)))
        assert np.allclose(out, [[0.0, 0.0, 1.0]])
