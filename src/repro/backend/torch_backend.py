"""Optional Torch backend, auto-detected at first use.

Implements the sort/search and elementwise subset of the vocabulary on
CPU tensors; ``lexsort`` and ``reduceat`` have no direct Torch
counterpart and are deliberately left out so the per-op fallback path is
exercised whenever this backend is active.  All wrappers take and return
host (NumPy) arrays — the dispatch layer composes backends at op
granularity, so data stays in host memory at the op boundary.

When torch is not importable the backend still registers, as
unavailable: activating it is a no-op performance-wise (every op falls
back to NumPy) but never an import error.  Torch results match the NumPy
path within tolerance, not bit-identity; the golden suite in
``tests/test_backend_torch.py`` checks atol bounds and is skipped when
torch is absent.
"""

from __future__ import annotations

import numpy as np


def build():
    from .dispatch import Backend

    try:
        import torch
    except Exception as exc:  # ModuleNotFoundError or a broken install
        return Backend(
            name="torch",
            available=False,
            detail=f"unavailable: {type(exc).__name__}: {exc}",
            ops={},
        )

    def _t(a):
        return torch.as_tensor(np.ascontiguousarray(a))

    def _out(result, out):
        if out is None:
            return result.numpy()
        np.copyto(out, result.numpy())
        return out

    def argsort(a, kind=None):
        return torch.argsort(_t(a), stable=(kind == "stable")).numpy()

    def sort(a, axis=-1):
        return torch.sort(_t(a), dim=axis).values.numpy()

    def searchsorted(sorted_a, values, side="left"):
        return torch.searchsorted(_t(sorted_a), _t(values), right=(side == "right")).numpy()

    def cumsum(a, out=None):
        return _out(torch.cumsum(_t(a), dim=0), out)

    def repeat(a, repeats):
        return torch.repeat_interleave(_t(a), _t(repeats)).numpy()

    def accumulate_multiply(a, axis=0, out=None):
        return _out(torch.cumprod(_t(a), dim=axis), out)

    def accumulate_add(a, axis=0, out=None):
        return _out(torch.cumsum(_t(a), dim=axis), out)

    def exp(x, out=None):
        return _out(torch.exp(_t(x)), out)

    def minimum(a, b, out=None):
        return _out(torch.minimum(_t(a), _t(b)), out)

    def maximum(a, b):
        return torch.maximum(_t(a), _t(b)).numpy()

    def where(cond, a, b):
        return torch.where(_t(cond), _t(a), _t(b)).numpy()

    def clip(a, lo, hi):
        return torch.clamp(_t(a), _t(lo), _t(hi)).numpy()

    def frexp(x):
        mantissa, exponent = torch.frexp(_t(x))
        return mantissa.numpy(), exponent.numpy()

    return Backend(
        name="torch",
        available=True,
        detail=f"torch {torch.__version__}",
        ops={
            "argsort": argsort,
            "sort": sort,
            "searchsorted": searchsorted,
            "cumsum": cumsum,
            "repeat": repeat,
            "accumulate_multiply": accumulate_multiply,
            "accumulate_add": accumulate_add,
            "exp": exp,
            "minimum": minimum,
            "maximum": maximum,
            "where": where,
            "clip": clip,
            "frexp": frexp,
        },
    )
