"""Fig. 5 — DRAM traffic breakdown for GPU-based 3DGS and GSCore.

Traffic to render 60 frames at HD/FHD/QHD, broken down by pipeline stage.
Key claim: sorting dominates — up to ~91 % of GPU traffic and ~69 % of
GSCore traffic at QHD.
"""

from __future__ import annotations

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import PAPER_TRAFFIC_FRAMES, ExperimentResult

RESOLUTIONS = ("hd", "fhd", "qhd")
SYSTEMS = ("orin", "gscore")

DESCRIPTION = "DRAM traffic breakdown (GB / 60 frames): GPU vs GSCore"


def plan(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentPlan:
    """Declare the (system, resolution, scene) grid for the traffic study."""
    cells = tuple(
        SimJob(system, scene, resolution, frames=num_frames)
        for system in SYSTEMS
        for resolution in RESOLUTIONS
        for scene in scenes
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig05", description=DESCRIPTION)
        for system in SYSTEMS:
            for resolution in RESOLUTIONS:
                feature = sorting = raster = 0.0
                for scene in scenes:
                    report = reports[SimJob(system, scene, resolution, frames=num_frames)]
                    scale = PAPER_TRAFFIC_FRAMES / report.num_frames / 1e9
                    total = report.total_traffic
                    feature += total.feature_extraction * scale
                    sorting += total.sorting * scale
                    raster += total.rasterization * scale
                n = len(scenes)
                feature, sorting, raster = feature / n, sorting / n, raster / n
                total_gb = feature + sorting + raster
                result.rows.append(
                    {
                        "system": system,
                        "resolution": resolution,
                        "feature_gb": feature,
                        "sorting_gb": sorting,
                        "raster_gb": raster,
                        "total_gb": total_gb,
                        "sorting_share": sorting / total_gb if total_gb else 0.0,
                    }
                )
        return result

    return ExperimentPlan("fig05", DESCRIPTION, cells, aggregate)


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """Stage-level traffic (GB / 60 frames), averaged over scenes."""
    return execute_plan(plan(scenes=scenes, num_frames=num_frames))
