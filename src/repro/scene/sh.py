"""Spherical harmonics (SH) evaluation for view-dependent Gaussian color.

3DGS stores per-Gaussian color as SH coefficients up to degree 3 (16 basis
functions per channel).  During feature extraction the renderer evaluates the
SH basis in the viewing direction of each Gaussian and contracts it with the
stored coefficients to obtain an RGB color (paper section 2.2-2.3).

The constants follow the real-valued SH basis used by the reference 3DGS
implementation (Kerbl et al. 2023).
"""

from __future__ import annotations

import numpy as np

# Band 0
SH_C0 = 0.28209479177387814
# Band 1
SH_C1 = 0.4886025119029199
# Band 2
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
# Band 3
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

#: Number of SH coefficients for degree ``d`` is ``(d + 1) ** 2``.
MAX_SH_DEGREE = 3


def num_sh_coeffs(degree: int) -> int:
    """Return the number of SH basis functions for ``degree``.

    >>> num_sh_coeffs(0), num_sh_coeffs(1), num_sh_coeffs(3)
    (1, 4, 16)
    """
    if not 0 <= degree <= MAX_SH_DEGREE:
        raise ValueError(f"SH degree must be in [0, {MAX_SH_DEGREE}], got {degree}")
    return (degree + 1) ** 2


def sh_basis(directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate the real SH basis for unit ``directions``.

    Parameters
    ----------
    directions:
        Array of shape ``(n, 3)`` of unit view directions.
    degree:
        Maximum SH degree (0 to 3 inclusive).

    Returns
    -------
    Array of shape ``(n, (degree + 1) ** 2)`` with the basis values.
    """
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != 3:
        raise ValueError(f"directions must have shape (n, 3), got {directions.shape}")
    n = directions.shape[0]
    basis = np.empty((n, num_sh_coeffs(degree)), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree == 0:
        return basis

    x, y, z = directions[:, 0], directions[:, 1], directions[:, 2]
    basis[:, 1] = -SH_C1 * y
    basis[:, 2] = SH_C1 * z
    basis[:, 3] = -SH_C1 * x
    if degree == 1:
        return basis

    xx, yy, zz = x * x, y * y, z * z
    xy, yz, xz = x * y, y * z, x * z
    basis[:, 4] = SH_C2[0] * xy
    basis[:, 5] = SH_C2[1] * yz
    basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
    basis[:, 7] = SH_C2[3] * xz
    basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree == 2:
        return basis

    basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
    basis[:, 10] = SH_C3[1] * xy * z
    basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
    basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
    basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
    basis[:, 14] = SH_C3[5] * z * (xx - yy)
    basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def eval_sh_color(
    sh_coeffs: np.ndarray, directions: np.ndarray, degree: int | None = None
) -> np.ndarray:
    """Evaluate view-dependent RGB colors from SH coefficients.

    Parameters
    ----------
    sh_coeffs:
        Array of shape ``(n, k, 3)`` where ``k`` is a square number
        (1, 4, 9, or 16).
    directions:
        Unit view directions, shape ``(n, 3)``.
    degree:
        SH degree to evaluate; defaults to the degree implied by ``k``.

    Returns
    -------
    Array of shape ``(n, 3)`` of RGB colors clamped to be non-negative.
    The standard 3DGS convention adds 0.5 after the SH contraction.
    """
    sh_coeffs = np.asarray(sh_coeffs, dtype=np.float64)
    if sh_coeffs.ndim != 3 or sh_coeffs.shape[2] != 3:
        raise ValueError(f"sh_coeffs must have shape (n, k, 3), got {sh_coeffs.shape}")
    k = sh_coeffs.shape[1]
    implied = int(round(np.sqrt(k))) - 1
    if num_sh_coeffs(implied) != k:
        raise ValueError(f"sh_coeffs second dim must be a square number, got {k}")
    if degree is None:
        degree = implied
    if degree > implied:
        raise ValueError(f"requested degree {degree} exceeds stored degree {implied}")

    basis = sh_basis(directions, degree)
    used = basis.shape[1]
    color = np.einsum("nk,nkc->nc", basis, sh_coeffs[:, :used, :]) + 0.5
    return np.clip(color, 0.0, None)


def rgb_to_sh_dc(rgb: np.ndarray) -> np.ndarray:
    """Convert base RGB colors to the DC (band-0) SH coefficient.

    Inverse of the band-0 part of :func:`eval_sh_color`; useful when building
    synthetic scenes with a desired base color.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / SH_C0


def normalize_directions(vectors: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Normalize an ``(n, 3)`` array of vectors to unit length.

    Zero-length vectors map to the +z axis rather than producing NaNs, so
    degenerate view directions (camera exactly at a Gaussian mean) stay
    renderable.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    safe = norms > eps
    out = np.where(safe, vectors / np.where(safe, norms, 1.0), 0.0)
    out[~safe[:, 0]] = (0.0, 0.0, 1.0)
    return out
