"""Seeded open-loop load generator + service bench artifact writer.

``repro loadgen`` replays mixed multi-tenant traffic against a running
``repro serve`` instance: a seeded RNG draws a pool of distinct simulation
cells from a scenes × systems × resolutions grid, weights them Zipf-style
(popular cells repeat — that's what coalescing and caching feed on), and
fires requests on an open-loop Poisson arrival process (arrivals keep
coming at the configured rate regardless of completions, so overload shows
up as queue-full rejections and latency, not as a slower generator).

Each tenant gets its own connection and namespace; rejected requests are
retried with linear backoff up to ``retries`` times (retry accounting ends
up in both the client artifact and the server metrics).  The run writes a
schema'd ``BENCH_service.json`` with throughput, p50/p95/p99 latency,
coalesce rate, warm-scene hit rate, and rejection counts, and can verify
every response byte-identical against a direct
:func:`~repro.experiments.engine.execute_cells` run (``--verify`` — the
service-smoke CI gate).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field
from itertools import product
from typing import Any

import numpy as np

from ..experiments.engine import SimJob, execute_cells
from . import protocol

#: Artifact schema identifier; bump when the JSON layout changes.
SERVICE_BENCH_SCHEMA = "repro-service-bench/1"


@dataclass
class LoadGenConfig:
    """One replay's traffic shape (fully determined by ``seed``)."""

    host: str = "127.0.0.1"
    port: int = 7341
    requests: int = 120
    #: Open-loop arrival rate in requests/second.
    rate: float = 150.0
    tenants: int = 4
    seed: int = 0
    frames: int = 2
    scenes: tuple[str, ...] = ("family", "horse")
    systems: tuple[str, ...] = ("neo", "gscore", "orin")
    resolutions: tuple[str, ...] = ("hd",)
    #: Distinct cells drawn from the grid; requests sample these Zipf-style.
    pool_size: int = 10
    timeout_s: float = 120.0
    #: Rejection retries per request (linear backoff).
    retries: int = 3
    retry_backoff_s: float = 0.05
    #: Opt every tenant into the shared cache namespace instead of isolation.
    shared_cache: bool = False
    #: Seconds to keep retrying the initial connect (0 = one attempt).
    wait_server_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class _RequestOutcome:
    cell: int
    tenant: str
    status: str
    latency_s: float
    attempts: int
    origin: str | None = None


def build_traffic(config: LoadGenConfig) -> tuple[list[SimJob], np.ndarray, np.ndarray, np.ndarray]:
    """(cell pool, per-request cell index, tenant index, arrival offsets).

    Deterministic for a given config: the pool is a seeded permutation of
    the scenes × systems × resolutions grid, request cells follow a
    Zipf-ish ``1/(rank+1)`` weighting, tenants are uniform, and arrival
    offsets are cumulative exponential gaps at ``rate``.
    """
    rng = np.random.default_rng(config.seed)
    grid = [
        SimJob.make(system, scene, resolution, frames=config.frames)
        for scene, system, resolution in product(
            config.scenes, config.systems, config.resolutions
        )
    ]
    order = rng.permutation(len(grid))
    pool = [grid[i] for i in order[: max(1, min(config.pool_size, len(grid)))]]
    weights = 1.0 / (np.arange(len(pool)) + 1.0)
    weights /= weights.sum()
    cells = rng.choice(len(pool), size=config.requests, p=weights)
    tenants = rng.integers(0, max(1, config.tenants), size=config.requests)
    arrivals = np.cumsum(rng.exponential(1.0 / config.rate, size=config.requests))
    return pool, cells, tenants, arrivals


class _Client:
    """One tenant's connection: pipelined requests, responses matched by id."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None

    async def connect(self, wait_s: float = 0.0) -> None:
        deadline = time.perf_counter() + wait_s
        while True:
            try:
                self.reader, self.writer = await asyncio.open_connection(
                    self.host, self.port, limit=protocol.MAX_MESSAGE_BYTES
                )
                break
            except OSError:
                if time.perf_counter() >= deadline:
                    raise
                await asyncio.sleep(0.1)
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await protocol.read_message(self.reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ValueError, ConnectionError, OSError) as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError(str(exc)))
            self._pending.clear()

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        message = {**message, "id": self._next_id}
        future = asyncio.get_running_loop().create_future()
        self._pending[self._next_id] = future
        self.writer.write(protocol.encode_message(message))
        await self.writer.drain()
        return await future

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)


@dataclass
class LoadGenResult:
    """Everything one replay measured, plus the server's own accounting."""

    config: LoadGenConfig
    outcomes: list[_RequestOutcome]
    duration_s: float
    server_stats: dict[str, Any]
    #: cell index -> report payload recorded from the first ok response.
    reports: dict[int, dict] = field(default_factory=dict)
    verification: dict[str, Any] | None = None

    def artifact(self) -> dict[str, Any]:
        """The schema'd ``BENCH_service.json`` payload."""
        by_status: dict[str, int] = {}
        for outcome in self.outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        ok_latencies = np.array(
            [o.latency_s for o in self.outcomes if o.status == "ok"]
        )
        latency_ms = {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
        if ok_latencies.size:
            latency_ms = {
                "p50": float(np.percentile(ok_latencies, 50) * 1e3),
                "p95": float(np.percentile(ok_latencies, 95) * 1e3),
                "p99": float(np.percentile(ok_latencies, 99) * 1e3),
                "mean": float(ok_latencies.mean() * 1e3),
                "max": float(ok_latencies.max() * 1e3),
            }
        metrics = self.server_stats.get("metrics", {})
        return {
            "schema": SERVICE_BENCH_SCHEMA,
            "created_unix": time.time(),
            "config": self.config.as_dict(),
            "traffic": {
                "requests": len(self.outcomes),
                "unique_cells": len({o.cell for o in self.outcomes}),
                "tenants": self.config.tenants,
                "offered_rate_rps": self.config.rate,
            },
            "results": {
                "ok": by_status.get("ok", 0),
                "rejected": by_status.get("rejected", 0),
                "timeout": by_status.get("timeout", 0),
                "error": by_status.get("error", 0),
                "client_retries": sum(max(0, o.attempts - 1) for o in self.outcomes),
            },
            "duration_s": self.duration_s,
            "throughput_rps": (
                by_status.get("ok", 0) / self.duration_s if self.duration_s else 0.0
            ),
            "latency_ms": latency_ms,
            "server": {
                **metrics,
                "queue_depth_at_end": self.server_stats.get("queue_depth", 0),
            },
            "verification": self.verification,
        }

    @property
    def ok(self) -> bool:
        """No protocol/simulation errors and, if run, verification held."""
        if any(o.status == "error" for o in self.outcomes):
            return False
        if self.verification is not None and self.verification["mismatches"]:
            return False
        return True


async def run_loadgen(config: LoadGenConfig, verify: bool = False) -> LoadGenResult:
    """Replay the configured traffic; optionally verify byte-identity."""
    pool, cells, tenants, arrivals = build_traffic(config)
    clients = [
        _Client(config.host, config.port) for _ in range(max(1, config.tenants))
    ]
    for i, client in enumerate(clients):
        await client.connect(wait_s=config.wait_server_s if i == 0 else 0.0)

    outcomes: list[_RequestOutcome | None] = [None] * config.requests
    reports: dict[int, dict] = {}
    start = time.perf_counter()

    async def fire(index: int) -> None:
        delay = arrivals[index] - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        tenant_idx = int(tenants[index])
        cell_idx = int(cells[index])
        client = clients[tenant_idx]
        request = {
            "op": "simulate",
            "tenant": f"tenant-{tenant_idx}",
            "job": pool[cell_idx].to_payload(),
            "timeout_s": config.timeout_s,
            "shared_cache": config.shared_cache,
        }
        attempt = 0
        sent = time.perf_counter()
        while True:
            try:
                response = await client.request({**request, "attempt": attempt})
            except ConnectionError as exc:
                response = {"status": "error", "error": str(exc)}
            if response.get("status") == "rejected" and attempt < config.retries:
                attempt += 1
                await asyncio.sleep(config.retry_backoff_s * attempt)
                continue
            break
        latency = time.perf_counter() - sent
        status = response.get("status", "error")
        if status == "ok":
            reports.setdefault(cell_idx, response["report"])
        outcomes[index] = _RequestOutcome(
            cell=cell_idx,
            tenant=f"tenant-{tenant_idx}",
            status=status,
            latency_s=latency,
            attempts=attempt + 1,
            origin=response.get("origin"),
        )

    await asyncio.gather(*(fire(i) for i in range(config.requests)))
    duration = time.perf_counter() - start

    stats = await clients[0].request({"op": "stats"})
    for client in clients:
        await client.close()

    result = LoadGenResult(
        config=config,
        outcomes=list(outcomes),
        duration_s=duration,
        server_stats=stats,
        reports=reports,
    )
    if verify:
        result.verification = verify_reports(pool, reports)
    return result


def _simulate_cell(job: SimJob):
    """Module-level evaluate hook for :func:`execute_cells` (picklable)."""
    return job.simulate()


def verify_reports(pool: list[SimJob], reports: dict[int, dict]) -> dict[str, Any]:
    """Re-run every responded cell directly and byte-compare the payloads.

    The direct side goes through the engine's :func:`execute_cells` with a
    fresh, cache-less evaluation — the exact path a non-service caller
    takes — and both sides reduce to canonical JSON bytes, so "identical"
    here means identical at the byte level, not approximately equal.
    """
    indices = sorted(reports)
    jobs = [pool[i].resolved() for i in indices]
    batch = execute_cells(jobs, evaluate=_simulate_cell, jobs=1, cache=None)
    mismatched: list[int] = []
    for cell_idx, direct in zip(indices, batch.values):
        served = protocol.canonical_bytes(reports[cell_idx])
        expected = protocol.canonical_bytes(protocol.report_to_payload(direct))
        if served != expected:
            mismatched.append(cell_idx)
    return {
        "checked": len(indices),
        "mismatches": len(mismatched),
        "mismatched_cells": mismatched,
        "byte_identical": not mismatched,
    }


def write_service_bench(path: str, result: LoadGenResult) -> str:
    """Write the ``BENCH_service.json`` artifact and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.artifact(), handle, indent=2)
        handle.write("\n")
    return path


def summarize(result: LoadGenResult) -> str:
    """Human-readable replay summary for the CLI."""
    artifact = result.artifact()
    results = artifact["results"]
    latency = artifact["latency_ms"]
    server = artifact["server"]
    lines = [
        (
            f"{artifact['traffic']['requests']} request(s), "
            f"{artifact['traffic']['unique_cells']} unique cell(s), "
            f"{artifact['traffic']['tenants']} tenant(s) in "
            f"{artifact['duration_s']:.2f}s "
            f"({artifact['throughput_rps']:.1f} ok req/s)"
        ),
        (
            f"status: {results['ok']} ok, {results['rejected']} rejected, "
            f"{results['timeout']} timeout, {results['error']} error, "
            f"{results['client_retries']} client retries"
        ),
        (
            f"latency: p50 {latency['p50']:.1f} ms, p95 {latency['p95']:.1f} ms, "
            f"p99 {latency['p99']:.1f} ms"
        ),
        (
            f"server: {server.get('executions', 0)} execution(s), "
            f"coalesce rate {server.get('coalesce_rate', 0.0):.0%}, "
            f"warm-scene rate {server.get('warm_scene_rate', 0.0):.0%}, "
            f"{server.get('cache_hits', 0)} cache hit(s), "
            f"{server.get('rejected', 0)} rejected"
        ),
    ]
    if result.verification is not None:
        verdict = (
            "byte-identical to direct engine execution"
            if result.verification["byte_identical"]
            else f"{result.verification['mismatches']} MISMATCHED cell(s)"
        )
        lines.append(
            f"verification: {result.verification['checked']} cell(s) {verdict}"
        )
    return "\n".join(lines)
