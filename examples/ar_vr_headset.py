"""AR/VR headset scenario: can a 51.2 GB/s edge device hit 60 FPS at QHD?

Walks the paper's headline experiment (Fig. 15 / Fig. 16): simulate the
Orin AGX GPU, the GSCore ASIC, and Neo on the same scene workloads at the
per-eye resolutions AR/VR headsets use, under an edge DRAM budget.

Run:
    python examples/ar_vr_headset.py
"""

from __future__ import annotations

from repro.hw import DramConfig, WorkloadModel, get_system

SCENES = ("family", "lighthouse", "train")
SYSTEMS = ("orin", "gscore", "neo")
RESOLUTIONS = ("hd", "fhd", "qhd")
SLO_FPS = 60.0


def main() -> None:
    print("Capturing workload models (culling + projection per frame)...")
    models = {name: WorkloadModel.from_scene(name, num_frames=10) for name in SCENES}

    print(f"\n{'resolution':>10} {'system':>10} {'fps':>7} {'GB/60f':>8} {'60FPS?':>7}")
    for resolution in RESOLUTIONS:
        for label in SYSTEMS:
            fps_sum = gb_sum = 0.0
            for name, wm in models.items():
                # The registry knows each backend's builder and tile size, so
                # adding a system here is just another name in SYSTEMS.
                model = get_system(label).build(dram=DramConfig())
                tile = model.tile_size
                report = model.simulate(wm.sequence_workloads(resolution, tile), scene=name)
                fps_sum += report.fps
                gb_sum += report.traffic_gb_for(60)
            fps = fps_sum / len(models)
            gb = gb_sum / len(models)
            meets = "yes" if fps >= SLO_FPS else "no"
            print(f"{resolution:>10} {label:>10} {fps:>7.1f} {gb:>8.1f} {meets:>7}")
        print()

    print(
        "Neo is the only system that holds the 60 FPS SLO at QHD under the\n"
        "51.2 GB/s edge budget — the paper's headline claim — because its\n"
        "reuse-and-update sorting streams each Gaussian table once per frame\n"
        "instead of re-sorting millions of pairs from scratch."
    )


if __name__ == "__main__":
    main()
