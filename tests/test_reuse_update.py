"""Unit tests for the reuse-and-update sorting strategy (Neo's algorithm)."""

import pytest

from repro.core.reuse_update import ReuseUpdateSorter, SortTraffic
from repro.metrics.image import psnr
from repro.pipeline.renderer import Renderer


@pytest.fixture(scope="module")
def neo_run(request):
    """One Neo render sequence shared by the checks in this module."""
    scene = request.getfixturevalue("small_scene")
    cameras = request.getfixturevalue("camera_path")
    strategy = ReuseUpdateSorter()
    renderer = Renderer(scene, strategy=strategy)
    records = renderer.render_sequence(cameras)
    reference = Renderer(scene).render_sequence(cameras)
    return strategy, records, reference


class TestSortTraffic:
    def test_total_and_add(self):
        a = SortTraffic(table_read=10, table_write=5, incoming_read=2, incoming_write=2)
        b = SortTraffic(depth_refresh=7)
        a.add(b)
        assert a.total_bytes == 26


class TestReuseUpdate:
    def test_first_frame_initializes_tiles(self, neo_run):
        strategy, _, _ = neo_run
        first = strategy.frame_stats[0]
        assert first.tiles_initialized > 0
        assert first.tiles_reused == 0

    def test_later_frames_reuse(self, neo_run):
        strategy, _, _ = neo_run
        later = strategy.frame_stats[2]
        assert later.tiles_reused > 0
        assert later.reuse_fraction > 0.85

    def test_quality_close_to_exact(self, neo_run):
        _, records, reference = neo_run
        for ref, rec in zip(reference, records):
            assert psnr(ref.image, rec.image) > 40.0

    def test_tables_match_rendered_tiles(self, neo_run):
        strategy, records, _ = neo_run
        last = records[-1]
        for tile, table in strategy.tables.items():
            rendered = last.sorted_tiles.ids_for(tile)
            # Everything rendered for a tile came from its table.
            assert set(rendered.tolist()).issubset(set(table.ids.tolist()))

    def test_churn_is_small(self, neo_run):
        strategy, _, _ = neo_run
        for stats in strategy.frame_stats[1:]:
            assert stats.incoming_entries < 0.2 * stats.table_entries_after

    def test_traffic_accounted_every_frame(self, neo_run):
        strategy, _, _ = neo_run
        for stats in strategy.frame_stats:
            assert stats.traffic.total_bytes > 0
        total = strategy.total_traffic()
        assert total.total_bytes == sum(
            fs.traffic.total_bytes for fs in strategy.frame_stats
        )

    def test_depth_updates_applied(self, neo_run):
        strategy, _, _ = neo_run
        assert strategy.frame_stats[-1].depth_updates > 0

    def test_reset(self, small_scene, camera):
        strategy = ReuseUpdateSorter()
        Renderer(small_scene, strategy=strategy).render(camera)
        strategy.reset()
        assert not strategy.tables
        assert not strategy.frame_stats


class TestEagerDepthAblation:
    def test_eager_refresh_costs_more_traffic(self, small_scene, camera_path):
        deferred = ReuseUpdateSorter(defer_depth_update=True)
        Renderer(small_scene, strategy=deferred).render_sequence(camera_path)
        eager = ReuseUpdateSorter(defer_depth_update=False)
        Renderer(small_scene, strategy=eager).render_sequence(camera_path)
        assert eager.total_traffic().depth_refresh > 0
        assert eager.total_traffic().total_bytes > deferred.total_traffic().total_bytes

    def test_eager_refresh_quality_not_worse(self, small_scene, camera_path):
        reference = Renderer(small_scene).render_sequence(camera_path)
        eager = ReuseUpdateSorter(defer_depth_update=False)
        records = Renderer(small_scene, strategy=eager).render_sequence(camera_path)
        for ref, rec in zip(reference[1:], records[1:]):
            assert psnr(ref.image, rec.image) > 40.0


class TestValidation:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ReuseUpdateSorter(chunk_size=1)
