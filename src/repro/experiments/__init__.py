"""Experiment drivers: one module per paper table/figure, one shared engine."""

from .engine import (
    CellResults,
    ExperimentEngine,
    ExperimentPlan,
    SimJob,
    execute_cells,
    execute_plan,
)
from .registry import (
    EXPERIMENTS,
    PLANS,
    experiment_descriptions,
    list_experiments,
    run_experiment,
)
from .runner import (
    DEFAULT_FRAMES,
    PAPER_TRAFFIC_FRAMES,
    ExperimentResult,
    RunnerConfig,
    get_runner_config,
    get_workload_model,
    resolve_frames,
    runner_config,
    set_runner_config,
    simulate_system,
)

__all__ = [
    "DEFAULT_FRAMES",
    "EXPERIMENTS",
    "PLANS",
    "CellResults",
    "ExperimentEngine",
    "ExperimentPlan",
    "ExperimentResult",
    "PAPER_TRAFFIC_FRAMES",
    "RunnerConfig",
    "SimJob",
    "execute_cells",
    "execute_plan",
    "experiment_descriptions",
    "get_runner_config",
    "get_workload_model",
    "list_experiments",
    "resolve_frames",
    "run_experiment",
    "runner_config",
    "set_runner_config",
    "simulate_system",
]
