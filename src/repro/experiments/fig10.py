"""Fig. 10 — software-only Neo (Neo-SW) on the Orin AGX GPU.

Section 4.5: running reuse-and-update sorting as CUDA kernels cuts DRAM
traffic substantially (>70 % overall, >80 % in the sorting stage) but buys
only ~1.1x end-to-end latency, because the irregular insertion/deletion
kernels are SIMD-hostile and rasterization still dominates GPU runtime —
the motivation for a hardware-software co-design.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import PAPER_TRAFFIC_FRAMES, ExperimentResult

VARIANTS = (("orin", "original-3dgs"), ("orin-neo-sw", "neo-sw"))

DESCRIPTION = "Original 3DGS vs software-only Neo on Orin AGX (QHD)"


def plan(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentPlan:
    """Declare the (variant, scene) GPU grid for the Neo-SW study."""
    cells = tuple(
        SimJob(system, scene, resolution, frames=num_frames)
        for system, _ in VARIANTS
        for scene in scenes
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig10", description=DESCRIPTION)
        for system, label in VARIANTS:
            latency, feature, sorting, raster = [], [], [], []
            for scene in scenes:
                report = reports[SimJob(system, scene, resolution, frames=num_frames)]
                latency.append(report.mean_latency_s * 1e3)
                scale = PAPER_TRAFFIC_FRAMES / report.num_frames / 1e9
                total = report.total_traffic
                feature.append(total.feature_extraction * scale)
                sorting.append(total.sorting * scale)
                raster.append(total.rasterization * scale)
            total_gb = float(np.mean(feature) + np.mean(sorting) + np.mean(raster))
            result.rows.append(
                {
                    "variant": label,
                    "latency_ms": float(np.mean(latency)),
                    "feature_gb": float(np.mean(feature)),
                    "sorting_gb": float(np.mean(sorting)),
                    "raster_gb": float(np.mean(raster)),
                    "total_gb": total_gb,
                }
            )
        return result

    return ExperimentPlan("fig10", DESCRIPTION, cells, aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentResult:
    """Latency and traffic of original 3DGS vs Neo-SW on the GPU model."""
    return execute_plan(plan(scenes=scenes, resolution=resolution, num_frames=num_frames))


def summary(result: ExperimentResult) -> dict[str, float]:
    """Headline ratios: traffic reductions and end-to-end speedup."""
    base = result.filter(variant="original-3dgs")[0]
    neo_sw = result.filter(variant="neo-sw")[0]
    return {
        "traffic_reduction": 1.0 - neo_sw["total_gb"] / base["total_gb"],
        "sorting_traffic_reduction": 1.0 - neo_sw["sorting_gb"] / base["sorting_gb"],
        "speedup": base["latency_ms"] / neo_sw["latency_ms"],
    }
