"""Plan/execute core shared by every experiment driver and the sweep executor.

Every figure/table driver used to hand-code a serial loop over independent
:func:`~repro.experiments.runner.simulate_system` cells.  This module splits
that into a *plan* — an :class:`ExperimentPlan` declaring the grid of
:class:`SimJob` cells plus a pure ``aggregate(cells) -> ExperimentResult``
function — and an *execution core* that collects cells from one or many
experiments at once, dedupes identical cells across figures (fig03/fig04/
fig15/table2 all re-simulate overlapping GSCore/Neo cells), serves hits from
the :class:`~repro.runtime.cache.ResultCache`, and fans misses out through
:func:`~repro.runtime.parallel.parallel_map` with the runtime's
parallel-vs-serial byte-identical contract.

Layering::

    repro experiments (CLI) --> ExperimentEngine --+
    repro sweep run   (CLI) --> SweepRunner  ------+--> execute_cells
                                                        (dedup, cache probe,
                                                         parallel fan-out,
                                                         ordered merge)

:func:`execute_cells` is the single fan-out primitive: anything with a
``cache_spec()`` (a :class:`SimJob`, a whole-experiment task, a sweep
``SweepPoint``) can be batched through it.  Aggregation stays in the parent
process and is pure, so serial, parallel, cold, and warm executions all
produce row-identical :class:`~repro.experiments.runner.ExperimentResult`\\ s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..hw.config import DramConfig
from ..hw.system import get_system
from ..runtime.cache import ResultCache, stable_key
from ..runtime.parallel import parallel_map
from .runner import (
    DEFAULT_FRAMES,
    ExperimentResult,
    RunnerConfig,
    build_system_model,
    get_workload_model,
    resolve_frames,
    runner_config,
    simulate_system,
)


# ----------------------------------------------------------------------
# SimJob: one simulation cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimJob:
    """One (system, scene, resolution, ...) simulation cell.

    A value object: two jobs with equal parameters are the *same* cell, which
    is what lets the engine dedupe overlapping cells across experiments.
    ``frames=None`` means "the active config's frame count" and is pinned via
    :meth:`resolved` before execution, so cells declared by different figures
    with different spellings of the default still collapse.

    ``model_kwargs`` holds extra keyword arguments for the system model as a
    sorted tuple of items (hashable); use :meth:`make` to build jobs with
    plain keyword arguments.
    """

    system: str
    scene: str
    resolution: str
    frames: int | None = None
    speed: float = 1.0
    cores: int = 16
    bandwidth_gbps: float = 51.2
    model_kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Fail at declaration time, not deep inside a worker: every cell
        # must name a registered system (same error the runner would raise).
        get_system(self.system)
        # Normalize numeric spellings (4 vs 4.0) so equal cells hash equal.
        object.__setattr__(self, "speed", float(self.speed))
        object.__setattr__(self, "cores", int(self.cores))
        object.__setattr__(self, "bandwidth_gbps", float(self.bandwidth_gbps))
        if not isinstance(self.model_kwargs, tuple):
            object.__setattr__(
                self, "model_kwargs", tuple(sorted(dict(self.model_kwargs).items()))
            )

    @classmethod
    def make(
        cls,
        system: str,
        scene: str,
        resolution: str,
        *,
        frames: int | None = None,
        speed: float = 1.0,
        cores: int = 16,
        bandwidth_gbps: float = 51.2,
        **model_kwargs,
    ) -> "SimJob":
        """Build a job with model kwargs given as plain keyword arguments."""
        return cls(
            system,
            scene,
            resolution,
            frames,
            speed,
            cores,
            bandwidth_gbps,
            tuple(sorted(model_kwargs.items())),
        )

    @property
    def kwargs(self) -> dict[str, Any]:
        """``model_kwargs`` as a plain dict."""
        return dict(self.model_kwargs)

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe request form of this cell (service wire format).

        Round-trips through :meth:`from_payload`: the service's coalesce and
        cache keys are computed from the reconstructed job, so two clients
        spelling the same cell differently (4 vs 4.0) still collapse.
        """
        return {
            "system": self.system,
            "scene": self.scene,
            "resolution": self.resolution,
            "frames": self.frames,
            "speed": self.speed,
            "cores": self.cores,
            "bandwidth_gbps": self.bandwidth_gbps,
            "kwargs": self.kwargs,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SimJob":
        """Rebuild a cell from :meth:`to_payload` output (missing keys default)."""
        return cls.make(
            payload["system"],
            payload["scene"],
            payload["resolution"],
            frames=payload.get("frames"),
            speed=payload.get("speed", 1.0),
            cores=payload.get("cores", 16),
            bandwidth_gbps=payload.get("bandwidth_gbps", 51.2),
            **dict(payload.get("kwargs") or {}),
        )

    def resolved(self) -> "SimJob":
        """This job with ``frames=None`` pinned to the active config."""
        if self.frames is not None:
            return self
        return SimJob(
            self.system,
            self.scene,
            self.resolution,
            resolve_frames(None),
            self.speed,
            self.cores,
            self.bandwidth_gbps,
            self.model_kwargs,
        )

    def cache_payload(self) -> dict[str, Any]:
        """Parameter dict matching :func:`simulate_system`'s report cache key.

        Kept field-for-field identical so engine-simulated cells and direct
        ``simulate_system`` calls share disk cache entries.
        """
        if self.frames is None:
            raise ValueError("cache_payload() needs concrete frames; call resolved() first")
        return {
            "kind": "report",
            "system": self.system,
            "scene": self.scene,
            "resolution": self.resolution,
            "frames": self.frames,
            "speed": self.speed,
            "cores": self.cores,
            "bandwidth": self.bandwidth_gbps,
            "kwargs": self.kwargs,
        }

    def cache_spec(self) -> tuple[str, dict[str, Any]]:
        """(namespace, payload) for :func:`execute_cells`."""
        return "reports", self.cache_payload()

    def simulate(self):
        """Evaluate this cell through :func:`simulate_system` (active config)."""
        return simulate_system(
            self.system,
            self.scene,
            self.resolution,
            num_frames=self.frames,
            speed=self.speed,
            cores=self.cores,
            bandwidth_gbps=self.bandwidth_gbps,
            **self.kwargs,
        )


class CellResults(Mapping):
    """Cell reports keyed by :class:`SimJob`, tolerant of unresolved frames.

    Aggregate functions look cells up with the same job objects their plan
    declared; jobs declared with ``frames=None`` are resolved against the
    active config on lookup, mirroring what the engine did at dispatch time.
    """

    def __init__(self, reports: dict[SimJob, Any]) -> None:
        self._reports = reports

    def __getitem__(self, job: SimJob):
        return self._reports[job.resolved()]

    def __iter__(self) -> Iterator[SimJob]:
        return iter(self._reports)

    def __len__(self) -> int:
        return len(self._reports)


# ----------------------------------------------------------------------
# ExperimentPlan: declarative driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment's declared cells plus its pure aggregation function.

    ``aggregate`` receives a :class:`CellResults` mapping covering (at least)
    ``cells`` and returns the finished
    :class:`~repro.experiments.runner.ExperimentResult`.  It must be pure with
    respect to the cell reports — all simulation happens through the engine —
    but drivers whose work is not cell-shaped (functional renders, analytic
    tables) may compute everything inside ``aggregate`` and declare no cells.

    Plan construction must stay cheap and config-independent: defer anything
    touching the active :class:`~repro.experiments.runner.RunnerConfig` into
    ``aggregate`` or cell execution.
    """

    name: str
    description: str
    cells: tuple[SimJob, ...]
    aggregate: Callable[[CellResults], ExperimentResult]


def execute_plan(plan: ExperimentPlan) -> ExperimentResult:
    """Evaluate one plan in-process under the active config (serial path).

    This is what every driver's ``run()`` delegates to: cells are deduped
    within the plan and evaluated through :func:`simulate_system` (so the
    active config's cache and the in-process workload memo apply exactly as
    they did before the plan/execute split), then aggregated.
    """
    reports: dict[SimJob, Any] = {}
    for job in plan.cells:
        resolved = job.resolved()
        if resolved not in reports:
            reports[resolved] = resolved.simulate()
    return plan.aggregate(CellResults(reports))


# ----------------------------------------------------------------------
# BatchedRollout: stacked multi-cell evaluation through the model core
# ----------------------------------------------------------------------
#: SimJob fields that must agree for cells to share one stacked rollout.
#: ``speed`` and ``frames`` shape the captured workload list itself and
#: ``model_kwargs`` branch Python control flow inside the models, so they
#: group rather than stack; only the pure sweep knobs become cell axes.
ROLLOUT_GROUP_FIELDS = ("system", "scene", "resolution", "frames", "speed", "model_kwargs")

#: SimJob fields stacked onto the extra leading cell axis.
ROLLOUT_AXIS_FIELDS = ("bandwidth_gbps", "cores")


@dataclass
class RolloutStats:
    """Accounting for one :class:`BatchedRollout` execution."""

    groups: int = 0
    stacked: int = 0
    fallback: int = 0


class BatchedRollout:
    """Evaluate many :class:`SimJob` cells as stacked array rollouts.

    Cells agreeing on :data:`ROLLOUT_GROUP_FIELDS` form a *group*; within a
    group the varying sweep knobs (:data:`ROLLOUT_AXIS_FIELDS`) become one
    extra leading ``(cells, 1)`` array axis substituted into the system
    model, so the whole group's reports come out of a single pass through
    the elementwise equation core
    (:meth:`~repro.hw.system.SystemModel.simulate_rollout`) — with the
    workload capture and model construction amortized across the group.
    Per-cell reports are byte-identical to per-cell :meth:`SimJob.simulate`
    runs.

    A model that cannot stack a varying knob (e.g. a pinned-core variant
    under a cores sweep) falls back to per-cell simulation *for that group*,
    never for the process.  With ``strict=True``, all cells must form one
    group; mismatches raise ``ValueError`` naming the conflicting fields.
    """

    def __init__(self, jobs: list[SimJob], strict: bool = False) -> None:
        self.stats = RolloutStats()
        self._originals: dict[SimJob, SimJob] = {}  # original -> resolved
        groups: dict[tuple, list[SimJob]] = {}
        for job in jobs:
            resolved = job.resolved()
            self._originals[job] = resolved
            key = tuple(getattr(resolved, f) for f in ROLLOUT_GROUP_FIELDS)
            members = groups.setdefault(key, [])
            if resolved not in members:
                members.append(resolved)
        if strict and len(groups) > 1:
            first, second = (members[0] for members in list(groups.values())[:2])
            mismatched = [
                f for f in ROLLOUT_GROUP_FIELDS
                if getattr(first, f) != getattr(second, f)
            ]
            raise ValueError(
                "cells cannot stack into one rollout: "
                f"{mismatched} differ (e.g. {first} vs {second}); "
                f"cells must agree on {list(ROLLOUT_GROUP_FIELDS)}"
            )
        self.groups = list(groups.values())
        self.stats.groups = len(self.groups)

    def execute(self) -> dict[SimJob, Any]:
        """Evaluate every cell; returns reports keyed by the *input* jobs."""
        by_resolved: dict[SimJob, Any] = {}
        for group in self.groups:
            by_resolved.update(self._execute_group(group))
        return {
            original: by_resolved[resolved]
            for original, resolved in self._originals.items()
        }

    def _execute_group(self, group: list[SimJob]) -> dict[SimJob, Any]:
        """One group: mirror ``_simulate_system_uncached`` step for step,
        with the per-cell parameters handed to the model as cell axes."""
        template = group[0]
        wm = get_workload_model(
            template.scene, num_frames=template.frames, speed=template.speed
        )
        model, tile = build_system_model(
            template.system,
            dram=DramConfig(bandwidth_gbps=template.bandwidth_gbps),
            cores=template.cores,
            **template.kwargs,
        )
        workloads = wm.sequence_workloads(template.resolution, tile)
        reports = model.simulate_rollout(
            workloads,
            {
                "bandwidth_gbps": np.array(
                    [job.bandwidth_gbps for job in group], dtype=np.float64
                ),
                "cores": np.array(
                    [float(job.cores) for job in group], dtype=np.float64
                ),
            },
            scene=template.scene,
        )
        if reports is None:
            self.stats.fallback += len(group)
            return {job: job.simulate() for job in group}
        self.stats.stacked += len(group)
        return dict(zip(group, reports))


def rollout_sim_misses(cells: list) -> tuple[dict, "RolloutStats | None"]:
    """Default batched-miss handler: stack the :class:`SimJob` cells.

    This is the handler :func:`execute_cells` applies under ``batched=True``
    when the caller supplies none.  Callers whose cells are not SimJobs
    (e.g. the sweep executor) pass their own handler with the same
    contract: take the miss cells, return ``(values keyed by cell, stats)``
    covering whichever cells the handler could evaluate; the rest fall
    through to the normal per-cell fan-out.
    """
    sim_cells = [cell for cell in cells if isinstance(cell, SimJob)]
    if not sim_cells:
        return {}, None
    rollout = BatchedRollout(sim_cells)
    return rollout.execute(), rollout.stats


# ----------------------------------------------------------------------
# execute_cells: the shared fan-out primitive
# ----------------------------------------------------------------------
@dataclass
class CellBatch:
    """Outcome of one :func:`execute_cells` call.

    ``values`` and ``from_cache`` align with the input cell list (duplicates
    included); ``keys`` carries each cell's stable cache key so callers can
    compute their own per-subset statistics.
    """

    values: list[Any]
    from_cache: list[bool]
    keys: list[str]
    requested: int
    unique: int
    hits: int
    computed: int
    elapsed_s: float
    rollout: "RolloutStats | None" = None

    @property
    def deduplicated(self) -> int:
        """Cells served by another identical cell in the same batch."""
        return self.requested - self.unique


def execute_cells(
    cells: list,
    evaluate: Callable[[Any], Any],
    jobs: int = 1,
    cache: ResultCache | None = None,
    store: bool = True,
    batched: bool = False,
    rollout_misses: "Callable[[list], tuple[dict, RolloutStats | None]] | None" = None,
) -> CellBatch:
    """Evaluate a batch of cells: dedup, cache probe, parallel fan-out, merge.

    Each cell must provide ``cache_spec() -> (namespace, payload)`` and be
    picklable; ``evaluate`` must be a picklable callable (workers receive the
    cell objects).  Identical cells — equal stable cache keys — are evaluated
    once and their value is shared; previously cached cells never reach a
    worker.  Results come back aligned with the input order, so callers'
    merges are deterministic regardless of ``jobs``.

    ``store=False`` skips the parent-side cache write for computed cells —
    for callers whose ``evaluate`` already persists its own result (the
    engine's workers write through ``simulate_system``), avoiding a second
    serialization of every report.

    ``batched=True`` routes cache misses through a rollout handler —
    compatible cells evaluate as one stacked array pass instead of one
    process each, with byte-identical reports — before any remaining misses
    (unstackable groups fall back inside the rollout; unhandled cells
    always) take the normal ``evaluate`` fan-out.  The default handler
    (:func:`rollout_sim_misses`) stacks :class:`SimJob` cells; callers with
    differently shaped cells pass their own ``rollout_misses`` with the
    same ``cells -> (values_by_cell, stats)`` contract.
    """
    start = time.perf_counter()
    keys: list[str] = []
    spec_by_key: dict[str, tuple[str, dict[str, Any]]] = {}
    unique_cells: dict[str, Any] = {}
    for cell in cells:
        namespace, payload = cell.cache_spec()
        key = stable_key(payload)
        keys.append(key)
        if key not in unique_cells:
            unique_cells[key] = cell
            spec_by_key[key] = (namespace, payload)

    values: dict[str, Any] = {}
    cached_keys: set[str] = set()
    misses: list[tuple[str, Any]] = []
    for key, cell in unique_cells.items():
        namespace, payload = spec_by_key[key]
        cached = cache.get(namespace, payload) if cache is not None else None
        if cached is not None:
            values[key] = cached
            cached_keys.add(key)
        else:
            misses.append((key, cell))

    rollout_stats: RolloutStats | None = None
    n_misses = len(misses)
    if batched:
        handler = rollout_misses if rollout_misses is not None else rollout_sim_misses
        handled, rollout_stats = handler([cell for _, cell in misses])
        if handled:
            for key, cell in misses:
                if cell not in handled:
                    continue
                value = handled[cell]
                values[key] = value
                # The rollout computes in the parent process, so nothing
                # else persists these cells — write them regardless of
                # ``store`` (which exists to avoid double-writing what a
                # worker already stored).
                if cache is not None:
                    namespace, payload = spec_by_key[key]
                    cache.put(namespace, payload, value)
            misses = [(key, cell) for key, cell in misses if cell not in handled]

    computed = parallel_map(evaluate, [cell for _, cell in misses], jobs)
    for (key, _), value in zip(misses, computed):
        values[key] = value
        if store and cache is not None:
            namespace, payload = spec_by_key[key]
            cache.put(namespace, payload, value)

    return CellBatch(
        values=[values[key] for key in keys],
        from_cache=[key in cached_keys for key in keys],
        keys=keys,
        requested=len(cells),
        unique=len(unique_cells),
        hits=len(cached_keys),
        computed=n_misses,
        elapsed_s=time.perf_counter() - start,
        rollout=rollout_stats,
    )


# ----------------------------------------------------------------------
# ExperimentEngine: multi-experiment orchestration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentTask:
    """A whole experiment dispatched by registry name.

    Used for plans with no declared cells (functional renders, analytic
    tables): their work is not cell-shaped, so the engine runs the entire
    driver in a worker — through the same :func:`execute_cells` batch as the
    simulation cells, cached under the ``experiments`` namespace.
    """

    name: str
    frames: int | None

    def cache_spec(self) -> tuple[str, dict[str, Any]]:
        return "experiments", {
            "kind": "experiment",
            "name": self.name,
            "frames": DEFAULT_FRAMES if self.frames is None else self.frames,
        }


def _evaluate_engine_task(task, frames: int | None = None, cache_root: str | None = None):
    """Worker body shared by cell and whole-experiment tasks.

    Installs the engine's :class:`~repro.experiments.runner.RunnerConfig` so
    workload captures and nested ``simulate_system`` calls hit the same disk
    cache the parent uses (configs don't survive the process boundary).
    Persistence happens here, worker-side — ``simulate_system`` writes cell
    reports, whole-experiment results are put explicitly — so the engine's
    :func:`execute_cells` batch runs with ``store=False`` and nothing is
    serialized twice.
    """
    cache = ResultCache(cache_root) if cache_root is not None else None
    with runner_config(RunnerConfig(frames=frames, cache=cache)):
        if isinstance(task, SimJob):
            return task.simulate()
        from . import registry

        start = time.perf_counter()
        result = registry.EXPERIMENTS[task.name]()
        value = {"name": result.name, "description": result.description, "rows": result.rows}
        if cache is not None:
            cache.put(*task.cache_spec(), value)
        return {**value, "elapsed_s": time.perf_counter() - start}


@dataclass
class CellStats:
    """Simulation-cell accounting for one engine run."""

    requested: int = 0
    unique: int = 0
    hits: int = 0
    computed: int = 0

    @property
    def deduplicated(self) -> int:
        """Cells that another experiment (or loop) had already declared."""
        return self.requested - self.unique


@dataclass
class EngineOutcome:
    """One experiment's result plus provenance for reporting."""

    name: str
    result: ExperimentResult
    elapsed_s: float
    from_cache: bool


@dataclass
class EngineRun:
    """All outcomes of one engine invocation plus cell-level statistics."""

    outcomes: list[EngineOutcome]
    cells: CellStats
    elapsed_s: float

    @property
    def all_cached(self) -> bool:
        """True when every experiment was served whole from the result cache."""
        return all(outcome.from_cache for outcome in self.outcomes)


@dataclass
class ExperimentEngine:
    """Collects cells from many experiments, dedupes, and fans out once.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss evaluation; ``1`` runs in-process.
        Parallelism is cell-granular: one fig15 GSCore cell and one fig16 Neo
        cell can run side by side even though they belong to different
        figures.
    frames:
        Frame-count override threaded into the
        :class:`~repro.experiments.runner.RunnerConfig` every cell and
        aggregate runs under (``None`` keeps driver defaults).
    cache:
        Result cache for cells (``reports``), workload captures
        (``workloads``), and whole experiment results (``experiments``);
        ``None`` disables persistence.
    batched:
        Evaluate compatible simulation cells as stacked
        :class:`BatchedRollout` passes instead of one worker call each
        (byte-identical reports; see :func:`execute_cells`).
    """

    jobs: int = 1
    frames: int | None = None
    cache: ResultCache | None = field(default_factory=ResultCache)
    batched: bool = False

    # ------------------------------------------------------------------
    # Registry-level entry point
    # ------------------------------------------------------------------
    def run(self, names: list[str]) -> EngineRun:
        """Run registered experiments by name; output order matches input.

        Whole-result cache hits skip planning entirely; everything else is
        planned, cross-figure-deduped, and executed through one
        :func:`execute_cells` batch.
        """
        from . import registry

        start = time.perf_counter()
        unknown = [n for n in names if n.lower() not in registry.EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiments {unknown}; options: {sorted(registry.EXPERIMENTS)}"
            )
        names = [n.lower() for n in names]

        outcomes: dict[str, EngineOutcome] = {}
        plans: list[ExperimentPlan] = []
        for name in dict.fromkeys(names):  # preserve order, drop repeats
            task = ExperimentTask(name, self.frames)
            cached = self.cache.get(*task.cache_spec()) if self.cache else None
            if cached is not None:
                result = ExperimentResult(
                    name=cached["name"],
                    description=cached["description"],
                    rows=cached["rows"],
                )
                outcomes[name] = EngineOutcome(name, result, elapsed_s=0.0, from_cache=True)
            else:
                plans.append(registry.PLANS[name]())

        planned, stats = self._execute_plans(plans, dispatch_cell_less_by_name=True)
        for plan in plans:
            outcomes[plan.name] = planned[id(plan)]
        return EngineRun(
            outcomes=[outcomes[name] for name in names],
            cells=stats,
            elapsed_s=time.perf_counter() - start,
        )

    def run_plans(self, plans: list[ExperimentPlan]) -> EngineRun:
        """Run explicit plans (e.g. parameterized ones tests build directly).

        No whole-result caching — plans are arbitrary, so only their cells
        are cached — and cell-less plans aggregate in the parent process.
        Plans are tracked by identity, so two differently-parameterized plans
        sharing a name each keep their own outcome slot.
        """
        start = time.perf_counter()
        planned, stats = self._execute_plans(list(plans), dispatch_cell_less_by_name=False)
        return EngineRun(
            outcomes=[planned[id(plan)] for plan in plans],
            cells=stats,
            elapsed_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Shared execution
    # ------------------------------------------------------------------
    def _execute_plans(
        self,
        plans: list[ExperimentPlan],
        dispatch_cell_less_by_name: bool,
    ) -> tuple[dict[int, EngineOutcome], CellStats]:
        """Execute plans; returns outcomes keyed by plan identity plus stats."""
        outcomes: dict[int, EngineOutcome] = {}
        if not plans:
            return outcomes, CellStats()
        cache_root = str(self.cache.root) if self.cache else None
        with runner_config(RunnerConfig(frames=self.frames, cache=self.cache)):
            cell_plans = [plan for plan in plans if plan.cells]
            whole_plans = [plan for plan in plans if not plan.cells]

            sim_cells = [job.resolved() for plan in cell_plans for job in plan.cells]
            tasks: list[Any] = list(sim_cells)
            if dispatch_cell_less_by_name:
                tasks += [ExperimentTask(plan.name, self.frames) for plan in whole_plans]

            # store=False: the worker persists everything itself (cells via
            # simulate_system, whole results explicitly), so the parent never
            # serializes a report a second time.
            batch = execute_cells(
                tasks,
                evaluate=partial(
                    _evaluate_engine_task, frames=self.frames, cache_root=cache_root
                ),
                jobs=self.jobs,
                cache=self.cache,
                store=False,
                batched=self.batched,
            )

            n_sim = len(sim_cells)
            reports = dict(zip(sim_cells, batch.values[:n_sim]))
            cells = CellResults(reports)
            for plan in cell_plans:
                t0 = time.perf_counter()
                result = plan.aggregate(cells)
                outcomes[id(plan)] = EngineOutcome(
                    plan.name, result, time.perf_counter() - t0, from_cache=False
                )
                if dispatch_cell_less_by_name:
                    # Registry path: plans are the default ones, so the whole
                    # result is safely keyed by (name, frames).  Explicit
                    # (possibly parameterized) plans only cache their cells.
                    self._store_whole_result(plan.name, result)

            if dispatch_cell_less_by_name:
                for plan, value in zip(whole_plans, batch.values[n_sim:]):
                    result = ExperimentResult(
                        name=value["name"],
                        description=value["description"],
                        rows=value["rows"],
                    )
                    outcomes[id(plan)] = EngineOutcome(
                        plan.name,
                        result,
                        elapsed_s=value.get("elapsed_s", 0.0),
                        from_cache=False,
                    )
            else:
                for plan in whole_plans:
                    t0 = time.perf_counter()
                    result = plan.aggregate(CellResults({}))
                    outcomes[id(plan)] = EngineOutcome(
                        plan.name, result, time.perf_counter() - t0, from_cache=False
                    )

            sim_keys = batch.keys[:n_sim]
            sim_flags = batch.from_cache[:n_sim]
            unique_hits = {k for k, hit in zip(sim_keys, sim_flags) if hit}
            unique_sim = set(sim_keys)
            return outcomes, CellStats(
                requested=n_sim,
                unique=len(unique_sim),
                hits=len(unique_hits),
                computed=len(unique_sim) - len(unique_hits),
            )

    def _store_whole_result(self, name: str, result: ExperimentResult) -> None:
        """Cache an aggregated result so warm runs skip planning entirely."""
        if self.cache is None:
            return
        task = ExperimentTask(name, self.frames)
        self.cache.put(
            *task.cache_spec(),
            {"name": result.name, "description": result.description, "rows": result.rows},
        )
