"""Golden bit-identity tests for the tile-stream converted hw/metrics paths.

Each converted segmented program is cross-checked against its frozen scalar
pin (:mod:`repro.hw.reference` / :mod:`repro.metrics.reference` /
:mod:`repro.pipeline.reference`) — arrays must match *bit for bit*, not
approximately.  The pipeline rasterizer/sorting equivalents live in
``tests/test_raster_reference.py``; this file covers the workload queries,
the similarity metric, the engine simulators, and the sparse-raster gather.
"""

import numpy as np
import pytest

import repro.hw.reference as hw_ref
import repro.metrics.reference as metrics_ref
import repro.pipeline.reference as pipeline_ref
from repro.hw.raster_engine import RasterEngineSim
from repro.hw.sorting_engine import SortingEngineSim, jobs_from_occupancy
from repro.hw.workload import WorkloadModel
from repro.metrics.similarity import frame_similarity
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.projection import ProjectedGaussians
from repro.pipeline.rasterizer import rasterize_tile
from repro.pipeline.sorting import sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles


@pytest.fixture(scope="module")
def workload_model():
    return WorkloadModel.from_scene("family", num_frames=3, num_gaussians=1200)


CONFIGS = [((160, 90), 32), ((320, 180), 64)]


class TestWorkloadQueries:
    @pytest.mark.parametrize("resolution,tile_size", CONFIGS)
    def test_pair_keys_match(self, workload_model, resolution, tile_size):
        for frame in range(workload_model.num_frames):
            scalar = hw_ref.scalar_pair_keys(
                workload_model, frame, resolution, tile_size
            )
            width, height = workload_model._resolve(resolution)
            stream_keys = workload_model._pair_keys(frame, (width, height), tile_size)
            # The stream groups pairs by tile; the key *set* is unchanged.
            np.testing.assert_array_equal(np.sort(stream_keys), np.sort(scalar))

    @pytest.mark.parametrize("resolution,tile_size", CONFIGS)
    def test_churn_counts_match(self, workload_model, resolution, tile_size):
        width, height = workload_model._resolve(resolution)
        for frame in range(workload_model.num_frames):
            assert workload_model._churn_counts(
                frame, (width, height), tile_size
            ) == hw_ref.scalar_churn_counts(workload_model, frame, resolution, tile_size)

    @pytest.mark.parametrize("resolution,tile_size", CONFIGS)
    def test_shared_fraction_bit_identical(self, workload_model, resolution, tile_size):
        for frame in range(1, workload_model.num_frames):
            np.testing.assert_array_equal(
                workload_model.shared_fraction_per_tile(frame, resolution, tile_size),
                hw_ref.scalar_shared_fraction_per_tile(
                    workload_model, frame, resolution, tile_size
                ),
            )

    @pytest.mark.parametrize("resolution,tile_size", CONFIGS)
    def test_order_differences_bit_identical(self, workload_model, resolution, tile_size):
        for frame in range(1, workload_model.num_frames):
            np.testing.assert_array_equal(
                workload_model.order_differences(frame, resolution, tile_size),
                hw_ref.scalar_order_differences(
                    workload_model, frame, resolution, tile_size
                ),
            )


class TestFrameSimilarity:
    def _sorted_frames(self, seed):
        rng = np.random.default_rng(seed)
        grid = TileGrid(width=96, height=96, tile_size=16)

        def frame(n, id_pool):
            ids = rng.choice(id_pool, size=n, replace=False)
            return ProjectedGaussians(
                ids=np.sort(ids),
                means2d=np.column_stack(
                    [rng.uniform(-4, 100, n), rng.uniform(-4, 100, n)]
                ),
                cov2d=np.tile(np.eye(2), (n, 1, 1)),
                conic=np.tile(np.array([1.0, 0.0, 1.0]), (n, 1)),
                depths=rng.uniform(0.1, 10.0, n),
                radii=rng.uniform(1.0, 10.0, n),
                colors=np.full((n, 3), 0.5),
                opacities=np.full(n, 0.9),
            )

        pool = np.arange(400)
        prev = sort_tiles(assign_to_tiles(frame(250, pool), grid))
        cur = sort_tiles(assign_to_tiles(frame(250, pool), grid))
        return prev, cur

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_to_loop(self, seed):
        prev, cur = self._sorted_frames(seed)
        fast = frame_similarity(prev, cur)
        slow = metrics_ref.frame_similarity(prev, cur)
        np.testing.assert_array_equal(fast.shared_fractions, slow.shared_fractions)
        np.testing.assert_array_equal(fast.order_differences, slow.order_differences)


class TestRasterEngineSim:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_report_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        sim = RasterEngineSim()
        n = int(rng.integers(1, 200))
        gaussians = rng.integers(0, 500, size=n).tolist()
        hits = [int(rng.integers(0, 64 * g + 1)) if g else 0 for g in gaussians]

        fast = sim.simulate_frame(gaussians, hits)
        slow = hw_ref.scalar_raster_engine_frame(sim, gaussians, hits)
        assert fast.total_cycles == slow.total_cycles
        assert fast.tiles == slow.tiles
        assert fast.scu_cycles == slow.scu_cycles
        assert fast.itu_cycles == slow.itu_cycles
        for name in (
            "tile_total_cycles",
            "tile_itu_cycles",
            "tile_scu_cycles",
            "tile_itu_idle_cycles",
            "tile_scu_stall_cycles",
        ):
            np.testing.assert_array_equal(getattr(fast, name), getattr(slow, name))
        assert fast.mean_pipeline_efficiency == slow.mean_pipeline_efficiency

    def test_empty_frame(self):
        sim = RasterEngineSim()
        report = sim.simulate_frame([0, 0], [0, 0])
        assert report.total_cycles == 0.0
        assert report.tiles == 0


class TestSortingEngineSim:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_report_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        sim = SortingEngineSim()
        occupancy = rng.integers(0, 1500, size=int(rng.integers(1, 300)))
        occupancy[rng.random(occupancy.shape[0]) < 0.3] = 0

        jobs = jobs_from_occupancy(occupancy, sim.config.chunk_size)
        assert jobs == hw_ref.scalar_jobs_from_occupancy(
            occupancy, sim.config.chunk_size
        )

        fast = sim.simulate_frame(occupancy)
        slow = hw_ref.scalar_sorting_engine_simulate(sim, jobs)
        assert fast.total_cycles == slow.total_cycles
        assert fast.compute_cycles == slow.compute_cycles
        assert fast.dram_busy_cycles == slow.dram_busy_cycles
        assert fast.chunks == slow.chunks
        assert fast.entries == slow.entries
        assert fast.cores == slow.cores

    def test_simulate_jobs_path_matches_frame_path(self):
        sim = SortingEngineSim()
        occupancy = [300, 0, 17, 256, 512, 1]
        by_jobs = sim.simulate(jobs_from_occupancy(occupancy, sim.config.chunk_size))
        by_frame = sim.simulate_frame(occupancy)
        assert by_jobs == by_frame


class TestSparseRasterPath:
    """The flat bbox-gather path on sparse 64 px tiles, incl. termination."""

    def _layered_proj(self, rng, layers, opac_lo=0.9, opac_hi=0.99, tile=64):
        # A grid of small opaque splats covering the tile in several layers:
        # coverage stays far below CHUNKED_MIN_COVERAGE (sparse dispatch)
        # while transmittance still collapses, forcing mid-stream termination.
        grid = np.array(
            [(x, y) for y in range(4, tile, 8) for x in range(4, tile, 8)],
            dtype=np.float64,
        )
        means = np.tile(grid, (layers, 1)) + rng.normal(
            0, 0.6, (grid.shape[0] * layers, 2)
        )
        m = means.shape[0]
        a = rng.uniform(0.01, 0.05, m)
        c = rng.uniform(0.01, 0.05, m)
        return ProjectedGaussians(
            ids=np.arange(m, dtype=np.int64),
            means2d=means,
            cov2d=np.tile(np.eye(2), (m, 1, 1)),
            conic=np.column_stack([a, np.zeros(m), c]),
            depths=rng.uniform(0.1, 10.0, m),
            radii=rng.uniform(5.0, 7.0, m),
            colors=rng.uniform(0, 1, (m, 3)),
            opacities=rng.uniform(opac_lo, opac_hi, m),
        )

    @pytest.mark.parametrize("seed,termination,chunk", [
        (0, 1e-4, 64),
        (1, 0.05, 16),
        (2, 0.2, 8),
        (3, 0.01, 1),
    ])
    def test_bit_identical_with_termination(self, seed, termination, chunk):
        rng = np.random.default_rng(seed)
        proj = self._layered_proj(rng, layers=int(rng.integers(4, 10)))
        tile = 64
        rows = np.arange(proj.ids.shape[0])
        bounds = (0, 0, tile, tile)

        fb_ref = Framebuffer(width=tile, height=tile)
        fb_new = Framebuffer(width=tile, height=tile)
        v_ref, s_ref = pipeline_ref.rasterize_tile(
            fb_ref, proj, rows, bounds, termination=termination
        )
        v_new, s_new = rasterize_tile(
            fb_new, proj, rows, bounds, termination=termination, chunk_size=chunk
        )

        np.testing.assert_array_equal(v_new, v_ref)
        np.testing.assert_array_equal(fb_new.color, fb_ref.color)
        np.testing.assert_array_equal(fb_new.transmittance, fb_ref.transmittance)
        assert s_new.gaussians_processed == s_ref.gaussians_processed
        assert s_new.blend_ops == s_ref.blend_ops
        assert s_new.early_terminated_tiles == s_ref.early_terminated_tiles
        assert s_new.subtile_tests == s_ref.subtile_tests
        assert s_new.subtile_hits == s_ref.subtile_hits
