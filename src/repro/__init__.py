"""repro: full Python reproduction of *Neo: Real-Time On-Device 3D Gaussian
Splatting with Reuse-and-Update Sorting Acceleration* (ASPLOS 2026).

Subpackages
-----------
``repro.scene``
    Gaussian scene representation, cameras, trajectories, synthetic datasets.
``repro.pipeline``
    The 3DGS rendering pipeline (culling, feature extraction, tiling,
    sorting, rasterization).
``repro.core``
    The paper's contribution: reuse-and-update sorting (Dynamic Partial
    Sorting, incremental Gaussian tables) plus baseline sorting strategies.
``repro.hw``
    Cycle/traffic models of the Neo accelerator, GSCore, and the Orin AGX
    GPU, with DRAM and area/power models.
``repro.metrics``
    Image quality (PSNR / SSIM / LPIPS proxy), temporal similarity, traffic
    reporting.
``repro.experiments``
    One driver per paper table/figure.
"""

__version__ = "1.0.0"

from . import core  # noqa: F401
from . import experiments  # noqa: F401
from . import hw  # noqa: F401
from . import metrics  # noqa: F401
from . import pipeline  # noqa: F401
from . import scene  # noqa: F401
