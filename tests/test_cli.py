"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, write_ppm


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        args = parser.parse_args(["run", "fig15"])
        assert args.experiment == "fig15"
        args = parser.parse_args(["simulate", "neo", "family", "qhd"])
        assert args.system == "neo"
        assert args.bandwidth == 51.2

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "tpu", "family", "qhd"])

    def test_simulate_accepts_registered_variants(self):
        # The simulate choices come from the registry, not a hand-kept list.
        args = build_parser().parse_args(["simulate", "neo-lite", "family", "hd"])
        assert args.system == "neo-lite"

    def test_systems_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["systems", "list"]).systems_command == "list"
        args = parser.parse_args(["systems", "show", "neo"])
        assert args.systems_command == "show" and args.name == "neo"
        with pytest.raises(SystemExit):
            parser.parse_args(["systems"])

    def test_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 7341 and args.workers == 2 and args.queue_limit == 64
        assert args.cache_dir == ".repro_cache" and not args.no_cache

    def test_loadgen_args(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "7000", "--requests", "50", "--rate", "99.5",
             "--tenants", "8", "--verify", "--assert-coalesce",
             "--out", "BENCH_service.json"]
        )
        assert args.command == "loadgen"
        assert args.port == 7000 and args.requests == 50 and args.rate == 99.5
        assert args.tenants == 8 and args.verify and args.assert_coalesce
        assert args.out == "BENCH_service.json"

    def test_cache_clear_namespace(self):
        args = build_parser().parse_args(
            ["cache", "clear", "--namespace", "tenants/acme"]
        )
        assert args.action == "clear" and args.namespace == "tenants/acme"


class TestWritePpm:
    def test_roundtrip_header_and_pixels(self, tmp_path):
        image = np.zeros((2, 3, 3))
        image[0, 0] = (1.0, 0.0, 0.5)
        path = tmp_path / "out.ppm"
        write_ppm(str(path), image)
        payload = path.read_bytes()
        assert payload.startswith(b"P6\n3 2\n255\n")
        pixels = payload.split(b"255\n", 1)[1]
        assert len(pixels) == 2 * 3 * 3
        assert pixels[0] == 255 and pixels[1] == 0 and pixels[2] == 128

    def test_clipping(self, tmp_path):
        image = np.full((1, 1, 3), 2.0)
        path = tmp_path / "clip.ppm"
        write_ppm(str(path), image)
        assert path.read_bytes()[-3:] == b"\xff\xff\xff"

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "bad.ppm"), np.zeros((4, 4)))


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "family" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        assert "GSCore" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "neo", "horse", "hd", "--frames", "3"]) == 0
        out = capsys.readouterr().out
        assert "FPS" in out and "sorting" in out

    def test_list_names_registered_systems(self, capsys):
        from repro.hw.system import registered_systems

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registered_systems():
            assert name in out

    def test_systems_list(self, capsys):
        from repro.hw.system import registered_systems

        assert main(["systems", "list"]) == 0
        out = capsys.readouterr().out
        for name in registered_systems():
            assert name in out
        assert "= neo + overlay" in out  # variants show their base
        assert "[native]" in out and "[edge]" in out

    def test_systems_list_ids_is_script_friendly(self, capsys):
        from repro.hw.system import registered_systems

        assert main(["systems", "list", "--ids"]) == 0
        out = capsys.readouterr().out
        assert out.split() == list(registered_systems())

    def test_systems_show_base_system(self, capsys):
        assert main(["systems", "show", "neo"]) == 0
        out = capsys.readouterr().out
        assert "NeoModel" in out
        assert "sorting_cores" in out  # config fields listed
        assert "defer_depth_update" in out  # model kwargs listed

    def test_systems_show_variant_lists_overlay(self, capsys):
        assert main(["systems", "show", "neo-s"]) == 0
        out = capsys.readouterr().out
        assert "base:        neo" in out
        assert "sorting_engine_only=True" in out

    def test_systems_show_unknown_errors_with_options(self, capsys):
        assert main(["systems", "show", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err and "neo-lite" in err

    def test_render(self, tmp_path, capsys):
        out_path = tmp_path / "frame.ppm"
        code = main([
            "render", "horse", str(out_path),
            "--width", "96", "--height", "54", "--gaussians", "300",
        ])
        assert code == 0
        assert out_path.exists()
        assert out_path.read_bytes().startswith(b"P6\n96 54\n")


class TestBenchCli:
    def test_parser_accepts_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "order_metrics", "--quick", "--out", "b.json", "--no-gate"]
        )
        assert args.command == "bench"
        assert args.names == ["order_metrics"] and args.quick and args.no_gate

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("raster_chunked", "sort_batched", "order_metrics",
                     "render_sequence", "hw_system"):
            assert name in out

    def test_bench_unknown_name_errors(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bench_runs_and_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_pipeline.json"
        code = main(["bench", "order_metrics", "hw_system", "--quick",
                     "--out", str(out_path), "--no-gate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "order_metrics" in out and "floor" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["quick"] is True
        names = [b["name"] for b in payload["benchmarks"]]
        assert names == ["order_metrics", "hw_system"]
        for bench in payload["benchmarks"]:
            assert bench["identical"] is True
            assert bench["baseline_ms"] > 0 and bench["optimized_ms"] > 0

    def test_bench_profile_records_top_functions(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        code = main(["bench", "order_metrics", "--quick", "--no-gate",
                     "--profile", "--out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        (entry,) = payload["benchmarks"]
        profile = entry["detail"]["profile"]
        assert 0 < len(profile) <= 15
        # Rows are sorted by cumulative time and carry call attribution.
        cums = [row["cumtime_s"] for row in profile]
        assert cums == sorted(cums, reverse=True)
        for row in profile:
            assert row["function"] and row["location"]
            assert row["ncalls"] >= row["primitive_calls"] >= 1
        # The bench body itself must appear in its own profile.
        assert any("bench_order_metrics" in row["function"] for row in profile)
        # Unprofiled runs stay free of the key.
        from repro.bench import run_benchmarks

        (plain,) = run_benchmarks(["order_metrics"], quick=True)
        assert "profile" not in plain.detail
