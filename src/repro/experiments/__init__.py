"""Experiment drivers: one module per paper table/figure."""

from .registry import EXPERIMENTS, list_experiments, run_experiment
from .runner import (
    DEFAULT_FRAMES,
    PAPER_TRAFFIC_FRAMES,
    ExperimentResult,
    get_workload_model,
    simulate_system,
)

__all__ = [
    "DEFAULT_FRAMES",
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_TRAFFIC_FRAMES",
    "get_workload_model",
    "list_experiments",
    "run_experiment",
    "simulate_system",
]
