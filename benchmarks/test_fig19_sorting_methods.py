"""Bench: Fig. 19 — latency and quality of four sorting-reuse methods."""

import pytest

from repro.experiments import fig19

from conftest import run_once

pytestmark = pytest.mark.slow


def test_fig19_sorting_methods(benchmark):
    result = run_once(benchmark, fig19.run, num_frames=20)
    summary = fig19.method_summary(result)
    for method, stats in summary.items():
        print(method, stats)

    # Paper Fig. 19(a): periodic sorting has the lowest average latency but
    # spikes above the 16.6 ms SLO on refresh frames; background pays the
    # full sorting stream continuously; hierarchical re-passes the table;
    # Neo stays low and flat.
    assert summary["periodic"]["mean_latency_ms"] < summary["neo"]["mean_latency_ms"]
    assert summary["periodic"]["max_latency_ms"] > fig19.SLO_MS
    assert summary["periodic"]["slo_violations"] >= 1
    assert summary["neo"]["slo_violations"] == 0
    assert summary["neo"]["max_latency_ms"] < fig19.SLO_MS
    assert summary["background"]["mean_latency_ms"] > summary["neo"]["mean_latency_ms"]
    assert summary["hierarchical"]["mean_latency_ms"] > summary["neo"]["mean_latency_ms"]

    # Paper Fig. 19(b): hierarchical matches exact ordering; Neo stays
    # high; background and periodic degrade (lag / error accumulation).
    assert summary["hierarchical"]["mean_psnr"] >= summary["neo"]["mean_psnr"]
    assert summary["neo"]["mean_psnr"] > summary["background"]["mean_psnr"]
    assert summary["neo"]["mean_psnr"] > summary["periodic"]["mean_psnr"]
    assert summary["neo"]["min_psnr"] > 40.0
