"""Fig. 9 — fixed vs. interleaved chunk boundaries in partial sorting.

The illustrative study behind Dynamic Partial Sorting: with fixed chunk
boundaries, elements can never cross a boundary no matter how many
iterations run; interleaving the boundaries by half a chunk lets every
element migrate to its global position within a few iterations.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamic_partial_sort import (
    chunk_ranges,
    dynamic_partial_sort,
    max_displacement,
    sortedness,
)
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

DESCRIPTION = "Fixed vs interleaved chunk boundaries: convergence of partial sorting"


def _fixed_boundary_pass(keys: np.ndarray, values: np.ndarray, chunk: int):
    """One partial-sort pass with never-moving chunk boundaries."""
    keys = keys.copy()
    values = values.copy()
    for start, end in chunk_ranges(keys.shape[0], chunk, iteration=1):
        order = np.argsort(keys[start:end], kind="stable")
        keys[start:end] = keys[start:end][order]
        values[start:end] = values[start:end][order]
    return keys, values


def plan(
    length: int = 512,
    chunk_size: int = 64,
    iterations: int = 8,
    shuffle_distance: int = 96,
    seed: int = 7,
) -> ExperimentPlan:
    """No simulation cells: a pure numpy convergence study."""

    def aggregate(_cells) -> ExperimentResult:
        rng = np.random.default_rng(seed)
        keys = np.arange(length, dtype=np.float64)
        perturbed = keys + rng.uniform(-shuffle_distance, shuffle_distance, size=length)
        order = np.argsort(perturbed, kind="stable")
        start_keys = keys[order]
        values = np.arange(length, dtype=np.int64)[order]

        result = ExperimentResult(name="fig09", description=DESCRIPTION)

        fixed_keys, fixed_vals = start_keys.copy(), values.copy()
        inter_keys, inter_vals = start_keys.copy(), values.copy()
        result.rows.append(
            {
                "iteration": 0,
                "fixed_sortedness": sortedness(fixed_keys),
                "fixed_max_disp": max_displacement(fixed_keys),
                "interleaved_sortedness": sortedness(inter_keys),
                "interleaved_max_disp": max_displacement(inter_keys),
            }
        )
        for iteration in range(1, iterations + 1):
            fixed_keys, fixed_vals = _fixed_boundary_pass(fixed_keys, fixed_vals, chunk_size)
            inter_keys, inter_vals, _ = dynamic_partial_sort(
                inter_keys, inter_vals, iteration=iteration, chunk_size=chunk_size
            )
            result.rows.append(
                {
                    "iteration": iteration,
                    "fixed_sortedness": sortedness(fixed_keys),
                    "fixed_max_disp": max_displacement(fixed_keys),
                    "interleaved_sortedness": sortedness(inter_keys),
                    "interleaved_max_disp": max_displacement(inter_keys),
                }
            )
        return result

    return ExperimentPlan("fig09", DESCRIPTION, (), aggregate)


def run(
    length: int = 512,
    chunk_size: int = 64,
    iterations: int = 8,
    shuffle_distance: int = 96,
    seed: int = 7,
) -> ExperimentResult:
    """Convergence of fixed vs. interleaved partial sorting.

    Starts from a locally-perturbed permutation (each element within
    ``shuffle_distance`` of its sorted position, like a mildly-stale Gaussian
    table) and reports sortedness / maximum displacement per iteration.
    """
    return execute_plan(
        plan(
            length=length,
            chunk_size=chunk_size,
            iterations=iterations,
            shuffle_distance=shuffle_distance,
            seed=seed,
        )
    )
