"""Fig. 15 — end-to-end throughput of Orin AGX, GSCore (16-core) and Neo.

The headline result: Neo outperforms the GPU by ~5/7/10x and GSCore by
~1.8/3.3/5.6x at HD/FHD/QHD, and sustains ~99 FPS at QHD — real-time at
AR/VR resolution on edge bandwidth.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import ExperimentResult

RESOLUTIONS = ("hd", "fhd", "qhd")
SYSTEMS = ("orin", "gscore", "neo")

DESCRIPTION = "End-to-end throughput (FPS): Orin AGX vs GSCore vs Neo"


def plan(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentPlan:
    """Declare the (resolution, scene, system) grid for the headline figure."""
    cells = tuple(
        SimJob(system, scene, resolution, frames=num_frames)
        for resolution in RESOLUTIONS
        for scene in scenes
        for system in SYSTEMS
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig15", description=DESCRIPTION)
        for resolution in RESOLUTIONS:
            per_system: dict[str, list[float]] = {s: [] for s in SYSTEMS}
            for scene in scenes:
                row = {"scene": scene, "resolution": resolution}
                for system in SYSTEMS:
                    fps = reports[SimJob(system, scene, resolution, frames=num_frames)].fps
                    row[system] = fps
                    per_system[system].append(fps)
                result.rows.append(row)
            mean_row = {"scene": "MEAN", "resolution": resolution}
            for system in SYSTEMS:
                mean_row[system] = float(np.mean(per_system[system]))
            result.rows.append(mean_row)
        return result

    return ExperimentPlan("fig15", DESCRIPTION, cells, aggregate)


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """FPS for every (scene, resolution, system), plus MEAN rows."""
    return execute_plan(plan(scenes=scenes, num_frames=num_frames))


def speedups(result: ExperimentResult) -> dict[str, dict[str, float]]:
    """Neo's mean speedup over each baseline per resolution."""
    out: dict[str, dict[str, float]] = {}
    for resolution in RESOLUTIONS:
        mean = result.filter(scene="MEAN", resolution=resolution)[0]
        out[resolution] = {
            "vs_orin": mean["neo"] / mean["orin"],
            "vs_gscore": mean["neo"] / mean["gscore"],
            "neo_fps": mean["neo"],
        }
    return out
