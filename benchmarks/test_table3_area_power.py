"""Bench: Table 3 — accelerator area/power at 7 nm, 1 GHz."""

import pytest

from repro.experiments import table3

from conftest import run_once


def test_table3_area_power(benchmark):
    result = run_once(benchmark, table3.run)
    print("\n" + result.to_text())

    gscore = result.filter(device="GSCore")[0]
    neo = result.filter(device="Neo")[0]
    # Paper Table 3: GSCore 0.417 mm^2 / 719.9 mW; Neo 0.387 mm^2 / 797.8 mW
    # (slightly smaller area, marginally higher power).
    assert gscore["area_mm2"] == pytest.approx(0.417, abs=0.005)
    assert gscore["power_mw"] == pytest.approx(719.9, abs=2.0)
    assert neo["area_mm2"] == pytest.approx(0.387, abs=0.005)
    assert neo["power_mw"] == pytest.approx(797.8, abs=2.0)
    assert neo["area_mm2"] < gscore["area_mm2"]
    assert neo["power_mw"] > gscore["power_mw"]
