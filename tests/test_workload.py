"""Unit tests for the hardware workload model."""

import numpy as np
import pytest

from repro.hw.workload import FrameGeometry, WorkloadModel, pair_lists
from repro.scene import default_trajectory


@pytest.fixture(scope="module")
def workload_model():
    return WorkloadModel.from_scene("family", num_frames=4, num_gaussians=1500)


class TestPairLists:
    def test_single_small_splat(self):
        tiles, rows = pair_lists(
            np.array([[10.0, 10.0]]), np.array([2.0]), width=64, height=64, tile_size=16
        )
        assert tiles.shape == (1,)
        assert rows.shape == (1,)
        assert tiles[0] == 0

    def test_offscreen(self):
        tiles, rows = pair_lists(
            np.array([[-50.0, -50.0]]), np.array([2.0]), width=64, height=64, tile_size=16
        )
        assert tiles.shape == (0,)

    def test_empty(self):
        tiles, rows = pair_lists(
            np.zeros((0, 2)), np.zeros(0), width=64, height=64, tile_size=16
        )
        assert tiles.shape == (0,)

    def test_matches_pipeline_tiling(self, small_scene, camera):
        from repro.pipeline.projection import project_gaussians
        from repro.pipeline.tiling import TileGrid, assign_to_tiles

        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        tiles, rows = pair_lists(
            proj.means2d, proj.radii, camera.width, camera.height, 16
        )
        assert tiles.shape[0] == assignment.num_pairs
        occ = np.bincount(tiles, minlength=grid.num_tiles)
        assert np.array_equal(occ, assignment.occupancy())


class TestWorkloadModel:
    def test_capture(self, workload_model):
        assert workload_model.num_frames == 4
        assert workload_model.count_scale > 100
        for frame in workload_model.frames:
            assert isinstance(frame, FrameGeometry)
            assert frame.num_visible > 0

    def test_frame_workload_scaling(self, workload_model):
        w = workload_model.frame_workload(1, "qhd", 64)
        assert w.num_gaussians == pytest.approx(1_100_000)
        assert w.visible > 100_000
        assert w.pairs > w.visible  # duplication factor > 1
        assert w.nonempty_tiles <= w.num_tiles
        assert w.chunks > 0
        assert w.mean_radius_px > 0

    def test_resolution_monotonicity(self, workload_model):
        hd = workload_model.frame_workload(1, "hd", 64)
        qhd = workload_model.frame_workload(1, "qhd", 64)
        assert qhd.pairs > hd.pairs
        assert qhd.num_tiles > hd.num_tiles
        assert qhd.visible == hd.visible  # culling is resolution-independent

    def test_tile_size_monotonicity(self, workload_model):
        t64 = workload_model.frame_workload(1, "qhd", 64)
        t16 = workload_model.frame_workload(1, "qhd", 16)
        assert t16.pairs > t64.pairs  # smaller tiles duplicate more

    def test_churn_zero_on_first_frame(self, workload_model):
        w = workload_model.frame_workload(0, "hd", 64)
        assert w.incoming_pairs == 0
        assert w.outgoing_pairs == 0
        assert w.retained_fraction == 1.0

    def test_churn_small_on_later_frames(self, workload_model):
        w = workload_model.frame_workload(2, "qhd", 64)
        assert 0 < w.incoming_pairs < 0.2 * w.pairs
        assert w.churn_fraction < 0.2

    def test_sequence_workloads(self, workload_model):
        ws = workload_model.sequence_workloads("hd", 64)
        assert len(ws) == workload_model.num_frames
        assert [w.frame_index for w in ws] == list(range(4))

    def test_shared_fraction_range(self, workload_model):
        fractions = workload_model.shared_fraction_per_tile(1, "qhd", 64)
        assert fractions.size > 0
        assert (fractions >= 0).all() and (fractions <= 1).all()
        assert np.median(fractions) > 0.8  # the Fig. 6 claim

    def test_order_differences_small(self, workload_model):
        diffs = workload_model.order_differences(1, "qhd", 64)
        w = workload_model.frame_workload(1, "qhd", 64)
        assert diffs.size > 0
        assert (diffs >= 0).all()
        # 99th percentile is a small fraction of the table length (Fig. 7).
        # The bound is loose at this coarse capture density (1500 Gaussians
        # -> rank quantization); the fig07 driver uses a denser capture.
        assert np.percentile(diffs, 99) < 0.15 * w.mean_occupancy

    def test_first_frame_similarity_queries_rejected(self, workload_model):
        with pytest.raises(ValueError):
            workload_model.shared_fraction_per_tile(0, "hd", 64)
        with pytest.raises(ValueError):
            workload_model.order_differences(0, "hd", 64)

    def test_from_render(self, small_scene):
        cameras = default_trajectory("family", num_frames=2, width=240, height=135)
        wm = WorkloadModel.from_render(small_scene, cameras, nominal_gaussians=10_000)
        assert wm.count_scale == pytest.approx(10_000 / len(small_scene))

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadModel([], 100, 100, 1.0, 100)
