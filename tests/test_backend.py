"""Tests for the pluggable array backend and batched rollout execution.

Covers the three contracts the backend shim makes:

* a NumPy-only environment (torch absent) degrades cleanly — activating
  the torch backend falls back per op and stays bit-identical;
* fallback composes at op granularity, never per process — a backend
  implementing a subset of the vocabulary serves exactly that subset;
* ``BatchedRollout`` / ``execute_cells(batched=True)`` return per-cell
  reports byte-identical to per-process simulation.
"""

import numpy as np
import pytest

from repro.backend import (
    FALLBACK_BACKEND,
    OP_SIGNATURES,
    Backend,
    active_backend,
    backend_names,
    core_ops,
    get_backend,
    register_backend,
    resolution_table,
    set_active,
    unregister_backend,
    use_backend,
)
from repro.experiments.engine import BatchedRollout, SimJob, execute_cells
from repro.pipeline.projection import project_gaussians
from repro.pipeline.rasterizer import rasterize
from repro.pipeline.sorting import sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles


class TestRegistry:
    def test_builtin_backends_present(self):
        names = backend_names()
        assert names[0] == FALLBACK_BACKEND
        assert "torch" in names

    def test_numpy_backend_fully_native(self):
        numpy_backend = get_backend("numpy")
        assert numpy_backend.available
        assert set(numpy_backend.native_ops()) == set(OP_SIGNATURES)

    def test_unknown_backend_lists_options(self):
        with pytest.raises(KeyError, match="options"):
            get_backend("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", lambda: get_backend("numpy"))

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="cannot be unregistered"):
            unregister_backend("numpy")

    def test_backend_rejects_ops_outside_vocabulary(self):
        with pytest.raises(KeyError, match="outside the vocabulary"):
            Backend(
                name="bogus", available=True, detail="",
                ops={"matmul": np.matmul},
            )

    def test_resolution_table_covers_vocabulary(self):
        table = resolution_table("numpy")
        assert set(table) == set(OP_SIGNATURES)
        assert all(serving == "numpy" for serving in table.values())


class TestTorchAbsentFallback:
    """With torch not installed, the torch backend must degrade cleanly."""

    def test_torch_backend_reports_unavailable(self):
        try:
            import torch  # noqa: F401
        except ImportError:
            torch_missing = True
        else:
            torch_missing = False
        backend = get_backend("torch")
        if torch_missing:
            assert not backend.available
            assert "unavailable" in backend.detail
            assert backend.native_ops() == ()
        else:
            assert backend.available

    def test_unavailable_backend_still_activates(self):
        with use_backend("torch") as backend:
            assert active_backend().name == "torch"
            if not backend.available:
                table = resolution_table("torch")
                assert all(serving == "numpy" for serving in table.values())
        assert active_backend().name == FALLBACK_BACKEND

    def test_rendering_identical_under_torch_activation(self, small_scene, camera):
        """All-fallback dispatch is the NumPy path — bitwise, not approximately."""
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        want = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        with use_backend("torch"):
            got = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        assert np.array_equal(got.image, want.image)
        assert got.stats == want.stats


class _CountingOps:
    """Wrap numpy implementations with per-op call counters."""

    def __init__(self, *names):
        self.calls = {name: 0 for name in names}
        numpy_ops = get_backend("numpy").ops
        self.ops = {name: self._wrap(name, numpy_ops[name]) for name in names}

    def _wrap(self, name, impl):
        def counted(*args, **kwargs):
            self.calls[name] += 1
            return impl(*args, **kwargs)
        return counted


class TestPerOpFallback:
    """Fallback must compose per op — a partial backend serves its subset."""

    @pytest.fixture()
    def partial_backend(self):
        counting = _CountingOps("exp", "minimum")
        register_backend(
            "partial-test",
            lambda: Backend(
                name="partial-test", available=True,
                detail="test double", ops=counting.ops,
            ),
        )
        yield counting
        unregister_backend("partial-test")

    def test_sources_mix_native_and_fallback(self, partial_backend):
        resolver = core_ops("_test_partial_core", "exp", "minimum", "argsort", "lexsort")
        with use_backend("partial-test"):
            resolved = resolver()
            assert resolved.sources == {
                "exp": "partial-test",
                "minimum": "partial-test",
                "argsort": "numpy",
                "lexsort": "numpy",
            }

    def test_native_ops_actually_dispatch(self, partial_backend):
        resolver = core_ops("_test_dispatch_core", "exp", "argsort")
        with use_backend("partial-test"):
            resolved = resolver()
            x = np.linspace(-2.0, 1.0, 7)
            assert np.array_equal(resolved.exp(x), np.exp(x))
            assert np.array_equal(resolved.argsort(x), np.argsort(x))
        assert partial_backend.calls["exp"] == 1

    def test_real_core_runs_on_partial_backend_identically(
        self, partial_backend, small_scene, camera
    ):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        want = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        with use_backend("partial-test"):
            got = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        assert np.array_equal(got.image, want.image)
        # The rasterizer declares exp/minimum, so the partial backend must
        # actually have been exercised, not bypassed wholesale.
        assert partial_backend.calls["exp"] > 0
        assert partial_backend.calls["minimum"] > 0

    def test_unregistering_active_backend_reverts_to_fallback(self):
        register_backend(
            "ephemeral-test",
            lambda: Backend(name="ephemeral-test", available=True, detail="", ops={}),
        )
        set_active("ephemeral-test")
        unregister_backend("ephemeral-test")
        assert active_backend().name == FALLBACK_BACKEND


def _frames_equal(got, want) -> bool:
    return (
        len(got.frames) == len(want.frames)
        and all(
            g.frame_index == w.frame_index
            and g.traffic.feature_extraction == w.traffic.feature_extraction
            and g.traffic.sorting == w.traffic.sorting
            and g.traffic.rasterization == w.traffic.rasterization
            and g.memory_time_s == w.memory_time_s
            and g.compute_time_s == w.compute_time_s
            for g, w in zip(got.frames, want.frames)
        )
    )


def _bandwidth_grid(system="neo", count=8, frames=4):
    bandwidths = np.linspace(25.6, 204.8, count)
    return [
        SimJob.make(system, "family", "hd", frames=frames, bandwidth_gbps=float(b))
        for b in bandwidths
    ]


class TestBatchedRollout:
    def test_byte_identical_on_bandwidth_grid(self):
        jobs = _bandwidth_grid(count=8)
        want = {job: job.resolved().simulate() for job in jobs}
        rollout = BatchedRollout(jobs)
        got = rollout.execute()
        assert rollout.stats.stacked == 8
        assert rollout.stats.fallback == 0
        assert all(_frames_equal(got[job], want[job]) for job in jobs)

    def test_gscore_cores_sweep_stacks(self):
        jobs = [
            SimJob.make("gscore", "family", "hd", frames=4, cores=c)
            for c in (4, 8, 16, 32)
        ]
        want = {job: job.resolved().simulate() for job in jobs}
        rollout = BatchedRollout(jobs)
        got = rollout.execute()
        assert rollout.stats.stacked == 4
        assert all(_frames_equal(got[job], want[job]) for job in jobs)

    def test_pinned_variant_falls_back_per_cell(self):
        # gscore-32c validates the cores knob per cell instead of reading
        # it, so a varying cores axis cannot stack — the rollout must fall
        # back to per-cell simulation, still producing identical reports.
        jobs = [
            SimJob.make("gscore-32c", "family", "hd", frames=4, cores=c)
            for c in (16, 32)
        ]
        want = {job: job.resolved().simulate() for job in jobs}
        rollout = BatchedRollout(jobs)
        got = rollout.execute()
        assert rollout.stats.stacked == 0
        assert rollout.stats.fallback == 2
        assert all(_frames_equal(got[job], want[job]) for job in jobs)

    def test_singleton_batch(self):
        jobs = _bandwidth_grid(count=1)
        rollout = BatchedRollout(jobs)
        got = rollout.execute()
        assert rollout.stats.groups == 1
        assert _frames_equal(got[jobs[0]], jobs[0].resolved().simulate())

    def test_incompatible_cells_grouped_when_not_strict(self):
        jobs = _bandwidth_grid("neo", 2) + _bandwidth_grid("orin", 2)
        rollout = BatchedRollout(jobs)
        got = rollout.execute()
        assert rollout.stats.groups == 2
        assert all(_frames_equal(got[j], j.resolved().simulate()) for j in jobs)

    def test_strict_rejects_incompatible_cells(self):
        jobs = _bandwidth_grid("neo", 2) + _bandwidth_grid("orin", 2)
        with pytest.raises(ValueError, match="system"):
            BatchedRollout(jobs, strict=True)

    def test_strict_error_names_only_mismatched_fields(self):
        jobs = [
            SimJob.make("neo", "family", "hd", frames=4),
            SimJob.make("neo", "family", "qhd", frames=4),
        ]
        with pytest.raises(ValueError) as excinfo:
            BatchedRollout(jobs, strict=True)
        assert "['resolution'] differ" in str(excinfo.value)

    def test_duplicate_jobs_share_one_cell(self):
        job = SimJob.make("neo", "family", "hd", frames=4, bandwidth_gbps=51.2)
        twin = SimJob.make("neo", "family", "hd", frames=4, bandwidth_gbps=51.2)
        rollout = BatchedRollout([job, twin])
        got = rollout.execute()
        assert rollout.stats.stacked == 1
        assert _frames_equal(got[job], got[twin])


class TestExecuteCellsBatched:
    def test_values_match_per_cell_execution(self):
        cells = [job.resolved() for job in _bandwidth_grid(count=8)]
        want = execute_cells(cells, lambda c: c.simulate(), cache=None)
        got = execute_cells(cells, lambda c: c.simulate(), cache=None, batched=True)
        assert got.rollout is not None
        assert got.rollout.stacked == 8
        assert got.computed == want.computed == 8
        assert all(_frames_equal(g, w) for g, w in zip(got.values, want.values))

    def test_batched_results_are_cached(self, tmp_path):
        from repro.runtime import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        cells = [job.resolved() for job in _bandwidth_grid(count=4)]
        first = execute_cells(cells, lambda c: c.simulate(), cache=cache, batched=True)
        assert first.computed == 4
        second = execute_cells(cells, lambda c: c.simulate(), cache=cache, batched=True)
        assert second.hits == 4
        assert second.computed == 0

    def test_non_simjob_cells_take_normal_path(self):
        class PlainCell:
            def __init__(self, value):
                self.value = value

            def cache_spec(self):
                return "test-plain", {"value": self.value}

        cells = [PlainCell(1), PlainCell(2)]
        batch = execute_cells(cells, lambda c: c.value * 10, cache=None, batched=True)
        assert batch.values == [10, 20]
