"""Bench: Fig. 6 — CDF of per-tile shared-Gaussian proportion."""

from repro.experiments import fig06

from conftest import run_once


def test_fig06_shared_gaussians(benchmark):
    result = run_once(benchmark, fig06.run)
    print("\n" + result.to_text())

    # Paper: in all six scenes, over 90% of tiles retain more than 78% of
    # their Gaussians from the previous frame.
    for row in result.rows:
        assert row["tiles_retaining_78pct"] > 0.90, row["scene"]
        assert row["median_shared"] > 0.90, row["scene"]
