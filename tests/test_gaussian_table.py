"""Unit tests for the per-tile Gaussian table."""

import numpy as np
import pytest

from repro.core.gaussian_table import TABLE_ENTRY_BYTES, GaussianTable


def _table(n=6):
    ids = np.arange(n, dtype=np.int64) * 10
    depths = np.linspace(1.0, 2.0, n)
    return GaussianTable.from_sorted(ids, depths)


class TestConstruction:
    def test_from_sorted(self):
        table = _table(4)
        assert len(table) == 4
        assert table.num_valid == 4
        assert table.size_bytes == 4 * TABLE_ENTRY_BYTES

    def test_empty(self):
        table = GaussianTable()
        assert len(table) == 0
        assert table.num_valid == 0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            GaussianTable(ids=np.array([1, 1]), depths=np.array([1.0, 2.0]))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            GaussianTable(ids=np.array([1, 2]), depths=np.array([1.0]))
        with pytest.raises(ValueError):
            GaussianTable(
                ids=np.array([1, 2]),
                depths=np.array([1.0, 2.0]),
                valid=np.array([True]),
            )

    def test_copy_independent(self):
        table = _table()
        clone = table.copy()
        clone.valid[0] = False
        assert table.valid[0]


class TestMarkInvalid:
    def test_marks_and_counts(self):
        table = _table(5)
        hit = table.mark_invalid(np.array([0, 20, 999]))
        assert hit == 2
        assert table.num_valid == 3
        assert not table.valid[0]
        assert not table.valid[2]

    def test_idempotent(self):
        table = _table(3)
        assert table.mark_invalid(np.array([0])) == 1
        assert table.mark_invalid(np.array([0])) == 0

    def test_empty_input(self):
        table = _table(3)
        assert table.mark_invalid(np.empty(0, dtype=np.int64)) == 0


class TestDepthUpdate:
    def test_updates_known_ids(self):
        table = _table(4)
        refreshed = table.update_depths(ids=np.array([0, 30]), depths=np.array([9.0, 8.0]))
        assert refreshed == 2
        assert table.depths[0] == 9.0
        assert table.depths[3] == 8.0
        assert table.depths[1] == pytest.approx(1.0 + 1 / 3)

    def test_mapping_interface(self):
        table = _table(3)
        assert table.update_depths({10: 5.0}) == 1
        assert table.depths[1] == 5.0

    def test_unknown_ids_ignored(self):
        table = _table(3)
        assert table.update_depths(ids=np.array([777]), depths=np.array([1.0])) == 0

    def test_empty_cases(self):
        table = _table(2)
        assert table.update_depths(ids=np.empty(0, dtype=np.int64), depths=np.empty(0)) == 0
        empty = GaussianTable()
        assert empty.update_depths(ids=np.array([1]), depths=np.array([1.0])) == 0

    def test_requires_arguments(self):
        with pytest.raises(ValueError):
            _table(2).update_depths()

    def test_rejects_misaligned_updates(self):
        with pytest.raises(ValueError):
            _table(2).update_depths(ids=np.array([1, 2]), depths=np.array([1.0]))


class TestCompactAndMembership:
    def test_compact_removes_invalid(self):
        table = _table(5)
        table.mark_invalid(np.array([10, 40]))
        removed = table.compact()
        assert removed == 2
        assert len(table) == 3
        assert table.valid.all()
        assert 10 not in table.ids

    def test_membership_excludes_invalid(self):
        table = _table(4)
        table.mark_invalid(np.array([20]))
        assert table.membership() == {0, 10, 30}

    def test_set_valid_bits(self):
        table = _table(3)
        table.set_valid_bits(np.array([False, True, False]))
        assert table.num_valid == 1
        with pytest.raises(ValueError):
            table.set_valid_bits(np.array([True]))
