"""Disk-backed result cache for experiment artifacts.

Every expensive artifact the reproduction produces — captured workload
geometry, per-system :class:`~repro.hw.stages.SequenceReport`\\ s, and whole
:class:`~repro.experiments.runner.ExperimentResult` tables — is a pure
function of (scene, trajectory, hardware configuration, code version).  The
:class:`ResultCache` persists those artifacts under ``.repro_cache/`` keyed
by a stable hash of exactly that tuple, so a warm invocation never re-renders
a frame or re-simulates a system it has already measured.

Layout::

    .repro_cache/
        experiments/<key>.json    # ExperimentResult rows (human-inspectable)
        reports/<key>.pkl         # SequenceReport objects
        workloads/<key>.pkl       # captured WorkloadModel frame geometry

Keys mix a canonical JSON encoding of the parameter dict with a digest of
the ``repro`` package's own source, so editing any module under
``src/repro/`` transparently invalidates every stale entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

import numpy as np

#: Default cache root, overridable via the ``REPRO_CACHE_DIR`` environment
#: variable or an explicit ``root`` argument.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Namespaces with JSON payloads; everything else is pickled.
_JSON_NAMESPACES = frozenset({"experiments", "sweeps"})

_code_version_cache: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package's Python source (16 hex chars).

    Hashes every ``*.py`` file under the installed package directory in
    sorted order, so any code change — a new strategy, a tweaked hardware
    constant — yields a different version and therefore different cache keys.
    Computed once per process.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_dir = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars that ``json`` won't take natively.

    ``np.float64`` is a ``float`` subclass and passes through on its own;
    integer and bool scalars are not, so convert them losslessly.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON-cacheable: {type(value).__name__}")


def _canonical(value: Any) -> Any:
    """Recursively convert a payload to a canonical JSON-encodable form."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; float() normalizes np scalars.
        return repr(float(value))
    return repr(value)


def stable_key(payload: dict[str, Any]) -> str:
    """Deterministic hex key for a parameter dict (code version included)."""
    body = json.dumps(
        {"code": code_version(), **_canonical(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()[:32]


class ResultCache:
    """Persistent store for experiment artifacts, keyed by stable hashes.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro_cache`` in the working directory.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------
    def _path(self, namespace: str, key: str) -> Path:
        suffix = ".json" if namespace in _JSON_NAMESPACES else ".pkl"
        return self.root / namespace / f"{key}{suffix}"

    def get(self, namespace: str, payload: dict[str, Any]) -> Any | None:
        """Look up an artifact; returns ``None`` on a miss or corrupt entry."""
        path = self._path(namespace, stable_key(payload))
        if not path.exists():
            self.misses += 1
            return None
        try:
            if path.suffix == ".json":
                with open(path, encoding="utf-8") as handle:
                    value = json.load(handle)["value"]
            else:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
        except (OSError, ValueError, KeyError, pickle.UnpicklingError, EOFError):
            # A truncated or stale entry is a miss, not an error.
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, namespace: str, payload: dict[str, Any], value: Any) -> Path:
        """Persist an artifact; writes are atomic (tmp file + rename)."""
        path = self._path(namespace, stable_key(payload))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            if path.suffix == ".json":
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(
                        {"payload": _canonical(payload), "value": value},
                        handle,
                        default=_json_default,
                    )
            else:
                with open(tmp, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def info(self) -> dict[str, Any]:
        """Summary of the cache contents for ``repro cache info``.

        A root that was never created (or vanishes mid-scan under a
        concurrent ``clear``) reports an empty cache rather than raising.
        """
        namespaces: dict[str, dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        try:
            ns_dirs = sorted(p for p in self.root.iterdir() if p.is_dir())
        except OSError:
            ns_dirs = []  # root never created, not a directory, or deleted mid-scan
        for ns_dir in ns_dirs:
            entries = []
            size = 0
            try:
                listing = list(ns_dir.iterdir())
            except OSError:
                continue  # namespace removed mid-scan
            for entry in listing:
                try:
                    if not entry.is_file():
                        continue
                    size += entry.stat().st_size
                except OSError:
                    continue  # deleted between listing and stat
                entries.append(entry)
            namespaces[ns_dir.name] = {"entries": len(entries), "bytes": size}
            total_entries += len(entries)
            total_bytes += size
        return {
            "root": str(self.root),
            "code_version": code_version(),
            "namespaces": namespaces,
            "total_entries": total_entries,
            "total_bytes": total_bytes,
        }

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        Deliberately surgical: only ``*.json``/``*.pkl`` entries inside the
        cache's namespace subdirectories are deleted, and directories are
        only removed once empty.  Pointing ``--cache-dir`` (or
        ``REPRO_CACHE_DIR``) at a directory holding anything else must never
        destroy that content.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for ns_dir in self.root.iterdir():
            if not ns_dir.is_dir():
                continue
            for entry in ns_dir.iterdir():
                if entry.is_file() and entry.suffix in {".json", ".pkl"}:
                    entry.unlink()
                    removed += 1
            try:
                ns_dir.rmdir()
            except OSError:
                pass  # non-cache content present; leave it alone
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed
