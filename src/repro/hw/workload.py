"""Workload extraction: from functional renders to paper-scale statistics.

The pure-Python pipeline renders reduced scenes (10^3-10^4 Gaussians), but
the hardware models need workloads at the paper's scale (10^6 Gaussians,
HD-QHD resolutions).  The bridge is geometric: a frame's sorting/raster
workload is fully determined by the visible Gaussians' screen positions,
radii and depths, and those re-scale analytically:

* resolution: focal length scales with image height, so screen positions and
  radii scale by ``target_height / capture_height``;
* Gaussian count: per-tile occupancy and pair counts scale linearly with the
  instantiated count (splats are i.i.d. within the preset's distribution),
  so counts multiply by ``nominal / functional``.

:class:`WorkloadModel` captures per-frame geometry once (culling +
projection only — no rasterization) and answers pair counts, occupancy,
churn, and order-difference queries for any (resolution, tile size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.culling import frustum_cull
from ..pipeline.projection import project_gaussians
from ..pipeline.tiling import TileStream, _warn_deprecated
from ..scene.camera import Camera, resolution as named_resolution
from ..scene.datasets import default_trajectory, load_scene, scene_spec
from ..scene.gaussians import GaussianScene

#: Capture resolution for workload extraction; small enough to be fast,
#: large enough that tile geometry at scaled resolutions is well sampled.
CAPTURE_WIDTH = 480
CAPTURE_HEIGHT = 270


@dataclass(frozen=True)
class FrameGeometry:
    """Visible-Gaussian geometry for one frame at capture resolution."""

    ids: np.ndarray
    means2d: np.ndarray
    radii: np.ndarray
    depths: np.ndarray

    @property
    def num_visible(self) -> int:
        """Visible Gaussians this frame (functional count)."""
        return self.ids.shape[0]


@dataclass(frozen=True)
class FrameWorkload:
    """Paper-scale workload statistics for one frame at one configuration.

    All counts are scaled to the scene's *nominal* Gaussian count.

    Attributes
    ----------
    visible:
        Gaussians surviving culling.
    pairs:
        Tile-Gaussian duplication pairs (sorting workload).
    incoming_pairs / outgoing_pairs:
        Pairs entering / leaving their tile since the previous frame
        (zero for frame 0).
    nonempty_tiles:
        Tiles with at least one Gaussian.
    mean_occupancy:
        Mean pairs per nonempty tile.
    chunks:
        Total 256-entry sorting chunks across tiles.
    mean_radius_px:
        Mean splat radius at the target resolution (pixels), used by the
        blend-work estimates.
    """

    frame_index: int
    width: int
    height: int
    tile_size: int
    num_gaussians: float
    visible: float
    pairs: float
    incoming_pairs: float
    outgoing_pairs: float
    nonempty_tiles: int
    num_tiles: int
    mean_occupancy: float
    chunks: float
    mean_radius_px: float = 0.0

    @property
    def churn_fraction(self) -> float:
        """Incoming pairs as a share of all pairs."""
        return self.incoming_pairs / self.pairs if self.pairs else 0.0

    @property
    def retained_fraction(self) -> float:
        """Share of pairs carried over from the previous frame."""
        return 1.0 - self.churn_fraction


def pair_lists(
    means2d: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    tile_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute (tile, Gaussian-row) duplication pairs for given geometry.

    Same geometry as :func:`repro.pipeline.tiling.assign_to_tiles` (bbox
    expansion refined by an exact circle-vs-tile test) but standalone, so it
    can run on analytically re-scaled coordinates.
    """
    m = means2d.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    tiles_x = -(-width // tile_size)
    tiles_y = -(-height // tile_size)
    x, y, r = means2d[:, 0], means2d[:, 1], radii

    tx0 = np.clip(np.floor((x - r) / tile_size).astype(np.int64), 0, tiles_x - 1)
    ty0 = np.clip(np.floor((y - r) / tile_size).astype(np.int64), 0, tiles_y - 1)
    tx1 = np.clip(np.floor((x + r) / tile_size).astype(np.int64), -1, tiles_x - 1)
    ty1 = np.clip(np.floor((y + r) / tile_size).astype(np.int64), -1, tiles_y - 1)
    off = (x + r < 0) | (y + r < 0) | (x - r >= width) | (y - r >= height)
    tx1[off] = tx0[off] - 1

    nx = np.maximum(tx1 - tx0 + 1, 0)
    ny = np.maximum(ty1 - ty0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    rows = np.repeat(np.arange(m, dtype=np.int64), counts)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    nx_rep = np.repeat(np.maximum(nx, 1), counts)
    dx = local % nx_rep
    dy = local // nx_rep
    tiles = (np.repeat(ty0, counts) + dy) * tiles_x + np.repeat(tx0, counts) + dx

    # Exact circle-vs-rect refinement.
    tile_px = (tiles % tiles_x) * tile_size
    tile_py = (tiles // tiles_x) * tile_size
    cx = x[rows]
    cy = y[rows]
    rr = r[rows]
    qx = np.clip(cx, tile_px, np.minimum(tile_px + tile_size, width))
    qy = np.clip(cy, tile_py, np.minimum(tile_py + tile_size, height))
    keep = (qx - cx) ** 2 + (qy - cy) ** 2 <= rr * rr
    return tiles[keep], rows[keep]


class WorkloadModel:
    """Per-frame geometry capture plus scaled workload queries.

    Parameters
    ----------
    frames:
        Captured per-frame geometry at ``capture_width x capture_height``.
    capture_width, capture_height:
        Resolution the geometry was captured at.
    count_scale:
        ``nominal_gaussians / functional_gaussians`` for the scene.
    functional_gaussians:
        Instantiated Gaussian count.
    scene_name:
        Label for reporting.
    """

    def __init__(
        self,
        frames: list[FrameGeometry],
        capture_width: int,
        capture_height: int,
        count_scale: float,
        functional_gaussians: int,
        scene_name: str = "scene",
    ) -> None:
        if not frames:
            raise ValueError("need at least one frame")
        if count_scale <= 0:
            raise ValueError("count_scale must be positive")
        self.frames = frames
        self.capture_width = capture_width
        self.capture_height = capture_height
        self.count_scale = count_scale
        self.functional_gaussians = functional_gaussians
        self.scene_name = scene_name
        # (frame, width, height, tile_size) -> TileStream of Gaussian rows.
        self._stream_cache: dict[tuple[int, int, int, int], TileStream] = {}
        # Same key -> ((tile, ID) keys in stream order, sorted copy).  Built
        # once per configuration so churn/retention queries never re-sort.
        self._key_cache: dict[tuple[int, int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_scene(
        scene_name: str,
        num_frames: int = 30,
        speed: float = 1.0,
        num_gaussians: int | None = None,
        capture_width: int = CAPTURE_WIDTH,
        capture_height: int = CAPTURE_HEIGHT,
    ) -> "WorkloadModel":
        """Capture a workload model for a registered scene preset."""
        spec = scene_spec(scene_name)
        scene = load_scene(scene_name, num_gaussians=num_gaussians)
        cameras = default_trajectory(
            scene_name,
            num_frames=num_frames,
            speed=speed,
            width=capture_width,
            height=capture_height,
        )
        return WorkloadModel.from_render(
            scene,
            cameras,
            nominal_gaussians=spec.nominal_gaussians,
            scene_name=scene_name,
        )

    @staticmethod
    def from_render(
        scene: GaussianScene,
        cameras: list[Camera],
        nominal_gaussians: int | None = None,
        scene_name: str | None = None,
    ) -> "WorkloadModel":
        """Capture geometry by running culling + projection per camera."""
        frames = []
        for camera in cameras:
            culled = frustum_cull(scene, camera)
            proj = project_gaussians(scene, camera, culled.visible_ids)
            frames.append(
                FrameGeometry(
                    ids=proj.ids.copy(),
                    means2d=proj.means2d.copy(),
                    radii=proj.radii.copy(),
                    depths=proj.depths.copy(),
                )
            )
        nominal = nominal_gaussians if nominal_gaussians is not None else len(scene)
        return WorkloadModel(
            frames=frames,
            capture_width=cameras[0].width,
            capture_height=cameras[0].height,
            count_scale=nominal / max(len(scene), 1),
            functional_gaussians=len(scene),
            scene_name=scene_name or scene.name,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Frames captured."""
        return len(self.frames)

    def _resolve(self, resolution: str | tuple[int, int]) -> tuple[int, int]:
        if isinstance(resolution, str):
            return named_resolution(resolution)
        return resolution

    def scaled_geometry(
        self, frame: int, resolution: str | tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(means2d, radii) re-scaled to the target resolution."""
        width, height = self._resolve(resolution)
        geo = self.frames[frame]
        s = height / self.capture_height
        return geo.means2d * s, geo.radii * s

    def frame_stream(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> TileStream:
        """Tile-grouped stream of Gaussian rows at the target configuration.

        Values index the frame's :class:`FrameGeometry` arrays; cached per
        configuration.  This is the canonical tile-facing accessor — every
        workload query below is a segmented program over it.
        """
        width, height = self._resolve(resolution)
        key = (frame, width, height, tile_size)
        if key not in self._stream_cache:
            means2d, radii = self.scaled_geometry(frame, (width, height))
            tiles, rows = pair_lists(means2d, radii, width, height, tile_size)
            tiles_x = -(-width // tile_size)
            tiles_y = -(-height // tile_size)
            self._stream_cache[key] = TileStream.from_pairs(
                tiles, rows, tiles_x * tiles_y
            )
        return self._stream_cache[key]

    def frame_pairs(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated pair-list accessor; use :meth:`frame_stream`.

        Returns ``(tiles, rows)`` in the stream's tile-grouped order (the
        historical order was per-Gaussian; all counting/set queries are
        order-invariant).
        """
        _warn_deprecated("WorkloadModel.frame_pairs", "WorkloadModel.frame_stream")
        stream = self.frame_stream(frame, resolution, tile_size)
        return stream.tile_of(), stream.values

    def frame_workload(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> FrameWorkload:
        """Paper-scale workload for one frame at one configuration."""
        width, height = self._resolve(resolution)
        stream = self.frame_stream(frame, (width, height), tile_size)
        geo = self.frames[frame]
        num_tiles = stream.num_tiles

        occupancy = stream.counts()
        nonempty = int(np.count_nonzero(occupancy))
        pairs_f = stream.num_pairs

        incoming_f, outgoing_f = self._churn_counts(frame, (width, height), tile_size)

        scale = self.count_scale
        mean_occ = (pairs_f / nonempty * scale) if nonempty else 0.0
        chunk_size = 256
        # Per-tile ceil-div over scaled occupancy, batched.  The cast
        # truncates like the scalar ``int()`` did (occupancy is nonnegative).
        scaled_occ = (occupancy[occupancy > 0] * scale).astype(np.int64)
        chunks = int((-(-scaled_occ // chunk_size)).sum())
        scale_px = height / self.capture_height
        mean_radius = float(geo.radii.mean()) * scale_px if geo.num_visible else 0.0
        return FrameWorkload(
            frame_index=frame,
            width=width,
            height=height,
            tile_size=tile_size,
            num_gaussians=self.functional_gaussians * scale,
            visible=geo.num_visible * scale,
            pairs=pairs_f * scale,
            incoming_pairs=incoming_f * scale,
            outgoing_pairs=outgoing_f * scale,
            nonempty_tiles=nonempty,
            num_tiles=num_tiles,
            mean_occupancy=mean_occ,
            chunks=float(chunks),
            mean_radius_px=mean_radius,
        )

    def sequence_workloads(
        self, resolution: str | tuple[int, int], tile_size: int
    ) -> list[FrameWorkload]:
        """Workloads for every captured frame."""
        return [
            self.frame_workload(i, resolution, tile_size) for i in range(self.num_frames)
        ]

    # ------------------------------------------------------------------
    # Temporal similarity (Figs. 6-7)
    # ------------------------------------------------------------------
    def _pair_keys(
        self, frame: int, resolution: tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Unique (tile, global-ID) keys for a frame's pairs (stream order)."""
        return self._key_tables(frame, resolution, tile_size)[0]

    def _key_tables(
        self, frame: int, resolution: tuple[int, int], tile_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(stream-order keys, sorted keys) for a frame's pairs, cached.

        The sorted table is what makes every membership query below a binary
        search instead of an ``np.isin`` re-sort per frame pair.
        """
        width, height = self._resolve(resolution)
        key = (frame, width, height, tile_size)
        if key not in self._key_cache:
            stream = self.frame_stream(frame, (width, height), tile_size)
            ids = self.frames[frame].ids[stream.values]
            keys = stream.tile_of() * (1 << 32) + ids
            self._key_cache[key] = (keys, np.sort(keys))
        return self._key_cache[key]

    def _churn_counts(
        self, frame: int, resolution: tuple[int, int], tile_size: int
    ) -> tuple[int, int]:
        """(incoming, outgoing) pair counts vs. the previous frame."""
        if frame == 0:
            return 0, 0
        cur, cur_sorted = self._key_tables(frame, resolution, tile_size)
        prev, prev_sorted = self._key_tables(frame - 1, resolution, tile_size)
        incoming = cur.shape[0] - _membership_count(cur, prev_sorted)
        outgoing = prev.shape[0] - _membership_count(prev, cur_sorted)
        return incoming, outgoing

    def shared_fraction_per_tile(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Per-tile share of the previous frame's Gaussians retained (Fig. 6).

        Only tiles nonempty in the previous frame are reported.
        """
        if frame == 0:
            raise ValueError("frame 0 has no predecessor")
        width, height = self._resolve(resolution)
        prev_stream = self.frame_stream(frame - 1, (width, height), tile_size)
        prev_keys, _ = self._key_tables(frame - 1, (width, height), tile_size)
        _, cur_sorted = self._key_tables(frame, (width, height), tile_size)
        retained = _membership(prev_keys, cur_sorted)

        # Retained counts are exact 0/1 sums, so the per-tile sum/size
        # division reproduces the historical per-tile ``mean()`` bit-for-bit;
        # the stream's nonempty tiles are exactly ``np.unique``'s sorted
        # output over the old pair list.
        counts = prev_stream.counts()
        nonempty = counts > 0
        kept = np.add.reduceat(
            retained.astype(np.float64), prev_stream.offsets[:-1][nonempty]
        ) if np.any(nonempty) else np.empty(0)
        return kept / counts[nonempty]

    def order_differences(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Per-Gaussian sort-position shifts between consecutive frames (Fig. 7).

        For every tile, Gaussians shared between frames ``frame-1`` and
        ``frame`` get a continuous depth percentile (interpolated ECDF of the
        tile's depth distribution) in both frames; the reported value is the
        percentile shift converted to *positions at nominal occupancy* (a
        Gaussian's sort rank is its depth percentile times the table length,
        and table length grows linearly with Gaussian count).  The
        interpolation avoids the rank quantization a 10^3-x-reduced
        functional table would otherwise impose.

        Computed as one segmented program: a per-tile key intersection of the
        two frames' streams (:meth:`TileStream.segment_intersect`) followed by
        a segmented ECDF, bit-identical to the frozen per-tile
        ``np.intersect1d`` + ``np.interp`` loop preserved in
        :mod:`repro.hw.reference` — ``np.interp`` over an ECDF whose queries
        are population members reduces exactly to a run-end ``searchsorted``
        against ``np.linspace``'s ``j * step`` grid.
        """
        if frame == 0:
            raise ValueError("frame 0 has no predecessor")
        width, height = self._resolve(resolution)
        prev_stream = self.frame_stream(frame - 1, (width, height), tile_size)
        cur_stream = self.frame_stream(frame, (width, height), tile_size)
        prev_geo = self.frames[frame - 1]
        cur_geo = self.frames[frame]

        prev_ids = prev_geo.ids[prev_stream.values]
        cur_ids = cur_geo.ids[cur_stream.values]
        inter = prev_stream.segment_intersect(prev_ids, cur_stream, cur_ids)
        if inter.num_shared == 0:
            return np.empty(0)

        # Tiles sharing fewer than two Gaussians contribute nothing.
        seg_counts = inter.counts()
        keep_tile = seg_counts >= 2
        if not np.any(keep_tile):
            return np.empty(0)
        entry_tile = np.repeat(
            np.arange(prev_stream.num_tiles, dtype=np.int64), seg_counts
        )
        keep = keep_tile[entry_tile]

        tile_k = entry_tile[keep]
        dp = prev_geo.depths[prev_stream.values[inter.self_indices[keep]]]
        dc = cur_geo.depths[cur_stream.values[inter.other_indices[keep]]]

        kept_counts = seg_counts[keep_tile]
        seg_id = np.repeat(np.arange(kept_counts.shape[0], dtype=np.int64), kept_counts)
        seg_starts = np.zeros(kept_counts.shape[0], dtype=np.int64)
        np.cumsum(kept_counts[:-1], out=seg_starts[1:])
        seg_len = kept_counts[seg_id]

        pct_prev = _segmented_ecdf(dp, seg_id, seg_starts, seg_len)
        pct_cur = _segmented_ecdf(dc, seg_id, seg_starts, seg_len)

        # Position shift at nominal occupancy: percentile delta times the
        # tile's *full* current table length, scaled to the nominal count.
        nominal_occ = cur_stream.counts()[tile_k] * self.count_scale
        return np.abs(pct_cur - pct_prev) * nominal_occ


def _membership(keys: np.ndarray, table_sorted: np.ndarray) -> np.ndarray:
    """Boolean membership of ``keys`` in a pre-sorted key table."""
    if table_sorted.shape[0] == 0:
        return np.zeros(keys.shape[0], dtype=bool)
    pos = np.searchsorted(table_sorted, keys)
    safe = np.minimum(pos, table_sorted.shape[0] - 1)
    return table_sorted[safe] == keys


def _membership_count(keys: np.ndarray, table_sorted: np.ndarray) -> int:
    """Number of ``keys`` present in a pre-sorted key table."""
    return int(np.count_nonzero(_membership(keys, table_sorted)))


def _segmented_ecdf(
    depths: np.ndarray,
    seg_id: np.ndarray,
    seg_starts: np.ndarray,
    seg_len: np.ndarray,
) -> np.ndarray:
    """Per-segment continuous ECDF percentile of each entry's depth.

    Replicates ``np.interp(d, np.sort(d), np.linspace(0, 1, n))`` for every
    segment at once.  When every query is a member of the population,
    ``np.interp`` lands exactly on the knot of the query's *last* occurrence
    in the sorted population, i.e. ``linspace[j]`` with
    ``j = searchsorted(sorted, q, side='right') - 1``; and ``np.linspace``
    is ``j * (1 / (n - 1))`` with the final knot forced to exactly ``1.0``.
    Both identities are replayed here per segment: one ``(segment, depth)``
    lexsort, run-end indices for the duplicate-aware ``j``, and the
    ``j * step`` grid.  Segments must have length >= 2.
    """
    total = depths.shape[0]
    order = np.lexsort((depths, seg_id))
    ds = depths[order]
    # Segments are contiguous blocks before and after the lexsort, so the
    # per-entry segment metadata is order-invariant.
    is_end = np.empty(total, dtype=bool)
    is_end[-1] = True
    is_end[:-1] = (seg_id[1:] != seg_id[:-1]) | (ds[1:] != ds[:-1])
    ends = np.flatnonzero(is_end)
    run_end = ends[np.searchsorted(ends, np.arange(total), side="left")]
    j = run_end - seg_starts[seg_id]

    step = 1.0 / (seg_len - 1)
    pct_sorted = np.where(j == seg_len - 1, 1.0, j * step)
    pct = np.empty(total, dtype=np.float64)
    pct[order] = pct_sorted
    return pct
