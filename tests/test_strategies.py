"""Unit tests for the baseline sorting strategies."""

import numpy as np
import pytest

from repro.core.strategies import (
    BackgroundSortStrategy,
    FullResortStrategy,
    HierarchicalSortStrategy,
    NeoSortStrategy,
    PeriodicSortStrategy,
    make_strategy,
)
from repro.metrics.image import psnr
from repro.pipeline.renderer import Renderer
from repro.pipeline.sorting import is_depth_sorted


class TestFactory:
    def test_all_names(self):
        assert isinstance(make_strategy("full"), FullResortStrategy)
        assert isinstance(make_strategy("periodic", period=5), PeriodicSortStrategy)
        assert isinstance(make_strategy("background"), BackgroundSortStrategy)
        assert isinstance(make_strategy("hierarchical"), HierarchicalSortStrategy)
        assert isinstance(make_strategy("NEO"), NeoSortStrategy)

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_strategy("quantum")


class TestFullResort:
    def test_exact_order_and_traffic(self, small_scene, camera_path):
        strategy = FullResortStrategy()
        records = Renderer(small_scene, strategy=strategy).render_sequence(camera_path)
        for record in records:
            st = record.sorted_tiles
            for t in range(st.num_tiles):
                assert is_depth_sorted(st.depths_for(t))
        assert len(strategy.frame_traffic) == len(camera_path)
        assert strategy.total_traffic().total_bytes > 0


class TestPeriodic:
    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicSortStrategy(period=0)

    def test_skip_frames_cost_nothing(self, small_scene, camera_path):
        strategy = PeriodicSortStrategy(period=3)
        Renderer(small_scene, strategy=strategy).render_sequence(camera_path)
        costs = [t.total_bytes for t in strategy.frame_traffic]
        assert costs[0] > 0
        assert costs[1] == 0
        assert costs[2] == 0
        assert costs[3] > 0

    def test_quality_decays_between_refreshes(self, small_scene):
        from repro.scene import TrajectoryConfig, orbit_trajectory

        config = TrajectoryConfig(num_frames=8, width=160, height=90, speed=4.0)
        cameras = orbit_trajectory(np.zeros(3), 6.0, config, height_offset=1.2)
        reference = Renderer(small_scene).render_sequence(cameras)
        strategy = PeriodicSortStrategy(period=8)
        records = Renderer(small_scene, strategy=strategy).render_sequence(cameras)
        q1 = psnr(reference[1].image, records[1].image)
        q7 = psnr(reference[7].image, records[7].image)
        assert q7 < q1  # error accumulates away from the refresh


class TestBackground:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundSortStrategy(lag=0)

    def test_sustained_traffic(self, small_scene, camera_path):
        strategy = BackgroundSortStrategy(lag=2)
        Renderer(small_scene, strategy=strategy).render_sequence(camera_path)
        assert all(t.total_bytes > 0 for t in strategy.frame_traffic)

    def test_uses_lagged_ordering(self, small_scene, camera_path):
        lagged = BackgroundSortStrategy(lag=2)
        records = Renderer(small_scene, strategy=lagged).render_sequence(camera_path)
        reference = Renderer(small_scene).render_sequence(camera_path)
        # After warm-up the rendered order comes from an older viewpoint:
        # images differ from the exact render (but not wildly).
        diffs = [
            np.abs(ref.image - rec.image).max()
            for ref, rec in zip(reference[3:], records[3:])
        ]
        assert max(diffs) > 0.0

    def test_worse_quality_than_neo(self, small_scene, camera_path):
        reference = Renderer(small_scene).render_sequence(camera_path)
        bg_records = Renderer(
            small_scene, strategy=BackgroundSortStrategy(lag=3)
        ).render_sequence(camera_path)
        neo_records = Renderer(
            small_scene, strategy=NeoSortStrategy()
        ).render_sequence(camera_path)
        bg_q = np.mean([psnr(a.image, b.image) for a, b in zip(reference[3:], bg_records[3:])])
        neo_q = np.mean([psnr(a.image, b.image) for a, b in zip(reference[3:], neo_records[3:])])
        assert neo_q > bg_q


class TestHierarchical:
    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalSortStrategy(num_buckets=1)

    def test_order_is_exact(self, small_scene, camera):
        strategy = HierarchicalSortStrategy()
        record = Renderer(small_scene, strategy=strategy).render(camera)
        st = record.sorted_tiles
        for t in range(st.num_tiles):
            assert is_depth_sorted(st.depths_for(t))

    def test_traffic_twice_neo_reorder(self, small_scene, camera_path):
        hier = HierarchicalSortStrategy()
        Renderer(small_scene, strategy=hier).render_sequence(camera_path)
        neo = NeoSortStrategy()
        Renderer(small_scene, strategy=neo).render_sequence(camera_path)
        # Hierarchical streams the table twice per frame; Neo once (plus
        # incoming handling), so hierarchical carries clearly more traffic.
        assert (
            hier.total_traffic().total_bytes
            > 1.5 * neo.total_traffic().table_read
            + neo.total_traffic().table_write
        )
