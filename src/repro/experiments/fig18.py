"""Fig. 18 — ablation: GSCore -> Neo-S (Sorting Engine) -> full Neo.

Adding Neo's Sorting Engine to a GSCore-style pipeline (Neo-S) enables
reuse-and-update sorting and delivers the bulk of the traffic cut and a
~3.3x speedup; without Rasterization-Engine support, though, depth/valid-bit
refresh costs a separate random-access post-processing pass.  Integrating
the Rasterization Engine (full Neo) removes that pass for a further ~1.7x
speedup and ~36 % traffic cut.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import ExperimentResult

VARIANTS = ("gscore", "neo-s", "neo")

DESCRIPTION = "Ablation: speedup and DRAM traffic normalized to GSCore"


def plan(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentPlan:
    """Declare the (variant, scene) ablation grid."""
    cells = tuple(
        SimJob(variant, scene, resolution, frames=num_frames)
        for variant in VARIANTS
        for scene in scenes
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig18", description=DESCRIPTION)
        latency: dict[str, float] = {}
        traffic: dict[str, float] = {}
        for variant in VARIANTS:
            lat, gb = [], []
            for scene in scenes:
                report = reports[SimJob(variant, scene, resolution, frames=num_frames)]
                lat.append(report.mean_latency_s)
                gb.append(report.total_traffic.total / report.num_frames)
            latency[variant] = float(np.mean(lat))
            traffic[variant] = float(np.mean(gb))
        for variant in VARIANTS:
            result.rows.append(
                {
                    "variant": variant,
                    "speedup_vs_gscore": latency["gscore"] / latency[variant],
                    "relative_traffic": traffic[variant] / traffic["gscore"],
                }
            )
        return result

    return ExperimentPlan("fig18", DESCRIPTION, cells, aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentResult:
    """Speedup and relative traffic of each variant, normalized to GSCore."""
    return execute_plan(plan(scenes=scenes, resolution=resolution, num_frames=num_frames))
