"""Tests for the execution runtime: parallel fan-out and disk caching."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.strategies import NeoSortStrategy
from repro.experiments.runner import (
    RunnerConfig,
    _workload_model_cached,
    get_workload_model,
    resolve_frames,
    runner_config,
    simulate_system,
)
from repro.hw.workload import WorkloadModel
from repro.pipeline.renderer import Renderer
from repro.runtime import ParallelRunner, ResultCache, code_version, parallel_map, stable_key
from repro.runtime.parallel import _contiguous_shards


def _square(x):
    return x * x


def _pid(_):
    import os

    return os.getpid()


def _assert_records_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.image, b.image)
        assert a.stats.frame_index == b.stats.frame_index
        assert a.stats.num_pairs == b.stats.num_pairs
        assert a.stats.blend_ops == b.stats.blend_ops
        assert a.stats.subtile_tests == b.stats.subtile_tests
        assert a.stats.subtile_hits == b.stats.subtile_hits
        assert np.array_equal(a.stats.occupancy, b.stats.occupancy)


class TestParallelRender:
    def test_bitwise_equal_to_serial(self, small_scene, camera_path):
        renderer = Renderer(small_scene)
        serial = renderer.render_sequence(camera_path)
        parallel = renderer.render_sequence(camera_path, jobs=2)
        _assert_records_identical(serial, parallel)

    def test_more_jobs_than_frames(self, small_scene, camera_path):
        renderer = Renderer(small_scene)
        serial = renderer.render_sequence(camera_path)
        parallel = renderer.render_sequence(camera_path, jobs=16)
        _assert_records_identical(serial, parallel)

    def test_stateful_strategy_falls_back_to_serial(self, small_scene, camera_path):
        # Neo's reuse chain carries inter-frame state; jobs>1 must not
        # shard it (results would diverge), just render serially.
        serial = Renderer(small_scene, strategy=NeoSortStrategy()).render_sequence(camera_path)
        parallel = Renderer(small_scene, strategy=NeoSortStrategy()).render_sequence(
            camera_path, jobs=2
        )
        _assert_records_identical(serial, parallel)

    def test_workers_receive_only_their_shard(self, small_scene, camera_path, monkeypatch):
        # The pool's initargs must carry the renderer alone; each task must
        # carry exactly its shard's cameras — never the full trajectory.
        from repro.runtime import parallel as par

        captured = {}

        class SpyCtx:
            def Pool(self, processes, initializer=None, initargs=()):
                captured["initargs"] = initargs

                class SpyPool:
                    def __enter__(self):
                        return self

                    def __exit__(self, *exc):
                        return False

                    def map(self, fn, tasks):
                        captured["tasks"] = list(tasks)
                        initializer(*initargs)
                        return [fn(task) for task in tasks]

                return SpyPool()

        monkeypatch.setattr(par, "_mp_context", lambda: SpyCtx())
        renderer = Renderer(small_scene)
        serial = renderer.render_sequence(camera_path)
        sharded = par.parallel_render_sequence(renderer, camera_path, jobs=2)
        _assert_records_identical(serial, sharded)

        assert captured["initargs"] == (renderer,)
        starts = [start for start, _ in captured["tasks"]]
        sizes = [len(cams) for _, cams in captured["tasks"]]
        assert sum(sizes) == len(camera_path)
        assert starts == [0] + list(np.cumsum(sizes)[:-1])

    def test_spawn_context_matches_serial(self, small_scene, camera_path, monkeypatch):
        # Spawn pickles initargs and tasks for every worker; the sharded
        # payloads must survive that boundary and stay bitwise-identical.
        import multiprocessing

        from repro.runtime import parallel as par

        monkeypatch.setattr(
            par, "_mp_context", lambda: multiprocessing.get_context("spawn")
        )
        renderer = Renderer(small_scene)
        serial = renderer.render_sequence(camera_path)
        parallel = renderer.render_sequence(camera_path, jobs=2)
        _assert_records_identical(serial, parallel)

    def test_contiguous_shards_cover_in_order(self):
        shards = _contiguous_shards(10, 3)
        assert [i for shard in shards for i in shard] == list(range(10))
        assert all(len(s) >= 3 for s in shards)
        assert _contiguous_shards(2, 8) == [[0], [1]]
        assert _contiguous_shards(1, 1) == [[0]]


class TestStableKey:
    def test_deterministic(self):
        payload = {"scene": "family", "frames": 12, "speed": 1.0}
        assert stable_key(payload) == stable_key(dict(reversed(list(payload.items()))))

    def test_sensitive_to_values(self):
        base = {"scene": "family", "frames": 12}
        assert stable_key(base) != stable_key({"scene": "family", "frames": 13})
        assert stable_key(base) != stable_key({"scene": "horse", "frames": 12})

    def test_code_version_shape(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)  # hex


class TestResultCache:
    def test_json_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        payload = {"kind": "experiment", "name": "x", "frames": 3}
        assert cache.get("experiments", payload) is None
        cache.put("experiments", payload, {"rows": [{"a": 1.5, "b": "s"}]})
        assert cache.get("experiments", payload) == {"rows": [{"a": 1.5, "b": "s"}]}

    def test_numpy_scalars_in_json_values(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        payload = {"kind": "experiment", "name": "np"}
        cache.put(
            "experiments",
            payload,
            {"f": np.float64(0.1), "i": np.int64(7), "b": np.bool_(True)},
        )
        value = cache.get("experiments", payload)
        assert value == {"f": 0.1, "i": 7, "b": True}

    def test_pickle_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        payload = {"kind": "report", "system": "neo"}
        arr = np.arange(6).reshape(2, 3)
        cache.put("reports", payload, arr)
        assert np.array_equal(cache.get("reports", payload), arr)

    def test_miss_on_payload_change(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("reports", {"frames": 12}, "twelve")
        assert cache.get("reports", {"frames": 13}) is None
        assert cache.get("reports", {"frames": 12}) == "twelve"

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("experiments", {"n": 1}, {"rows": []})
        cache.put("reports", {"n": 2}, [1, 2, 3])
        info = cache.info()
        assert info["total_entries"] == 2
        assert info["namespaces"]["experiments"]["entries"] == 1
        assert cache.clear() == 2
        assert cache.info()["total_entries"] == 0
        assert cache.get("reports", {"n": 2}) is None

    def test_clear_leaves_foreign_files_alone(self, tmp_path):
        # Pointing --cache-dir at a directory with unrelated content must
        # never destroy that content.
        root = tmp_path / "mixed"
        root.mkdir()
        (root / "precious.txt").write_text("keep me")
        sub = root / "notes"
        sub.mkdir()
        (sub / "todo.md").write_text("keep me too")
        cache = ResultCache(root)
        cache.put("experiments", {"n": 1}, {"rows": []})
        assert cache.clear() == 1
        assert (root / "precious.txt").read_text() == "keep me"
        assert (sub / "todo.md").read_text() == "keep me too"
        assert not (root / "experiments").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        payload = {"n": 1}
        path = cache.put("reports", payload, "value")
        path.write_bytes(b"\x00not a pickle")
        assert cache.get("reports", payload) is None

    def test_info_on_never_created_root(self, tmp_path):
        # Regression: `repro cache info` must report an empty cache, not
        # raise, when the cache directory has never been created.
        cache = ResultCache(tmp_path / "never_created")
        info = cache.info()
        assert info["total_entries"] == 0
        assert info["total_bytes"] == 0
        assert info["namespaces"] == {}
        assert not (tmp_path / "never_created").exists()  # info() creates nothing

    def test_info_ignores_entries_deleted_mid_scan(self, tmp_path, monkeypatch):
        from pathlib import Path

        cache = ResultCache(tmp_path / "cache")
        cache.put("experiments", {"n": 1}, {"rows": []})
        cache.put("experiments", {"n": 2}, {"rows": []})

        # Simulate a concurrent `cache clear`: the first stat on each entry
        # (the is_file probe) succeeds, the second (st_size) finds the file
        # already gone.
        real_stat = Path.stat
        probed = set()

        def racing_stat(self, **kwargs):
            result = real_stat(self, **kwargs)
            if self.suffix == ".json":
                if self in probed:
                    raise FileNotFoundError(self)
                probed.add(self)
            return result

        monkeypatch.setattr(Path, "stat", racing_stat)
        info = cache.info()
        assert info["total_entries"] == 0

    def test_info_survives_namespace_dir_deleted_mid_scan(self, tmp_path, monkeypatch):
        import shutil
        from pathlib import Path

        cache = ResultCache(tmp_path / "cache")
        cache.put("experiments", {"n": 1}, {"rows": []})

        # Concurrent `cache clear` removes the namespace directory between
        # the root listing and the namespace listing.
        real_iterdir = Path.iterdir

        def racing_iterdir(self):
            if self.name == "experiments":
                shutil.rmtree(self)
            return real_iterdir(self)

        monkeypatch.setattr(Path, "iterdir", racing_iterdir)
        info = cache.info()
        assert info["total_entries"] == 0


class TestTenantNamespaces:
    def test_tenants_never_share_rows(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        payload = {"kind": "report", "system": "neo", "frames": 2}
        store.for_tenant("acme").put("reports", payload, "acme-row")
        assert store.for_tenant("acme").get("reports", payload) == "acme-row"
        assert store.for_tenant("globex").get("reports", payload) is None
        assert store.get("reports", payload) is None  # shared namespace too

    def test_shared_namespace_is_opt_in(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        payload = {"kind": "report", "system": "neo"}
        store.for_tenant(None).put("reports", payload, "shared-row")
        assert store.get("reports", payload) == "shared-row"
        assert store.for_tenant("acme").get("reports", payload) is None

    def test_invalid_tenant_names_rejected(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        for bad in ("../escape", "a/b", "", ".hidden", "x" * 65):
            with pytest.raises(ValueError):
                store.for_tenant(bad)

    def test_info_reports_per_namespace_counts(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.put("reports", {"n": 1}, "shared")
        store.for_tenant("acme").put("reports", {"n": 1}, "a1")
        store.for_tenant("acme").put("workloads", {"n": 2}, "a2")
        store.for_tenant("globex").put("reports", {"n": 1}, "g1")
        info = store.info()
        assert info["namespaces"]["reports"]["entries"] == 1
        assert info["namespaces"]["tenants/acme/reports"]["entries"] == 1
        assert info["namespaces"]["tenants/acme/workloads"]["entries"] == 1
        assert info["namespaces"]["tenants/globex/reports"]["entries"] == 1
        assert info["total_entries"] == 4
        assert all(ns["bytes"] > 0 for ns in info["namespaces"].values())

    def test_clear_namespace_is_surgical(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.put("reports", {"n": 1}, "shared")
        store.for_tenant("acme").put("reports", {"n": 1}, "a1")
        store.for_tenant("acme").put("workloads", {"n": 2}, "a2")
        store.for_tenant("globex").put("reports", {"n": 1}, "g1")

        # One tenant namespace.
        assert store.clear(namespace="tenants/acme/reports") == 1
        assert store.for_tenant("acme").get("reports", {"n": 1}) is None
        assert store.for_tenant("acme").get("workloads", {"n": 2}) == "a2"

        # A whole tenant subtree.
        assert store.clear(namespace="tenants/acme") == 1
        assert store.for_tenant("acme").get("workloads", {"n": 2}) is None
        assert store.for_tenant("globex").get("reports", {"n": 1}) == "g1"

        # A shared namespace leaves tenants alone.
        assert store.clear(namespace="reports") == 1
        assert store.for_tenant("globex").get("reports", {"n": 1}) == "g1"

        # Everything.
        assert store.clear() == 1
        assert store.info()["total_entries"] == 0

    def test_clear_unknown_namespace_removes_nothing(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.put("reports", {"n": 1}, "shared")
        assert store.clear(namespace="nope") == 0
        assert store.get("reports", {"n": 1}) == "shared"

    def test_cli_clear_namespace(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        store = ResultCache(cache_dir)
        store.for_tenant("acme").put("reports", {"n": 1}, "a1")
        store.for_tenant("globex").put("reports", {"n": 1}, "g1")
        rc = main(["cache", "clear", "--cache-dir", cache_dir,
                   "--namespace", "tenants/acme"])
        assert rc == 0
        assert "tenants/acme" in capsys.readouterr().out
        assert store.for_tenant("acme").get("reports", {"n": 1}) is None
        assert store.for_tenant("globex").get("reports", {"n": 1}) == "g1"

        rc = main(["cache", "info", "--cache-dir", cache_dir])
        assert rc == 0
        assert "tenants/globex/reports" in capsys.readouterr().out


class TestRunnerConfig:
    def test_resolve_frames_default_and_override(self):
        assert resolve_frames(7) == 7
        assert resolve_frames() == 12  # DEFAULT_FRAMES
        with runner_config(RunnerConfig(frames=3)):
            assert resolve_frames() == 3
            assert resolve_frames(5) == 5
        assert resolve_frames() == 12

    def test_workload_model_sees_config_frames(self):
        with runner_config(RunnerConfig(frames=3)):
            wm = get_workload_model("horse", num_gaussians=150)
        assert wm.num_frames == 3

    def test_simulate_system_report_served_from_disk(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(num_frames=3, speed=1.375)  # unique args: distinct lru key
        with runner_config(RunnerConfig(cache=cache)):
            cold = simulate_system("neo", "horse", "hd", **kwargs)
        assert cache.info()["namespaces"]["reports"]["entries"] >= 1

        # Drop the in-process memo and poison capture: a second call can only
        # succeed if the report comes back from disk.
        _workload_model_cached.cache_clear()
        monkeypatch.setattr(
            WorkloadModel,
            "from_scene",
            staticmethod(lambda *a, **k: pytest.fail("cache miss: re-captured workload")),
        )
        with runner_config(RunnerConfig(cache=cache)):
            warm = simulate_system("neo", "horse", "hd", **kwargs)
        assert warm.fps == cold.fps
        assert warm.total_traffic.total == cold.total_traffic.total

    def test_workload_geometry_served_from_disk(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        with runner_config(RunnerConfig(cache=cache)):
            cold = get_workload_model("horse", num_frames=3, num_gaussians=151)
        _workload_model_cached.cache_clear()
        monkeypatch.setattr(
            WorkloadModel,
            "from_scene",
            staticmethod(lambda *a, **k: pytest.fail("cache miss: re-captured workload")),
        )
        with runner_config(RunnerConfig(cache=cache)):
            warm = get_workload_model("horse", num_frames=3, num_gaussians=151)
        assert warm.num_frames == cold.num_frames
        for a, b in zip(cold.frames, warm.frames):
            assert np.array_equal(a.means2d, b.means2d)
            assert np.array_equal(a.depths, b.depths)

    def test_code_change_invalidates_key(self, monkeypatch):
        import repro.runtime.cache as cache_mod

        payload = {"kind": "report", "system": "neo"}
        key_now = stable_key(payload)
        monkeypatch.setattr(cache_mod, "_code_version_cache", "deadbeefdeadbeef")
        assert stable_key(payload) != key_now


class TestParallelRunner:
    def test_parallel_rows_match_serial_and_warm_cache(self, tmp_path):
        names = ["fig03", "table3", "table4"]
        serial = ParallelRunner(jobs=1, frames=3, cache=None).run(names)
        cache = ResultCache(tmp_path / "cache")
        parallel = ParallelRunner(jobs=2, frames=3, cache=cache).run(names)
        assert [o.name for o in parallel] == names
        for s, p in zip(serial, parallel):
            assert not p.from_cache
            assert s.result.rows == p.result.rows

        warm = ParallelRunner(jobs=2, frames=3, cache=cache).run(names)
        for s, w in zip(serial, warm):
            assert w.from_cache
            assert s.result.rows == w.result.rows

    def test_frames_change_invalidates_experiment_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = ParallelRunner(jobs=1, frames=3, cache=cache).run(["table3"])
        assert not first[0].from_cache
        other_frames = ParallelRunner(jobs=1, frames=4, cache=cache).run(["table3"])
        assert not other_frames[0].from_cache
        again = ParallelRunner(jobs=1, frames=3, cache=cache).run(["table3"])
        assert again[0].from_cache

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            ParallelRunner(jobs=1, cache=None).run(["fig99"])


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        tasks = list(range(7))
        serial = parallel_map(_square, tasks, jobs=1)
        parallel = parallel_map(_square, tasks, jobs=3)
        assert serial == parallel == [t * t for t in tasks]

    def test_single_task_stays_in_process(self):
        import os

        assert parallel_map(_pid, [None], jobs=8) == [os.getpid()]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestCli:
    def test_experiments_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        json_path = str(tmp_path / "out.json")
        rc = main(
            ["experiments", "table3", "--frames", "3", "--cache-dir", cache_dir,
             "--json", json_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "computed in" in out
        assert "GSCore" in out

        rc = main(["experiments", "table3", "--frames", "3", "--cache-dir", cache_dir])
        assert rc == 0
        assert "cache hit" in capsys.readouterr().out

        import json

        with open(json_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["experiments"][0]["name"] == "table3"
        assert payload["experiments"][0]["rows"]

    def test_experiments_requires_names_or_all(self, capsys):
        assert main(["experiments"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["experiments", "table3", "--frames", "3", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "experiments" in out and "entries" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_cache_info_on_missing_dir(self, tmp_path, capsys):
        # Regression: must print an empty summary, not crash, when the
        # cache directory was never created.
        rc = main(["cache", "info", "--cache-dir", str(tmp_path / "never")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(empty)" in out
        assert "total:        0 entries" in out

    def test_no_cache_flag_skips_cache_writes(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        rc = main(
            ["experiments", "table3", "--frames", "3", "--no-cache",
             "--cache-dir", str(cache_dir)]
        )
        assert rc == 0
        assert "cache disabled" in capsys.readouterr().out
        assert not cache_dir.exists()
