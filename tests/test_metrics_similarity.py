"""Unit tests for temporal-similarity metrics (Figs. 6-7 machinery)."""

import numpy as np
import pytest

from repro.metrics.similarity import (
    SimilarityStats,
    frame_similarity,
    sequence_similarity,
    tile_order_differences,
    tile_shared_fraction,
)
from repro.pipeline.renderer import Renderer


class TestTileMetrics:
    def test_shared_fraction(self):
        prev = np.array([1, 2, 3, 4])
        cur = np.array([2, 3, 5])
        assert tile_shared_fraction(prev, cur) == pytest.approx(0.5)

    def test_shared_fraction_empty_prev(self):
        assert tile_shared_fraction(np.empty(0, dtype=np.int64), np.array([1])) == 1.0

    def test_order_differences_identical(self):
        ids = np.array([5, 3, 9, 1])
        diffs = tile_order_differences(ids, ids)
        assert np.all(diffs == 0)

    def test_order_differences_swap(self):
        prev = np.array([1, 2, 3, 4])
        cur = np.array([2, 1, 3, 4])
        diffs = tile_order_differences(prev, cur)
        assert sorted(diffs.tolist()) == [0.0, 0.0, 1.0, 1.0]

    def test_order_differences_ignore_churn(self):
        # Added/removed IDs must not count as displacement.
        prev = np.array([1, 2, 3])
        cur = np.array([7, 1, 2, 3, 8])
        diffs = tile_order_differences(prev, cur)
        assert np.all(diffs == 0)

    def test_too_few_shared(self):
        assert tile_order_differences(np.array([1]), np.array([1])).size == 0


class TestFrameSimilarity:
    @pytest.fixture(scope="class")
    def two_frames(self, request):
        scene = request.getfixturevalue("small_scene")
        cameras = request.getfixturevalue("camera_path")
        records = Renderer(scene).render_sequence(cameras[:2])
        return records[0].sorted_tiles, records[1].sorted_tiles

    def test_stats_shapes(self, two_frames):
        stats = frame_similarity(*two_frames)
        assert isinstance(stats, SimilarityStats)
        assert stats.shared_fractions.size > 0
        assert ((stats.shared_fractions >= 0) & (stats.shared_fractions <= 1)).all()

    def test_high_retention_for_slow_motion(self, two_frames):
        stats = frame_similarity(*two_frames)
        assert stats.fraction_of_tiles_retaining(0.78) > 0.8

    def test_cdf_monotone(self, two_frames):
        grid, cdf = frame_similarity(*two_frames).cdf()
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_percentiles(self, two_frames):
        stats = frame_similarity(*two_frames)
        pct = stats.order_percentiles()
        assert set(pct) == {90, 95, 99}
        assert pct[90] <= pct[95] <= pct[99]

    def test_tile_count_mismatch_rejected(self, two_frames):
        from repro.pipeline.sorting import SortedTiles

        short = SortedTiles.from_tile_lists([], [], [])
        with pytest.raises(ValueError):
            frame_similarity(two_frames[0], short)


class TestSequenceSimilarity:
    def test_pools_all_pairs(self, small_scene, camera_path):
        records = Renderer(small_scene).render_sequence(camera_path)
        stats = sequence_similarity([r.sorted_tiles for r in records])
        single = frame_similarity(records[0].sorted_tiles, records[1].sorted_tiles)
        assert stats.shared_fractions.size > single.shared_fractions.size

    def test_needs_two_frames(self, small_scene, camera):
        record = Renderer(small_scene).render(camera)
        with pytest.raises(ValueError):
            sequence_similarity([record.sorted_tiles])

    def test_empty_stats_degrade_gracefully(self):
        stats = SimilarityStats(
            shared_fractions=np.empty(0), order_differences=np.empty(0)
        )
        assert stats.fraction_of_tiles_retaining(0.5) == 0.0
        assert stats.order_percentiles()[99] == 0.0
