"""Extension benches: bandwidth sensitivity and energy per frame.

Not numbered paper figures, but direct consequences of the evaluation:
(1) Neo reaches real-time within the practical on-device bandwidth range
(17.8-59.7 GB/s, section 3.2) while GSCore stays memory-bound far beyond
it; (2) Neo's small power premium (Table 3) buys a several-fold energy-per-
frame advantage once frame time and DRAM traffic are accounted.
"""

from repro.experiments import bandwidth_sweep
from repro.hw import GSCoreModel, NeoModel, OrinGpuModel, WorkloadModel
from repro.hw.energy import energy_report

from conftest import run_once


def test_extension_bandwidth_sweep(benchmark, bench_frames):
    result = run_once(benchmark, bandwidth_sweep.run, num_frames=bench_frames)
    print("\n" + result.to_text())

    neo_bw = bandwidth_sweep.realtime_bandwidth(result, "neo")
    print(f"neo reaches 60 FPS at {neo_bw} GB/s; gscore: "
          f"{bandwidth_sweep.realtime_bandwidth(result, 'gscore')} GB/s")
    assert neo_bw <= 59.7
    assert bandwidth_sweep.realtime_bandwidth(result, "gscore") == float("inf")


def test_extension_energy_per_frame(benchmark, bench_frames):
    def _run():
        wm = WorkloadModel.from_scene("family", num_frames=bench_frames)
        return [
            energy_report(NeoModel().simulate(wm.sequence_workloads("qhd", 64))),
            energy_report(GSCoreModel().simulate(wm.sequence_workloads("qhd", 16))),
            energy_report(OrinGpuModel().simulate(wm.sequence_workloads("qhd", 16))),
        ]

    reports = benchmark.pedantic(_run, rounds=1, iterations=1)
    for e in reports:
        print(
            f"{e.system:>12}: core {e.core_mj_per_frame:7.1f} mJ + "
            f"dram {e.dram_mj_per_frame:7.1f} mJ = {e.total_mj_per_frame:7.1f} mJ/frame"
        )
    neo, gscore, orin = reports
    assert neo.total_mj_per_frame < 0.5 * gscore.total_mj_per_frame
    assert gscore.total_mj_per_frame < orin.total_mj_per_frame
