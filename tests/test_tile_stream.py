"""Golden tests for the flat tile-stream (SoA) core.

Every segmented helper on :class:`repro.pipeline.tiling.TileStream` is
cross-checked against a dict-of-arrays reference on randomized workloads —
including empty tiles, single-splat tiles, and everything-in-one-tile — and
every deprecated accessor shim is checked to warn *and* return byte-identical
data to the stream it wraps.
"""

import numpy as np
import pytest

from repro.pipeline.projection import ProjectedGaussians
from repro.pipeline.sorting import SortedTiles, sort_tiles
from repro.pipeline.tiling import (
    SegmentIntersection,
    TileGrid,
    TileStream,
    assign_to_tiles,
)


# ---------------------------------------------------------------------------
# Dict-based reference implementations
# ---------------------------------------------------------------------------


def _ref_group(tiles, values, num_tiles):
    """Stable group-by-tile into a dict, the layout the stream replaced."""
    groups = {t: [] for t in range(num_tiles)}
    for tile, value in zip(tiles.tolist(), values.tolist()):
        groups[tile].append(value)
    return {t: np.array(v, dtype=values.dtype) for t, v in groups.items()}


def _ref_reduce(stream, data, ufunc, initial):
    out = []
    for tile in range(stream.num_tiles):
        seg = data[stream.offsets[tile] : stream.offsets[tile + 1]]
        out.append(ufunc.reduce(seg) if seg.shape[0] else initial)
    return np.array(out)


def _ref_intersect(stream_a, keys_a, stream_b, keys_b):
    """Per-tile np.intersect1d over the two streams' key segments."""
    per_tile = {}
    for tile in range(stream_a.num_tiles):
        ka = keys_a[stream_a.offsets[tile] : stream_a.offsets[tile + 1]]
        kb = keys_b[stream_b.offsets[tile] : stream_b.offsets[tile + 1]]
        per_tile[tile] = np.intersect1d(ka, kb, assume_unique=True)
    return per_tile


def _random_pairs(rng, num_tiles, num_pairs, shape="uniform"):
    if num_pairs == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    if shape == "one_tile":
        tiles = np.full(num_pairs, int(rng.integers(num_tiles)), dtype=np.int64)
    elif shape == "single_splat":
        # At most one pair per tile: a random subset of tiles, one value each.
        chosen = rng.permutation(num_tiles)[: min(num_pairs, num_tiles)]
        tiles = np.sort(chosen).astype(np.int64)
        tiles = rng.permutation(tiles)
    else:
        # Uniform with gaps: roughly half the tiles stay empty.
        pool = rng.permutation(num_tiles)[: max(num_tiles // 2, 1)]
        tiles = rng.choice(pool, size=num_pairs).astype(np.int64)
    values = rng.integers(0, 10_000, size=tiles.shape[0]).astype(np.int64)
    return tiles, values


WORKLOADS = [
    ("uniform", 37, 400),
    ("uniform", 64, 64),
    ("one_tile", 16, 100),
    ("single_splat", 50, 30),
    ("uniform", 5, 0),  # fully empty stream
    ("single_splat", 1, 1),  # one tile, one splat
]


# ---------------------------------------------------------------------------
# TileStream construction and shape queries
# ---------------------------------------------------------------------------


class TestTileStreamGolden:
    @pytest.mark.parametrize("shape,num_tiles,num_pairs", WORKLOADS)
    def test_from_pairs_matches_dict_grouping(self, shape, num_tiles, num_pairs):
        rng = np.random.default_rng(hash((shape, num_tiles, num_pairs)) % 2**32)
        tiles, values = _random_pairs(rng, num_tiles, num_pairs, shape)
        stream = TileStream.from_pairs(tiles, values, num_tiles)
        ref = _ref_group(tiles, values, num_tiles)

        assert stream.num_tiles == num_tiles
        assert stream.num_pairs == num_pairs
        for tile in range(num_tiles):
            np.testing.assert_array_equal(stream.rows_for(tile), ref[tile])

    @pytest.mark.parametrize("shape,num_tiles,num_pairs", WORKLOADS)
    def test_counts_tile_of_nonempty(self, shape, num_tiles, num_pairs):
        rng = np.random.default_rng(hash((shape, num_tiles)) % 2**32)
        tiles, values = _random_pairs(rng, num_tiles, num_pairs, shape)
        stream = TileStream.from_pairs(tiles, values, num_tiles)
        ref = _ref_group(tiles, values, num_tiles)

        counts = stream.counts()
        np.testing.assert_array_equal(
            counts, [ref[t].shape[0] for t in range(num_tiles)]
        )
        np.testing.assert_array_equal(
            stream.tile_of(),
            np.repeat(np.arange(num_tiles), counts),
        )
        np.testing.assert_array_equal(
            stream.nonempty(),
            [t for t in range(num_tiles) if ref[t].shape[0]],
        )

    def test_from_lists_round_trip(self):
        rng = np.random.default_rng(7)
        per_tile = [
            rng.integers(0, 100, size=int(rng.integers(0, 6))).astype(np.int64)
            for _ in range(23)
        ]
        stream = TileStream.from_lists(per_tile)
        back = stream.to_lists()
        assert len(back) == len(per_tile)
        for a, b in zip(per_tile, back):
            np.testing.assert_array_equal(a, b)
        # per_tile iterates (tile, view) in tile order.
        for tile, view in stream.per_tile():
            np.testing.assert_array_equal(view, per_tile[tile])

    def test_stable_order_within_tile(self):
        # Ties on the tile column must preserve input pair order.
        tiles = np.array([2, 2, 0, 2, 0], dtype=np.int64)
        values = np.array([10, 11, 12, 13, 14], dtype=np.int64)
        stream = TileStream.from_pairs(tiles, values, 3)
        np.testing.assert_array_equal(stream.rows_for(0), [12, 14])
        np.testing.assert_array_equal(stream.rows_for(1), [])
        np.testing.assert_array_equal(stream.rows_for(2), [10, 11, 13])

    def test_with_values_keeps_segmentation(self):
        stream = TileStream.from_pairs(
            np.array([0, 1, 1], dtype=np.int64),
            np.array([5, 6, 7], dtype=np.int64),
            2,
        )
        other = stream.with_values(np.array([1.5, 2.5, 3.5]))
        assert other.offsets is stream.offsets
        np.testing.assert_array_equal(other.rows_for(1), [2.5, 3.5])
        with pytest.raises(ValueError):
            stream.with_values(np.zeros(5))

    def test_offset_validation(self):
        with pytest.raises(ValueError):
            TileStream(
                num_tiles=2,
                values=np.zeros(3, dtype=np.int64),
                offsets=np.array([0, 1]),
            )
        with pytest.raises(ValueError):
            TileStream(
                num_tiles=2,
                values=np.zeros(3, dtype=np.int64),
                offsets=np.array([0, 2, 1]),
            )


# ---------------------------------------------------------------------------
# Segmented algorithms
# ---------------------------------------------------------------------------


class TestSegmentedHelpers:
    @pytest.mark.parametrize("shape,num_tiles,num_pairs", WORKLOADS)
    @pytest.mark.parametrize(
        "ufunc,initial", [(np.add, 0), (np.maximum, -1), (np.minimum, 10**9)]
    )
    def test_segment_reduce(self, shape, num_tiles, num_pairs, ufunc, initial):
        rng = np.random.default_rng(hash((shape, num_tiles, ufunc.__name__)) % 2**32)
        tiles, values = _random_pairs(rng, num_tiles, num_pairs, shape)
        stream = TileStream.from_pairs(tiles, values, num_tiles)
        data = rng.integers(0, 1000, size=num_pairs).astype(np.int64)
        np.testing.assert_array_equal(
            stream.segment_reduce(data, ufunc=ufunc, initial=initial),
            _ref_reduce(stream, data, ufunc, initial),
        )

    def test_segment_reduce_alignment_check(self):
        stream = TileStream.empty(3)
        with pytest.raises(ValueError):
            stream.segment_reduce(np.ones(2))

    @pytest.mark.parametrize("shape,num_tiles,num_pairs", WORKLOADS)
    def test_segment_intersect(self, shape, num_tiles, num_pairs):
        rng = np.random.default_rng(hash(("isect", shape, num_tiles)) % 2**32)
        # Build two streams with unique-per-tile keys by sampling without
        # replacement from a shared key universe.
        def build(seed_shift):
            tiles, _ = _random_pairs(rng, num_tiles, num_pairs, shape)
            order = np.argsort(tiles, kind="stable")
            tiles = tiles[order]
            keys = np.empty(num_pairs, dtype=np.int64)
            for tile in range(num_tiles):
                seg = np.flatnonzero(tiles == tile)
                universe = max(2 * num_pairs, 50)
                keys[seg] = rng.choice(universe, size=seg.shape[0], replace=False)
            stream = TileStream.from_pairs(tiles, np.arange(num_pairs), num_tiles)
            return stream, keys

        stream_a, keys_a = build(0)
        stream_b, keys_b = build(1)
        result = stream_a.segment_intersect(keys_a, stream_b, keys_b)
        ref = _ref_intersect(stream_a, keys_a, stream_b, keys_b)

        assert isinstance(result, SegmentIntersection)
        total = sum(v.shape[0] for v in ref.values())
        assert result.num_shared == total
        np.testing.assert_array_equal(
            result.counts(), [ref[t].shape[0] for t in range(num_tiles)]
        )
        for tile in range(num_tiles):
            seg = slice(result.offsets[tile], result.offsets[tile + 1])
            np.testing.assert_array_equal(result.keys[seg], ref[tile])
        # Index columns must point back at the matching keys in each stream.
        np.testing.assert_array_equal(keys_a[result.self_indices], result.keys)
        np.testing.assert_array_equal(keys_b[result.other_indices], result.keys)
        # ... and at entries of the right tile.
        np.testing.assert_array_equal(
            stream_a.tile_of()[result.self_indices],
            np.repeat(np.arange(num_tiles), result.counts()),
        )

    def test_segment_intersect_validation(self):
        a = TileStream.empty(3)
        b = TileStream.empty(4)
        with pytest.raises(ValueError):
            a.segment_intersect(np.empty(0, dtype=np.int64), b, np.empty(0, dtype=np.int64))
        c = TileStream.empty(3)
        with pytest.raises(ValueError):
            a.segment_intersect(np.ones(1, dtype=np.int64), c, np.empty(0, dtype=np.int64))


# ---------------------------------------------------------------------------
# Deprecated accessor shims
# ---------------------------------------------------------------------------


def _projected(rng, n, width=64, height=64):
    return ProjectedGaussians(
        ids=np.arange(n, dtype=np.int64),
        means2d=np.column_stack(
            [rng.uniform(0, width, n), rng.uniform(0, height, n)]
        ),
        cov2d=np.tile(np.eye(2), (n, 1, 1)),
        conic=np.tile(np.array([1.0, 0.0, 1.0]), (n, 1)),
        depths=rng.uniform(0.1, 10.0, n),
        radii=rng.uniform(1.0, 8.0, n),
        colors=np.full((n, 3), 0.5),
        opacities=np.full(n, 0.9),
    )


class TestDeprecationShims:
    def test_assignment_tile_rows_warns_and_matches(self):
        rng = np.random.default_rng(11)
        grid = TileGrid(width=64, height=64, tile_size=16)
        assignment = assign_to_tiles(_projected(rng, 40), grid)
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            legacy = assignment.tile_rows
        assert len(legacy) == assignment.num_tiles
        for tile in range(assignment.num_tiles):
            np.testing.assert_array_equal(legacy[tile], assignment.rows_for(tile))

    def test_sorted_tiles_list_shims_warn_and_match(self):
        rng = np.random.default_rng(13)
        grid = TileGrid(width=64, height=64, tile_size=16)
        st = sort_tiles(assign_to_tiles(_projected(rng, 40), grid))
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            rows = st.tile_rows
        with pytest.warns(DeprecationWarning, match="tile_ids"):
            ids = st.tile_ids
        with pytest.warns(DeprecationWarning, match="tile_depths"):
            depths = st.tile_depths
        for tile in range(st.num_tiles):
            np.testing.assert_array_equal(rows[tile], st.rows_for(tile))
            np.testing.assert_array_equal(ids[tile], st.ids_for(tile))
            np.testing.assert_array_equal(depths[tile], st.depths_for(tile))

    def test_sorted_tiles_legacy_kwargs_warn_and_match(self):
        rng = np.random.default_rng(17)
        grid = TileGrid(width=64, height=64, tile_size=16)
        st = sort_tiles(assign_to_tiles(_projected(rng, 30), grid))
        rows = [st.rows_for(t).copy() for t in range(st.num_tiles)]
        ids = [st.ids_for(t).copy() for t in range(st.num_tiles)]
        depths = [st.depths_for(t).copy() for t in range(st.num_tiles)]
        with pytest.warns(DeprecationWarning, match="from_tile_lists"):
            legacy = SortedTiles(tile_rows=rows, tile_ids=ids, tile_depths=depths)
        np.testing.assert_array_equal(legacy.stream.offsets, st.stream.offsets)
        np.testing.assert_array_equal(legacy.stream.values, st.stream.values)
        np.testing.assert_array_equal(legacy.ids, st.ids)
        np.testing.assert_array_equal(legacy.depths, st.depths)
        # The classmethod builds the same object without warning.
        quiet = SortedTiles.from_tile_lists(rows, ids, depths)
        np.testing.assert_array_equal(quiet.ids, st.ids)

    def test_raster_report_timelines_warns_and_matches(self):
        from repro.hw.raster_engine import RasterEngineSim

        report = RasterEngineSim().simulate_frame([120, 0, 40], [300, 0, 64])
        with pytest.warns(DeprecationWarning, match="timelines"):
            timelines = report.timelines
        assert len(timelines) == report.tile_total_cycles.shape[0]
        for i, t in enumerate(timelines):
            assert t.total_cycles == report.tile_total_cycles[i]
            assert t.itu_cycles == report.tile_itu_cycles[i]
            assert t.scu_cycles == report.tile_scu_cycles[i]
            assert t.itu_idle_cycles == report.tile_itu_idle_cycles[i]
            assert t.scu_stall_cycles == report.tile_scu_stall_cycles[i]
