"""Discrete-event model of Neo's Sorting Engine (paper section 5.3, Fig. 12).

Sixteen Sorting Cores process per-tile Gaussian tables chunk by chunk.  Each
core's input and output buffers are double-buffered, so the DRAM load of
chunk *k+1* overlaps the BSU/MSU+ compute of chunk *k* and the write-back of
chunk *k-1*.  All cores share one DRAM port, which serializes transfers.

This simulator schedules every chunk's load -> compute -> store explicitly
and reports cycle counts and utilization.  It is the detailed counterpart
of the analytic per-entry constant used by
:class:`~repro.hw.accelerator.NeoModel` (``_SORT_CYCLES_PER_ENTRY``); the
tests check the two agree in the bandwidth-bound regime.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field

import numpy as np

from ..backend import core_ops
from ..core.bitonic import network_stages
from .config import DramConfig, NeoConfig
from ..core.gaussian_table import TABLE_ENTRY_BYTES

#: Ops the chunk-cycle core dispatches through the pluggable array backend.
_XP = core_ops("sorting_engine", "frexp")


@dataclass(frozen=True)
class ChunkJob:
    """One chunk of one tile's table to be reordered.

    Attributes
    ----------
    tile:
        Owning tile (for reporting only).
    entries:
        Entries in the chunk (<= the core's chunk capacity).
    """

    tile: int
    entries: int


@dataclass
class CoreTrace:
    """Per-core accounting."""

    busy_cycles: int = 0
    chunks: int = 0
    finish_cycle: int = 0


@dataclass
class SortingEngineReport:
    """Outcome of simulating one frame's chunk stream.

    Attributes
    ----------
    total_cycles:
        Cycle at which the last write-back completes.
    compute_cycles:
        Summed BSU+MSU+ busy cycles across cores.
    dram_busy_cycles:
        Cycles the shared DRAM port spent transferring.
    chunks:
        Chunks processed.
    entries:
        Table entries processed.
    cores:
        Per-core traces.
    """

    total_cycles: int = 0
    compute_cycles: int = 0
    dram_busy_cycles: int = 0
    chunks: int = 0
    entries: int = 0
    cores: list[CoreTrace] = field(default_factory=list)

    @property
    def dram_utilization(self) -> float:
        """Fraction of the frame the DRAM port was busy."""
        return self.dram_busy_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def core_utilization(self) -> float:
        """Mean fraction of the frame the Sorting Cores computed."""
        if not self.cores or not self.total_cycles:
            return 0.0
        return sum(c.busy_cycles for c in self.cores) / (
            len(self.cores) * self.total_cycles
        )

    @property
    def cycles_per_entry(self) -> float:
        """Effective end-to-end cycles per table entry."""
        return self.total_cycles / self.entries if self.entries else 0.0


def chunk_compute_cycles(entries: int, bsu_width: int = 16) -> int:
    """BSU + MSU+ cycles to sort one chunk on-chip.

    The BSU sorts ``ceil(entries / width)`` sub-chunks at one network stage
    per cycle; the MSU+ then tree-merges the sorted runs, retiring one
    element per cycle per merge level (``ceil(log2(runs))`` levels).
    """
    if entries <= 0:
        return 0
    runs = -(-entries // bsu_width)
    bsu = runs * network_stages(bsu_width)
    merge_levels = max((runs - 1).bit_length(), 0)
    return bsu + merge_levels * entries


def chunk_compute_cycles_array(entries: np.ndarray, bsu_width: int = 16) -> np.ndarray:
    """Vectorized :func:`chunk_compute_cycles` over an array of chunk sizes.

    ``bit_length`` of a positive integer is the binary exponent ``np.frexp``
    returns, so the merge-level count batches without a Python loop.
    """
    entries = np.asarray(entries, dtype=np.int64)
    runs = -(-entries // bsu_width)
    bsu = runs * network_stages(bsu_width)
    merge_levels = np.zeros(entries.shape[0], dtype=np.int64)
    deep = runs > 1
    if np.any(deep):
        merge_levels[deep] = _XP().frexp((runs[deep] - 1).astype(np.float64))[1]
    return np.where(entries > 0, bsu + merge_levels * entries, 0)


def chunk_stream_from_occupancy(
    occupancy, chunk_size: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Flat (tile, entries) chunk stream for one frame's per-tile table sizes.

    The SoA counterpart of :func:`jobs_from_occupancy`: same chunks in the
    same order (ascending tile, full chunks first, remainder last), as two
    aligned arrays instead of a list of :class:`ChunkJob` objects.
    """
    occ = np.asarray(occupancy, dtype=np.int64)
    chunks_per = np.zeros(occ.shape[0], dtype=np.int64)
    pos = occ > 0
    chunks_per[pos] = -(-occ[pos] // chunk_size)
    tiles = np.repeat(np.arange(occ.shape[0], dtype=np.int64), chunks_per)
    entries = np.full(tiles.shape[0], chunk_size, dtype=np.int64)
    if np.any(pos):
        last = np.cumsum(chunks_per[pos]) - 1
        entries[last] = occ[pos] - (chunks_per[pos] - 1) * chunk_size
    return tiles, entries


def jobs_from_occupancy(occupancy, chunk_size: int = 256) -> list[ChunkJob]:
    """Split per-tile table sizes into the chunk jobs one frame issues."""
    tiles, entries = chunk_stream_from_occupancy(occupancy, chunk_size)
    return [
        ChunkJob(tile=tile, entries=size)
        for tile, size in zip(tiles.tolist(), entries.tolist())
    ]


@dataclass
class SortingEngineSim:
    """Cycle-level simulator of the Sorting Engine.

    Parameters
    ----------
    config:
        Hardware configuration (core count, BSU width, chunk size).
    dram:
        Shared memory system; transfer time is charged at the streaming
        efficiency of the configured bandwidth.
    frequency_ghz:
        Core clock; converts DRAM bandwidth to bytes/cycle.
    """

    config: NeoConfig = field(default_factory=NeoConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    frequency_ghz: float = 1.0

    def _transfer_cycles(self, num_bytes: int) -> int:
        bytes_per_cycle = (
            self.dram.bandwidth_gbps * self.dram.efficiency / self.frequency_ghz
        )
        return max(int(round(num_bytes / bytes_per_cycle)), 1)

    def _transfer_cycles_array(self, num_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_transfer_cycles` (``round`` is half-to-even)."""
        bytes_per_cycle = (
            self.dram.bandwidth_gbps * self.dram.efficiency / self.frequency_ghz
        )
        return np.maximum(np.rint(num_bytes / bytes_per_cycle), 1.0).astype(np.int64)

    def simulate(self, jobs: list[ChunkJob]) -> SortingEngineReport:
        """Run one frame's chunk stream through the engine.

        Jobs are dispatched to the least-loaded core.  The shared DRAM port
        interleaves chunk loads with write-backs of completed chunks: a
        store enters a ready queue when its compute finishes and is issued
        whenever the port would otherwise sit idle ahead of the next load
        (double buffering decouples transfers from compute).
        """
        entries = np.fromiter(
            (job.entries for job in jobs), dtype=np.int64, count=len(jobs)
        )
        return self._simulate_entries(entries)

    def _simulate_entries(self, entries: np.ndarray) -> SortingEngineReport:
        """Event loop over a flat chunk-size array.

        Per-chunk transfer and compute cycles are batched up front
        (:meth:`_transfer_cycles_array`, :func:`chunk_compute_cycles_array`);
        the data-dependent load/compute/store interleaving stays an explicit
        integer event loop, so the schedule — and with it every cycle count —
        is identical to the frozen per-job loop preserved in
        :func:`repro.hw.reference.scalar_sorting_engine_simulate`.
        """
        report = SortingEngineReport(
            cores=[CoreTrace() for _ in range(self.config.sorting_cores)]
        )
        if entries.shape[0] == 0:
            return report

        transfer = self._transfer_cycles_array(entries * TABLE_ENTRY_BYTES).tolist()
        compute_cycles = chunk_compute_cycles_array(entries, self.config.bsu_width).tolist()
        entry_list = entries.tolist()

        port_free = 0  # next cycle the shared DRAM port is available
        compute_free = [0] * self.config.sorting_cores
        pending_stores: list[tuple[int, int, int]] = []  # (ready, cycles, core)

        def issue_store(ready: int, cycles: int, core: int) -> None:
            nonlocal port_free
            start = max(port_free, ready)
            port_free = start + cycles
            report.dram_busy_cycles += cycles
            report.cores[core].finish_cycle = port_free
            report.total_cycles = max(report.total_cycles, port_free)

        for load_cycles, compute, num_entries in zip(
            transfer, compute_cycles, entry_list
        ):
            core_idx = min(range(len(compute_free)), key=compute_free.__getitem__)
            trace = report.cores[core_idx]
            store_cycles = load_cycles

            # Drain any write-backs already ready before this load.
            while pending_stores and pending_stores[0][0] <= port_free:
                ready, cycles, core = heapq.heappop(pending_stores)
                issue_store(ready, cycles, core)

            load_end = port_free + load_cycles
            port_free = load_end
            report.dram_busy_cycles += load_cycles

            compute_start = max(load_end, compute_free[core_idx])
            compute_end = compute_start + compute
            compute_free[core_idx] = compute_end
            heapq.heappush(pending_stores, (compute_end, store_cycles, core_idx))

            trace.busy_cycles += compute
            trace.chunks += 1
            report.compute_cycles += compute
            report.chunks += 1
            report.entries += num_entries
            report.total_cycles = max(report.total_cycles, compute_end)

        while pending_stores:
            ready, cycles, core = heapq.heappop(pending_stores)
            issue_store(ready, cycles, core)
        return report

    def simulate_frame(self, occupancy, chunk_size: int | None = None) -> SortingEngineReport:
        """Convenience: simulate a frame given per-tile table sizes."""
        size = chunk_size if chunk_size is not None else self.config.chunk_size
        _, entries = chunk_stream_from_occupancy(occupancy, size)
        return self._simulate_entries(entries)
