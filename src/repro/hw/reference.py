"""Frozen per-frame scalar reference for the system models.

This module preserves, verbatim, the pre-registry scalar implementations of
the three hardware models' per-frame equations — the code that used to live
inside ``NeoModel.frame_report`` / ``GSCoreModel.frame_report`` /
``OrinGpuModel.frame_report`` before the shared vectorized core landed in
:mod:`repro.hw.system`.  It exists for two callers only:

* the **golden equivalence tests** (``tests/test_system_registry.py``),
  which assert that for every registered system the vectorized
  ``simulate()`` is *bit-identical* to this scalar per-frame loop — the
  pre/post-refactor pin;
* the **vectorization micro-benchmark** (``benchmarks/`` and the CI smoke),
  which times this loop against the batched core on a long trajectory.

Because this is a historical pin, it must only change when a model's
physics deliberately changes — keep it in lockstep with the equations in
:mod:`repro.hw.accelerator` / :mod:`repro.hw.gscore` / :mod:`repro.hw.gpu`.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.gaussian_table import TABLE_ENTRY_BYTES
from .accelerator import (
    _BITMAP_BYTES_64,
    _DRAM_EFFICIENCY as _NEO_DRAM_EFFICIENCY,
    _ENTRY_BYTES as _NEO_ENTRY_BYTES,
    _INIT_SORT_PASSES,
    _PREPROC_CYCLES_PER_GAUSSIAN,
    _RANDOM_BURST_BYTES,
    _RANDOM_EFFICIENCY,
    _RASTER_CYCLES_PER_PAIR as _NEO_RASTER_CYCLES_PER_PAIR,
    _SERIAL_OVERHEAD_S as _NEO_SERIAL_OVERHEAD_S,
    _SORT_CYCLES_PER_ENTRY,
    _TERMINATION_DEPTH_64,
    NeoModel,
)
from .gpu import (
    _BLEND_RATE,
    _BLEND_TILE_COVERAGE,
    _FEATURE_RATE,
    _GPU_DRAM_EFFICIENCY,
    _SORT_SW_RATE,
    _TERMINATION_DEPTH_16 as _GPU_TERMINATION_DEPTH_16,
    OrinGpuModel,
)
from .gscore import (
    _CYCLES_PER_TILE,
    _DRAM_EFFICIENCY as _GSCORE_DRAM_EFFICIENCY,
    _ENTRY_BYTES as _GSCORE_ENTRY_BYTES,
    _BITMAP_BYTES,
    _RASTER_CYCLES_PER_PAIR as _GSCORE_RASTER_CYCLES_PER_PAIR,
    _SERIAL_OVERHEAD_S as _GSCORE_SERIAL_OVERHEAD_S,
    _SORT_CYCLES_PER_PAIR,
    _TERMINATION_DEPTH_16 as _GSCORE_TERMINATION_DEPTH_16,
    GSCoreModel,
)
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
    FrameReport,
    SequenceReport,
    StageTraffic,
    effective_pairs,
)
from .raster_engine import (
    RasterEngineReport,
    RasterEngineSim,
    groups_for_tile,
    rasterize_tile_timeline,
)
from .sorting_engine import (
    ChunkJob,
    CoreTrace,
    SortingEngineReport,
    SortingEngineSim,
    chunk_compute_cycles,
)
from .system import SystemModel
from .workload import FrameWorkload, WorkloadModel, pair_lists


# ----------------------------------------------------------------------
# Neo
# ----------------------------------------------------------------------
def _neo_traffic_split(
    model: NeoModel, workload: FrameWorkload
) -> tuple[StageTraffic, float]:
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )

    if workload.frame_index == 0:
        sorting = pairs * _NEO_ENTRY_BYTES * (1 + 2 * _INIT_SORT_PASSES)
    else:
        sorting = (
            2 * pairs * _NEO_ENTRY_BYTES
            + 2 * workload.incoming_pairs * _NEO_ENTRY_BYTES
        )

    random_bytes = 0.0
    if model.sorting_engine_only:
        random_bytes = visible * _RANDOM_BURST_BYTES
        sorting += pairs * _NEO_ENTRY_BYTES
    elif not model.defer_depth_update:
        sorting += 2 * pairs * _NEO_ENTRY_BYTES

    blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
    raster = blended * FEATURE_2D_BYTES + workload.width * workload.height * PIXEL_BYTES
    if model.sorting_engine_only:
        raster += 2 * pairs * _BITMAP_BYTES_64

    streamed = StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )
    return streamed, random_bytes


def _neo_frame_report(model: NeoModel, workload: FrameWorkload) -> FrameReport:
    streamed, random_bytes = _neo_traffic_split(model, workload)
    peak = model.dram.bandwidth_gbps * 1e9
    memory_time = streamed.total / (peak * _NEO_DRAM_EFFICIENCY)
    memory_time += random_bytes / (peak * _RANDOM_EFFICIENCY)

    freq = model.config.frequency_ghz * 1e9
    preproc_time = (
        workload.num_gaussians
        * _PREPROC_CYCLES_PER_GAUSSIAN
        / (model.config.projection_units * freq)
    )
    sort_time = (
        workload.pairs * _SORT_CYCLES_PER_ENTRY / (model.config.sorting_cores * freq)
    )
    blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
    raster_time = (
        blended * _NEO_RASTER_CYCLES_PER_PAIR / (model.config.total_scus * freq)
    )
    compute_time = max(preproc_time, sort_time, raster_time)

    traffic = StageTraffic(
        feature_extraction=streamed.feature_extraction,
        sorting=streamed.sorting + random_bytes,
        rasterization=streamed.rasterization,
    )
    latency_mem = max(memory_time, compute_time) + _NEO_SERIAL_OVERHEAD_S
    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=latency_mem,
        compute_time_s=0.0,
    )


# ----------------------------------------------------------------------
# GSCore
# ----------------------------------------------------------------------
def _gscore_frame_traffic(model: GSCoreModel, workload: FrameWorkload) -> StageTraffic:
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )
    sorting = pairs * _GSCORE_ENTRY_BYTES * (1 + 2 * model.config.sorting_passes)
    bitmap_traffic = 2 * pairs * _BITMAP_BYTES

    blended = effective_pairs(workload, _GSCORE_TERMINATION_DEPTH_16)
    raster = (
        blended * FEATURE_2D_BYTES
        + bitmap_traffic
        + workload.width * workload.height * PIXEL_BYTES
    )
    return StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )


def _gscore_frame_report(model: GSCoreModel, workload: FrameWorkload) -> FrameReport:
    traffic = _gscore_frame_traffic(model, workload)
    bandwidth = model.dram.bandwidth_gbps * 1e9 * _GSCORE_DRAM_EFFICIENCY
    memory_time = traffic.total / bandwidth

    freq = model.config.frequency_ghz * 1e9
    cores = model.config.cores
    blended = effective_pairs(workload, _GSCORE_TERMINATION_DEPTH_16)
    raster_cycles = blended * _GSCORE_RASTER_CYCLES_PER_PAIR
    raster_cycles += workload.nonempty_tiles * _CYCLES_PER_TILE
    sort_cycles = workload.pairs * _SORT_CYCLES_PER_PAIR
    compute_time = (
        (raster_cycles + sort_cycles) / (cores * freq) + _GSCORE_SERIAL_OVERHEAD_S
    )

    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=memory_time,
        compute_time_s=compute_time,
    )


# ----------------------------------------------------------------------
# Orin GPU
# ----------------------------------------------------------------------
def _orin_frame_traffic(model: OrinGpuModel, workload: FrameWorkload) -> StageTraffic:
    cfg = model.config
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )

    if model.neo_software:
        entry = 8
        sorting = 2 * pairs * entry + 2 * workload.incoming_pairs * entry
    else:
        entry = cfg.sort_entry_bytes
        sorting = pairs * entry * (1 + 2 * cfg.sort_passes)

    blended = effective_pairs(workload, _GPU_TERMINATION_DEPTH_16)
    raster = blended * FEATURE_2D_BYTES + workload.width * workload.height * PIXEL_BYTES
    return StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )


def _orin_frame_report(model: OrinGpuModel, workload: FrameWorkload) -> FrameReport:
    cfg = model.config
    traffic = _orin_frame_traffic(model, workload)
    bandwidth = cfg.bandwidth_gbps * 1e9 * _GPU_DRAM_EFFICIENCY

    feature_time = max(
        traffic.feature_extraction / bandwidth,
        workload.num_gaussians / _FEATURE_RATE,
    )

    if model.neo_software:
        sort_compute = workload.pairs / _SORT_SW_RATE
    else:
        sort_compute = 0.0
    sort_time = max(traffic.sorting / bandwidth, sort_compute)

    blended = effective_pairs(workload, _GPU_TERMINATION_DEPTH_16)
    blend_pixels = blended * (cfg.tile_size**2) * _BLEND_TILE_COVERAGE
    raster_time = max(traffic.rasterization / bandwidth, blend_pixels / _BLEND_RATE)

    memory_time = (
        traffic.feature_extraction + traffic.sorting + traffic.rasterization
    ) / bandwidth
    compute_residual = (feature_time + sort_time + raster_time) - memory_time
    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=memory_time,
        compute_time_s=max(compute_residual, 0.0),
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def scalar_frame_report(model: SystemModel, workload: FrameWorkload) -> FrameReport:
    """One frame through the frozen scalar equations for ``model``."""
    if isinstance(model, NeoModel):
        return _neo_frame_report(model, workload)
    if isinstance(model, GSCoreModel):
        return _gscore_frame_report(model, workload)
    if isinstance(model, OrinGpuModel):
        return _orin_frame_report(model, workload)
    raise TypeError(f"no scalar reference for {type(model).__name__}")


def scalar_simulate(
    model: SystemModel, workloads: list[FrameWorkload], scene: str = "scene"
) -> SequenceReport:
    """The historical per-frame Python loop: one scalar report per frame."""
    if not workloads:
        raise ValueError("need at least one workload")
    report = SequenceReport(
        system=model.name,
        scene=scene,
        resolution=(workloads[0].width, workloads[0].height),
    )
    report.frames = [scalar_frame_report(model, w) for w in workloads]
    return report


# ----------------------------------------------------------------------
# Workload temporal-similarity pins
# ----------------------------------------------------------------------
# Frozen scalar implementations of the WorkloadModel similarity queries
# (``_pair_keys`` / ``_churn_counts`` / ``shared_fraction_per_tile`` /
# ``order_differences``) exactly as they existed before the tile-stream
# segmented rewrite.  They rebuild the per-Gaussian pair lists directly from
# ``pair_lists`` on the model's scaled geometry, so they are independent of
# the model's stream cache.


def _depth_percentile(query: np.ndarray, population: np.ndarray) -> np.ndarray:
    """Continuous ECDF percentile of ``query`` depths within ``population``."""
    sorted_pop = np.sort(population)
    n = sorted_pop.shape[0]
    if n < 2:
        return np.zeros_like(query)
    return np.interp(query, sorted_pop, np.linspace(0.0, 1.0, n))


def _group_by_tile(tiles: np.ndarray, rows: np.ndarray) -> dict[int, np.ndarray]:
    """Split a pair list into per-tile row arrays."""
    order = np.argsort(tiles, kind="stable")
    tiles_sorted = tiles[order]
    rows_sorted = rows[order]
    out: dict[int, np.ndarray] = {}
    if tiles_sorted.shape[0] == 0:
        return out
    boundaries = np.flatnonzero(np.diff(tiles_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [tiles_sorted.shape[0]]])
    for s, e in zip(starts, ends):
        out[int(tiles_sorted[s])] = rows_sorted[s:e]
    return out


def _scalar_frame_pairs(
    model: WorkloadModel, frame: int, width: int, height: int, tile_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-Gaussian (tile, row) pair lists, bypassing the stream cache."""
    means2d, radii = model.scaled_geometry(frame, (width, height))
    return pair_lists(means2d, radii, width, height, tile_size)


def scalar_pair_keys(
    model: WorkloadModel, frame: int, resolution, tile_size: int
) -> np.ndarray:
    """Unique (tile, global-ID) keys for a frame's pairs."""
    width, height = model._resolve(resolution)
    tiles, rows = _scalar_frame_pairs(model, frame, width, height, tile_size)
    ids = model.frames[frame].ids[rows]
    return tiles.astype(np.int64) * (1 << 32) + ids


def scalar_churn_counts(
    model: WorkloadModel, frame: int, resolution, tile_size: int
) -> tuple[int, int]:
    """(incoming, outgoing) pair counts vs. the previous frame."""
    if frame == 0:
        return 0, 0
    cur = scalar_pair_keys(model, frame, resolution, tile_size)
    prev = scalar_pair_keys(model, frame - 1, resolution, tile_size)
    incoming = int(np.count_nonzero(~np.isin(cur, prev)))
    outgoing = int(np.count_nonzero(~np.isin(prev, cur)))
    return incoming, outgoing


def scalar_shared_fraction_per_tile(
    model: WorkloadModel, frame: int, resolution, tile_size: int
) -> np.ndarray:
    """Per-tile share of the previous frame's Gaussians retained (Fig. 6)."""
    if frame == 0:
        raise ValueError("frame 0 has no predecessor")
    width, height = model._resolve(resolution)
    prev_tiles, prev_rows = _scalar_frame_pairs(model, frame - 1, width, height, tile_size)
    cur_keys = scalar_pair_keys(model, frame, (width, height), tile_size)
    prev_ids = model.frames[frame - 1].ids[prev_rows]
    prev_keys = prev_tiles.astype(np.int64) * (1 << 32) + prev_ids
    retained = np.isin(prev_keys, cur_keys)

    _, inverse, counts = np.unique(prev_tiles, return_inverse=True, return_counts=True)
    kept = np.bincount(inverse, weights=retained, minlength=counts.shape[0])
    return kept / counts


def scalar_order_differences(
    model: WorkloadModel, frame: int, resolution, tile_size: int
) -> np.ndarray:
    """Per-Gaussian sort-position shifts between consecutive frames (Fig. 7)."""
    if frame == 0:
        raise ValueError("frame 0 has no predecessor")
    width, height = model._resolve(resolution)
    prev_pairs = _scalar_frame_pairs(model, frame - 1, width, height, tile_size)
    cur_pairs = _scalar_frame_pairs(model, frame, width, height, tile_size)
    return scalar_order_differences_pairs(
        prev_pairs, cur_pairs, model.frames[frame - 1], model.frames[frame],
        model.count_scale,
    )


def scalar_order_differences_pairs(
    prev_pairs, cur_pairs, prev_geo, cur_geo, count_scale: float
) -> np.ndarray:
    """The per-tile order-difference loop over prebuilt pair lists.

    Split out so the benchmark can time the query against cached pair lists,
    matching what the historical ``_pair_cache`` amortized.
    """
    prev_tiles, prev_rows = prev_pairs
    cur_tiles, cur_rows = cur_pairs

    diffs: list[np.ndarray] = []
    cur_by_tile = _group_by_tile(cur_tiles, cur_rows)
    prev_by_tile = _group_by_tile(prev_tiles, prev_rows)
    for tile, prev_r in prev_by_tile.items():
        cur_r = cur_by_tile.get(tile)
        if cur_r is None:
            continue
        prev_ids = prev_geo.ids[prev_r]
        cur_ids = cur_geo.ids[cur_r]
        shared, prev_pos, cur_pos = np.intersect1d(
            prev_ids, cur_ids, assume_unique=True, return_indices=True
        )
        if shared.shape[0] < 2:
            continue
        # Rank both frames within the *shared* population so membership
        # churn does not masquerade as reordering; only genuine depth
        # re-ordering among retained Gaussians contributes.
        shared_prev_depths = prev_geo.depths[prev_r][prev_pos]
        shared_cur_depths = cur_geo.depths[cur_r][cur_pos]
        pct_prev = _depth_percentile(shared_prev_depths, shared_prev_depths)
        pct_cur = _depth_percentile(shared_cur_depths, shared_cur_depths)
        nominal_occ = cur_r.shape[0] * count_scale
        diffs.append(np.abs(pct_cur - pct_prev) * nominal_occ)
    if not diffs:
        return np.empty(0)
    return np.concatenate(diffs)


# ----------------------------------------------------------------------
# Engine pins
# ----------------------------------------------------------------------
# Frozen scalar per-tile / per-job loops of the Rasterization and Sorting
# Engine simulators, exactly as they existed before the flat tile-stream
# vectorization.  ``rasterize_tile_timeline`` / ``groups_for_tile`` /
# ``chunk_compute_cycles`` are themselves frozen public single-item APIs and
# are reused here directly.


def scalar_raster_engine_frame(
    sim: RasterEngineSim, tile_gaussians, tile_hits
) -> RasterEngineReport:
    """One frame through the historical per-tile timeline loop."""
    if len(tile_gaussians) != len(tile_hits):
        raise ValueError("tile_gaussians and tile_hits must align")
    timelines: list = []
    tiles = 0
    scu_cycles = 0.0
    itu_cycles = 0.0
    core_time = [0.0] * sim.config.raster_cores
    for i, (gaussians, hits) in enumerate(zip(tile_gaussians, tile_hits)):
        if gaussians <= 0:
            continue
        timeline = rasterize_tile_timeline(groups_for_tile(gaussians, hits, sim.config))
        core = i % sim.config.raster_cores
        core_time[core] += timeline.total_cycles
        timelines.append(timeline)
        tiles += 1
        scu_cycles += timeline.scu_cycles
        itu_cycles += timeline.itu_cycles
    total_cycles = max(core_time) if core_time else 0.0
    return RasterEngineReport.from_timelines(
        timelines,
        total_cycles=total_cycles,
        tiles=tiles,
        scu_cycles=scu_cycles,
        itu_cycles=itu_cycles,
    )


def scalar_jobs_from_occupancy(occupancy, chunk_size: int = 256) -> list[ChunkJob]:
    """Historical per-tile while-loop chunking of a frame's table sizes."""
    jobs: list[ChunkJob] = []
    for tile, size in enumerate(occupancy):
        size = int(size)
        start = 0
        while start < size:
            jobs.append(ChunkJob(tile=tile, entries=min(chunk_size, size - start)))
            start += chunk_size
    return jobs


def scalar_sorting_engine_simulate(
    sim: SortingEngineSim, jobs: list[ChunkJob]
) -> SortingEngineReport:
    """One frame's chunk stream through the historical per-job event loop."""
    report = SortingEngineReport(
        cores=[CoreTrace() for _ in range(sim.config.sorting_cores)]
    )
    if not jobs:
        return report

    port_free = 0  # next cycle the shared DRAM port is available
    compute_free = [0] * sim.config.sorting_cores
    pending_stores: list[tuple[int, int, int]] = []  # (ready, cycles, core)

    def issue_store(ready: int, cycles: int, core: int) -> None:
        nonlocal port_free
        start = max(port_free, ready)
        port_free = start + cycles
        report.dram_busy_cycles += cycles
        report.cores[core].finish_cycle = port_free
        report.total_cycles = max(report.total_cycles, port_free)

    for job in jobs:
        core_idx = min(range(len(compute_free)), key=compute_free.__getitem__)
        trace = report.cores[core_idx]

        load_cycles = sim._transfer_cycles(job.entries * TABLE_ENTRY_BYTES)
        store_cycles = load_cycles
        compute = chunk_compute_cycles(job.entries, sim.config.bsu_width)

        # Drain any write-backs already ready before this load.
        while pending_stores and pending_stores[0][0] <= port_free:
            ready, cycles, core = heapq.heappop(pending_stores)
            issue_store(ready, cycles, core)

        load_end = port_free + load_cycles
        port_free = load_end
        report.dram_busy_cycles += load_cycles

        compute_start = max(load_end, compute_free[core_idx])
        compute_end = compute_start + compute
        compute_free[core_idx] = compute_end
        heapq.heappush(pending_stores, (compute_end, store_cycles, core_idx))

        trace.busy_cycles += compute
        trace.chunks += 1
        report.compute_cycles += compute
        report.chunks += 1
        report.entries += job.entries
        report.total_cycles = max(report.total_cycles, compute_end)

    while pending_stores:
        ready, cycles, core = heapq.heappop(pending_stores)
        issue_store(ready, cycles, core)
    return report
