"""Fig. 16 — DRAM traffic for 60 QHD frames: Orin AGX vs GSCore vs Neo.

Neo reduces total DRAM traffic by ~94 % vs the GPU and ~81 % vs GSCore,
which is what lets it run at full speed under a 51.2 GB/s edge budget.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import PAPER_TRAFFIC_FRAMES, ExperimentResult

SYSTEMS = ("orin", "gscore", "neo")

DESCRIPTION = "DRAM traffic (GB / 60 frames) at QHD: Orin vs GSCore vs Neo"


def plan(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentPlan:
    """Declare the (scene, system) grid for the traffic comparison."""
    cells = tuple(
        SimJob(system, scene, resolution, frames=num_frames)
        for scene in scenes
        for system in SYSTEMS
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(name="fig16", description=DESCRIPTION)
        per_system: dict[str, list[float]] = {s: [] for s in SYSTEMS}
        for scene in scenes:
            row = {"scene": scene}
            for system in SYSTEMS:
                report = reports[SimJob(system, scene, resolution, frames=num_frames)]
                gb = report.traffic_gb_for(PAPER_TRAFFIC_FRAMES)
                row[system] = gb
                per_system[system].append(gb)
            result.rows.append(row)
        result.rows.append(
            {"scene": "MEAN", **{s: float(np.mean(v)) for s, v in per_system.items()}}
        )
        return result

    return ExperimentPlan("fig16", DESCRIPTION, cells, aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentResult:
    """GB of DRAM traffic per scene per system (60-frame totals)."""
    return execute_plan(plan(scenes=scenes, resolution=resolution, num_frames=num_frames))


def reductions(result: ExperimentResult) -> dict[str, float]:
    """Neo's mean traffic reduction vs each baseline."""
    mean = result.filter(scene="MEAN")[0]
    return {
        "vs_orin": 1.0 - mean["neo"] / mean["orin"],
        "vs_gscore": 1.0 - mean["neo"] / mean["gscore"],
    }
