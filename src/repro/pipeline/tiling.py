"""Tile binning and Gaussian duplication (front half of the sorting stage).

3DGS subdivides the image into square tiles and duplicates every projected
Gaussian into each tile its bounding box overlaps (paper section 2.4).  The
per-tile (Gaussian ID, depth) lists produced here are the input to all
sorting strategies, and the tile-Gaussian *pair count* is the quantity that
drives the sorting stage's DRAM traffic in the hardware model.

**Tile-stream layout.**  Per-tile data is stored as one flat
:class:`TileStream` — a ``values`` array holding every tile-Gaussian pair
grouped by tile, plus a ``num_tiles + 1`` ``offsets`` array marking the
segment boundaries (the CRS/CSR idiom).  Tile ``t``'s entries are
``values[offsets[t]:offsets[t + 1]]``, a zero-copy view.  Every per-tile
loop in the pipeline becomes a segmented array program over this layout;
the old list-of-arrays accessors survive as deprecated shims returning
views into the stream (see the README migration table — they are scheduled
for removal one release after 2026-08).
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..backend import core_ops
from ..scene.camera import Camera
from .projection import ProjectedGaussians

#: Ops the tile-stream core dispatches through the pluggable array backend.
_XP = core_ops(
    "tiling",
    "argsort",
    "searchsorted",
    "reduceat",
    "repeat",
    "cumsum",
    "minimum",
    "maximum",
    "clip",
)

#: Tile edge used by the Neo accelerator configuration (Table 1).
NEO_TILE_SIZE = 64

#: Tile edge used by the reference CUDA 3DGS rasterizer.
GPU_TILE_SIZE = 16

#: Per-tile keys are packed as ``tile * _KEY_SHIFT + key`` for segmented set
#: operations; keys must therefore fit in ``[0, 2^32)`` (global Gaussian IDs
#: do by construction, matching the hardware's 32-bit ID field).
_KEY_SHIFT = np.int64(1) << 32


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated and scheduled for removal one release after "
        f"2026-08; use {new} instead (see the README tile-stream migration "
        "table)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class TileGrid:
    """Rectangular grid of square tiles covering the image plane."""

    width: int
    height: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    @property
    def tiles_x(self) -> int:
        """Number of tile columns."""
        return -(-self.width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows."""
        return -(-self.height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        """Total tile count."""
        return self.tiles_x * self.tiles_y

    def tile_index(self, tx: int, ty: int) -> int:
        """Flatten a (column, row) tile coordinate."""
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise IndexError(f"tile ({tx}, {ty}) outside {self.tiles_x}x{self.tiles_y} grid")
        return ty * self.tiles_x + tx

    def tile_coords(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`tile_index`."""
        if not 0 <= index < self.num_tiles:
            raise IndexError(f"tile index {index} outside grid of {self.num_tiles}")
        return index % self.tiles_x, index // self.tiles_x

    def tile_pixel_bounds(self, index: int) -> tuple[int, int, int, int]:
        """Pixel rectangle ``(x0, y0, x1, y1)`` of a tile, exclusive upper."""
        tx, ty = self.tile_coords(index)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return x0, y0, min(x0 + self.tile_size, self.width), min(y0 + self.tile_size, self.height)

    @staticmethod
    def for_camera(camera: Camera, tile_size: int = GPU_TILE_SIZE) -> "TileGrid":
        """Grid covering ``camera``'s image at the given tile size."""
        return TileGrid(width=camera.width, height=camera.height, tile_size=tile_size)


@dataclass(frozen=True)
class SegmentIntersection:
    """Per-tile set intersection of two :class:`TileStream` key sets.

    Entries are ordered by ``(tile, key)`` ascending — per tile, exactly the
    order ``np.intersect1d`` returns.  ``offsets`` delimits the per-tile
    segments; ``self_indices`` / ``other_indices`` locate each shared key in
    the two streams' flat arrays.
    """

    offsets: np.ndarray
    keys: np.ndarray
    self_indices: np.ndarray
    other_indices: np.ndarray

    @property
    def num_shared(self) -> int:
        """Total shared keys across all tiles."""
        return self.keys.shape[0]

    def counts(self) -> np.ndarray:
        """Shared keys per tile, shape ``(num_tiles,)``."""
        return np.diff(self.offsets)


@dataclass(frozen=True)
class TileStream:
    """Flat ``values + offsets`` (SoA) layout for per-tile data.

    Attributes
    ----------
    num_tiles:
        Number of segments (tiles) the stream covers.
    values:
        All per-pair payloads, grouped by tile; shape ``(num_pairs,)``.
    offsets:
        Segment boundaries, shape ``(num_tiles + 1,)``; tile ``t`` owns
        ``values[offsets[t]:offsets[t + 1]]``.
    """

    num_tiles: int
    values: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        if self.offsets.shape[0] != self.num_tiles + 1:
            raise ValueError("offsets must have num_tiles + 1 entries")
        if self.num_tiles and (
            self.offsets[0] != 0
            or self.offsets[-1] != self.values.shape[0]
            or np.any(np.diff(self.offsets) < 0)
        ):
            raise ValueError("offsets must grow monotonically from 0 to len(values)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_tiles: int, dtype=np.int64) -> "TileStream":
        """A stream of ``num_tiles`` empty segments."""
        return cls(
            num_tiles=num_tiles,
            values=np.empty(0, dtype=dtype),
            offsets=np.zeros(num_tiles + 1, dtype=np.int64),
        )

    @classmethod
    def from_pairs(
        cls, tiles: np.ndarray, values: np.ndarray, num_tiles: int
    ) -> "TileStream":
        """Build a stream from parallel ``(tile, value)`` pair arrays.

        Pairs are grouped by tile with a *stable* sort, so ties preserve the
        input pair order within each tile.
        """
        if tiles.shape[0] == 0:
            return cls.empty(num_tiles, dtype=values.dtype)
        xp = _XP()
        order = xp.argsort(tiles, kind="stable")
        tiles_sorted = tiles[order]
        offsets = xp.searchsorted(tiles_sorted, np.arange(num_tiles + 1))
        return cls(num_tiles=num_tiles, values=values[order], offsets=offsets)

    @classmethod
    def from_lists(cls, per_tile: list[np.ndarray], dtype=np.int64) -> "TileStream":
        """Build a stream from the legacy list-of-arrays layout."""
        num_tiles = len(per_tile)
        counts = np.fromiter(
            (a.shape[0] for a in per_tile), dtype=np.int64, count=num_tiles
        )
        offsets = np.zeros(num_tiles + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        values = (
            np.concatenate(per_tile) if int(counts.sum()) else np.empty(0, dtype=dtype)
        )
        return cls(num_tiles=num_tiles, values=values, offsets=offsets)

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total entries across all tiles."""
        return int(self.values.shape[0])

    def counts(self) -> np.ndarray:
        """Per-tile entry counts, shape ``(num_tiles,)``."""
        return np.diff(self.offsets)

    def tile_of(self) -> np.ndarray:
        """Owning tile of every entry, shape ``(num_pairs,)``."""
        return _XP().repeat(np.arange(self.num_tiles, dtype=np.int64), self.counts())

    def nonempty(self) -> np.ndarray:
        """Indices of tiles with at least one entry."""
        return np.flatnonzero(self.offsets[1:] > self.offsets[:-1])

    # ------------------------------------------------------------------
    # Per-tile access
    # ------------------------------------------------------------------
    def rows_for(self, tile: int) -> np.ndarray:
        """Tile ``tile``'s entries — a zero-copy view into ``values``."""
        return self.values[self.offsets[tile] : self.offsets[tile + 1]]

    def per_tile(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(tile, values_view)`` over every tile (compat helper)."""
        for tile in range(self.num_tiles):
            yield tile, self.values[self.offsets[tile] : self.offsets[tile + 1]]

    def to_lists(self) -> list[np.ndarray]:
        """Materialize the legacy list-of-views layout."""
        return [view for _, view in self.per_tile()]

    def with_values(self, values: np.ndarray) -> "TileStream":
        """A stream with the same segmentation over a different payload."""
        if values.shape[0] != self.values.shape[0]:
            raise ValueError("replacement values must align with the stream")
        return TileStream(num_tiles=self.num_tiles, values=values, offsets=self.offsets)

    # ------------------------------------------------------------------
    # Segmented algorithms
    # ------------------------------------------------------------------
    def segment_reduce(self, data: np.ndarray, ufunc=np.add, initial=0) -> np.ndarray:
        """Reduce ``data`` (aligned with ``values``) per tile with ``ufunc``.

        Empty tiles yield ``initial``.  Reduction order within a tile is
        ``ufunc.reduceat``'s left-to-right pairing over the segment.
        """
        if data.shape[0] != self.values.shape[0]:
            raise ValueError("data must align with the stream's values")
        out = np.full(self.num_tiles, initial, dtype=np.result_type(data, initial))
        starts = self.offsets[:-1]
        mask = starts < self.offsets[1:]
        if data.shape[0] and np.any(mask):
            out[mask] = _XP().reduceat(data, starts[mask], ufunc)
        return out

    def segment_intersect(
        self, keys: np.ndarray, other: "TileStream", other_keys: np.ndarray
    ) -> SegmentIntersection:
        """Per-tile set intersection of two streams' key sets.

        ``keys`` / ``other_keys`` align with the streams' ``values`` and must
        be unique *within each tile* (the ``assume_unique`` contract of
        ``np.intersect1d``) and lie in ``[0, 2^32)``.  The result lists every
        key present in both streams' copies of a tile, ordered by
        ``(tile, key)`` — per tile, exactly ``np.intersect1d``'s output.
        """
        if other.num_tiles != self.num_tiles:
            raise ValueError("streams must cover the same tile count")
        if keys.shape[0] != self.values.shape[0] or (
            other_keys.shape[0] != other.values.shape[0]
        ):
            raise ValueError("keys must align with the streams' values")
        xp = _XP()
        ka = self.tile_of() * _KEY_SHIFT + keys
        kb = other.tile_of() * _KEY_SHIFT + other_keys
        order_a = xp.argsort(ka, kind="stable")
        order_b = xp.argsort(kb, kind="stable")
        sa = ka[order_a]
        sb = kb[order_b]
        if sb.shape[0]:
            pos = xp.searchsorted(sb, sa)
            safe = xp.minimum(pos, sb.shape[0] - 1)
            mask = (pos < sb.shape[0]) & (sb[safe] == sa)
        else:
            pos = np.zeros(sa.shape[0], dtype=np.int64)
            mask = np.zeros(sa.shape[0], dtype=bool)
        shared = sa[mask]
        tiles_shared = shared >> 32
        offsets = xp.searchsorted(tiles_shared, np.arange(self.num_tiles + 1))
        return SegmentIntersection(
            offsets=offsets,
            keys=shared - (tiles_shared << 32),
            self_indices=order_a[mask],
            other_indices=order_b[pos[mask]],
        )


@dataclass
class TileAssignment:
    """Per-tile Gaussian membership produced by duplication.

    Attributes
    ----------
    grid:
        The tile grid the assignment refers to.
    stream:
        :class:`TileStream` whose values are row indices into the
        :class:`ProjectedGaussians` arrays, grouped by tile (in projection
        order within each tile, *unsorted* by depth).
    projected:
        The projected Gaussians the rows refer to.
    """

    grid: TileGrid
    stream: TileStream
    projected: ProjectedGaussians
    _rows_list: list[np.ndarray] | None = field(default=None, repr=False, compare=False)

    @property
    def num_tiles(self) -> int:
        """Tiles covered by the assignment."""
        return self.stream.num_tiles

    @property
    def num_pairs(self) -> int:
        """Total tile-Gaussian pairs (duplication count), the key workload stat."""
        return self.stream.num_pairs

    def rows_for(self, tile: int) -> np.ndarray:
        """Row indices assigned to ``tile`` (zero-copy view)."""
        return self.stream.rows_for(tile)

    def tile_ids(self, tile: int) -> np.ndarray:
        """Global Gaussian IDs assigned to ``tile``."""
        return self.projected.ids[self.stream.rows_for(tile)]

    def tile_depths(self, tile: int) -> np.ndarray:
        """Depths of the Gaussians assigned to ``tile``."""
        return self.projected.depths[self.stream.rows_for(tile)]

    def occupancy(self) -> np.ndarray:
        """Per-tile Gaussian counts, shape ``(num_tiles,)``."""
        return self.stream.counts()

    def nonempty_tiles(self) -> np.ndarray:
        """Indices of tiles with at least one Gaussian."""
        return self.stream.nonempty()

    @property
    def tile_rows(self) -> list[np.ndarray]:
        """Deprecated list-of-arrays accessor; use :attr:`stream` instead."""
        _warn_deprecated("TileAssignment.tile_rows", "TileAssignment.stream / rows_for")
        if self._rows_list is None:
            self._rows_list = self.stream.to_lists()
        return self._rows_list


def tile_ranges(
    projected: ProjectedGaussians, grid: TileGrid
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Inclusive tile-coordinate bounding boxes for every projected Gaussian.

    Returns ``(tx0, tx1, ty0, ty1)`` clipped to the grid; a Gaussian fully
    outside the image yields an empty range (``tx1 < tx0``).
    """
    x = projected.means2d[:, 0]
    y = projected.means2d[:, 1]
    r = projected.radii
    ts = grid.tile_size
    tx0 = np.floor((x - r) / ts).astype(np.int64)
    tx1 = np.floor((x + r) / ts).astype(np.int64)
    ty0 = np.floor((y - r) / ts).astype(np.int64)
    ty1 = np.floor((y + r) / ts).astype(np.int64)
    np.clip(tx0, 0, grid.tiles_x - 1, out=tx0)
    np.clip(ty0, 0, grid.tiles_y - 1, out=ty0)
    # Upper bounds clip to -1 below zero so off-screen splats produce empty
    # ranges instead of wrapping into tile 0.
    np.clip(tx1, -1, grid.tiles_x - 1, out=tx1)
    np.clip(ty1, -1, grid.tiles_y - 1, out=ty1)
    off = (x + r < 0) | (y + r < 0) | (x - r >= grid.width) | (y - r >= grid.height)
    tx1[off] = tx0[off] - 1
    return tx0, tx1, ty0, ty1


def assign_to_tiles(projected: ProjectedGaussians, grid: TileGrid) -> TileAssignment:
    """Duplicate projected Gaussians into every tile their bbox overlaps."""
    m = len(projected)
    if m == 0:
        return TileAssignment(
            grid=grid, stream=TileStream.empty(grid.num_tiles), projected=projected
        )

    xp = _XP()
    tx0, tx1, ty0, ty1 = tile_ranges(projected, grid)
    nx = xp.maximum(tx1 - tx0 + 1, 0)
    ny = xp.maximum(ty1 - ty0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())

    rows = xp.repeat(np.arange(m, dtype=np.int64), counts)
    # Per-pair offset within each Gaussian's tile rectangle.
    starts = np.concatenate([[0], xp.cumsum(counts)[:-1]])
    local = np.arange(total, dtype=np.int64) - xp.repeat(starts, counts)
    nx_rep = xp.repeat(xp.maximum(nx, 1), counts)
    dx = local % nx_rep
    dy = local // nx_rep
    tiles = (xp.repeat(ty0, counts) + dy) * grid.tiles_x + xp.repeat(tx0, counts) + dx

    # Refine the bbox expansion with an exact circle-vs-tile-rectangle test.
    # This matches the Rasterization Engine's ITU geometry (a circle overlaps
    # a tile iff it overlaps one of the subtiles partitioning it), so a
    # Gaussian assigned here is never immediately invalidated by the ITU.
    tile_x = (tiles % grid.tiles_x) * grid.tile_size
    tile_y = (tiles // grid.tiles_x) * grid.tile_size
    cx = projected.means2d[rows, 0]
    cy = projected.means2d[rows, 1]
    r = projected.radii[rows]
    qx = xp.clip(cx, tile_x, xp.minimum(tile_x + grid.tile_size, grid.width))
    qy = xp.clip(cy, tile_y, xp.minimum(tile_y + grid.tile_size, grid.height))
    overlap = (qx - cx) ** 2 + (qy - cy) ** 2 <= r * r
    tiles = tiles[overlap]
    rows = rows[overlap]

    # The stable group-by-tile *is* the stream construction: offsets fall out
    # of one searchsorted over the sorted tile column — no per-tile list
    # build.
    stream = TileStream.from_pairs(tiles, rows, grid.num_tiles)
    return TileAssignment(grid=grid, stream=stream, projected=projected)
