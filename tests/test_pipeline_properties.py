"""Property-based tests on pipeline-level invariants.

Physical invariants of alpha blending and duplication that must hold for
*any* scene the generator can produce:

* transmittance stays in [0, 1] and never increases as splats blend;
* output colors are bounded by [0, 1] after finalization;
* every duplicated pair's splat circle genuinely overlaps its tile;
* rendering is invariant to the order of equal-depth processing only up to
  the documented tie-break (determinism).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.projection import project_gaussians
from repro.pipeline.rasterizer import rasterize
from repro.pipeline.sorting import sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles
from repro.scene import Camera, GaussianScene, look_at


def _random_scene(seed: int, n: int) -> GaussianScene:
    rng = np.random.default_rng(seed)
    quats = rng.normal(size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return GaussianScene(
        means=rng.uniform(-3, 3, size=(n, 3)),
        scales=rng.uniform(0.02, 0.6, size=(n, 3)),
        quats=quats,
        opacities=rng.uniform(0.05, 1.0, size=n),
        sh_coeffs=rng.normal(0, 0.3, size=(n, 1, 3)),
    )


def _camera(seed: int) -> Camera:
    rng = np.random.default_rng(seed + 99)
    eye = rng.uniform(-8, 8, size=3)
    while np.linalg.norm(eye) < 4.0:
        eye = eye * 2 + 1e-3
    return Camera.from_fov(
        width=80,
        height=48,
        fov_y_degrees=60.0,
        world_to_camera=look_at(eye, np.zeros(3)),
    )


@given(st.integers(0, 10_000), st.integers(1, 60))
@settings(max_examples=15, deadline=None)
def test_render_output_bounded(seed, n):
    scene = _random_scene(seed, n)
    camera = _camera(seed)
    proj = project_gaussians(scene, camera)
    grid = TileGrid.for_camera(camera, 16)
    assignment = assign_to_tiles(proj, grid)
    result = rasterize(sort_tiles(assignment), proj, grid)
    assert np.isfinite(result.image).all()
    assert result.image.min() >= 0.0
    assert result.image.max() <= 1.0 + 1e-9


@given(st.integers(0, 10_000), st.integers(1, 60))
@settings(max_examples=15, deadline=None)
def test_duplication_pairs_overlap_their_tiles(seed, n):
    scene = _random_scene(seed, n)
    camera = _camera(seed)
    proj = project_gaussians(scene, camera)
    grid = TileGrid.for_camera(camera, 16)
    assignment = assign_to_tiles(proj, grid)
    for tile in assignment.nonempty_tiles():
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile)
        rows = assignment.rows_for(tile)
        cx = proj.means2d[rows, 0]
        cy = proj.means2d[rows, 1]
        r = proj.radii[rows]
        qx = np.clip(cx, x0, x1)
        qy = np.clip(cy, y0, y1)
        assert ((qx - cx) ** 2 + (qy - cy) ** 2 <= r * r + 1e-9).all()


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_rendering_deterministic(seed):
    scene = _random_scene(seed, 30)
    camera = _camera(seed)

    def render_once():
        proj = project_gaussians(scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        return rasterize(sort_tiles(assignment), proj, grid).image

    assert np.array_equal(render_once(), render_once())


@given(st.integers(0, 10_000), st.integers(2, 40))
@settings(max_examples=15, deadline=None)
def test_opacity_monotone_coverage(seed, n):
    # Scaling all opacities up never darkens covered pixels' alpha share:
    # total transmitted background light must not increase.
    scene = _random_scene(seed, n)
    camera = _camera(seed)
    boosted = GaussianScene(
        means=scene.means,
        scales=scene.scales,
        quats=scene.quats,
        opacities=np.clip(scene.opacities * 1.5, 0.01, 1.0),
        sh_coeffs=scene.sh_coeffs,
    )

    def background_light(s):
        proj = project_gaussians(s, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        result = rasterize(
            sort_tiles(assignment), proj, grid, background=(1.0, 1.0, 1.0)
        )
        # With a white background and near-black splats the background's
        # contribution is what remains of transmittance.
        return result.image.sum()

    dark = GaussianScene(
        means=scene.means, scales=scene.scales, quats=scene.quats,
        opacities=scene.opacities,
        sh_coeffs=np.full_like(scene.sh_coeffs, -2.0),
    )
    dark_boosted = GaussianScene(
        means=dark.means, scales=dark.scales, quats=dark.quats,
        opacities=boosted.opacities,
        sh_coeffs=dark.sh_coeffs,
    )
    assert background_light(dark_boosted) <= background_light(dark) + 1e-6
