"""Bench: Fig. 16 — DRAM traffic for 60 QHD frames per system."""

from repro.experiments import fig16

from conftest import run_once


def test_fig16_traffic(benchmark, bench_frames):
    result = run_once(benchmark, fig16.run, num_frames=bench_frames)
    print("\n" + result.to_text())
    cuts = fig16.reductions(result)
    print(cuts)

    # Paper: Orin ~346.5 GB, GSCore ~104.6 GB, Neo ~19.6 GB over 60 frames
    # -> 94.4% and 81.3% reductions.
    mean = result.filter(scene="MEAN")[0]
    assert 200 < mean["orin"] < 500
    assert 60 < mean["gscore"] < 160
    assert mean["neo"] < 35
    assert cuts["vs_orin"] > 0.90
    assert cuts["vs_gscore"] > 0.70
