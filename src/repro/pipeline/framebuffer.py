"""Framebuffer: the RGB image a render produces, plus blending bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Framebuffer:
    """An RGB float framebuffer with per-pixel transmittance tracking.

    Attributes
    ----------
    color:
        ``(height, width, 3)`` accumulated RGB in [0, 1].
    transmittance:
        ``(height, width)`` remaining transmittance ``T``; rasterization
        stops refining a pixel when ``T`` falls below the termination
        threshold (paper stage 4).
    """

    width: int
    height: int
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    color: np.ndarray = field(init=False)
    transmittance: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.color = np.zeros((self.height, self.width, 3), dtype=np.float64)
        self.transmittance = np.ones((self.height, self.width), dtype=np.float64)

    def finalize(self) -> np.ndarray:
        """Composite the background under the remaining transmittance."""
        bg = np.asarray(self.background, dtype=np.float64)
        return np.clip(self.color + self.transmittance[..., None] * bg[None, None, :], 0.0, 1.0)

    @property
    def num_pixels(self) -> int:
        """Total pixel count."""
        return self.width * self.height
