"""Workload extraction: from functional renders to paper-scale statistics.

The pure-Python pipeline renders reduced scenes (10^3-10^4 Gaussians), but
the hardware models need workloads at the paper's scale (10^6 Gaussians,
HD-QHD resolutions).  The bridge is geometric: a frame's sorting/raster
workload is fully determined by the visible Gaussians' screen positions,
radii and depths, and those re-scale analytically:

* resolution: focal length scales with image height, so screen positions and
  radii scale by ``target_height / capture_height``;
* Gaussian count: per-tile occupancy and pair counts scale linearly with the
  instantiated count (splats are i.i.d. within the preset's distribution),
  so counts multiply by ``nominal / functional``.

:class:`WorkloadModel` captures per-frame geometry once (culling +
projection only — no rasterization) and answers pair counts, occupancy,
churn, and order-difference queries for any (resolution, tile size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.culling import frustum_cull
from ..pipeline.projection import project_gaussians
from ..scene.camera import Camera, resolution as named_resolution
from ..scene.datasets import default_trajectory, load_scene, scene_spec
from ..scene.gaussians import GaussianScene

#: Capture resolution for workload extraction; small enough to be fast,
#: large enough that tile geometry at scaled resolutions is well sampled.
CAPTURE_WIDTH = 480
CAPTURE_HEIGHT = 270


@dataclass(frozen=True)
class FrameGeometry:
    """Visible-Gaussian geometry for one frame at capture resolution."""

    ids: np.ndarray
    means2d: np.ndarray
    radii: np.ndarray
    depths: np.ndarray

    @property
    def num_visible(self) -> int:
        """Visible Gaussians this frame (functional count)."""
        return self.ids.shape[0]


@dataclass(frozen=True)
class FrameWorkload:
    """Paper-scale workload statistics for one frame at one configuration.

    All counts are scaled to the scene's *nominal* Gaussian count.

    Attributes
    ----------
    visible:
        Gaussians surviving culling.
    pairs:
        Tile-Gaussian duplication pairs (sorting workload).
    incoming_pairs / outgoing_pairs:
        Pairs entering / leaving their tile since the previous frame
        (zero for frame 0).
    nonempty_tiles:
        Tiles with at least one Gaussian.
    mean_occupancy:
        Mean pairs per nonempty tile.
    chunks:
        Total 256-entry sorting chunks across tiles.
    mean_radius_px:
        Mean splat radius at the target resolution (pixels), used by the
        blend-work estimates.
    """

    frame_index: int
    width: int
    height: int
    tile_size: int
    num_gaussians: float
    visible: float
    pairs: float
    incoming_pairs: float
    outgoing_pairs: float
    nonempty_tiles: int
    num_tiles: int
    mean_occupancy: float
    chunks: float
    mean_radius_px: float = 0.0

    @property
    def churn_fraction(self) -> float:
        """Incoming pairs as a share of all pairs."""
        return self.incoming_pairs / self.pairs if self.pairs else 0.0

    @property
    def retained_fraction(self) -> float:
        """Share of pairs carried over from the previous frame."""
        return 1.0 - self.churn_fraction


def pair_lists(
    means2d: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    tile_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute (tile, Gaussian-row) duplication pairs for given geometry.

    Same geometry as :func:`repro.pipeline.tiling.assign_to_tiles` (bbox
    expansion refined by an exact circle-vs-tile test) but standalone, so it
    can run on analytically re-scaled coordinates.
    """
    m = means2d.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    tiles_x = -(-width // tile_size)
    tiles_y = -(-height // tile_size)
    x, y, r = means2d[:, 0], means2d[:, 1], radii

    tx0 = np.clip(np.floor((x - r) / tile_size).astype(np.int64), 0, tiles_x - 1)
    ty0 = np.clip(np.floor((y - r) / tile_size).astype(np.int64), 0, tiles_y - 1)
    tx1 = np.clip(np.floor((x + r) / tile_size).astype(np.int64), -1, tiles_x - 1)
    ty1 = np.clip(np.floor((y + r) / tile_size).astype(np.int64), -1, tiles_y - 1)
    off = (x + r < 0) | (y + r < 0) | (x - r >= width) | (y - r >= height)
    tx1[off] = tx0[off] - 1

    nx = np.maximum(tx1 - tx0 + 1, 0)
    ny = np.maximum(ty1 - ty0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    rows = np.repeat(np.arange(m, dtype=np.int64), counts)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    nx_rep = np.repeat(np.maximum(nx, 1), counts)
    dx = local % nx_rep
    dy = local // nx_rep
    tiles = (np.repeat(ty0, counts) + dy) * tiles_x + np.repeat(tx0, counts) + dx

    # Exact circle-vs-rect refinement.
    tile_px = (tiles % tiles_x) * tile_size
    tile_py = (tiles // tiles_x) * tile_size
    cx = x[rows]
    cy = y[rows]
    rr = r[rows]
    qx = np.clip(cx, tile_px, np.minimum(tile_px + tile_size, width))
    qy = np.clip(cy, tile_py, np.minimum(tile_py + tile_size, height))
    keep = (qx - cx) ** 2 + (qy - cy) ** 2 <= rr * rr
    return tiles[keep], rows[keep]


class WorkloadModel:
    """Per-frame geometry capture plus scaled workload queries.

    Parameters
    ----------
    frames:
        Captured per-frame geometry at ``capture_width x capture_height``.
    capture_width, capture_height:
        Resolution the geometry was captured at.
    count_scale:
        ``nominal_gaussians / functional_gaussians`` for the scene.
    functional_gaussians:
        Instantiated Gaussian count.
    scene_name:
        Label for reporting.
    """

    def __init__(
        self,
        frames: list[FrameGeometry],
        capture_width: int,
        capture_height: int,
        count_scale: float,
        functional_gaussians: int,
        scene_name: str = "scene",
    ) -> None:
        if not frames:
            raise ValueError("need at least one frame")
        if count_scale <= 0:
            raise ValueError("count_scale must be positive")
        self.frames = frames
        self.capture_width = capture_width
        self.capture_height = capture_height
        self.count_scale = count_scale
        self.functional_gaussians = functional_gaussians
        self.scene_name = scene_name
        self._pair_cache: dict[tuple[int, int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_scene(
        scene_name: str,
        num_frames: int = 30,
        speed: float = 1.0,
        num_gaussians: int | None = None,
        capture_width: int = CAPTURE_WIDTH,
        capture_height: int = CAPTURE_HEIGHT,
    ) -> "WorkloadModel":
        """Capture a workload model for a registered scene preset."""
        spec = scene_spec(scene_name)
        scene = load_scene(scene_name, num_gaussians=num_gaussians)
        cameras = default_trajectory(
            scene_name,
            num_frames=num_frames,
            speed=speed,
            width=capture_width,
            height=capture_height,
        )
        return WorkloadModel.from_render(
            scene,
            cameras,
            nominal_gaussians=spec.nominal_gaussians,
            scene_name=scene_name,
        )

    @staticmethod
    def from_render(
        scene: GaussianScene,
        cameras: list[Camera],
        nominal_gaussians: int | None = None,
        scene_name: str | None = None,
    ) -> "WorkloadModel":
        """Capture geometry by running culling + projection per camera."""
        frames = []
        for camera in cameras:
            culled = frustum_cull(scene, camera)
            proj = project_gaussians(scene, camera, culled.visible_ids)
            frames.append(
                FrameGeometry(
                    ids=proj.ids.copy(),
                    means2d=proj.means2d.copy(),
                    radii=proj.radii.copy(),
                    depths=proj.depths.copy(),
                )
            )
        nominal = nominal_gaussians if nominal_gaussians is not None else len(scene)
        return WorkloadModel(
            frames=frames,
            capture_width=cameras[0].width,
            capture_height=cameras[0].height,
            count_scale=nominal / max(len(scene), 1),
            functional_gaussians=len(scene),
            scene_name=scene_name or scene.name,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Frames captured."""
        return len(self.frames)

    def _resolve(self, resolution: str | tuple[int, int]) -> tuple[int, int]:
        if isinstance(resolution, str):
            return named_resolution(resolution)
        return resolution

    def scaled_geometry(
        self, frame: int, resolution: str | tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(means2d, radii) re-scaled to the target resolution."""
        width, height = self._resolve(resolution)
        geo = self.frames[frame]
        s = height / self.capture_height
        return geo.means2d * s, geo.radii * s

    def frame_pairs(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(tile, Gaussian-row) pair lists at the target configuration.

        Rows index the frame's :class:`FrameGeometry` arrays; cached.
        """
        width, height = self._resolve(resolution)
        key = (frame, width, height, tile_size)
        if key not in self._pair_cache:
            means2d, radii = self.scaled_geometry(frame, (width, height))
            self._pair_cache[key] = pair_lists(means2d, radii, width, height, tile_size)
        return self._pair_cache[key]

    def frame_workload(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> FrameWorkload:
        """Paper-scale workload for one frame at one configuration."""
        width, height = self._resolve(resolution)
        tiles, rows = self.frame_pairs(frame, (width, height), tile_size)
        geo = self.frames[frame]
        tiles_x = -(-width // tile_size)
        tiles_y = -(-height // tile_size)
        num_tiles = tiles_x * tiles_y

        occupancy = np.bincount(tiles, minlength=num_tiles)
        nonempty = int(np.count_nonzero(occupancy))
        pairs_f = tiles.shape[0]

        incoming_f, outgoing_f = self._churn_counts(frame, (width, height), tile_size)

        scale = self.count_scale
        mean_occ = (pairs_f / nonempty * scale) if nonempty else 0.0
        chunk_size = 256
        # Per-tile ceil-div over scaled occupancy, batched.  The cast
        # truncates like the scalar ``int()`` did (occupancy is nonnegative).
        scaled_occ = (occupancy[occupancy > 0] * scale).astype(np.int64)
        chunks = int((-(-scaled_occ // chunk_size)).sum())
        scale_px = height / self.capture_height
        mean_radius = float(geo.radii.mean()) * scale_px if geo.num_visible else 0.0
        return FrameWorkload(
            frame_index=frame,
            width=width,
            height=height,
            tile_size=tile_size,
            num_gaussians=self.functional_gaussians * scale,
            visible=geo.num_visible * scale,
            pairs=pairs_f * scale,
            incoming_pairs=incoming_f * scale,
            outgoing_pairs=outgoing_f * scale,
            nonempty_tiles=nonempty,
            num_tiles=num_tiles,
            mean_occupancy=mean_occ,
            chunks=float(chunks),
            mean_radius_px=mean_radius,
        )

    def sequence_workloads(
        self, resolution: str | tuple[int, int], tile_size: int
    ) -> list[FrameWorkload]:
        """Workloads for every captured frame."""
        return [
            self.frame_workload(i, resolution, tile_size) for i in range(self.num_frames)
        ]

    # ------------------------------------------------------------------
    # Temporal similarity (Figs. 6-7)
    # ------------------------------------------------------------------
    def _pair_keys(
        self, frame: int, resolution: tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Unique (tile, global-ID) keys for a frame's pairs."""
        tiles, rows = self.frame_pairs(frame, resolution, tile_size)
        ids = self.frames[frame].ids[rows]
        return tiles.astype(np.int64) * (1 << 32) + ids

    def _churn_counts(
        self, frame: int, resolution: tuple[int, int], tile_size: int
    ) -> tuple[int, int]:
        """(incoming, outgoing) pair counts vs. the previous frame."""
        if frame == 0:
            return 0, 0
        cur = self._pair_keys(frame, resolution, tile_size)
        prev = self._pair_keys(frame - 1, resolution, tile_size)
        incoming = int(np.count_nonzero(~np.isin(cur, prev)))
        outgoing = int(np.count_nonzero(~np.isin(prev, cur)))
        return incoming, outgoing

    def shared_fraction_per_tile(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Per-tile share of the previous frame's Gaussians retained (Fig. 6).

        Only tiles nonempty in the previous frame are reported.
        """
        if frame == 0:
            raise ValueError("frame 0 has no predecessor")
        width, height = self._resolve(resolution)
        prev_tiles, prev_rows = self.frame_pairs(frame - 1, (width, height), tile_size)
        cur_keys = self._pair_keys(frame, (width, height), tile_size)
        prev_ids = self.frames[frame - 1].ids[prev_rows]
        prev_keys = prev_tiles.astype(np.int64) * (1 << 32) + prev_ids
        retained = np.isin(prev_keys, cur_keys)

        # One bincount pair instead of a mask scan per tile.  Retained
        # counts are exact integers, so sum/size division reproduces the
        # per-tile ``mean()`` bit-for-bit; ``np.unique`` kept the tiles
        # sorted, and so does ``return_inverse``.
        _, inverse, counts = np.unique(prev_tiles, return_inverse=True, return_counts=True)
        kept = np.bincount(inverse, weights=retained, minlength=counts.shape[0])
        return kept / counts

    def order_differences(
        self, frame: int, resolution: str | tuple[int, int], tile_size: int
    ) -> np.ndarray:
        """Per-Gaussian sort-position shifts between consecutive frames (Fig. 7).

        For every tile, Gaussians shared between frames ``frame-1`` and
        ``frame`` get a continuous depth percentile (interpolated ECDF of the
        tile's depth distribution) in both frames; the reported value is the
        percentile shift converted to *positions at nominal occupancy* (a
        Gaussian's sort rank is its depth percentile times the table length,
        and table length grows linearly with Gaussian count).  The
        interpolation avoids the rank quantization a 10^3-x-reduced
        functional table would otherwise impose.
        """
        if frame == 0:
            raise ValueError("frame 0 has no predecessor")
        width, height = self._resolve(resolution)
        prev_tiles, prev_rows = self.frame_pairs(frame - 1, (width, height), tile_size)
        cur_tiles, cur_rows = self.frame_pairs(frame, (width, height), tile_size)
        prev_geo = self.frames[frame - 1]
        cur_geo = self.frames[frame]

        diffs: list[np.ndarray] = []
        cur_by_tile = _group_by_tile(cur_tiles, cur_rows)
        prev_by_tile = _group_by_tile(prev_tiles, prev_rows)
        for tile, prev_r in prev_by_tile.items():
            cur_r = cur_by_tile.get(tile)
            if cur_r is None:
                continue
            prev_ids = prev_geo.ids[prev_r]
            cur_ids = cur_geo.ids[cur_r]
            shared, prev_pos, cur_pos = np.intersect1d(
                prev_ids, cur_ids, assume_unique=True, return_indices=True
            )
            if shared.shape[0] < 2:
                continue
            # Rank both frames within the *shared* population so membership
            # churn does not masquerade as reordering; only genuine depth
            # re-ordering among retained Gaussians contributes.
            shared_prev_depths = prev_geo.depths[prev_r][prev_pos]
            shared_cur_depths = cur_geo.depths[cur_r][cur_pos]
            pct_prev = _depth_percentile(shared_prev_depths, shared_prev_depths)
            pct_cur = _depth_percentile(shared_cur_depths, shared_cur_depths)
            nominal_occ = cur_r.shape[0] * self.count_scale
            diffs.append(np.abs(pct_cur - pct_prev) * nominal_occ)
        if not diffs:
            return np.empty(0)
        return np.concatenate(diffs)


def _depth_percentile(query: np.ndarray, population: np.ndarray) -> np.ndarray:
    """Continuous ECDF percentile of ``query`` depths within ``population``."""
    sorted_pop = np.sort(population)
    n = sorted_pop.shape[0]
    if n < 2:
        return np.zeros_like(query)
    return np.interp(query, sorted_pop, np.linspace(0.0, 1.0, n))


def _group_by_tile(tiles: np.ndarray, rows: np.ndarray) -> dict[int, np.ndarray]:
    """Split a pair list into per-tile row arrays."""
    order = np.argsort(tiles, kind="stable")
    tiles_sorted = tiles[order]
    rows_sorted = rows[order]
    out: dict[int, np.ndarray] = {}
    if tiles_sorted.shape[0] == 0:
        return out
    boundaries = np.flatnonzero(np.diff(tiles_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [tiles_sorted.shape[0]]])
    for s, e in zip(starts, ends):
        out[int(tiles_sorted[s])] = rows_sorted[s:e]
    return out
