"""Predefined sweep specifications.

Each entry is a ready-to-run :class:`~repro.sweeps.spec.SweepSpec` sized so
the whole grid completes in seconds-to-minutes on a laptop core.  They
double as worked examples of the spec schema — ``repro sweep run --spec
<name>`` executes one, and any of them can be dumped to JSON
(``SweepSpec.to_json``), edited, and run back from the file.
"""

from __future__ import annotations

import json
from pathlib import Path

from .spec import HardwareConfig, SweepSpec

#: Name -> spec for `repro sweep list/run`.
PREDEFINED: dict[str, SweepSpec] = {
    "smoke": SweepSpec(
        name="smoke",
        description="Tiny 2-point sweep for CI and tests (orbit vs teleport on Neo).",
        scenes=("family",),
        num_gaussians=(256,),
        trajectories=("orbit", "teleport"),
        strategies=("neo",),
        hardware=(HardwareConfig(system="neo", resolution="hd"),),
        frames=4,
        capture_width=240,
        capture_height=135,
        render_width=128,
        render_height=72,
    ),
    "neo_vs_baselines": SweepSpec(
        name="neo_vs_baselines",
        description=(
            "All five sorting strategies on the default orbit capture: "
            "quality and sorting traffic of Neo vs full/periodic/background/"
            "hierarchical (Fig. 19 axis, sweep form)."
        ),
        scenes=("family", "train"),
        num_gaussians=(512,),
        trajectories=("orbit",),
        strategies=("full", "periodic", "background", "hierarchical", "neo"),
        hardware=(HardwareConfig(system="neo", resolution="qhd"),),
        frames=6,
        capture_width=240,
        capture_height=135,
    ),
    "motion_stress": SweepSpec(
        name="motion_stress",
        description=(
            "Neo under camera-motion stress: smooth orbit vs pan vs tremor "
            "shake vs zero-coherence teleports, at normal and rapid speeds "
            "(Fig. 17b axis plus the new abrupt-motion archetypes)."
        ),
        scenes=("family",),
        num_gaussians=(384,),
        trajectories=("orbit", "pan", "shake", "teleport"),
        speeds=(1.0, 4.0),
        strategies=("neo",),
        hardware=(HardwareConfig(system="neo", resolution="hd"),),
        frames=5,
        capture_width=240,
        capture_height=135,
        render_width=128,
        render_height=72,
    ),
    "scaling": SweepSpec(
        name="scaling",
        description=(
            "Gaussian-count scaling on a normal and a large aerial scene: "
            "hardware-model throughput and traffic only (no quality render)."
        ),
        scenes=("family", "building"),
        num_gaussians=(256, 512, 1024),
        trajectories=("orbit",),
        strategies=("neo",),
        hardware=(
            HardwareConfig(system="neo", resolution="qhd"),
            HardwareConfig(system="gscore", resolution="qhd"),
        ),
        frames=4,
        capture_width=240,
        capture_height=135,
        measure_quality=False,
    ),
}


def list_sweep_specs() -> list[str]:
    """Names of all predefined sweeps, sorted."""
    return sorted(PREDEFINED)


def get_sweep_spec(name: str) -> SweepSpec:
    """Look up a predefined sweep by name."""
    key = name.lower()
    if key not in PREDEFINED:
        raise KeyError(f"unknown sweep {name!r}; options: {list_sweep_specs()}")
    return PREDEFINED[key]


def resolve_spec(source: str) -> SweepSpec:
    """Resolve a CLI ``--spec`` argument: predefined name or JSON file path."""
    if source.lower() in PREDEFINED:
        return PREDEFINED[source.lower()]
    path = Path(source)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise FileNotFoundError(f"sweep spec file not found: {source}")
        try:
            return SweepSpec.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except json.JSONDecodeError as exc:
            raise ValueError(f"sweep spec {source} is not valid JSON: {exc}") from exc
    raise KeyError(
        f"unknown sweep {source!r}: not a predefined name ({list_sweep_specs()}) "
        "and not a .json spec file"
    )
