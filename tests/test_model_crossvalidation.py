"""Cross-validation: analytic system models vs discrete-event engine sims.

The high-level models in :mod:`repro.hw.accelerator` use per-entry/per-pair
constants; the engine simulators schedule every chunk and subtile group.
These tests pin the two layers together so neither drifts silently.
"""

import numpy as np
import pytest

from repro.hw.accelerator import NeoModel
from repro.hw.config import DramConfig, NeoConfig
from repro.hw.raster_engine import RasterEngineSim, groups_for_tile
from repro.hw.sorting_engine import SortingEngineSim, chunk_compute_cycles
from repro.hw.workload import WorkloadModel


@pytest.fixture(scope="module")
def qhd_workload():
    wm = WorkloadModel.from_scene("family", num_frames=3, num_gaussians=1500)
    return wm.frame_workload(1, "qhd", 64)


class TestSortingEngineVsAnalytic:
    def test_memory_time_agrees_at_edge_bandwidth(self, qhd_workload):
        # The analytic Neo model charges 2 x 8 bytes/entry of streaming
        # traffic for the reorder pass; the simulator must land on the same
        # service time (within scheduling slack) when bandwidth-bound.
        w = qhd_workload
        occ = np.full(w.nonempty_tiles, int(round(w.mean_occupancy)))
        sim = SortingEngineSim()
        report = sim.simulate_frame(occ)
        sim_seconds = report.total_cycles / 1e9

        analytic_bytes = 2 * report.entries * 8
        analytic_seconds = analytic_bytes / (51.2e9 * sim.dram.efficiency)
        assert sim_seconds == pytest.approx(analytic_seconds, rel=0.1)

    def test_analytic_compute_constant_matches_chunk_model(self):
        # NeoModel's 4.6 cycles/entry constant derives from the chunk
        # pipeline: 16 BSU sub-sorts + 4 merge levels over 256 entries.
        per_entry = chunk_compute_cycles(256) / 256
        assert per_entry == pytest.approx(4.6, abs=0.05)

    def test_neo_model_sorting_is_memory_bound(self, qhd_workload):
        # In the default configuration the Sorting Engine's compute hides
        # behind its own streaming: the simulator must report near-full
        # DRAM utilization, which is the assumption the analytic model's
        # max(memory, compute) form rests on.
        w = qhd_workload
        occ = np.full(w.nonempty_tiles, int(round(w.mean_occupancy)))
        report = SortingEngineSim().simulate_frame(occ)
        assert report.dram_utilization > 0.9


class TestRasterEngineVsAnalytic:
    def test_pipelined_cycles_close_to_scu_work(self, qhd_workload):
        # With the ITU latency hidden (Fig. 14), frame raster cycles ~= SCU
        # work / cores; the analytic model folds this into cycles-per-pair.
        w = qhd_workload
        per_tile = int(min(w.mean_occupancy, 1000))
        hits_per_tile = per_tile * 4  # ~4 subtile hits per blended pair
        sim = RasterEngineSim()
        report = sim.simulate_frame(
            [per_tile] * w.nonempty_tiles, [hits_per_tile] * w.nonempty_tiles
        )
        scu_only = report.scu_cycles / sim.config.raster_cores
        assert report.total_cycles == pytest.approx(scu_only, rel=0.15)
        assert report.mean_pipeline_efficiency > 0.85

    def test_groups_match_tile_geometry(self):
        cfg = NeoConfig()
        groups = groups_for_tile(100, 800, cfg)
        subtiles = (cfg.tile_size // cfg.subtile_size) ** 2
        assert len(groups) == subtiles // cfg.scu_per_core


class TestEndToEndConsistency:
    def test_neo_model_latency_bounded_by_component_sims(self, qhd_workload):
        # The analytic frame latency must not be lower than the simulated
        # sorting-engine service time alone (sorting is one of its traffic
        # components), and must stay within a small multiple of the summed
        # component times (nothing unaccounted dominates).
        w = qhd_workload
        model = NeoModel(dram=DramConfig())
        frame = model.frame_report(w)

        occ = np.full(w.nonempty_tiles, int(round(w.mean_occupancy)))
        sort_s = SortingEngineSim().simulate_frame(occ).total_cycles / 1e9
        assert frame.latency_s > sort_s * 0.9
        assert frame.latency_s < 10 * sort_s
