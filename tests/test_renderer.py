"""Unit tests for the end-to-end Renderer orchestration."""

import numpy as np

from repro.pipeline.renderer import ExactSortStrategy, Renderer
from repro.pipeline.sorting import is_depth_sorted


class TestRenderer:
    def test_single_frame(self, small_scene, camera):
        record = Renderer(small_scene).render(camera)
        assert record.image.shape == (camera.height, camera.width, 3)
        assert record.stats.num_visible > 0
        assert record.stats.num_pairs >= record.stats.num_visible * 0 + 1
        assert record.stats.num_gaussians == len(small_scene)

    def test_sequence_threads_frame_indices(self, small_scene, camera_path):
        records = Renderer(small_scene).render_sequence(camera_path)
        assert [r.stats.frame_index for r in records] == list(range(len(camera_path)))

    def test_deterministic(self, small_scene, camera):
        a = Renderer(small_scene).render(camera)
        b = Renderer(small_scene).render(camera)
        assert np.array_equal(a.image, b.image)

    def test_exact_strategy_sorts(self, small_scene, camera):
        record = Renderer(small_scene, strategy=ExactSortStrategy()).render(camera)
        st = record.sorted_tiles
        for t in range(st.num_tiles):
            assert is_depth_sorted(st.depths_for(t))

    def test_occupancy_stats(self, small_scene, camera):
        record = Renderer(small_scene).render(camera)
        assert record.stats.occupancy.sum() == record.stats.num_pairs
        assert record.stats.mean_occupancy > 0

    def test_tile_size_configurable(self, small_scene, camera):
        r16 = Renderer(small_scene, tile_size=16).render(camera)
        r32 = Renderer(small_scene, tile_size=32).render(camera)
        # Bigger tiles -> fewer duplicated pairs.
        assert r32.stats.num_pairs <= r16.stats.num_pairs
        # Images stay close (blending is tile-size independent up to
        # traversal order of equal-depth splats).
        assert np.abs(r16.image - r32.image).mean() < 0.02

    def test_no_subtiling(self, small_scene, camera):
        record = Renderer(small_scene, subtile_size=None).render(camera)
        assert record.stats.subtile_tests == 0
        assert record.image.mean() > 0.01


class TestStageTimings:
    def test_every_frame_carries_timings(self, small_scene, camera_path):
        records = Renderer(small_scene).render_sequence(camera_path)
        for record in records:
            stages = record.timings.as_dict()
            assert stages["total_s"] >= 0.0
            assert stages["raster_s"] >= 0.0
            assert record.timings.total_s == (
                record.timings.cull_s + record.timings.project_s
                + record.timings.tile_s + record.timings.sort_s
                + record.timings.raster_s
            )

    def test_aggregate_timings_sums_frames(self, small_scene, camera_path):
        from repro.pipeline.renderer import aggregate_timings

        records = Renderer(small_scene).render_sequence(camera_path)
        total = aggregate_timings(records)
        assert total.raster_s == sum(r.timings.raster_s for r in records)
        assert total.total_s > 0.0
