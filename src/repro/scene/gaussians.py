"""Container for a 3D Gaussian Splatting scene.

A scene is a set of anisotropic 3D Gaussians, each defined by (paper Fig. 2a):

* position: 3D mean ``mu``
* shape: 3D covariance ``Sigma``, factored as rotation ``q`` (unit quaternion)
  and per-axis scales ``s`` so that ``Sigma = R diag(s)^2 R^T``
* opacity ``o`` in (0, 1]
* color: spherical-harmonics coefficients ``sh`` of shape ``(k, 3)``

All attributes are stored as structure-of-arrays numpy buffers, mirroring how
a real renderer (and the Neo feature table) lays the data out in DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .sh import num_sh_coeffs

#: Bytes per Gaussian in the off-chip feature table (position 12 + rotation 16
#: + scale 12 + opacity 4 + degree-3 SH 16*3*4 = 236, rounded to 240 for
#: alignment).  Used by the hardware traffic model.
FEATURE_TABLE_ENTRY_BYTES = 240


def quaternions_to_rotations(quats: np.ndarray) -> np.ndarray:
    """Convert unit quaternions ``(n, 4)`` (w, x, y, z) to rotation matrices ``(n, 3, 3)``."""
    quats = np.asarray(quats, dtype=np.float64)
    if quats.ndim != 2 or quats.shape[1] != 4:
        raise ValueError(f"quats must have shape (n, 4), got {quats.shape}")
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    if np.any(norms < 1e-12):
        raise ValueError("zero-norm quaternion")
    w, x, y, z = (quats / norms).T
    rot = np.empty((quats.shape[0], 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rot[:, 0, 1] = 2 * (x * y - w * z)
    rot[:, 0, 2] = 2 * (x * z + w * y)
    rot[:, 1, 0] = 2 * (x * y + w * z)
    rot[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rot[:, 1, 2] = 2 * (y * z - w * x)
    rot[:, 2, 0] = 2 * (x * z - w * y)
    rot[:, 2, 1] = 2 * (y * z + w * x)
    rot[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return rot


def build_covariances(scales: np.ndarray, quats: np.ndarray) -> np.ndarray:
    """Assemble 3D covariance matrices ``R diag(s)^2 R^T`` for each Gaussian."""
    scales = np.asarray(scales, dtype=np.float64)
    rot = quaternions_to_rotations(quats)
    # M = R * diag(s); Sigma = M M^T
    m = rot * scales[:, None, :]
    return m @ m.transpose(0, 2, 1)


@dataclass
class GaussianScene:
    """Structure-of-arrays container for a trained 3DGS scene.

    Parameters
    ----------
    means:
        ``(n, 3)`` world-space Gaussian centers.
    scales:
        ``(n, 3)`` per-axis standard deviations (must be positive).
    quats:
        ``(n, 4)`` unit rotation quaternions (w, x, y, z).
    opacities:
        ``(n,)`` opacity values in (0, 1].
    sh_coeffs:
        ``(n, k, 3)`` SH color coefficients, ``k`` in {1, 4, 9, 16}.
    name:
        Human-readable scene label (e.g. ``"family"``).
    """

    means: np.ndarray
    scales: np.ndarray
    quats: np.ndarray
    opacities: np.ndarray
    sh_coeffs: np.ndarray
    name: str = "scene"
    _covariances: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.means = np.ascontiguousarray(self.means, dtype=np.float64)
        self.scales = np.ascontiguousarray(self.scales, dtype=np.float64)
        self.quats = np.ascontiguousarray(self.quats, dtype=np.float64)
        self.opacities = np.ascontiguousarray(self.opacities, dtype=np.float64)
        self.sh_coeffs = np.ascontiguousarray(self.sh_coeffs, dtype=np.float64)
        n = self.means.shape[0]
        if self.means.ndim != 2 or self.means.shape[1] != 3:
            raise ValueError(f"means must be (n, 3), got {self.means.shape}")
        if self.scales.shape != (n, 3):
            raise ValueError(f"scales must be ({n}, 3), got {self.scales.shape}")
        if self.quats.shape != (n, 4):
            raise ValueError(f"quats must be ({n}, 4), got {self.quats.shape}")
        if self.opacities.shape != (n,):
            raise ValueError(f"opacities must be ({n},), got {self.opacities.shape}")
        if self.sh_coeffs.ndim != 3 or self.sh_coeffs.shape[0] != n or self.sh_coeffs.shape[2] != 3:
            raise ValueError(f"sh_coeffs must be ({n}, k, 3), got {self.sh_coeffs.shape}")
        k = self.sh_coeffs.shape[1]
        implied = int(round(np.sqrt(k))) - 1
        if num_sh_coeffs(max(implied, 0)) != k:
            raise ValueError(f"sh_coeffs second dim must be square, got {k}")
        if n and (self.scales <= 0).any():
            raise ValueError("scales must be strictly positive")
        if n and ((self.opacities <= 0) | (self.opacities > 1)).any():
            raise ValueError("opacities must lie in (0, 1]")

    def __len__(self) -> int:
        return self.means.shape[0]

    @property
    def num_gaussians(self) -> int:
        """Number of Gaussians in the scene."""
        return len(self)

    @property
    def sh_degree(self) -> int:
        """SH degree implied by the stored coefficient count."""
        return int(round(np.sqrt(self.sh_coeffs.shape[1]))) - 1

    def covariances(self) -> np.ndarray:
        """``(n, 3, 3)`` world-space covariance matrices (cached)."""
        if self._covariances is None or self._covariances.shape[0] != len(self):
            self._covariances = build_covariances(self.scales, self.quats)
        return self._covariances

    def subset(self, indices: np.ndarray) -> "GaussianScene":
        """Return a new scene restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices)
        return GaussianScene(
            means=self.means[indices],
            scales=self.scales[indices],
            quats=self.quats[indices],
            opacities=self.opacities[indices],
            sh_coeffs=self.sh_coeffs[indices],
            name=self.name,
        )

    def feature_table_bytes(self) -> int:
        """Size of the off-chip feature table in bytes (hardware model input)."""
        return len(self) * FEATURE_TABLE_ENTRY_BYTES

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (min, max) corners of the Gaussian centers."""
        if not len(self):
            zero = np.zeros(3)
            return zero, zero
        return self.means.min(axis=0), self.means.max(axis=0)

    @staticmethod
    def concatenate(scenes: "list[GaussianScene]", name: str = "merged") -> "GaussianScene":
        """Concatenate several scenes into one (SH degrees must match)."""
        if not scenes:
            raise ValueError("need at least one scene")
        degrees = {s.sh_degree for s in scenes}
        if len(degrees) != 1:
            raise ValueError(f"mixed SH degrees: {sorted(degrees)}")
        return GaussianScene(
            means=np.concatenate([s.means for s in scenes]),
            scales=np.concatenate([s.scales for s in scenes]),
            quats=np.concatenate([s.quats for s in scenes]),
            opacities=np.concatenate([s.opacities for s in scenes]),
            sh_coeffs=np.concatenate([s.sh_coeffs for s in scenes]),
            name=name,
        )
