"""Metrics: image quality, temporal similarity, statistics helpers."""

from .image import lpips_proxy, mse, psnr, quality_report, ssim, to_luminance
from .similarity import (
    SimilarityStats,
    frame_similarity,
    sequence_similarity,
    tile_order_differences,
    tile_shared_fraction,
)
from .stats import (
    empirical_cdf,
    geometric_mean,
    harmonic_mean,
    percentile_summary,
    relative_error,
)

__all__ = [
    "SimilarityStats",
    "empirical_cdf",
    "frame_similarity",
    "geometric_mean",
    "harmonic_mean",
    "lpips_proxy",
    "mse",
    "percentile_summary",
    "psnr",
    "quality_report",
    "relative_error",
    "sequence_similarity",
    "ssim",
    "tile_order_differences",
    "tile_shared_fraction",
    "to_luminance",
]
