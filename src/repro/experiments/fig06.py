"""Fig. 6 — CDF of the per-tile shared-Gaussian proportion.

Temporal-similarity motivation: across the six scenes, over 90 % of tiles
retain more than ~78 % of their Gaussians from the previous frame.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult, get_workload_model

#: Frames pooled per scene for the CDF.
NUM_FRAMES = 8

#: Denser functional capture so per-tile fractions are well resolved.
CAPTURE_GAUSSIANS = 12000

DESCRIPTION = "CDF of per-tile shared-Gaussian proportion between frames"


def plan(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    tile_size: int = 64,
    num_frames: int = NUM_FRAMES,
    num_gaussians: int = CAPTURE_GAUSSIANS,
) -> ExperimentPlan:
    """No simulation cells: the work is per-scene workload capture."""

    def aggregate(_cells) -> ExperimentResult:
        result = ExperimentResult(name="fig06", description=DESCRIPTION)
        for scene in scenes:
            wm = get_workload_model(scene, num_frames=num_frames, num_gaussians=num_gaussians)
            fractions = np.concatenate(
                [
                    wm.shared_fraction_per_tile(frame, resolution, tile_size)
                    for frame in range(1, wm.num_frames)
                ]
            )
            result.rows.append(
                {
                    "scene": scene,
                    "tiles": int(fractions.shape[0]),
                    "median_shared": float(np.median(fractions)),
                    "p10_shared": float(np.percentile(fractions, 10)),
                    "tiles_retaining_78pct": float(np.mean(fractions >= 0.78)),
                }
            )
        return result

    return ExperimentPlan("fig06", DESCRIPTION, (), aggregate)


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    tile_size: int = 64,
    num_frames: int = NUM_FRAMES,
    num_gaussians: int = CAPTURE_GAUSSIANS,
) -> ExperimentResult:
    """Per-scene shared-fraction distribution and retention statistics."""
    return execute_plan(
        plan(
            scenes=scenes,
            resolution=resolution,
            tile_size=tile_size,
            num_frames=num_frames,
            num_gaussians=num_gaussians,
        )
    )
