"""Bench: Fig. 7 — sort-order difference percentiles between frames."""

from repro.experiments import fig07

from conftest import run_once


def test_fig07_order_difference(benchmark):
    result = run_once(benchmark, fig07.run)
    print("\n" + result.to_text())

    # Paper: 99% of the ordering stays largely consistent; the largest
    # shifts are tens of positions out of thousands per tile.
    for row in result.rows:
        assert row["p90"] <= row["p95"] <= row["p99"], row["scene"]
        # p99 is a small fraction of the per-tile table length.
        assert row["p99_relative"] < 0.05, row["scene"]
