"""Benchmark harness configuration.

Every module regenerates one paper table/figure via its experiment driver
and asserts the paper's qualitative claims (who wins, by roughly what
factor, where crossovers fall).  ``pytest-benchmark`` times the driver; the
reproduced rows are printed so ``pytest benchmarks/ --benchmark-only -s``
doubles as the artifact-regeneration script.
"""

from __future__ import annotations

import pytest

#: Scenes/frames used by the bench drivers: the full six-scene set is the
#: paper configuration; trim via ``--bench-scenes`` if iterating.
BENCH_FRAMES = 8


@pytest.fixture(scope="session")
def bench_frames() -> int:
    """Frames per simulated sequence in benchmark runs."""
    return BENCH_FRAMES


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
