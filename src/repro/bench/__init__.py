"""Performance-tracking benchmark subsystem (``repro bench``).

Named benchmarks time the repo's vectorized hot paths against the frozen
scalar references (:mod:`repro.pipeline.reference`, :mod:`repro.hw.reference`)
and verify on every run that the two produce **bit-identical** results —
the same gate the golden tests pin, re-checked on the exact workloads being
timed.  Results serialize to a schema'd ``BENCH_pipeline.json`` artifact so
each PR lands on a recorded perf trajectory, and CI runs the quick variant
as a regression gate (identity must hold, speedups must clear each bench's
conservative floor).
"""

from .core import (
    BENCH_SCHEMA,
    BenchRecord,
    bench_descriptions,
    bench_report,
    list_benchmarks,
    run_benchmarks,
    write_bench_json,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchRecord",
    "bench_descriptions",
    "bench_report",
    "list_benchmarks",
    "run_benchmarks",
    "write_bench_json",
]
