"""Temporal-similarity analysis of Gaussian tables (paper Figs. 6-7).

Given per-tile sorted ID lists from consecutive frames (functional pipeline)
or a :class:`~repro.hw.workload.WorkloadModel` (paper-scale), compute:

* the per-tile proportion of shared Gaussians between consecutive frames and
  its CDF (Fig. 6);
* the distribution of per-Gaussian sort-order displacement (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.sorting import SortedTiles


@dataclass(frozen=True)
class SimilarityStats:
    """Temporal-similarity summary between two consecutive frames."""

    shared_fractions: np.ndarray
    order_differences: np.ndarray

    def cdf(self, grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) — CDF of the per-tile shared fraction (Fig. 6)."""
        if grid is None:
            grid = np.linspace(0.5, 1.0, 101)
        values = np.sort(self.shared_fractions)
        cdf = np.searchsorted(values, grid, side="right") / max(values.shape[0], 1)
        return grid, cdf

    def fraction_of_tiles_retaining(self, threshold: float) -> float:
        """Share of tiles keeping at least ``threshold`` of their Gaussians."""
        if self.shared_fractions.size == 0:
            return 0.0
        return float(np.mean(self.shared_fractions >= threshold))

    def order_percentiles(self, percentiles=(90, 95, 99)) -> dict[int, float]:
        """Order-difference percentiles (Fig. 7's three bars)."""
        if self.order_differences.size == 0:
            return {int(p): 0.0 for p in percentiles}
        values = np.percentile(self.order_differences, percentiles)
        return {int(p): float(v) for p, v in zip(percentiles, values)}


def tile_shared_fraction(prev_ids: np.ndarray, cur_ids: np.ndarray) -> float:
    """Proportion of the previous frame's tile Gaussians still present."""
    if prev_ids.shape[0] == 0:
        return 1.0
    return float(np.mean(np.isin(prev_ids, cur_ids)))


def tile_order_differences(prev_ids: np.ndarray, cur_ids: np.ndarray) -> np.ndarray:
    """Absolute sort-position shifts of Gaussians shared by both lists.

    Both inputs must be depth-sorted ID lists; the displacement of a shared
    Gaussian is the distance between its positions in the two lists,
    restricted to the shared subset (membership churn excluded).
    """
    shared, prev_pos, cur_pos = np.intersect1d(
        prev_ids, cur_ids, assume_unique=False, return_indices=True
    )
    if shared.shape[0] < 2:
        return np.empty(0)
    prev_rank = np.argsort(np.argsort(prev_pos, kind="stable"))
    cur_rank = np.argsort(np.argsort(cur_pos, kind="stable"))
    return np.abs(prev_rank - cur_rank).astype(np.float64)


def frame_similarity(prev: SortedTiles, cur: SortedTiles) -> SimilarityStats:
    """Similarity statistics between two consecutive functional frames."""
    if prev.num_tiles != cur.num_tiles:
        raise ValueError("frames must cover the same tile grid")
    fractions = []
    diffs = []
    for tile in range(prev.num_tiles):
        prev_ids = prev.tile_ids[tile]
        if prev_ids.shape[0] == 0:
            continue
        cur_ids = cur.tile_ids[tile]
        fractions.append(tile_shared_fraction(prev_ids, cur_ids))
        d = tile_order_differences(prev_ids, cur_ids)
        if d.size:
            diffs.append(d)
    return SimilarityStats(
        shared_fractions=np.asarray(fractions),
        order_differences=np.concatenate(diffs) if diffs else np.empty(0),
    )


def sequence_similarity(frames: list[SortedTiles]) -> SimilarityStats:
    """Pool similarity statistics over every consecutive frame pair."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    fractions = []
    diffs = []
    for prev, cur in zip(frames, frames[1:]):
        stats = frame_similarity(prev, cur)
        fractions.append(stats.shared_fractions)
        if stats.order_differences.size:
            diffs.append(stats.order_differences)
    return SimilarityStats(
        shared_fractions=np.concatenate(fractions) if fractions else np.empty(0),
        order_differences=np.concatenate(diffs) if diffs else np.empty(0),
    )
