"""Pipelined model of Neo's Rasterization Engine (paper section 5.4, Fig. 14).

Each Rasterization Core pairs Intersection Test Units (ITUs) with Subtile
Compute Units (SCUs).  Subtiles are processed in groups: while the SCUs
alpha-blend group *g*, the ITUs already compute the intersection bitmaps of
group *g+1*, hiding the latency of on-the-fly bitmap generation (the
traffic-free alternative to GSCore's precomputed bitmaps).

The model reproduces the Fig. 14 timeline exactly: for a tile with groups
``g_0..g_{n-1}``, total latency is

    itu(g_0) + sum_i max(scu(g_i), itu(g_{i+1}))  + scu tail,

i.e. a two-stage pipeline whose throughput is set by the slower stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import NeoConfig

#: ITU cycles to test one Gaussian against one subtile group (bounding-box
#: clamp + distance compare per subtile, fully parallel across the group).
ITU_CYCLES_PER_GAUSSIAN = 1.0

#: SCU cycles to blend one Gaussian into one subtile it intersects
#: (8x8 pixels through a 16-lane MAC array -> 4 cycles/subtile).
SCU_CYCLES_PER_HIT = 4.0


@dataclass(frozen=True)
class SubtileGroupWork:
    """Work arriving at one subtile group of a tile.

    Attributes
    ----------
    gaussians:
        Gaussians whose bitmaps this group must test (the tile's list
        length, possibly truncated by early termination).
    hits:
        (Gaussian, subtile) intersections the SCUs actually blend.
    """

    gaussians: int
    hits: int


@dataclass
class TileTimeline:
    """Cycle accounting for one tile's pipelined rasterization."""

    total_cycles: float = 0.0
    itu_cycles: float = 0.0
    scu_cycles: float = 0.0
    itu_idle_cycles: float = 0.0
    scu_stall_cycles: float = 0.0

    @property
    def pipeline_efficiency(self) -> float:
        """SCU busy share of the tile's total latency (1.0 = fully hidden ITU)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.scu_cycles / self.total_cycles


def rasterize_tile_timeline(
    groups: list[SubtileGroupWork],
    itu_cycles_per_gaussian: float = ITU_CYCLES_PER_GAUSSIAN,
    scu_cycles_per_hit: float = SCU_CYCLES_PER_HIT,
) -> TileTimeline:
    """Simulate the ITU/SCU pipeline over one tile's subtile groups."""
    timeline = TileTimeline()
    if not groups:
        return timeline

    itu_times = [g.gaussians * itu_cycles_per_gaussian for g in groups]
    scu_times = [g.hits * scu_cycles_per_hit for g in groups]
    timeline.itu_cycles = sum(itu_times)
    timeline.scu_cycles = sum(scu_times)

    # Stage 1 (ITU) feeds stage 2 (SCU); group g's blending cannot start
    # before its bitmaps are ready, and the single SCU bank processes
    # groups in order.
    itu_done = 0.0
    scu_done = 0.0
    for itu_t, scu_t in zip(itu_times, scu_times):
        itu_start = itu_done
        itu_done = itu_start + itu_t
        scu_start = max(itu_done, scu_done)
        timeline.scu_stall_cycles += max(itu_done - scu_done, 0.0) if scu_done > 0 else 0.0
        scu_done = scu_start + scu_t
    timeline.total_cycles = scu_done
    timeline.itu_idle_cycles = max(scu_done - timeline.itu_cycles, 0.0)
    return timeline


def groups_for_tile(
    num_gaussians: int,
    subtile_hits: int,
    config: NeoConfig | None = None,
) -> list[SubtileGroupWork]:
    """Split a tile's work into SCU-group units.

    A 64 px tile contains ``(64/8)^2 = 64`` subtiles processed in groups of
    ``scu_per_core``; intersections are spread evenly across groups (the
    hardware's round-robin routing approximates this).
    """
    cfg = config or NeoConfig()
    subtiles = (cfg.tile_size // cfg.subtile_size) ** 2
    num_groups = max(subtiles // cfg.scu_per_core, 1)
    hits_per_group = subtile_hits / num_groups
    return [
        SubtileGroupWork(gaussians=num_gaussians, hits=int(round(hits_per_group)))
        for _ in range(num_groups)
    ]


@dataclass
class RasterEngineReport:
    """Frame-level aggregate over all tiles and cores."""

    total_cycles: float = 0.0
    tiles: int = 0
    scu_cycles: float = 0.0
    itu_cycles: float = 0.0
    timelines: list[TileTimeline] = field(default_factory=list)

    @property
    def mean_pipeline_efficiency(self) -> float:
        """Average SCU-busy share across tiles."""
        if not self.timelines:
            return 0.0
        return sum(t.pipeline_efficiency for t in self.timelines) / len(self.timelines)


@dataclass
class RasterEngineSim:
    """Frame-level Rasterization Engine simulator.

    Tiles are distributed round-robin across ``raster_cores``; each core
    runs its tiles' ITU/SCU pipelines back to back.
    """

    config: NeoConfig = field(default_factory=NeoConfig)

    def simulate_frame(
        self, tile_gaussians: list[int], tile_hits: list[int]
    ) -> RasterEngineReport:
        """Simulate one frame.

        Parameters
        ----------
        tile_gaussians:
            Per-tile list length walked by the ITUs.
        tile_hits:
            Per-tile (Gaussian, subtile) intersections blended by the SCUs.
        """
        if len(tile_gaussians) != len(tile_hits):
            raise ValueError("tile_gaussians and tile_hits must align")
        report = RasterEngineReport()
        core_time = [0.0] * self.config.raster_cores
        for i, (gaussians, hits) in enumerate(zip(tile_gaussians, tile_hits)):
            if gaussians <= 0:
                continue
            timeline = rasterize_tile_timeline(groups_for_tile(gaussians, hits, self.config))
            core = i % self.config.raster_cores
            core_time[core] += timeline.total_cycles
            report.timelines.append(timeline)
            report.tiles += 1
            report.scu_cycles += timeline.scu_cycles
            report.itu_cycles += timeline.itu_cycles
        report.total_cycles = max(core_time) if core_time else 0.0
        return report
