"""Pipelined model of Neo's Rasterization Engine (paper section 5.4, Fig. 14).

Each Rasterization Core pairs Intersection Test Units (ITUs) with Subtile
Compute Units (SCUs).  Subtiles are processed in groups: while the SCUs
alpha-blend group *g*, the ITUs already compute the intersection bitmaps of
group *g+1*, hiding the latency of on-the-fly bitmap generation (the
traffic-free alternative to GSCore's precomputed bitmaps).

The model reproduces the Fig. 14 timeline exactly: for a tile with groups
``g_0..g_{n-1}``, total latency is

    itu(g_0) + sum_i max(scu(g_i), itu(g_{i+1}))  + scu tail,

i.e. a two-stage pipeline whose throughput is set by the slower stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pipeline.tiling import _warn_deprecated
from .config import NeoConfig

#: ITU cycles to test one Gaussian against one subtile group (bounding-box
#: clamp + distance compare per subtile, fully parallel across the group).
ITU_CYCLES_PER_GAUSSIAN = 1.0

#: SCU cycles to blend one Gaussian into one subtile it intersects
#: (8x8 pixels through a 16-lane MAC array -> 4 cycles/subtile).
SCU_CYCLES_PER_HIT = 4.0


@dataclass(frozen=True)
class SubtileGroupWork:
    """Work arriving at one subtile group of a tile.

    Attributes
    ----------
    gaussians:
        Gaussians whose bitmaps this group must test (the tile's list
        length, possibly truncated by early termination).
    hits:
        (Gaussian, subtile) intersections the SCUs actually blend.
    """

    gaussians: int
    hits: int


@dataclass
class TileTimeline:
    """Cycle accounting for one tile's pipelined rasterization."""

    total_cycles: float = 0.0
    itu_cycles: float = 0.0
    scu_cycles: float = 0.0
    itu_idle_cycles: float = 0.0
    scu_stall_cycles: float = 0.0

    @property
    def pipeline_efficiency(self) -> float:
        """SCU busy share of the tile's total latency (1.0 = fully hidden ITU)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.scu_cycles / self.total_cycles


def rasterize_tile_timeline(
    groups: list[SubtileGroupWork],
    itu_cycles_per_gaussian: float = ITU_CYCLES_PER_GAUSSIAN,
    scu_cycles_per_hit: float = SCU_CYCLES_PER_HIT,
) -> TileTimeline:
    """Simulate the ITU/SCU pipeline over one tile's subtile groups."""
    timeline = TileTimeline()
    if not groups:
        return timeline

    itu_times = [g.gaussians * itu_cycles_per_gaussian for g in groups]
    scu_times = [g.hits * scu_cycles_per_hit for g in groups]
    timeline.itu_cycles = sum(itu_times)
    timeline.scu_cycles = sum(scu_times)

    # Stage 1 (ITU) feeds stage 2 (SCU); group g's blending cannot start
    # before its bitmaps are ready, and the single SCU bank processes
    # groups in order.
    itu_done = 0.0
    scu_done = 0.0
    for itu_t, scu_t in zip(itu_times, scu_times):
        itu_start = itu_done
        itu_done = itu_start + itu_t
        scu_start = max(itu_done, scu_done)
        timeline.scu_stall_cycles += max(itu_done - scu_done, 0.0) if scu_done > 0 else 0.0
        scu_done = scu_start + scu_t
    timeline.total_cycles = scu_done
    timeline.itu_idle_cycles = max(scu_done - timeline.itu_cycles, 0.0)
    return timeline


def groups_for_tile(
    num_gaussians: int,
    subtile_hits: int,
    config: NeoConfig | None = None,
) -> list[SubtileGroupWork]:
    """Split a tile's work into SCU-group units.

    A 64 px tile contains ``(64/8)^2 = 64`` subtiles processed in groups of
    ``scu_per_core``; intersections are spread evenly across groups (the
    hardware's round-robin routing approximates this).
    """
    cfg = config or NeoConfig()
    subtiles = (cfg.tile_size // cfg.subtile_size) ** 2
    num_groups = max(subtiles // cfg.scu_per_core, 1)
    hits_per_group = subtile_hits / num_groups
    return [
        SubtileGroupWork(gaussians=num_gaussians, hits=int(round(hits_per_group)))
        for _ in range(num_groups)
    ]


def _empty_f64() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


@dataclass
class RasterEngineReport:
    """Frame-level aggregate over all tiles and cores.

    Per-tile cycle accounting is stored as flat arrays over the frame's
    *active* (nonempty) tiles, in tile order — the tile-stream layout used
    across the pipeline.  The historical ``timelines`` list of
    :class:`TileTimeline` objects is available as a deprecated property.
    """

    total_cycles: float = 0.0
    tiles: int = 0
    scu_cycles: float = 0.0
    itu_cycles: float = 0.0
    tile_total_cycles: np.ndarray = field(default_factory=_empty_f64)
    tile_itu_cycles: np.ndarray = field(default_factory=_empty_f64)
    tile_scu_cycles: np.ndarray = field(default_factory=_empty_f64)
    tile_itu_idle_cycles: np.ndarray = field(default_factory=_empty_f64)
    tile_scu_stall_cycles: np.ndarray = field(default_factory=_empty_f64)

    @classmethod
    def from_timelines(
        cls,
        timelines: list[TileTimeline],
        total_cycles: float,
        tiles: int,
        scu_cycles: float,
        itu_cycles: float,
    ) -> "RasterEngineReport":
        """Package per-tile timelines into a report (reference/compat path)."""
        return cls(
            total_cycles=total_cycles,
            tiles=tiles,
            scu_cycles=scu_cycles,
            itu_cycles=itu_cycles,
            tile_total_cycles=np.array([t.total_cycles for t in timelines]),
            tile_itu_cycles=np.array([t.itu_cycles for t in timelines]),
            tile_scu_cycles=np.array([t.scu_cycles for t in timelines]),
            tile_itu_idle_cycles=np.array([t.itu_idle_cycles for t in timelines]),
            tile_scu_stall_cycles=np.array([t.scu_stall_cycles for t in timelines]),
        )

    @property
    def timelines(self) -> list[TileTimeline]:
        """Deprecated per-tile timeline objects; use the flat arrays."""
        _warn_deprecated(
            "RasterEngineReport.timelines", "RasterEngineReport.tile_total_cycles"
        )
        return [
            TileTimeline(
                total_cycles=float(self.tile_total_cycles[i]),
                itu_cycles=float(self.tile_itu_cycles[i]),
                scu_cycles=float(self.tile_scu_cycles[i]),
                itu_idle_cycles=float(self.tile_itu_idle_cycles[i]),
                scu_stall_cycles=float(self.tile_scu_stall_cycles[i]),
            )
            for i in range(self.tile_total_cycles.shape[0])
        ]

    @property
    def mean_pipeline_efficiency(self) -> float:
        """Average SCU-busy share across tiles."""
        n = self.tile_total_cycles.shape[0]
        if n == 0:
            return 0.0
        # Elementwise share then a strictly sequential sum, replicating the
        # historical ``sum(t.pipeline_efficiency for t in timelines) / len``.
        busy = self.tile_total_cycles > 0
        eff = np.divide(
            self.tile_scu_cycles,
            self.tile_total_cycles,
            out=np.zeros(n, dtype=np.float64),
            where=busy,
        )
        return float(np.add.accumulate(eff)[-1]) / n


@dataclass
class RasterEngineSim:
    """Frame-level Rasterization Engine simulator.

    Tiles are distributed round-robin across ``raster_cores``; each core
    runs its tiles' ITU/SCU pipelines back to back.
    """

    config: NeoConfig = field(default_factory=NeoConfig)

    def simulate_frame(
        self, tile_gaussians: list[int], tile_hits: list[int]
    ) -> RasterEngineReport:
        """Simulate one frame.

        All tiles advance through the ITU/SCU pipeline recurrence together:
        the per-tile subtile groups carry identical work (round-robin
        routing), so the whole frame is ``num_groups`` elementwise steps over
        flat per-tile arrays instead of a Python timeline per tile.  Sums and
        the pipeline recurrence replay the scalar arithmetic operation for
        operation, so the report is bit-identical to the frozen per-tile loop
        preserved in :func:`repro.hw.reference.scalar_raster_engine_frame`.

        Parameters
        ----------
        tile_gaussians:
            Per-tile list length walked by the ITUs.
        tile_hits:
            Per-tile (Gaussian, subtile) intersections blended by the SCUs.
        """
        if len(tile_gaussians) != len(tile_hits):
            raise ValueError("tile_gaussians and tile_hits must align")
        cfg = self.config
        g_all = np.asarray(tile_gaussians, dtype=np.float64)
        h_all = np.asarray(tile_hits, dtype=np.float64)

        report = RasterEngineReport()
        active = np.flatnonzero(g_all > 0)
        if active.shape[0] == 0:
            return report

        subtiles = (cfg.tile_size // cfg.subtile_size) ** 2
        num_groups = max(subtiles // cfg.scu_per_core, 1)
        # Per-group work, identical across a tile's groups (groups_for_tile):
        # ``int(round(hits / num_groups))`` blended hits, all Gaussians tested.
        itu_t = g_all[active] * ITU_CYCLES_PER_GAUSSIAN
        scu_t = np.rint(h_all[active] / num_groups) * SCU_CYCLES_PER_HIT

        n = active.shape[0]
        itu_sum = np.zeros(n)
        scu_sum = np.zeros(n)
        itu_done = np.zeros(n)
        scu_done = np.zeros(n)
        stall = np.zeros(n)
        for _ in range(num_groups):
            itu_sum = itu_sum + itu_t
            scu_sum = scu_sum + scu_t
            itu_done = itu_done + itu_t
            stall = stall + np.where(
                scu_done > 0, np.maximum(itu_done - scu_done, 0.0), 0.0
            )
            scu_done = np.maximum(itu_done, scu_done) + scu_t

        report.tile_total_cycles = scu_done
        report.tile_itu_cycles = itu_sum
        report.tile_scu_cycles = scu_sum
        report.tile_itu_idle_cycles = np.maximum(scu_done - itu_sum, 0.0)
        report.tile_scu_stall_cycles = stall
        report.tiles = n
        # Sequential accumulation mirrors the scalar ``+=`` tile loop.
        report.scu_cycles = float(np.add.accumulate(scu_sum)[-1])
        report.itu_cycles = float(np.add.accumulate(itu_sum)[-1])

        cores = active % cfg.raster_cores
        core_time = [0.0] * cfg.raster_cores
        for core in range(cfg.raster_cores):
            mine = scu_done[cores == core]
            if mine.shape[0]:
                core_time[core] = float(np.add.accumulate(mine)[-1])
        report.total_cycles = max(core_time) if core_time else 0.0
        return report
