"""Registry mapping paper figure/table IDs to their experiment drivers."""

from __future__ import annotations

from collections.abc import Callable

from . import (
    bandwidth_sweep,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig09,
    fig10,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    recovery,
    table2,
    table3,
    table4,
)
from .runner import ExperimentResult, RunnerConfig, runner_config

#: Experiment ID -> zero-argument driver producing an ExperimentResult.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "bandwidth_sweep": bandwidth_sweep.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "recovery": recovery.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
}


def run_experiment(name: str, config: RunnerConfig | None = None) -> ExperimentResult:
    """Run one registered experiment by its paper ID.

    ``config`` scopes a :class:`~repro.experiments.runner.RunnerConfig`
    (frame-count override, result cache) to this run; ``None`` uses the
    process-wide active configuration.
    """
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}")
    if config is None:
        return EXPERIMENTS[key]()
    with runner_config(config):
        return EXPERIMENTS[key]()


def list_experiments() -> list[str]:
    """All registered experiment IDs, sorted."""
    return sorted(EXPERIMENTS)
