"""Unit tests for camera trajectory generators."""

import numpy as np
import pytest

from repro.scene.datasets import TRAJECTORY_ARCHETYPES, archetype_trajectory, default_trajectory
from repro.scene.trajectory import (
    TrajectoryConfig,
    dolly_trajectory,
    flythrough_trajectory,
    iter_frame_pairs,
    orbit_trajectory,
    pan_trajectory,
    shake_trajectory,
    teleport_trajectory,
)


class TestConfig:
    def test_defaults(self):
        config = TrajectoryConfig()
        assert config.num_frames == 60
        assert config.speed == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryConfig(num_frames=0)
        with pytest.raises(ValueError):
            TrajectoryConfig(speed=0.0)


class TestOrbit:
    def test_count_and_radius(self):
        config = TrajectoryConfig(num_frames=10)
        cams = orbit_trajectory(np.zeros(3), radius=5.0, config=config)
        assert len(cams) == 10
        for cam in cams:
            assert np.linalg.norm(cam.position) == pytest.approx(5.0)

    def test_speed_scales_angular_step(self):
        slow = orbit_trajectory(np.zeros(3), 5.0, TrajectoryConfig(num_frames=3, speed=1.0))
        fast = orbit_trajectory(np.zeros(3), 5.0, TrajectoryConfig(num_frames=3, speed=4.0))
        step_slow = np.linalg.norm(slow[1].position - slow[0].position)
        step_fast = np.linalg.norm(fast[1].position - fast[0].position)
        assert step_fast > 3.5 * step_slow

    def test_looks_at_center(self):
        cams = orbit_trajectory(np.array([1.0, 2.0, 3.0]), 4.0, TrajectoryConfig(num_frames=4))
        for cam in cams:
            uv = cam.project(cam.transform_points(np.array([[1.0, 2.0, 3.0]])))
            assert uv[0, 0] == pytest.approx(cam.cx, abs=1e-6)
            assert uv[0, 1] == pytest.approx(cam.cy, abs=1e-6)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            orbit_trajectory(np.zeros(3), 0.0, TrajectoryConfig(num_frames=2))


class TestDolly:
    def test_moves_from_start_to_end(self):
        cams = dolly_trajectory(
            np.array([0.0, 0.0, -10.0]),
            np.array([0.0, 0.0, -2.0]),
            np.zeros(3),
            TrajectoryConfig(num_frames=5),
        )
        assert np.allclose(cams[0].position, [0, 0, -10])
        assert np.allclose(cams[-1].position, [0, 0, -2], atol=1e-9)

    def test_speed_clamps_at_path_end(self):
        cams = dolly_trajectory(
            np.array([0.0, 0.0, -10.0]),
            np.array([0.0, 0.0, -2.0]),
            np.zeros(3),
            TrajectoryConfig(num_frames=5, speed=10.0),
        )
        assert np.allclose(cams[-1].position, [0, 0, -2], atol=1e-9)


class TestPan:
    def test_eye_fixed(self):
        eye = np.array([1.0, 2.0, 3.0])
        cams = pan_trajectory(eye, np.array([5.0, 2.0, 3.0]), TrajectoryConfig(num_frames=6))
        for cam in cams:
            assert np.allclose(cam.position, eye, atol=1e-9)

    def test_view_direction_rotates(self):
        cams = pan_trajectory(
            np.zeros(3), np.array([5.0, 0.0, 0.0]),
            TrajectoryConfig(num_frames=2), degrees_per_frame=10.0,
        )
        fwd0 = cams[0].world_to_camera[2, :3]
        fwd1 = cams[1].world_to_camera[2, :3]
        angle = np.degrees(np.arccos(np.clip(fwd0 @ fwd1, -1, 1)))
        assert angle == pytest.approx(10.0, abs=0.1)

    def test_coincident_target_rejected(self):
        with pytest.raises(ValueError):
            pan_trajectory(np.zeros(3), np.zeros(3), TrajectoryConfig(num_frames=2))


class TestFlythrough:
    def test_follows_waypoints(self):
        waypoints = np.array([[0.0, 5.0, 0.0], [10.0, 5.0, 0.0], [10.0, 5.0, 10.0]])
        cams = flythrough_trajectory(waypoints, TrajectoryConfig(num_frames=9))
        assert len(cams) == 9
        assert np.allclose(cams[0].position, waypoints[0])
        # Positions stay on the polyline's bounding box.
        for cam in cams:
            assert (cam.position >= waypoints.min(axis=0) - 1e-9).all()
            assert (cam.position <= waypoints.max(axis=0) + 1e-9).all()

    def test_rejects_degenerate_path(self):
        with pytest.raises(ValueError):
            flythrough_trajectory(np.zeros((3, 3)), TrajectoryConfig(num_frames=3))
        with pytest.raises(ValueError):
            flythrough_trajectory(np.zeros((1, 3)), TrajectoryConfig(num_frames=3))


class TestShake:
    def test_jitters_around_base_pose(self):
        eye = np.array([5.0, 1.0, 0.0])
        cams = shake_trajectory(eye, np.zeros(3), TrajectoryConfig(num_frames=12),
                                amplitude=0.2)
        assert len(cams) == 12
        offsets = np.array([cam.position - eye for cam in cams])
        # Bounded by the amplitude envelope but genuinely non-monotone.
        assert np.abs(offsets).max() <= 0.2 + 1e-9
        assert np.abs(offsets).max() > 0.01
        steps = np.linalg.norm(np.diff([c.position for c in cams], axis=0), axis=1)
        assert (steps > 0).all()

    def test_zero_amplitude_is_static(self):
        cams = shake_trajectory(np.array([3.0, 0.0, 0.0]), np.zeros(3),
                                TrajectoryConfig(num_frames=4), amplitude=0.0)
        for cam in cams[1:]:
            assert np.allclose(cam.position, cams[0].position)

    def test_validation(self):
        config = TrajectoryConfig(num_frames=2)
        with pytest.raises(ValueError):
            shake_trajectory(np.zeros(3), np.ones(3), config, amplitude=-0.1)
        with pytest.raises(ValueError):
            shake_trajectory(np.zeros(3), np.ones(3), config, frequency_hz=0.0)


class TestTeleport:
    def test_holds_then_jumps(self):
        cams = teleport_trajectory(np.zeros(3), radius=5.0,
                                   config=TrajectoryConfig(num_frames=8),
                                   hold_frames=4, jump_degrees=90.0)
        positions = np.array([c.position for c in cams])
        # Frames 0-3 identical, then one large discontinuity, then 4-7 identical.
        assert np.allclose(positions[:4], positions[0])
        assert np.allclose(positions[4:], positions[4])
        jump = np.linalg.norm(positions[4] - positions[3])
        assert jump > 5.0  # 90 degrees on a radius-5 orbit is a ~7 unit chord
        for cam in cams:
            assert np.linalg.norm(cam.position) == pytest.approx(5.0)

    def test_speed_scales_jump(self):
        slow = teleport_trajectory(np.zeros(3), 5.0, TrajectoryConfig(num_frames=4, speed=1.0),
                                   hold_frames=1, jump_degrees=10.0)
        fast = teleport_trajectory(np.zeros(3), 5.0, TrajectoryConfig(num_frames=4, speed=4.0),
                                   hold_frames=1, jump_degrees=10.0)
        step_slow = np.linalg.norm(slow[1].position - slow[0].position)
        step_fast = np.linalg.norm(fast[1].position - fast[0].position)
        assert step_fast > 3.5 * step_slow

    def test_validation(self):
        config = TrajectoryConfig(num_frames=2)
        with pytest.raises(ValueError):
            teleport_trajectory(np.zeros(3), 0.0, config)
        with pytest.raises(ValueError):
            teleport_trajectory(np.zeros(3), 5.0, config, hold_frames=0)


class TestArchetypes:
    def test_every_archetype_builds_for_every_scene_family(self):
        for scene in ("family", "building"):
            for archetype in TRAJECTORY_ARCHETYPES:
                cams = archetype_trajectory(scene, archetype, num_frames=3,
                                            width=160, height=90)
                assert len(cams) == 3
                assert cams[0].width == 160

    def test_default_trajectory_is_an_archetype(self):
        # The refactor must preserve the historical default captures exactly.
        for scene, archetype in (("family", "orbit"), ("building", "flythrough")):
            default = default_trajectory(scene, num_frames=4, width=160, height=90)
            named = archetype_trajectory(scene, archetype, num_frames=4,
                                         width=160, height=90)
            for a, b in zip(default, named):
                assert np.allclose(a.position, b.position)
                assert np.allclose(a.world_to_camera, b.world_to_camera)

    def test_unknown_archetype(self):
        with pytest.raises(KeyError):
            archetype_trajectory("family", "spiral", num_frames=2)


class TestIterFramePairs:
    def test_pairs(self, camera_path):
        pairs = list(iter_frame_pairs(camera_path))
        assert len(pairs) == len(camera_path) - 1
        assert pairs[0][0] is camera_path[0]
        assert pairs[0][1] is camera_path[1]
