"""Sweep result aggregation and writers (JSON, CSV, markdown).

A :class:`SweepReport` is the pure data product of executing a sweep: the
canonical spec, the code version it was computed under, and one metrics row
per grid point in grid order.  Execution metadata (wall time, cache hits,
job count) deliberately stays out — a report is a function of
(spec, code version) only, so serial and parallel runs, and cold and warm
runs, serialize byte-identically.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class SweepReport:
    """Aggregated results of one sweep execution.

    Attributes
    ----------
    name / description:
        Copied from the spec.
    spec:
        The canonical spec dict (:meth:`SweepSpec.to_dict`).
    code_version:
        Package-source digest the rows were computed under.
    rows:
        One flat metrics dict per grid point, in grid order.
    """

    name: str
    description: str
    spec: dict[str, Any]
    code_version: str
    rows: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Grid points recorded."""
        return len(self.rows)

    def columns(self) -> list[str]:
        """Union of row keys in first-seen order (stable across runs)."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, key: str) -> list:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **conditions) -> list[dict[str, Any]]:
        """Rows matching all key=value conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "spec": self.spec,
            "code_version": self.code_version,
            "rows": self.rows,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SweepReport":
        """Rebuild a report from its plain-dict form."""
        missing = [k for k in ("name", "spec", "code_version", "rows") if k not in payload]
        if missing:
            raise ValueError(f"not a sweep report: missing keys {missing}")
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            spec=payload["spec"],
            code_version=payload["code_version"],
            rows=list(payload["rows"]),
        )

    def write_json(self, path: str | Path) -> Path:
        """Write the report as deterministic JSON (sorted keys)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "SweepReport":
        """Read a report previously written by :meth:`write_json`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def write_csv(self, path: str | Path) -> Path:
        """Write the rows as CSV (one line per grid point).

        ``None`` serializes as an empty cell; :func:`read_csv_rows` undoes
        the string coercion for round-trips.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = self.columns()
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
        return path

    def to_markdown(self, max_rows: int | None = None) -> str:
        """Render a GitHub-flavoured markdown summary table."""
        lines = [f"# Sweep `{self.name}`", ""]
        if self.description:
            lines += [self.description, ""]
        lines += [
            f"- points: {self.num_points}",
            f"- code version: `{self.code_version}`",
            "",
        ]
        if not self.rows:
            lines.append("(no rows)")
            return "\n".join(lines)
        columns = self.columns()
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for row in shown:
            lines.append("| " + " | ".join(_fmt_cell(row.get(k)) for k in columns) + " |")
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append("")
            lines.append(f"({len(self.rows) - max_rows} more rows omitted)")
        return "\n".join(lines)

    def write_markdown(self, path: str | Path) -> Path:
        """Write the markdown summary table."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown() + "\n", encoding="utf-8")
        return path


def _fmt_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def read_csv_rows(path: str | Path) -> list[dict[str, Any]]:
    """Read a :meth:`SweepReport.write_csv` file back into typed rows.

    Cells are coerced empty-string -> None, then int, then float, falling
    back to the raw string — the inverse of the writer for the value types
    sweep rows contain.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        return [
            {key: _coerce_cell(value) for key, value in row.items()}
            for row in csv.DictReader(handle)
        ]


def _coerce_cell(text: str | None) -> Any:
    if text is None or text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text
