"""Ablation bench: single vs multiple off-chip sorting passes.

Section 4.3: more passes buy more accurate ordering but traffic scales
linearly with the pass count; a single pass loses <0.1 dB, so the paper
adopts one.  This bench reproduces the accuracy/traffic trade-off on the
functional pipeline.
"""

import numpy as np

from repro.core.strategies import NeoSortStrategy
from repro.metrics.image import psnr
from repro.pipeline.renderer import Renderer
from repro.scene import default_trajectory, load_scene

PASSES = (1, 2, 4)


def _run_passes():
    scene = load_scene("family", num_gaussians=1600)
    cameras = default_trajectory("family", num_frames=6, width=192, height=108)
    reference = Renderer(scene).render_sequence(cameras)
    rows = []
    for passes in PASSES:
        strategy = NeoSortStrategy(passes=passes)
        records = Renderer(scene, strategy=strategy).render_sequence(cameras)
        quality = np.mean(
            [psnr(a.image, b.image) for a, b in zip(reference[1:], records[1:])]
        )
        reorder_bytes = sum(fs.reorder.bytes_read for fs in strategy.frame_stats)
        rows.append(
            {"passes": passes, "psnr_vs_exact": float(quality), "reorder_bytes": reorder_bytes}
        )
    return rows


def test_ablation_sort_passes(benchmark):
    rows = benchmark.pedantic(_run_passes, rounds=1, iterations=1)
    for row in rows:
        print(row)

    by_passes = {row["passes"]: row for row in rows}
    # Traffic scales linearly with passes.
    assert by_passes[2]["reorder_bytes"] > 1.8 * by_passes[1]["reorder_bytes"]
    assert by_passes[4]["reorder_bytes"] > 3.6 * by_passes[1]["reorder_bytes"]
    # A single pass is already visually lossless (the paper's <0.1 dB):
    # extra passes buy at most marginal quality.
    assert by_passes[1]["psnr_vs_exact"] > 45.0
    assert by_passes[4]["psnr_vs_exact"] >= by_passes[1]["psnr_vs_exact"] - 0.5
