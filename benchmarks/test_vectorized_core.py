"""Bench: vectorized sequence core vs the historical per-frame loop.

The :class:`~repro.hw.system.SystemModel` refactor replaced each model's
per-frame Python loop with one NumPy evaluation over the frame axis.  This
bench builds a long (200-frame) synthetic trajectory — no scene capture, so
it isolates the simulation core — times both paths for every base system,
and asserts (a) bit-identical reports and (b) a wall-clock speedup floor.
"""

from __future__ import annotations

import pytest

from repro.bench.suites import _best_of, reports_identical
from repro.bench.synthetic import NUM_FRAMES, synthetic_workloads
from repro.experiments.runner import build_system_model
from repro.hw import reference

# Wall-clock assertions don't belong in the fast CI leg; like the other
# timing-sensitive benches here, run only in the full (slow) suite.
pytestmark = pytest.mark.slow

#: Wall-clock floor asserted for simulate() vs the per-frame loop.  The
#: measured advantage is ~1.7-2.3x (report-object construction is common to
#: both paths; the equations themselves vectorize ~20x); 1.3x keeps CI
#: noise-proof.
SPEEDUP_FLOOR = 1.3

SYSTEMS = ("orin", "gscore", "neo")


def measure(system: str, num_frames: int = NUM_FRAMES) -> dict:
    """Time the vectorized core vs the scalar per-frame loop for one system."""
    model, tile = build_system_model(system)
    workloads = synthetic_workloads(num_frames, tile)
    scalar_s, scalar_report = _best_of(lambda: reference.scalar_simulate(model, workloads))
    vector_s, vector_report = _best_of(lambda: model.simulate(workloads))
    identical = reports_identical(vector_report, scalar_report)
    return {
        "system": system,
        "frames": num_frames,
        "per_frame_loop_ms": scalar_s * 1e3,
        "vectorized_ms": vector_s * 1e3,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "identical": identical,
    }


def test_vectorized_core_speedup_and_identity():
    for system in SYSTEMS:
        stats = measure(system)
        print(
            f"\n{system:>8}: per-frame {stats['per_frame_loop_ms']:7.2f} ms, "
            f"vectorized {stats['vectorized_ms']:7.2f} ms "
            f"({stats['speedup']:.1f}x over {stats['frames']} frames)"
        )
        assert stats["identical"], f"{system}: vectorized core diverged from scalar loop"
        assert stats["speedup"] > SPEEDUP_FLOOR, (
            f"{system}: vectorized core only {stats['speedup']:.2f}x over the "
            f"per-frame loop (floor {SPEEDUP_FLOOR}x)"
        )


def test_variant_overlays_match_reference_on_long_trajectory():
    # Variants flip equation branches (cold start, random-access pass,
    # bitmap traffic); pin them on the long trajectory too.
    for system in ("neo-s", "neo-eager-depth", "orin-neo-sw", "gscore-32c", "neo-lite"):
        model, tile = build_system_model(system)
        workloads = synthetic_workloads(32, tile)
        got = model.simulate(workloads)
        want = reference.scalar_simulate(model, workloads)
        for g, w in zip(got.frames, want.frames):
            assert g.traffic.sorting == w.traffic.sorting
            assert g.memory_time_s == w.memory_time_s
            assert g.compute_time_s == w.compute_time_s
