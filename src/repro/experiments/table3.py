"""Table 3 — area and power of the GSCore and Neo accelerators at 7 nm / 1 GHz."""

from __future__ import annotations

from ..hw.area_power import gscore_summary, neo_summary
from .runner import ExperimentResult


def run() -> ExperimentResult:
    """Total area (mm^2) and power (mW) for both accelerators."""
    result = ExperimentResult(
        name="table3",
        description="Accelerator area/power at 7 nm, 1 GHz",
    )
    for entry in (gscore_summary(), neo_summary()):
        result.rows.append(
            {
                "device": entry.name,
                "technology": "7 nm",
                "frequency": "1 GHz",
                "area_mm2": entry.area_mm2,
                "power_mw": entry.power_mw,
            }
        )
    return result
