"""Pinhole camera model used by the 3DGS pipeline.

The renderer needs, per frame: a world-to-camera rigid transform, pinhole
intrinsics, and the image resolution.  Resolutions referenced throughout the
paper (HD / FHD / QHD / UHD) are provided as named presets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Named resolutions from the paper (section 3.1 and 6.1).
RESOLUTIONS: dict[str, tuple[int, int]] = {
    "hd": (1280, 720),
    "fhd": (1920, 1080),
    "qhd": (2560, 1440),
    "uhd": (3840, 2160),
}


def resolution(name: str) -> tuple[int, int]:
    """Look up a named resolution, case-insensitively.

    >>> resolution("QHD")
    (2560, 1440)
    """
    key = name.lower()
    if key not in RESOLUTIONS:
        raise KeyError(f"unknown resolution {name!r}; options: {sorted(RESOLUTIONS)}")
    return RESOLUTIONS[key]


def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray | None = None) -> np.ndarray:
    """Build a world-to-camera rotation/translation from a look-at spec.

    Returns a ``(4, 4)`` matrix mapping world homogeneous points to camera
    space with +z pointing into the scene (OpenCV convention).
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if up is None:
        up = np.array([0.0, 1.0, 0.0])
    up = np.asarray(up, dtype=np.float64)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide")
    forward = forward / norm
    right = np.cross(forward, up)
    rnorm = np.linalg.norm(right)
    if rnorm < 1e-9:
        # up parallel to forward: pick an arbitrary perpendicular axis.
        alt = np.array([1.0, 0.0, 0.0]) if abs(forward[0]) < 0.9 else np.array([0.0, 0.0, 1.0])
        right = np.cross(forward, alt)
        rnorm = np.linalg.norm(right)
    right = right / rnorm
    true_up = np.cross(right, forward)

    rot = np.stack([right, -true_up, forward])  # rows: camera x, y, z axes
    mat = np.eye(4)
    mat[:3, :3] = rot
    mat[:3, 3] = -rot @ eye
    return mat


@dataclass(frozen=True)
class Camera:
    """Pinhole camera with OpenCV-style conventions (+z forward).

    Parameters
    ----------
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    world_to_camera:
        ``(4, 4)`` rigid transform from world to camera coordinates.
    near, far:
        Clip plane depths used by frustum culling.
    """

    width: int
    height: int
    fx: float
    fy: float
    world_to_camera: np.ndarray
    near: float = 0.1
    far: float = 1000.0

    def __post_init__(self) -> None:
        mat = np.asarray(self.world_to_camera, dtype=np.float64)
        if mat.shape != (4, 4):
            raise ValueError(f"world_to_camera must be (4, 4), got {mat.shape}")
        object.__setattr__(self, "world_to_camera", mat)
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")
        if not 0 < self.near < self.far:
            raise ValueError("need 0 < near < far")

    @property
    def cx(self) -> float:
        """Principal point x (image center)."""
        return self.width / 2.0

    @property
    def cy(self) -> float:
        """Principal point y (image center)."""
        return self.height / 2.0

    @property
    def position(self) -> np.ndarray:
        """Camera center in world coordinates."""
        rot = self.world_to_camera[:3, :3]
        trans = self.world_to_camera[:3, 3]
        return -rot.T @ trans

    @property
    def tan_half_fov_x(self) -> float:
        """Tangent of the half horizontal field of view."""
        return self.width / (2.0 * self.fx)

    @property
    def tan_half_fov_y(self) -> float:
        """Tangent of the half vertical field of view."""
        return self.height / (2.0 * self.fy)

    def transform_points(self, points: np.ndarray) -> np.ndarray:
        """Map world-space points ``(n, 3)`` into camera space."""
        points = np.asarray(points, dtype=np.float64)
        rot = self.world_to_camera[:3, :3]
        trans = self.world_to_camera[:3, 3]
        return points @ rot.T + trans

    def project(self, cam_points: np.ndarray) -> np.ndarray:
        """Project camera-space points to pixel coordinates ``(n, 2)``.

        Depths at or behind the camera are clamped to a small epsilon so the
        caller (frustum culling) can still reason about off-screen positions.
        """
        cam_points = np.asarray(cam_points, dtype=np.float64)
        z = np.maximum(cam_points[:, 2], 1e-9)
        u = self.fx * cam_points[:, 0] / z + self.cx
        v = self.fy * cam_points[:, 1] / z + self.cy
        return np.stack([u, v], axis=1)

    def with_resolution(self, width: int, height: int) -> "Camera":
        """Return a camera at a new resolution with the same field of view."""
        scale_x = width / self.width
        scale_y = height / self.height
        return replace(self, width=width, height=height, fx=self.fx * scale_x, fy=self.fy * scale_y)

    @staticmethod
    def from_fov(
        width: int,
        height: int,
        fov_y_degrees: float,
        world_to_camera: np.ndarray | None = None,
        near: float = 0.1,
        far: float = 1000.0,
    ) -> "Camera":
        """Construct a camera from a vertical field of view in degrees."""
        if not 0 < fov_y_degrees < 180:
            raise ValueError("fov_y_degrees must be in (0, 180)")
        fy = height / (2.0 * np.tan(np.radians(fov_y_degrees) / 2.0))
        fx = fy  # square pixels
        if world_to_camera is None:
            world_to_camera = np.eye(4)
        return Camera(
            width=width,
            height=height,
            fx=fx,
            fy=fy,
            world_to_camera=world_to_camera,
            near=near,
            far=far,
        )
