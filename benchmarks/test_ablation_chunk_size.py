"""Ablation bench: Dynamic Partial Sorting chunk size.

The paper fixes the chunk at 256 entries (the Sorting Core's on-chip
capacity).  This sweep shows the trade-off that choice sits on: larger
chunks correct larger displacements per pass (fewer residual inversions)
but need more on-chip buffer; traffic is one read+write of the table
regardless of chunk size (that invariance is the design's point).
"""

import numpy as np

from repro.core.dynamic_partial_sort import (
    dynamic_partial_sort,
    max_displacement,
    sortedness,
)

CHUNK_SIZES = (32, 64, 128, 256, 512)


def _perturbed_table(n=4096, drift=60, seed=3):
    rng = np.random.default_rng(seed)
    keys = np.arange(n, dtype=np.float64) + rng.uniform(-drift, drift, size=n)
    return keys, np.arange(n, dtype=np.int64)


def _sweep():
    rows = []
    for chunk in CHUNK_SIZES:
        keys, values = _perturbed_table()
        stats = None
        for iteration in range(1, 4):
            keys, values, stats = dynamic_partial_sort(
                keys, values, iteration=iteration, chunk_size=chunk
            )
        rows.append(
            {
                "chunk": chunk,
                "sortedness": sortedness(keys),
                "max_disp": max_displacement(keys),
                "entries_read": stats.entries_read,
            }
        )
    return rows


def test_ablation_chunk_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for row in rows:
        print(row)

    by_chunk = {row["chunk"]: row for row in rows}
    # Larger chunks converge at least as well after the same pass count...
    disps = [by_chunk[c]["max_disp"] for c in CHUNK_SIZES]
    assert disps == sorted(disps, reverse=True) or disps[-1] <= disps[0]
    # ...and the paper's 256 choice fully absorbs the 60-position drift of
    # a typical frame within three passes.
    assert by_chunk[256]["max_disp"] == 0
    # Off-chip traffic is chunk-size independent (single-pass invariant).
    reads = {row["entries_read"] for row in rows}
    assert len(reads) == 1
