"""Bench-trend gate: fail CI when speedups regress vs the committed baseline.

The `repro bench` gate enforces *absolute* speedup floors, which are set
conservatively so machine noise cannot flake the job — meaning a path can
gradually decay from 2.5x toward its 1.3x floor without CI ever noticing.
This script closes that gap: it diffs a fresh ``BENCH_pipeline.json``
against the committed baseline and exits nonzero when any recorded
speedup regressed by more than ``--max-regression`` (default 25%).

Benchmarks present only in the fresh run (newly added, baseline not yet
refreshed) pass with a note; benchmarks missing from the fresh run fail —
a silently dropped benchmark is exactly the regression this gate exists
to catch.

Usage (the CI bench-smoke job)::

    repro bench --quick --out BENCH_fresh.json
    python benchmarks/bench_trend.py \\
        --baseline BENCH_pipeline.json --fresh BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    return {bench["name"]: bench for bench in report.get("benchmarks", [])}


def compare(
    baseline: dict[str, dict], fresh: dict[str, dict], max_regression: float
) -> tuple[list[str], bool]:
    """Per-benchmark trend lines plus an overall pass verdict."""
    lines = []
    ok = True
    for name, base in baseline.items():
        if name not in fresh:
            lines.append(f"{name:18s} MISSING from fresh run (baseline {base['speedup']:.2f}x)")
            ok = False
            continue
        base_speedup = float(base["speedup"])
        fresh_speedup = float(fresh[name]["speedup"])
        ratio = fresh_speedup / base_speedup if base_speedup > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - max_regression:
            status = f"REGRESSED >{max_regression:.0%}"
            ok = False
        lines.append(
            f"{name:18s} baseline {base_speedup:5.2f}x   fresh {fresh_speedup:5.2f}x   "
            f"({ratio:6.1%} of baseline)  [{status}]"
        )
    for name, bench in fresh.items():
        if name not in baseline:
            lines.append(
                f"{name:18s} new benchmark ({bench['speedup']:.2f}x), "
                "not in the committed baseline yet"
            )
    return lines, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_pipeline.json",
        help="committed baseline artifact (default BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--fresh", required=True, help="artifact from the fresh `repro bench` run"
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="maximum allowed fractional speedup loss vs baseline (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load bench artifacts: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline!r}", file=sys.stderr)
        return 2

    lines, ok = compare(baseline, fresh, args.max_regression)
    print(f"bench trend vs {args.baseline} (max regression {args.max_regression:.0%}):")
    for line in lines:
        print(f"  {line}")
    if not ok:
        print(
            "error: at least one benchmark regressed beyond the trend threshold "
            "(or vanished); if intentional, refresh the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
