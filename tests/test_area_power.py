"""Unit tests for the area/power model (Tables 3-4)."""

import pytest

from repro.hw.area_power import (
    engine_summaries,
    gscore_summary,
    neo_breakdown,
    neo_summary,
    scale_technology,
)
from repro.hw.config import NeoConfig


class TestTechnologyScaling:
    def test_identity_at_same_node(self):
        assert scale_technology(1.0, 100.0, 7, 7) == (1.0, 100.0)

    def test_shrink_from_28nm(self):
        area, power = scale_technology(1.0, 100.0, 28, 7)
        assert area < 0.2
        assert power < 0.5 * 100

    def test_roundtrip(self):
        area, power = scale_technology(1.0, 100.0, 28, 7)
        back_area, back_power = scale_technology(area, power, 7, 28)
        assert back_area == pytest.approx(1.0)
        assert back_power == pytest.approx(100.0)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            scale_technology(1.0, 1.0, 5)


class TestTable3:
    def test_neo_matches_paper(self):
        total = neo_summary()
        assert total.area_mm2 == pytest.approx(0.387, abs=0.002)
        assert total.power_mw == pytest.approx(797.8, abs=1.0)

    def test_gscore_matches_paper(self):
        entry = gscore_summary()
        assert entry.area_mm2 == pytest.approx(0.417, abs=0.002)
        assert entry.power_mw == pytest.approx(719.9, abs=1.0)

    def test_neo_smaller_than_gscore(self):
        assert neo_summary().area_mm2 < gscore_summary().area_mm2


class TestTable4:
    def test_component_rows_match_paper(self):
        by_name = {e.name: e for e in neo_breakdown()}
        assert by_name["Merge Sort Unit+"].area_mm2 == pytest.approx(0.005, abs=5e-4)
        assert by_name["Merge Sort Unit+"].power_mw == pytest.approx(12.4, abs=0.5)
        assert by_name["Bitonic Sort Unit"].power_mw == pytest.approx(75.0, abs=0.5)
        assert by_name["Subtile Compute Unit"].area_mm2 == pytest.approx(0.228, abs=1e-3)
        assert by_name["Intersection Test Unit"].power_mw == pytest.approx(58.7, abs=0.5)

    def test_engine_rollup_matches_paper(self):
        engines = {e.name: e for e in engine_summaries()}
        assert engines["Preprocessing Engine"].power_mw == pytest.approx(194.9, abs=0.5)
        assert engines["Sorting Engine"].area_mm2 == pytest.approx(0.053, abs=1e-3)
        assert engines["Rasterization Engine"].power_mw == pytest.approx(443.9, abs=1.0)

    def test_added_hardware_is_cheap(self):
        # The MSU+ and ITUs (Neo's additions) cost ~9% of area and power.
        total = neo_summary()
        added = [
            e for e in neo_breakdown()
            if e.name in ("Merge Sort Unit+", "Intersection Test Unit")
        ]
        area_share = sum(e.area_mm2 for e in added) / total.area_mm2
        power_share = sum(e.power_mw for e in added) / total.power_mw
        assert area_share == pytest.approx(0.0904, abs=0.01)
        assert power_share == pytest.approx(0.0891, abs=0.01)

    def test_scaling_with_configuration(self):
        double_sort = NeoConfig(sorting_cores=32)
        bigger = {e.name: e for e in neo_breakdown(double_sort)}
        base = {e.name: e for e in neo_breakdown()}
        assert bigger["Bitonic Sort Unit"].area_mm2 == pytest.approx(
            2 * base["Bitonic Sort Unit"].area_mm2
        )
        assert bigger["Subtile Compute Unit"].area_mm2 == base["Subtile Compute Unit"].area_mm2
