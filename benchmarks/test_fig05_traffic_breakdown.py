"""Bench: Fig. 5 — DRAM traffic breakdown of GPU 3DGS and GSCore."""

import pytest

from repro.experiments import fig05

from conftest import run_once

pytestmark = pytest.mark.slow


def test_fig05_traffic_breakdown(benchmark, bench_frames):
    result = run_once(benchmark, fig05.run, num_frames=bench_frames)
    print("\n" + result.to_text())

    # Paper: sorting dominates — up to 91% of GPU traffic and 63-69% of
    # GSCore traffic; GSCore cuts total traffic versus the GPU.
    gpu_qhd = result.filter(system="orin", resolution="qhd")[0]
    gsc_qhd = result.filter(system="gscore", resolution="qhd")[0]
    assert gpu_qhd["sorting_share"] > 0.80
    assert 0.5 < gsc_qhd["sorting_share"] < 0.85
    assert gsc_qhd["total_gb"] < 0.5 * gpu_qhd["total_gb"]

    # Sorting share grows with resolution on the GPU (81% -> 91%).
    gpu_hd = result.filter(system="orin", resolution="hd")[0]
    assert gpu_qhd["sorting_share"] > gpu_hd["sorting_share"]

    # Traffic grows with resolution for both systems.
    for system in ("orin", "gscore"):
        rows = {r["resolution"]: r["total_gb"] for r in result.filter(system=system)}
        assert rows["hd"] < rows["fhd"] < rows["qhd"]
