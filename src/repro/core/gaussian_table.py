"""Per-tile Gaussian table: the state Neo carries across frames.

Each tile owns a table of ``(Gaussian ID, depth, valid bit)`` entries ordered
(approximately) front-to-back.  The table is the unit of reuse: reordering,
insertion, deletion, and the deferred depth update (paper Figure 8) all
operate on it in place of a from-scratch per-frame sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Bytes per table entry in off-chip memory: 32-bit Gaussian ID + 32-bit
#: depth; the valid bit rides in the ID's top bit.  Drives the traffic model.
TABLE_ENTRY_BYTES = 8


@dataclass
class GaussianTable:
    """One tile's sorted Gaussian table.

    Attributes
    ----------
    ids:
        ``(n,)`` global Gaussian IDs in (approximate) depth order.
    depths:
        ``(n,)`` depth keys; may be one frame stale under Neo's deferred
        depth update.
    valid:
        ``(n,)`` valid bits; ``False`` marks entries scheduled for lazy
        deletion at the next merge.
    """

    ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    depths: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))
    valid: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.depths = np.asarray(self.depths, dtype=np.float64)
        if self.valid.shape[0] != self.ids.shape[0]:
            if self.valid.shape[0] == 0:
                self.valid = np.ones(self.ids.shape[0], dtype=bool)
            else:
                raise ValueError("valid must align with ids")
        else:
            self.valid = np.asarray(self.valid, dtype=bool)
        if self.depths.shape != self.ids.shape:
            raise ValueError("depths must align with ids")
        if len(np.unique(self.ids)) != self.ids.shape[0]:
            raise ValueError("duplicate Gaussian IDs in table")

    def __len__(self) -> int:
        return self.ids.shape[0]

    @property
    def num_valid(self) -> int:
        """Entries that will survive the next lazy-deletion merge."""
        return int(np.count_nonzero(self.valid))

    @property
    def size_bytes(self) -> int:
        """Off-chip footprint of the table."""
        return len(self) * TABLE_ENTRY_BYTES

    @staticmethod
    def from_sorted(ids: np.ndarray, depths: np.ndarray) -> "GaussianTable":
        """Build a table from already depth-sorted entries."""
        return GaussianTable(
            ids=np.asarray(ids, dtype=np.int64).copy(),
            depths=np.asarray(depths, dtype=np.float64).copy(),
            valid=np.ones(np.asarray(ids).shape[0], dtype=bool),
        )

    def copy(self) -> "GaussianTable":
        """Deep copy (tables mutate across frames)."""
        return GaussianTable(
            ids=self.ids.copy(), depths=self.depths.copy(), valid=self.valid.copy()
        )

    def mark_invalid(self, invalid_ids: np.ndarray) -> int:
        """Clear valid bits for ``invalid_ids``; returns how many were found.

        This models the Rasterization Engine writing back the cumulative-OR
        intersection bitmaps (paper section 5.4): entries flagged here are
        *not* removed yet — the MSU+ drops them during the next merge.
        """
        invalid_ids = np.asarray(invalid_ids, dtype=np.int64)
        if invalid_ids.size == 0:
            return 0
        mask = np.isin(self.ids, invalid_ids)
        hit = int(np.count_nonzero(mask & self.valid))
        self.valid[mask] = False
        return hit

    def set_valid_bits(self, valid: np.ndarray) -> None:
        """Overwrite the valid-bit column (aligned with the current order)."""
        valid = np.asarray(valid, dtype=bool)
        if valid.shape[0] != len(self):
            raise ValueError("valid mask must align with table")
        self.valid = valid.copy()

    def update_depths(self, id_to_depth: dict[int, float] | None = None,
                      ids: np.ndarray | None = None,
                      depths: np.ndarray | None = None) -> int:
        """Deferred depth update: overwrite stored depths for known IDs.

        Either pass a mapping or parallel ``ids``/``depths`` arrays.  Entries
        not mentioned keep their stale depth (e.g. Gaussians that were
        culled this frame).  Returns the number of entries refreshed.
        """
        if id_to_depth is not None:
            ids = np.fromiter(id_to_depth.keys(), dtype=np.int64, count=len(id_to_depth))
            depths = np.fromiter(id_to_depth.values(), dtype=np.float64, count=len(id_to_depth))
        if ids is None or depths is None:
            raise ValueError("provide id_to_depth or ids+depths")
        ids = np.asarray(ids, dtype=np.int64)
        depths = np.asarray(depths, dtype=np.float64)
        if ids.shape != depths.shape:
            raise ValueError("ids and depths must align")
        if ids.size == 0 or len(self) == 0:
            return 0
        # Vectorized lookup: sort the update keys once, gather per table row.
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        sorted_depths = depths[order]
        pos = np.searchsorted(sorted_ids, self.ids)
        pos = np.clip(pos, 0, sorted_ids.shape[0] - 1)
        found = sorted_ids[pos] == self.ids
        self.depths[found] = sorted_depths[pos[found]]
        return int(np.count_nonzero(found))

    def compact(self) -> int:
        """Eagerly drop invalid entries (the costly path Neo avoids).

        Provided for the ablation comparing eager deletion against the MSU+
        lazy merge; returns the number of entries removed.
        """
        removed = len(self) - self.num_valid
        keep = self.valid
        self.ids = self.ids[keep]
        self.depths = self.depths[keep]
        self.valid = self.valid[keep]
        return removed

    def membership(self) -> set[int]:
        """Set of (valid) Gaussian IDs currently in the table."""
        return set(int(g) for g in self.ids[self.valid])
