"""Registry mapping paper figure/table IDs to their experiment drivers.

Each driver module exposes three things the registry surfaces:

* ``run(**params) -> ExperimentResult`` — the serial entry point;
* ``plan(**params) -> ExperimentPlan`` — the declarative form the
  :class:`~repro.experiments.engine.ExperimentEngine` collects cells from;
* ``DESCRIPTION`` — a one-line summary shown by ``repro experiments --list``.
"""

from __future__ import annotations

from collections.abc import Callable

from . import (
    bandwidth_sweep,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig09,
    fig10,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    recovery,
    table2,
    table3,
    table4,
)
from .engine import ExperimentPlan
from .runner import ExperimentResult, RunnerConfig, runner_config

#: Experiment ID -> driver module.
_MODULES = {
    "bandwidth_sweep": bandwidth_sweep,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig09": fig09,
    "fig10": fig10,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "recovery": recovery,
    "table2": table2,
    "table3": table3,
    "table4": table4,
}

#: Experiment ID -> zero-argument driver producing an ExperimentResult.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    name: module.run for name, module in _MODULES.items()
}

#: Experiment ID -> zero-argument factory producing the default ExperimentPlan.
PLANS: dict[str, Callable[[], ExperimentPlan]] = {
    name: module.plan for name, module in _MODULES.items()
}


def run_experiment(name: str, config: RunnerConfig | None = None) -> ExperimentResult:
    """Run one registered experiment by its paper ID.

    ``config`` scopes a :class:`~repro.experiments.runner.RunnerConfig`
    (frame-count override, result cache) to this run; ``None`` uses the
    process-wide active configuration.
    """
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}")
    if config is None:
        return EXPERIMENTS[key]()
    with runner_config(config):
        return EXPERIMENTS[key]()


def list_experiments() -> list[str]:
    """All registered experiment IDs, sorted."""
    return sorted(EXPERIMENTS)


def experiment_descriptions() -> dict[str, str]:
    """Experiment ID -> one-line summary, sorted by ID."""
    return {name: _MODULES[name].DESCRIPTION for name in sorted(_MODULES)}
