"""Multi-tenant simulation server: coalescing, backpressure, warm scenes.

``repro serve`` runs this asyncio service in front of the experiment
engine's cell model: every request is one
:class:`~repro.experiments.engine.SimJob`-shaped simulation cell.  Three
mechanisms turn many concurrent clients into bounded, shared work:

* **Cross-client coalescing** — the PR 3 engine dedupes identical cells
  *within one caller's batch*; the server generalizes that to N in-flight
  clients with a keyed future map.  The first request for a cell starts an
  execution; every identical request that arrives while it runs (from any
  tenant — the simulation is a pure function of the cell) awaits the same
  future, so an N-client storm on one cell costs exactly one execution.
* **Admission control** — executions queue into a bounded
  :class:`asyncio.Queue`.  A request whose cell would *start a new
  execution* while the queue is full is rejected immediately with
  ``status="rejected"`` (explicit backpressure: clients retry with their
  own policy).  Coalesced joins and cache hits add no work and are always
  admitted.  Each waiter applies its own per-request timeout without
  cancelling the shared execution (``asyncio.shield``).
* **Batched rollouts** (``--batched``) — each worker pass drains the
  admitted queue and routes the drained cells through the engine's
  ``execute_cells(batched=True)`` path, stacking compatible cells from any
  mix of tenants into one array rollout.  Reports stay byte-identical to
  per-cell execution, so ``repro loadgen --verify`` holds either way.
* **Warm scene residency** — workers run in one process, so the workload
  models' in-process memo (:func:`~repro.experiments.runner.get_workload_model`)
  keeps every scene loaded after its first use: load once, serve many
  trajectories.  The metrics report warm-hit rate per executed cell.

Results persist into per-tenant :class:`~repro.runtime.cache.ResultCache`
namespaces (``tenants/<tenant>/reports``); a tenant opts into the shared
namespace with ``shared_cache=true``.  The server itself never installs a
disk cache into the runner config, so simulation workers cannot leak rows
across tenants behind the service's back.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from ..experiments.engine import SimJob, execute_cells
from ..runtime.cache import ResultCache, stable_key
from . import protocol


def _simulate_job(job: SimJob):
    """Module-level evaluate for ``execute_cells`` (no bound state)."""
    return job.simulate()


@dataclass
class ServiceConfig:
    """Tunables for one server instance."""

    host: str = "127.0.0.1"
    port: int = 7341
    #: Worker tasks (and executor threads) running simulations.
    workers: int = 2
    #: Maximum executions waiting for a worker before admission rejects.
    queue_limit: int = 64
    #: Applied when a request names no ``timeout_s`` of its own.
    default_timeout_s: float = 60.0
    #: Root for per-tenant result namespaces; ``None`` disables persistence.
    cache_dir: str | None = None
    #: Drain queued executions per worker pass and stack compatible cells
    #: into one array rollout (see ``execute_cells(batched=True)``).
    #: Reports stay byte-identical to per-cell execution.
    batched: bool = False
    #: Test hook: replaces ``SimJob.simulate`` for queued executions (and
    #: disables rollout stacking — the hook is per-job by contract).
    simulate_fn: Callable[[SimJob], Any] | None = None

    def public_dict(self) -> dict[str, Any]:
        """JSON-safe view for the ``stats`` op (drops the callable hook)."""
        public = asdict(self)
        public.pop("simulate_fn", None)
        return public


@dataclass
class ServiceMetrics:
    """Server-side accounting, exposed verbatim through the ``stats`` op."""

    received: int = 0
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Requests arriving with ``attempt > 0`` (client-declared retries).
    retries: int = 0
    #: Unique executions dispatched to the worker pool.
    executions: int = 0
    #: Requests served by attaching to an execution another request started.
    coalesced: int = 0
    cache_hits: int = 0
    #: Executions whose scene workload was already resident in-process.
    warm_scene_hits: int = 0
    scene_loads: int = 0
    #: Executions evaluated inside a stacked rollout (``batched`` mode).
    rollout_stacked: int = 0
    #: Executions a rollout could not stack (per-cell fallback inside the batch).
    rollout_fallback: int = 0
    #: Response writes that failed because the client had gone away.
    disconnects: int = 0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of execution-bound requests served by piggybacking."""
        attached = self.executions + self.coalesced
        return self.coalesced / attached if attached else 0.0

    @property
    def warm_scene_rate(self) -> float:
        """Fraction of executions that found their scene already loaded."""
        touched = self.warm_scene_hits + self.scene_loads
        return self.warm_scene_hits / touched if touched else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            **asdict(self),
            "coalesce_rate": self.coalesce_rate,
            "warm_scene_rate": self.warm_scene_rate,
        }


@dataclass
class _Execution:
    """One in-flight simulation shared by every request with the same cell."""

    key: str
    job: SimJob
    future: asyncio.Future = field(repr=False)


class SimulationServer:
    """Asyncio TCP server speaking :mod:`repro.service.protocol`."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self._cache = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self._inflight: dict[str, _Execution] = {}
        self._queue: asyncio.Queue[_Execution] = asyncio.Queue(
            maxsize=max(1, self.config.queue_limit)
        )
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[asyncio.Task] = []
        self._resident_scenes: set[tuple] = set()
        self._stopping = asyncio.Event()
        self._started_unix = 0.0
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and launch the worker pool (returns immediately)."""
        self._started_unix = time.time()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-sim"
        )
        self._workers = [
            asyncio.create_task(self._worker(), name=f"repro-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_MESSAGE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener, drain nothing: in-flight work is abandoned."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    async def run(self) -> None:
        """Serve until the ``shutdown`` op (or task cancellation)."""
        await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection; requests pipeline and resolve out of order."""
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except ValueError as exc:
                    await self._send(
                        writer, write_lock, {"status": "error", "error": str(exc)}
                    )
                    break
                if message is None:
                    break
                task = asyncio.create_task(
                    self._handle_message(message, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            # The client is gone (EOF or protocol error).  Leave pending
            # request tasks running — their executions may be shared with
            # other clients — but close our side so their response writes
            # fail fast and are counted as disconnects.
            writer.close()

    async def _handle_message(
        self, message: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        op = message.get("op")
        request_id = message.get("id")
        if op == "simulate":
            response = await self._handle_simulate(message)
        elif op == "ping":
            response = {"id": request_id, "status": "ok", "protocol": protocol.PROTOCOL}
        elif op == "stats":
            response = {
                "id": request_id,
                "status": "ok",
                "metrics": self.metrics.as_dict(),
                "config": self.config.public_dict(),
                "uptime_s": time.time() - self._started_unix,
                "queue_depth": self._queue.qsize(),
                "inflight": len(self._inflight),
            }
        elif op == "shutdown":
            response = {"id": request_id, "status": "ok"}
            self._stopping.set()
        else:
            response = {
                "id": request_id,
                "status": "error",
                "error": f"unknown op {op!r}",
            }
        await self._send(writer, write_lock, response)

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message: dict
    ) -> bool:
        try:
            if writer.is_closing():
                raise ConnectionResetError("client connection closed")
            async with write_lock:
                writer.write(protocol.encode_message(message))
                await writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            # A waiter vanished mid-coalesce; the shared execution (and
            # every other waiter) is unaffected.
            self.metrics.disconnects += 1
            return False

    # ------------------------------------------------------------------
    # Simulation requests
    # ------------------------------------------------------------------
    async def _handle_simulate(self, message: dict) -> dict:
        self.metrics.received += 1
        request_id = message.get("id")
        start = time.perf_counter()
        try:
            if int(message.get("attempt", 0)) > 0:
                self.metrics.retries += 1
            job = protocol.job_from_payload(message["job"]).resolved()
            tenant = message.get("tenant")
            shared_cache = bool(message.get("shared_cache", False))
            timeout_s = float(message.get("timeout_s", self.config.default_timeout_s))
            cache = self._cache_view(None if shared_cache else tenant)
        except (KeyError, TypeError, ValueError) as exc:
            self.metrics.errors += 1
            return {"id": request_id, "status": "error", "error": str(exc)}

        payload = job.cache_payload()
        if cache is not None:
            hit = cache.get("reports", payload)
            if hit is not None:
                self.metrics.cache_hits += 1
                self.metrics.completed += 1
                return self._ok(request_id, hit, "cache", start)

        key = stable_key(payload)
        execution = self._inflight.get(key)
        if execution is None:
            if self._queue.full():
                self.metrics.rejected += 1
                return {
                    "id": request_id,
                    "status": "rejected",
                    "reason": "queue_full",
                    "queue_depth": self._queue.qsize(),
                }
            origin = "executed"
            execution = _Execution(
                key, job, asyncio.get_running_loop().create_future()
            )
            # Retrieve exceptions even if every waiter times out/disconnects,
            # so abandoned executions never log "exception was never retrieved".
            execution.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._inflight[key] = execution
            self._queue.put_nowait(execution)
        else:
            origin = "coalesced"
            self.metrics.coalesced += 1

        try:
            # shield: a waiter timing out must not cancel the shared run.
            report = await asyncio.wait_for(
                asyncio.shield(execution.future), timeout_s
            )
        except asyncio.TimeoutError:
            self.metrics.timeouts += 1
            return {"id": request_id, "status": "timeout", "timeout_s": timeout_s}
        except Exception as exc:  # simulation raised
            self.metrics.errors += 1
            return {"id": request_id, "status": "error", "error": str(exc)}

        if cache is not None:
            # Each waiter persists into *its own* namespace: every tenant
            # that touched the cell gets a row, and no one else does.
            cache.put("reports", payload, report)
        self.metrics.completed += 1
        return self._ok(request_id, report, origin, start)

    def _ok(self, request_id, report, origin: str, start: float) -> dict:
        return {
            "id": request_id,
            "status": "ok",
            "origin": origin,
            "elapsed_ms": (time.perf_counter() - start) * 1e3,
            "report": protocol.report_to_payload(report),
        }

    def _cache_view(self, tenant: str | None) -> ResultCache | None:
        if self._cache is None:
            return None
        return self._cache.for_tenant(tenant)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _simulate(self, job: SimJob):
        if self.config.simulate_fn is not None:
            return self.config.simulate_fn(job)
        return job.simulate()

    def _simulate_batch(self, jobs: list[SimJob]):
        """Per-job ``(ok, report-or-exception)`` pairs plus rollout stats.

        Runs on an executor thread.  In batched mode the whole drained
        batch goes through ``execute_cells(batched=True)`` — compatible
        cells stack into one array rollout, byte-identical to per-cell
        simulation — and any batch-level failure degrades to the per-job
        path so one bad cell cannot poison its batchmates' futures.
        """
        if self.config.batched and self.config.simulate_fn is None and len(jobs) > 1:
            try:
                cells = execute_cells(list(jobs), _simulate_job, cache=None, batched=True)
            except Exception:
                pass
            else:
                return [(True, value) for value in cells.values], cells.rollout
        results = []
        for job in jobs:
            try:
                results.append((True, self._simulate(job)))
            except Exception as exc:  # held per job, re-raised via the future
                results.append((False, exc))
        return results, None

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            execution = await self._queue.get()
            batch = [execution]
            if self.config.batched:
                # Drain whatever queued while we were busy: everything
                # admitted so far shares this pass (and its rollouts).
                while True:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            for member in batch:
                self.metrics.executions += 1
                scene_key = (member.job.scene, member.job.frames, member.job.speed)
                if scene_key in self._resident_scenes:
                    self.metrics.warm_scene_hits += 1
                else:
                    self._resident_scenes.add(scene_key)
                    self.metrics.scene_loads += 1
            try:
                results, rollout = await loop.run_in_executor(
                    self._executor, self._simulate_batch, [m.job for m in batch]
                )
            except Exception as exc:  # executor failure: fail the whole batch
                results, rollout = [(False, exc)] * len(batch), None
            if rollout is not None:
                self.metrics.rollout_stacked += rollout.stacked
                self.metrics.rollout_fallback += rollout.fallback
            for member, (ok, outcome) in zip(batch, results):
                if not member.future.done():
                    if ok:
                        member.future.set_result(outcome)
                    else:
                        member.future.set_exception(outcome)
                # Only now do later identical requests start a new execution
                # (or, with a cache, hit the row their waiters just wrote).
                self._inflight.pop(member.key, None)
                self._queue.task_done()


def serve(config: ServiceConfig, announce: Callable[[str], None] = print) -> None:
    """Blocking entry point used by ``repro serve``."""

    async def _run() -> None:
        server = SimulationServer(config)
        await server.start()
        announce(
            f"repro serve: listening on {config.host}:{server.port} "
            f"(workers={config.workers}, queue_limit={config.queue_limit}, "
            f"cache={'disabled' if config.cache_dir is None else config.cache_dir})"
        )
        try:
            await server._stopping.wait()
        finally:
            await server.stop()

    asyncio.run(_run())
