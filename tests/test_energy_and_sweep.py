"""Tests for the energy model and the bandwidth-sensitivity extension."""

import pytest

from repro.experiments import bandwidth_sweep
from repro.hw import GSCoreModel, NeoModel, OrinGpuModel, WorkloadModel
from repro.hw.energy import EnergyReport, efficiency_comparison, energy_report
from repro.hw.stages import SequenceReport


@pytest.fixture(scope="module")
def reports():
    wm = WorkloadModel.from_scene("family", num_frames=4, num_gaussians=1500)
    return {
        "neo": NeoModel().simulate(wm.sequence_workloads("qhd", 64)),
        "gscore": GSCoreModel().simulate(wm.sequence_workloads("qhd", 16)),
        "orin": OrinGpuModel().simulate(wm.sequence_workloads("qhd", 16)),
    }


class TestEnergy:
    def test_components_positive(self, reports):
        for report in reports.values():
            e = energy_report(report)
            assert isinstance(e, EnergyReport)
            assert e.core_mj_per_frame > 0
            assert e.dram_mj_per_frame > 0
            assert e.total_mj_per_frame == pytest.approx(
                e.core_mj_per_frame + e.dram_mj_per_frame
            )

    def test_neo_most_efficient_per_frame(self, reports):
        energies = {k: energy_report(v).total_mj_per_frame for k, v in reports.items()}
        # Despite ~11% higher power than GSCore, Neo finishes frames ~5x
        # sooner and moves ~4x fewer bytes: energy/frame is several times
        # lower; the GPU is worst on both axes.
        assert energies["neo"] < 0.5 * energies["gscore"]
        assert energies["gscore"] < energies["orin"]

    def test_per_megapixel_normalization(self, reports):
        e = energy_report(reports["neo"])
        per_mp = e.mj_per_megapixel(2560, 1440)
        assert per_mp == pytest.approx(e.total_mj_per_frame / 3.6864)

    def test_comparison_helper(self, reports):
        out = efficiency_comparison(list(reports.values()))
        assert {e.system for e in out} == {"neo", "gscore", "orin-agx"}

    def test_empty_report_rejected(self):
        empty = SequenceReport(system="neo", scene="x", resolution=(1, 1))
        with pytest.raises(ValueError):
            energy_report(empty)

    def test_unknown_system_rejected(self, reports):
        bad = SequenceReport(system="tpu", scene="x", resolution=(1, 1))
        bad.frames = reports["neo"].frames
        with pytest.raises(KeyError):
            energy_report(bad)


class TestBandwidthSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return bandwidth_sweep.run(num_frames=4)

    def test_monotone_in_bandwidth(self, result):
        neo = result.column("neo_fps")
        gscore = result.column("gscore_fps")
        assert neo == sorted(neo)
        assert gscore == sorted(gscore)

    def test_neo_realtime_at_fraction_of_gscore_budget(self, result):
        neo_bw = bandwidth_sweep.realtime_bandwidth(result, "neo")
        gscore_bw = bandwidth_sweep.realtime_bandwidth(result, "gscore")
        # Neo reaches 60 FPS within the practical on-device range
        # (17.8-59.7 GB/s); GSCore does not even at 204.8 GB/s.
        assert neo_bw <= 59.7
        assert gscore_bw == float("inf")

    def test_neo_wins_everywhere(self, result):
        for row in result.rows:
            assert row["neo_fps"] > 3 * row["gscore_fps"]

    def test_registered(self):
        from repro.experiments import list_experiments

        assert "bandwidth_sweep" in list_experiments()

    def test_scene_case_insensitive(self):
        # Regression for the sweep port: the old driver resolved scene case
        # through scene_spec(); the wrapper must keep doing so.
        result = bandwidth_sweep.run(scene="Family", num_frames=2, bandwidths=(51.2,))
        assert result.rows[0]["neo_fps"] > 0
