"""Unit tests for the pinhole camera model."""

import numpy as np
import pytest

from repro.scene.camera import RESOLUTIONS, Camera, look_at, resolution


class TestResolutionPresets:
    def test_paper_resolutions(self):
        assert resolution("hd") == (1280, 720)
        assert resolution("FHD") == (1920, 1080)
        assert resolution("qhd") == (2560, 1440)
        assert resolution("uhd") == (3840, 2160)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolution("8k")

    def test_all_presets_are_16_9(self):
        for width, height in RESOLUTIONS.values():
            assert width * 9 == height * 16


class TestLookAt:
    def test_forward_maps_to_positive_z(self):
        mat = look_at(np.array([0.0, 0.0, -5.0]), np.zeros(3))
        point = mat @ np.array([0.0, 0.0, 0.0, 1.0])
        assert point[2] == pytest.approx(5.0)
        assert point[0] == pytest.approx(0.0, abs=1e-12)

    def test_rigid_transform(self):
        mat = look_at(np.array([3.0, 2.0, 1.0]), np.array([-1.0, 0.5, 2.0]))
        rot = mat[:3, :3]
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_coincident_eye_target_rejected(self):
        with pytest.raises(ValueError):
            look_at(np.ones(3), np.ones(3))

    def test_up_parallel_to_forward_handled(self):
        mat = look_at(np.zeros(3), np.array([0.0, 5.0, 0.0]))
        assert np.isfinite(mat).all()


class TestCamera:
    def test_center_projection(self, camera):
        center = camera.position + camera.world_to_camera[:3, :3].T @ np.array([0, 0, 5.0])
        uv = camera.project(camera.transform_points(center[None]))
        assert uv[0, 0] == pytest.approx(camera.cx)
        assert uv[0, 1] == pytest.approx(camera.cy)

    def test_position_inverts_transform(self, camera):
        cam_space = camera.transform_points(camera.position[None])
        assert np.allclose(cam_space, 0.0, atol=1e-9)

    def test_with_resolution_preserves_fov(self, camera):
        scaled = camera.with_resolution(camera.width * 2, camera.height * 2)
        assert scaled.tan_half_fov_x == pytest.approx(camera.tan_half_fov_x)
        assert scaled.tan_half_fov_y == pytest.approx(camera.tan_half_fov_y)

    def test_from_fov(self):
        cam = Camera.from_fov(640, 480, fov_y_degrees=90.0)
        assert cam.fy == pytest.approx(240.0)

    def test_from_fov_rejects_bad_angle(self):
        with pytest.raises(ValueError):
            Camera.from_fov(640, 480, fov_y_degrees=0.0)
        with pytest.raises(ValueError):
            Camera.from_fov(640, 480, fov_y_degrees=180.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=10, fx=1.0, fy=1.0, world_to_camera=np.eye(4))
        with pytest.raises(ValueError):
            Camera(width=10, height=10, fx=1.0, fy=1.0,
                   world_to_camera=np.eye(4), near=2.0, far=1.0)
        with pytest.raises(ValueError):
            Camera(width=10, height=10, fx=1.0, fy=1.0, world_to_camera=np.eye(3))

    def test_depth_clamped_in_projection(self, camera):
        behind = np.array([[0.0, 0.0, -1.0]])
        uv = camera.project(behind)
        assert np.isfinite(uv).all()
