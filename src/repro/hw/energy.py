"""Energy model: joules per frame and per-pixel efficiency.

The paper reports power (Tables 3-4); combining it with the performance
models yields energy per frame — the metric a battery-powered AR/VR device
actually budgets.  Neo draws ~11 % more power than GSCore (797.8 vs
719.9 mW) but finishes QHD frames ~5x sooner, so its energy per frame is
several times lower; this module quantifies that, including DRAM access
energy, which at edge scale rivals accelerator core energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .area_power import gscore_summary, neo_summary
from .stages import SequenceReport

#: DRAM access energy per byte for LPDDR4-class memory (~4 pJ/bit).
DRAM_PJ_PER_BYTE = 32.0

#: Orin AGX board power while rendering (the 60 W envelope, derated to the
#: sustained rendering draw).
ORIN_RENDER_WATTS = 30.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one simulated sequence.

    Attributes
    ----------
    system:
        System label.
    core_mj_per_frame:
        Accelerator/GPU core energy per frame (millijoules).
    dram_mj_per_frame:
        DRAM access energy per frame (millijoules).
    """

    system: str
    core_mj_per_frame: float
    dram_mj_per_frame: float

    @property
    def total_mj_per_frame(self) -> float:
        """Core + DRAM energy per frame in millijoules."""
        return self.core_mj_per_frame + self.dram_mj_per_frame

    def mj_per_megapixel(self, width: int, height: int) -> float:
        """Energy per rendered megapixel."""
        return self.total_mj_per_frame / (width * height / 1e6)


def _device_watts(system: str) -> float:
    if system.startswith("neo"):
        return neo_summary().power_mw / 1e3
    if system.startswith("gscore"):
        return gscore_summary().power_mw / 1e3
    if system.startswith("orin"):
        return ORIN_RENDER_WATTS
    raise KeyError(f"unknown system {system!r}")


def energy_report(report: SequenceReport) -> EnergyReport:
    """Energy per frame for a simulated sequence.

    Core energy is device power times mean frame latency; DRAM energy is
    the per-frame traffic times the per-byte access energy.
    """
    if report.num_frames == 0:
        raise ValueError("empty sequence report")
    watts = _device_watts(report.system)
    core_j = watts * report.mean_latency_s
    bytes_per_frame = report.total_traffic.total / report.num_frames
    dram_j = bytes_per_frame * DRAM_PJ_PER_BYTE * 1e-12
    return EnergyReport(
        system=report.system,
        core_mj_per_frame=core_j * 1e3,
        dram_mj_per_frame=dram_j * 1e3,
    )


def efficiency_comparison(reports: list[SequenceReport]) -> list[EnergyReport]:
    """Energy reports for several systems over the same workload."""
    return [energy_report(r) for r in reports]
