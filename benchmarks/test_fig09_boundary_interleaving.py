"""Bench: Fig. 9 — fixed vs interleaved chunk boundaries."""

from repro.experiments import fig09

from conftest import run_once


def test_fig09_boundary_interleaving(benchmark):
    result = run_once(
        benchmark, fig09.run, length=512, chunk_size=64, iterations=8, shuffle_distance=48
    )
    print("\n" + result.to_text())

    final = result.rows[-1]
    first = result.rows[1]
    # Paper Fig. 9: fixed boundaries never let elements cross, so the order
    # stops improving after the first pass; interleaved boundaries reach the
    # fully sorted state within a few iterations.
    assert final["interleaved_sortedness"] == 1.0
    assert final["interleaved_max_disp"] == 0
    assert final["fixed_max_disp"] == first["fixed_max_disp"]  # stuck
    assert final["fixed_sortedness"] < 1.0
