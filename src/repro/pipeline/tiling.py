"""Tile binning and Gaussian duplication (front half of the sorting stage).

3DGS subdivides the image into square tiles and duplicates every projected
Gaussian into each tile its bounding box overlaps (paper section 2.4).  The
per-tile (Gaussian ID, depth) lists produced here are the input to all
sorting strategies, and the tile-Gaussian *pair count* is the quantity that
drives the sorting stage's DRAM traffic in the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scene.camera import Camera
from .projection import ProjectedGaussians

#: Tile edge used by the Neo accelerator configuration (Table 1).
NEO_TILE_SIZE = 64

#: Tile edge used by the reference CUDA 3DGS rasterizer.
GPU_TILE_SIZE = 16

#: Shared immutable empty row list: tiles with no Gaussians all reference
#: this one array instead of allocating ``num_tiles`` fresh empties per
#: frame (QHD at 16 px tiles is ~14k tiles; empty frames are common in
#: teleport/shake stress trajectories).
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.setflags(write=False)


@dataclass(frozen=True)
class TileGrid:
    """Rectangular grid of square tiles covering the image plane."""

    width: int
    height: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    @property
    def tiles_x(self) -> int:
        """Number of tile columns."""
        return -(-self.width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows."""
        return -(-self.height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        """Total tile count."""
        return self.tiles_x * self.tiles_y

    def tile_index(self, tx: int, ty: int) -> int:
        """Flatten a (column, row) tile coordinate."""
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise IndexError(f"tile ({tx}, {ty}) outside {self.tiles_x}x{self.tiles_y} grid")
        return ty * self.tiles_x + tx

    def tile_coords(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`tile_index`."""
        if not 0 <= index < self.num_tiles:
            raise IndexError(f"tile index {index} outside grid of {self.num_tiles}")
        return index % self.tiles_x, index // self.tiles_x

    def tile_pixel_bounds(self, index: int) -> tuple[int, int, int, int]:
        """Pixel rectangle ``(x0, y0, x1, y1)`` of a tile, exclusive upper."""
        tx, ty = self.tile_coords(index)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return x0, y0, min(x0 + self.tile_size, self.width), min(y0 + self.tile_size, self.height)

    @staticmethod
    def for_camera(camera: Camera, tile_size: int = GPU_TILE_SIZE) -> "TileGrid":
        """Grid covering ``camera``'s image at the given tile size."""
        return TileGrid(width=camera.width, height=camera.height, tile_size=tile_size)


@dataclass
class TileAssignment:
    """Per-tile Gaussian lists produced by duplication.

    Attributes
    ----------
    grid:
        The tile grid the assignment refers to.
    tile_rows:
        List of length ``grid.num_tiles``; entry ``t`` holds row indices into
        the :class:`ProjectedGaussians` arrays for Gaussians overlapping tile
        ``t`` (in projection order, *unsorted* by depth).
    projected:
        The projected Gaussians the rows refer to.
    """

    grid: TileGrid
    tile_rows: list[np.ndarray]
    projected: ProjectedGaussians

    @property
    def num_pairs(self) -> int:
        """Total tile-Gaussian pairs (duplication count), the key workload stat."""
        return int(sum(rows.shape[0] for rows in self.tile_rows))

    def tile_ids(self, tile: int) -> np.ndarray:
        """Global Gaussian IDs assigned to ``tile``."""
        return self.projected.ids[self.tile_rows[tile]]

    def tile_depths(self, tile: int) -> np.ndarray:
        """Depths of the Gaussians assigned to ``tile``."""
        return self.projected.depths[self.tile_rows[tile]]

    def occupancy(self) -> np.ndarray:
        """Per-tile Gaussian counts, shape ``(num_tiles,)``."""
        return np.array([rows.shape[0] for rows in self.tile_rows], dtype=np.int64)

    def nonempty_tiles(self) -> np.ndarray:
        """Indices of tiles with at least one Gaussian."""
        return np.flatnonzero(self.occupancy() > 0)


def tile_ranges(
    projected: ProjectedGaussians, grid: TileGrid
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Inclusive tile-coordinate bounding boxes for every projected Gaussian.

    Returns ``(tx0, tx1, ty0, ty1)`` clipped to the grid; a Gaussian fully
    outside the image yields an empty range (``tx1 < tx0``).
    """
    x = projected.means2d[:, 0]
    y = projected.means2d[:, 1]
    r = projected.radii
    ts = grid.tile_size
    tx0 = np.floor((x - r) / ts).astype(np.int64)
    tx1 = np.floor((x + r) / ts).astype(np.int64)
    ty0 = np.floor((y - r) / ts).astype(np.int64)
    ty1 = np.floor((y + r) / ts).astype(np.int64)
    np.clip(tx0, 0, grid.tiles_x - 1, out=tx0)
    np.clip(ty0, 0, grid.tiles_y - 1, out=ty0)
    # Upper bounds clip to -1 below zero so off-screen splats produce empty
    # ranges instead of wrapping into tile 0.
    np.clip(tx1, -1, grid.tiles_x - 1, out=tx1)
    np.clip(ty1, -1, grid.tiles_y - 1, out=ty1)
    off = (x + r < 0) | (y + r < 0) | (x - r >= grid.width) | (y - r >= grid.height)
    tx1[off] = tx0[off] - 1
    return tx0, tx1, ty0, ty1


def assign_to_tiles(projected: ProjectedGaussians, grid: TileGrid) -> TileAssignment:
    """Duplicate projected Gaussians into every tile their bbox overlaps."""
    m = len(projected)
    if m == 0:
        return TileAssignment(
            grid=grid, tile_rows=[_EMPTY_ROWS] * grid.num_tiles, projected=projected
        )

    tx0, tx1, ty0, ty1 = tile_ranges(projected, grid)
    nx = np.maximum(tx1 - tx0 + 1, 0)
    ny = np.maximum(ty1 - ty0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())

    rows = np.repeat(np.arange(m, dtype=np.int64), counts)
    # Per-pair offset within each Gaussian's tile rectangle.
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    nx_rep = np.repeat(np.maximum(nx, 1), counts)
    dx = local % nx_rep
    dy = local // nx_rep
    tiles = (np.repeat(ty0, counts) + dy) * grid.tiles_x + np.repeat(tx0, counts) + dx

    # Refine the bbox expansion with an exact circle-vs-tile-rectangle test.
    # This matches the Rasterization Engine's ITU geometry (a circle overlaps
    # a tile iff it overlaps one of the subtiles partitioning it), so a
    # Gaussian assigned here is never immediately invalidated by the ITU.
    tile_x = (tiles % grid.tiles_x) * grid.tile_size
    tile_y = (tiles // grid.tiles_x) * grid.tile_size
    cx = projected.means2d[rows, 0]
    cy = projected.means2d[rows, 1]
    r = projected.radii[rows]
    qx = np.clip(cx, tile_x, np.minimum(tile_x + grid.tile_size, grid.width))
    qy = np.clip(cy, tile_y, np.minimum(tile_y + grid.tile_size, grid.height))
    overlap = (qx - cx) ** 2 + (qy - cy) ** 2 <= r * r
    tiles = tiles[overlap]
    rows = rows[overlap]

    if rows.shape[0] == 0:
        # Every splat was culled by the exact circle test: skip the sort and
        # share one empty row array across all tiles.
        return TileAssignment(
            grid=grid, tile_rows=[_EMPTY_ROWS] * grid.num_tiles, projected=projected
        )

    order = np.argsort(tiles, kind="stable")
    tiles_sorted = tiles[order]
    rows_sorted = rows[order]
    boundaries = np.searchsorted(tiles_sorted, np.arange(grid.num_tiles + 1))
    tile_rows = [
        rows_sorted[boundaries[t] : boundaries[t + 1]]
        if boundaries[t + 1] > boundaries[t]
        else _EMPTY_ROWS
        for t in range(grid.num_tiles)
    ]
    return TileAssignment(grid=grid, tile_rows=tile_rows, projected=projected)
