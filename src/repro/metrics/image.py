"""Image-quality metrics: PSNR, SSIM, and an LPIPS-style perceptual proxy.

The paper reports PSNR and LPIPS (Table 2, Fig. 19b).  PSNR and SSIM are
implemented exactly.  LPIPS is a learned network we cannot ship offline, so
:func:`lpips_proxy` substitutes a hand-built perceptual distance with the
same qualitative behaviour — multi-scale comparison of local luminance,
contrast and gradient structure, normalized so typical values land in the
range LPIPS produces on rendering artifacts (0.05-0.3).  Table 2 only needs
"the difference between Neo and exact sorting is ~0", for which any
monotone perceptual distance suffices.
"""

from __future__ import annotations

import numpy as np


def _validate_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim not in (2, 3):
        raise ValueError("images must be HxW or HxWxC")
    return a, b


def mse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Mean squared error between two images in [0, 1]."""
    a, b = _validate_pair(image_a, image_b)
    return float(np.mean((a - b) ** 2))


def psnr(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0,
         cap_db: float = 99.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better).

    Identical images return ``cap_db`` instead of infinity so aggregates
    stay finite.
    """
    err = mse(image_a, image_b)
    if err <= 1e-12:
        return cap_db
    return float(min(10.0 * np.log10(data_range**2 / err), cap_db))


def to_luminance(image: np.ndarray) -> np.ndarray:
    """Rec. 709 luminance of an RGB image (pass-through for grayscale)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[2] == 3:
        return image @ np.array([0.2126, 0.7152, 0.0722])
    raise ValueError(f"expected HxW or HxWx3, got {image.shape}")


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box filter with edge clamping (no scipy dependency)."""
    if radius < 1:
        return image.copy()
    size = 2 * radius + 1
    padded = np.pad(image, radius, mode="edge")
    csum = np.cumsum(padded, axis=0)
    rows = (csum[size - 1 :, :] - np.concatenate(
        [np.zeros((1, padded.shape[1])), csum[: -size, :]], axis=0)) / size
    csum = np.cumsum(rows, axis=1)
    out = (csum[:, size - 1 :] - np.concatenate(
        [np.zeros((rows.shape[0], 1)), csum[:, : -size]], axis=1)) / size
    return out


def ssim(image_a: np.ndarray, image_b: np.ndarray, radius: int = 3,
         data_range: float = 1.0) -> float:
    """Structural similarity index over luminance, box-window variant."""
    a, b = _validate_pair(image_a, image_b)
    la, lb = to_luminance(a), to_luminance(b)
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_a = _box_filter(la, radius)
    mu_b = _box_filter(lb, radius)
    var_a = _box_filter(la * la, radius) - mu_a**2
    var_b = _box_filter(lb * lb, radius) - mu_b**2
    cov = _box_filter(la * lb, radius) - mu_a * mu_b

    numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(numerator / denominator))


def _gradients(lum: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    gx = np.zeros_like(lum)
    gy = np.zeros_like(lum)
    gx[:, 1:] = lum[:, 1:] - lum[:, :-1]
    gy[1:, :] = lum[1:, :] - lum[:-1, :]
    return gx, gy


def _downsample(image: np.ndarray) -> np.ndarray:
    h, w = image.shape[0] // 2 * 2, image.shape[1] // 2 * 2
    cropped = image[:h, :w]
    return 0.25 * (
        cropped[0::2, 0::2] + cropped[1::2, 0::2] + cropped[0::2, 1::2] + cropped[1::2, 1::2]
    )


def lpips_proxy(image_a: np.ndarray, image_b: np.ndarray, scales: int = 3) -> float:
    """LPIPS-style perceptual distance (lower is better, 0 = identical).

    Compares local gradient structure and contrast across ``scales``
    resolution octaves, which approximates the low/mid-level features that
    dominate LPIPS sensitivity to rendering artifacts (popping, ordering
    errors, missing splats).  The output is normalized to roughly match
    LPIPS magnitudes on such artifacts; it is *not* the learned metric.
    """
    a, b = _validate_pair(image_a, image_b)
    la, lb = to_luminance(a), to_luminance(b)
    total = 0.0
    weight_sum = 0.0
    for scale in range(scales):
        if min(la.shape) < 8:
            break
        gax, gay = _gradients(la)
        gbx, gby = _gradients(lb)
        grad_diff = np.mean(np.abs(gax - gbx) + np.abs(gay - gby))
        contrast_a = _box_filter(np.abs(la - _box_filter(la, 2)), 2)
        contrast_b = _box_filter(np.abs(lb - _box_filter(lb, 2)), 2)
        contrast_diff = np.mean(np.abs(contrast_a - contrast_b))
        weight = 1.0 / (scale + 1)
        total += weight * (2.0 * grad_diff + 4.0 * contrast_diff)
        weight_sum += weight
        la, lb = _downsample(la), _downsample(lb)
    if weight_sum == 0.0:
        return 0.0
    return float(total / weight_sum)


def quality_report(reference: np.ndarray, candidate: np.ndarray) -> dict[str, float]:
    """PSNR / SSIM / LPIPS-proxy bundle for one image pair."""
    return {
        "psnr": psnr(reference, candidate),
        "ssim": ssim(reference, candidate),
        "lpips": lpips_proxy(reference, candidate),
    }
