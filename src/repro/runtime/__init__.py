"""Execution runtime: process-parallel experiment fan-out + disk caching.

The runtime layer sits between the CLI and the experiment/pipeline layers.
It owns process pools (:class:`ParallelRunner`,
:func:`parallel_render_sequence`) and artifact persistence
(:class:`ResultCache`), keeping both orthogonal to the science code: drivers
and the renderer stay pure functions of their inputs.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version, stable_key
from .parallel import ParallelRunner, RunOutcome, parallel_map, parallel_render_sequence

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ParallelRunner",
    "ResultCache",
    "RunOutcome",
    "code_version",
    "parallel_map",
    "parallel_render_sequence",
    "stable_key",
]
