"""Throughput model of Neo's Preprocessing Engine (paper section 5.2).

Projection, color, and duplication units form three pipelined stages fed by
a stream of Gaussians:

* **projection units** transform every scene Gaussian and cull it against
  the frustum (initiation interval: one Gaussian per unit per cycle);
* **color units** evaluate spherical harmonics for the survivors only;
* **duplication units** enumerate the tiles each survivor's splat overlaps
  and — the reuse-and-update hook — verify membership against the previous
  frame's tables to emit *incoming* entries only.

Frame latency is set by the slowest stage (they stream concurrently), plus
a pipeline fill term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import NeoConfig

#: Projection-unit cycles per Gaussian (matrix transform + frustum test).
PROJECTION_CYCLES = 1.0

#: Color-unit cycles per visible Gaussian (degree-2 SH dot products).
COLOR_CYCLES = 2.0

#: Duplication-unit cycles per emitted (Gaussian, tile) pair, including the
#: membership-verification lookup.
DUPLICATION_CYCLES = 1.0

#: Pipeline fill/drain overhead in cycles.
PIPELINE_FILL = 64


@dataclass
class PreprocessReport:
    """Cycle accounting for one frame of preprocessing."""

    total_cycles: float = 0.0
    projection_cycles: float = 0.0
    color_cycles: float = 0.0
    duplication_cycles: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Name of the stage limiting throughput."""
        stages = {
            "projection": self.projection_cycles,
            "color": self.color_cycles,
            "duplication": self.duplication_cycles,
        }
        return max(stages, key=stages.__getitem__)


@dataclass
class PreprocessEngineSim:
    """Three-stage streaming model of the Preprocessing Engine."""

    config: NeoConfig = field(default_factory=NeoConfig)

    def simulate_frame(
        self, num_gaussians: float, num_visible: float, num_pairs: float
    ) -> PreprocessReport:
        """Cycles to preprocess one frame.

        Parameters
        ----------
        num_gaussians:
            Scene size (every Gaussian is projected and culled).
        num_visible:
            Survivors needing SH color evaluation.
        num_pairs:
            (Gaussian, tile) pairs emitted by duplication.
        """
        if min(num_gaussians, num_visible, num_pairs) < 0:
            raise ValueError("counts must be non-negative")
        if num_visible > num_gaussians:
            raise ValueError("visible cannot exceed total Gaussians")
        cfg = self.config
        report = PreprocessReport(
            projection_cycles=num_gaussians * PROJECTION_CYCLES / cfg.projection_units,
            color_cycles=num_visible * COLOR_CYCLES / cfg.color_units,
            duplication_cycles=num_pairs * DUPLICATION_CYCLES / cfg.duplication_units,
        )
        report.total_cycles = (
            max(
                report.projection_cycles,
                report.color_cycles,
                report.duplication_cycles,
            )
            + PIPELINE_FILL
        )
        return report
