"""Area and power model (paper Tables 3-4).

The paper synthesizes Neo at RTL with Synopsys DC on the ASAP7 7 nm library
and models buffers with CACTI (22 nm, scaled to 7 nm with DeepScaleTool).
Without an RTL flow, this module provides an analytical component model
*calibrated to the paper's published numbers*, plus a DeepScaleTool-style
technology scaler so the GSCore comparison (originally 28 nm) can be
reproduced the same way the paper did it.

Per-unit costs are expressed as (area per instance, power per instance) so
alternative configurations (more sorting cores, larger buffers) scale
sensibly in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import NeoConfig

#: DeepScaleTool-style scaling factors relative to 7 nm: (area, power)
#: multipliers when moving a design *from* the keyed node *to* 7 nm.
_NODE_TO_7NM: dict[int, tuple[float, float]] = {
    7: (1.0, 1.0),
    10: (0.55, 0.75),
    14: (0.36, 0.60),
    16: (0.33, 0.57),
    22: (0.21, 0.45),
    28: (0.15, 0.38),
}


def scale_technology(
    area_mm2: float, power_mw: float, from_nm: int, to_nm: int = 7
) -> tuple[float, float]:
    """Scale (area, power) between technology nodes, DeepScaleTool-style.

    >>> round(scale_technology(1.0, 100.0, 28)[0], 2)
    0.15
    """
    if from_nm not in _NODE_TO_7NM or to_nm not in _NODE_TO_7NM:
        raise KeyError(f"unsupported node; options: {sorted(_NODE_TO_7NM)}")
    a_from, p_from = _NODE_TO_7NM[from_nm]
    a_to, p_to = _NODE_TO_7NM[to_nm]
    return area_mm2 * a_from / a_to, power_mw * p_from / p_to


@dataclass(frozen=True)
class AreaPowerEntry:
    """Area/power of one hardware component group."""

    name: str
    area_mm2: float
    power_mw: float


# Per-instance costs at 7 nm / 1 GHz, calibrated so the default NeoConfig
# reproduces Table 4 exactly.  Buffers follow a CACTI-like linear-in-KB
# model.
_PROJECTION_UNIT = (0.0040, 30.0)
_COLOR_UNIT = (0.0018, 15.0)
_DUPLICATION_UNIT = (0.0007, 3.725)
_BSU_UNIT = (0.0005, 4.6875)
_MSU_PLUS_UNIT = (0.0003125, 0.775)
_SCU_UNIT = (0.01425, 23.4375)
_ITU_UNIT = (0.001875, 3.66875)
_SRAM_AREA_PER_KB = 0.000625  # mm^2 / KB
_SRAM_POWER_PER_KB = 1.11875  # mW / KB
_RASTER_MISC = (0.050 - 200 * _SRAM_AREA_PER_KB * 0.0, 0.0)


def neo_breakdown(config: NeoConfig | None = None) -> list[AreaPowerEntry]:
    """Component-level area/power breakdown of Neo (Table 4).

    Returns entries for the Preprocessing Engine, the Sorting Engine's
    MSU+/BSU/buffer groups, and the Rasterization Engine's SCU/ITU/buffer
    groups, matching the paper's table rows.
    """
    cfg = config or NeoConfig()

    preproc_area = (
        cfg.projection_units * _PROJECTION_UNIT[0]
        + cfg.color_units * _COLOR_UNIT[0]
        + cfg.duplication_units * _DUPLICATION_UNIT[0]
    )
    preproc_power = (
        cfg.projection_units * _PROJECTION_UNIT[1]
        + cfg.color_units * _COLOR_UNIT[1]
        + cfg.duplication_units * _DUPLICATION_UNIT[1]
    )

    msu_area = cfg.sorting_cores * _MSU_PLUS_UNIT[0]
    msu_power = cfg.sorting_cores * _MSU_PLUS_UNIT[1]
    bsu_area = cfg.sorting_cores * _BSU_UNIT[0]
    bsu_power = cfg.sorting_cores * _BSU_UNIT[1]
    sort_buf_area = cfg.io_buffer_kb * _SRAM_AREA_PER_KB
    sort_buf_power = cfg.io_buffer_kb * _SRAM_POWER_PER_KB

    scu_area = cfg.total_scus * _SCU_UNIT[0]
    scu_power = cfg.total_scus * _SCU_UNIT[1]
    itu_area = cfg.total_itus * _ITU_UNIT[0]
    itu_power = cfg.total_itus * _ITU_UNIT[1]
    raster_buf_area = cfg.raster_buffer_kb * _SRAM_AREA_PER_KB * 0.4
    raster_buf_power = cfg.raster_buffer_kb * 0.051

    return [
        AreaPowerEntry("Preprocessing Engine", preproc_area, preproc_power),
        AreaPowerEntry("Merge Sort Unit+", msu_area, msu_power),
        AreaPowerEntry("Bitonic Sort Unit", bsu_area, bsu_power),
        AreaPowerEntry("Sorting Buffers + others", sort_buf_area, sort_buf_power),
        AreaPowerEntry("Subtile Compute Unit", scu_area, scu_power),
        AreaPowerEntry("Intersection Test Unit", itu_area, itu_power),
        AreaPowerEntry("Raster Buffers + others", raster_buf_area, raster_buf_power),
    ]


def neo_summary(config: NeoConfig | None = None) -> AreaPowerEntry:
    """Total area/power of the Neo accelerator (Table 3 row)."""
    entries = neo_breakdown(config)
    return AreaPowerEntry(
        "Neo",
        sum(e.area_mm2 for e in entries),
        sum(e.power_mw for e in entries),
    )


def engine_summaries(config: NeoConfig | None = None) -> list[AreaPowerEntry]:
    """Engine-level roll-up (the three bold rows of Table 4)."""
    entries = neo_breakdown(config)
    sorting = entries[1:4]
    raster = entries[4:7]
    return [
        entries[0],
        AreaPowerEntry(
            "Sorting Engine",
            sum(e.area_mm2 for e in sorting),
            sum(e.power_mw for e in sorting),
        ),
        AreaPowerEntry(
            "Rasterization Engine",
            sum(e.area_mm2 for e in raster),
            sum(e.power_mw for e in raster),
        ),
    ]


def gscore_summary() -> AreaPowerEntry:
    """GSCore at 7 nm / 1 GHz (Table 3), via technology scaling from 28 nm.

    GSCore's published implementation (28 nm) is scaled to 7 nm exactly as
    the paper does with DeepScaleTool; the constants are chosen so the
    scaled result matches Table 3 (0.417 mm^2, 719.9 mW).
    """
    area_28nm, power_28nm = 2.78, 1894.5
    area, power = scale_technology(area_28nm, power_28nm, from_nm=28)
    return AreaPowerEntry("GSCore", area, power)
