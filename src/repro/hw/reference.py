"""Frozen per-frame scalar reference for the system models.

This module preserves, verbatim, the pre-registry scalar implementations of
the three hardware models' per-frame equations — the code that used to live
inside ``NeoModel.frame_report`` / ``GSCoreModel.frame_report`` /
``OrinGpuModel.frame_report`` before the shared vectorized core landed in
:mod:`repro.hw.system`.  It exists for two callers only:

* the **golden equivalence tests** (``tests/test_system_registry.py``),
  which assert that for every registered system the vectorized
  ``simulate()`` is *bit-identical* to this scalar per-frame loop — the
  pre/post-refactor pin;
* the **vectorization micro-benchmark** (``benchmarks/`` and the CI smoke),
  which times this loop against the batched core on a long trajectory.

Because this is a historical pin, it must only change when a model's
physics deliberately changes — keep it in lockstep with the equations in
:mod:`repro.hw.accelerator` / :mod:`repro.hw.gscore` / :mod:`repro.hw.gpu`.
"""

from __future__ import annotations

from .accelerator import (
    _BITMAP_BYTES_64,
    _DRAM_EFFICIENCY as _NEO_DRAM_EFFICIENCY,
    _ENTRY_BYTES as _NEO_ENTRY_BYTES,
    _INIT_SORT_PASSES,
    _PREPROC_CYCLES_PER_GAUSSIAN,
    _RANDOM_BURST_BYTES,
    _RANDOM_EFFICIENCY,
    _RASTER_CYCLES_PER_PAIR as _NEO_RASTER_CYCLES_PER_PAIR,
    _SERIAL_OVERHEAD_S as _NEO_SERIAL_OVERHEAD_S,
    _SORT_CYCLES_PER_ENTRY,
    _TERMINATION_DEPTH_64,
    NeoModel,
)
from .gpu import (
    _BLEND_RATE,
    _BLEND_TILE_COVERAGE,
    _FEATURE_RATE,
    _GPU_DRAM_EFFICIENCY,
    _SORT_SW_RATE,
    _TERMINATION_DEPTH_16 as _GPU_TERMINATION_DEPTH_16,
    OrinGpuModel,
)
from .gscore import (
    _CYCLES_PER_TILE,
    _DRAM_EFFICIENCY as _GSCORE_DRAM_EFFICIENCY,
    _ENTRY_BYTES as _GSCORE_ENTRY_BYTES,
    _BITMAP_BYTES,
    _RASTER_CYCLES_PER_PAIR as _GSCORE_RASTER_CYCLES_PER_PAIR,
    _SERIAL_OVERHEAD_S as _GSCORE_SERIAL_OVERHEAD_S,
    _SORT_CYCLES_PER_PAIR,
    _TERMINATION_DEPTH_16 as _GSCORE_TERMINATION_DEPTH_16,
    GSCoreModel,
)
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
    FrameReport,
    SequenceReport,
    StageTraffic,
    effective_pairs,
)
from .system import SystemModel
from .workload import FrameWorkload


# ----------------------------------------------------------------------
# Neo
# ----------------------------------------------------------------------
def _neo_traffic_split(
    model: NeoModel, workload: FrameWorkload
) -> tuple[StageTraffic, float]:
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )

    if workload.frame_index == 0:
        sorting = pairs * _NEO_ENTRY_BYTES * (1 + 2 * _INIT_SORT_PASSES)
    else:
        sorting = (
            2 * pairs * _NEO_ENTRY_BYTES
            + 2 * workload.incoming_pairs * _NEO_ENTRY_BYTES
        )

    random_bytes = 0.0
    if model.sorting_engine_only:
        random_bytes = visible * _RANDOM_BURST_BYTES
        sorting += pairs * _NEO_ENTRY_BYTES
    elif not model.defer_depth_update:
        sorting += 2 * pairs * _NEO_ENTRY_BYTES

    blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
    raster = blended * FEATURE_2D_BYTES + workload.width * workload.height * PIXEL_BYTES
    if model.sorting_engine_only:
        raster += 2 * pairs * _BITMAP_BYTES_64

    streamed = StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )
    return streamed, random_bytes


def _neo_frame_report(model: NeoModel, workload: FrameWorkload) -> FrameReport:
    streamed, random_bytes = _neo_traffic_split(model, workload)
    peak = model.dram.bandwidth_gbps * 1e9
    memory_time = streamed.total / (peak * _NEO_DRAM_EFFICIENCY)
    memory_time += random_bytes / (peak * _RANDOM_EFFICIENCY)

    freq = model.config.frequency_ghz * 1e9
    preproc_time = (
        workload.num_gaussians
        * _PREPROC_CYCLES_PER_GAUSSIAN
        / (model.config.projection_units * freq)
    )
    sort_time = (
        workload.pairs * _SORT_CYCLES_PER_ENTRY / (model.config.sorting_cores * freq)
    )
    blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
    raster_time = (
        blended * _NEO_RASTER_CYCLES_PER_PAIR / (model.config.total_scus * freq)
    )
    compute_time = max(preproc_time, sort_time, raster_time)

    traffic = StageTraffic(
        feature_extraction=streamed.feature_extraction,
        sorting=streamed.sorting + random_bytes,
        rasterization=streamed.rasterization,
    )
    latency_mem = max(memory_time, compute_time) + _NEO_SERIAL_OVERHEAD_S
    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=latency_mem,
        compute_time_s=0.0,
    )


# ----------------------------------------------------------------------
# GSCore
# ----------------------------------------------------------------------
def _gscore_frame_traffic(model: GSCoreModel, workload: FrameWorkload) -> StageTraffic:
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )
    sorting = pairs * _GSCORE_ENTRY_BYTES * (1 + 2 * model.config.sorting_passes)
    bitmap_traffic = 2 * pairs * _BITMAP_BYTES

    blended = effective_pairs(workload, _GSCORE_TERMINATION_DEPTH_16)
    raster = (
        blended * FEATURE_2D_BYTES
        + bitmap_traffic
        + workload.width * workload.height * PIXEL_BYTES
    )
    return StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )


def _gscore_frame_report(model: GSCoreModel, workload: FrameWorkload) -> FrameReport:
    traffic = _gscore_frame_traffic(model, workload)
    bandwidth = model.dram.bandwidth_gbps * 1e9 * _GSCORE_DRAM_EFFICIENCY
    memory_time = traffic.total / bandwidth

    freq = model.config.frequency_ghz * 1e9
    cores = model.config.cores
    blended = effective_pairs(workload, _GSCORE_TERMINATION_DEPTH_16)
    raster_cycles = blended * _GSCORE_RASTER_CYCLES_PER_PAIR
    raster_cycles += workload.nonempty_tiles * _CYCLES_PER_TILE
    sort_cycles = workload.pairs * _SORT_CYCLES_PER_PAIR
    compute_time = (
        (raster_cycles + sort_cycles) / (cores * freq) + _GSCORE_SERIAL_OVERHEAD_S
    )

    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=memory_time,
        compute_time_s=compute_time,
    )


# ----------------------------------------------------------------------
# Orin GPU
# ----------------------------------------------------------------------
def _orin_frame_traffic(model: OrinGpuModel, workload: FrameWorkload) -> StageTraffic:
    cfg = model.config
    visible = workload.visible
    total = workload.num_gaussians
    pairs = workload.pairs

    feature = (
        visible * FEATURE_3D_BYTES
        + (total - visible) * CULL_PROBE_BYTES
        + visible * FEATURE_2D_BYTES
    )

    if model.neo_software:
        entry = 8
        sorting = 2 * pairs * entry + 2 * workload.incoming_pairs * entry
    else:
        entry = cfg.sort_entry_bytes
        sorting = pairs * entry * (1 + 2 * cfg.sort_passes)

    blended = effective_pairs(workload, _GPU_TERMINATION_DEPTH_16)
    raster = blended * FEATURE_2D_BYTES + workload.width * workload.height * PIXEL_BYTES
    return StageTraffic(
        feature_extraction=feature, sorting=sorting, rasterization=raster
    )


def _orin_frame_report(model: OrinGpuModel, workload: FrameWorkload) -> FrameReport:
    cfg = model.config
    traffic = _orin_frame_traffic(model, workload)
    bandwidth = cfg.bandwidth_gbps * 1e9 * _GPU_DRAM_EFFICIENCY

    feature_time = max(
        traffic.feature_extraction / bandwidth,
        workload.num_gaussians / _FEATURE_RATE,
    )

    if model.neo_software:
        sort_compute = workload.pairs / _SORT_SW_RATE
    else:
        sort_compute = 0.0
    sort_time = max(traffic.sorting / bandwidth, sort_compute)

    blended = effective_pairs(workload, _GPU_TERMINATION_DEPTH_16)
    blend_pixels = blended * (cfg.tile_size**2) * _BLEND_TILE_COVERAGE
    raster_time = max(traffic.rasterization / bandwidth, blend_pixels / _BLEND_RATE)

    memory_time = (
        traffic.feature_extraction + traffic.sorting + traffic.rasterization
    ) / bandwidth
    compute_residual = (feature_time + sort_time + raster_time) - memory_time
    return FrameReport(
        frame_index=workload.frame_index,
        traffic=traffic,
        memory_time_s=memory_time,
        compute_time_s=max(compute_residual, 0.0),
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def scalar_frame_report(model: SystemModel, workload: FrameWorkload) -> FrameReport:
    """One frame through the frozen scalar equations for ``model``."""
    if isinstance(model, NeoModel):
        return _neo_frame_report(model, workload)
    if isinstance(model, GSCoreModel):
        return _gscore_frame_report(model, workload)
    if isinstance(model, OrinGpuModel):
        return _orin_frame_report(model, workload)
    raise TypeError(f"no scalar reference for {type(model).__name__}")


def scalar_simulate(
    model: SystemModel, workloads: list[FrameWorkload], scene: str = "scene"
) -> SequenceReport:
    """The historical per-frame Python loop: one scalar report per frame."""
    if not workloads:
        raise ValueError("need at least one workload")
    report = SequenceReport(
        system=model.name,
        scene=scene,
        resolution=(workloads[0].width, workloads[0].height),
    )
    report.frames = [scalar_frame_report(model, w) for w in workloads]
    return report
