"""Tests for the accuracy-restoration experiment (section 4.3)."""

import pytest

from repro.experiments import recovery


@pytest.fixture(scope="module")
def result():
    return recovery.run(num_frames=12, jump_frame=5, num_gaussians=1200,
                        width=160, height=90)


class TestJumpTrajectory:
    def test_jump_is_discontinuous(self):
        import numpy as np

        cameras = recovery.jump_trajectory(
            "family", num_frames=10, jump_frame=4, jump_degrees=10.0,
            width=160, height=90,
        )
        steps = [
            np.linalg.norm(b.position - a.position)
            for a, b in zip(cameras, cameras[1:])
        ]
        # The jump step dwarfs the regular orbit step.
        assert steps[3] > 5 * np.median(steps)


class TestRecovery:
    def test_incoming_burst_at_jump(self, result):
        rows = result.rows
        jump = next(r for r in rows if r["is_jump"])
        regular = [r["incoming"] for r in rows if not r["is_jump"] and r["frame"] > 0]
        assert jump["incoming"] > 4 * max(regular)

    def test_quality_recovers(self, result):
        assert recovery.recovery_frames(result, threshold_db=45.0) <= 3

    def test_no_catastrophic_popping(self, result):
        assert min(r["psnr_vs_exact"] for r in result.rows[1:]) > 35.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recovery.run(num_frames=6, jump_frame=5)
