"""Hardware configuration dataclasses for the three evaluated systems.

Mirrors the paper's evaluation setup (section 6.1, Table 1):

* **Neo** — 7 nm, 1 GHz; Preprocessing Engine (4 projection / color /
  duplication units), Sorting Engine (16 cores, BSU + MSU+, 64 KB I/O
  buffers), Rasterization Engine (4 cores x 4 SCU/ITU, 200 KB buffers),
  64 x 64 px tiles, 8 x 8 px subtiles.
* **GSCore** — the prior-art ASIC, scaled to 16 cores for fairness.
* **Orin AGX** — the edge-GPU baseline (204.8 GB/s, up to 60 W).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Default edge-device DRAM bandwidth used by Figs. 3 and 15 (GB/s).
EDGE_BANDWIDTH_GBPS = 51.2

#: Orin AGX peak DRAM bandwidth (GB/s).
ORIN_BANDWIDTH_GBPS = 204.8


@dataclass(frozen=True)
class DramConfig:
    """Off-chip memory model parameters (LPDDR4-class, Ramulator-informed).

    Parameters
    ----------
    bandwidth_gbps:
        Peak bandwidth in GB/s.
    efficiency:
        Achievable fraction of peak under streaming access (row-hit
        dominated); LPDDR4 streaming efficiency is typically 0.80-0.90.
    random_efficiency:
        Achievable fraction under scattered access (row-miss dominated),
        the regime the naive per-Gaussian depth refresh would hit.
    burst_bytes:
        Minimum transfer granularity; small requests round up to this.
    """

    bandwidth_gbps: float = EDGE_BANDWIDTH_GBPS
    efficiency: float = 0.85
    random_efficiency: float = 0.30
    burst_bytes: int = 32

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.efficiency <= 1 or not 0 < self.random_efficiency <= 1:
            raise ValueError("efficiencies must be in (0, 1]")
        if self.burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")

    def with_bandwidth(self, bandwidth_gbps: float) -> "DramConfig":
        """Copy with a different peak bandwidth (Fig. 4 sweeps)."""
        return replace(self, bandwidth_gbps=bandwidth_gbps)


@dataclass(frozen=True)
class NeoConfig:
    """Neo accelerator configuration (paper Table 1)."""

    frequency_ghz: float = 1.0
    tile_size: int = 64
    subtile_size: int = 8
    projection_units: int = 4
    color_units: int = 4
    duplication_units: int = 4
    sorting_cores: int = 16
    bsu_width: int = 16
    chunk_size: int = 256
    io_buffer_kb: int = 64
    raster_cores: int = 4
    scu_per_core: int = 4
    itu_per_core: int = 4
    raster_buffer_kb: int = 200

    @property
    def total_scus(self) -> int:
        """Subtile Compute Units across all Rasterization Cores."""
        return self.raster_cores * self.scu_per_core

    @property
    def total_itus(self) -> int:
        """Intersection Test Units across all Rasterization Cores."""
        return self.raster_cores * self.itu_per_core


@dataclass(frozen=True)
class GSCoreConfig:
    """GSCore configuration (Lee et al., ASPLOS 2024), scaled per section 6.1.

    GSCore re-sorts every frame with hierarchical (coarse bucket + fine)
    sorting and rasterizes with subtiles.  ``sorting_passes`` counts how many
    times the tile-Gaussian stream crosses the off-chip interface per sort.
    """

    frequency_ghz: float = 1.0
    tile_size: int = 16
    subtile_size: int = 8
    cores: int = 16
    chunk_size: int = 256
    sorting_passes: int = 1

    def with_cores(self, cores: int) -> "GSCoreConfig":
        """Copy with a different core count (Fig. 4 sweeps)."""
        return replace(self, cores=cores)


@dataclass(frozen=True)
class GpuConfig:
    """Orin AGX-class edge GPU, roofline-style.

    Parameters
    ----------
    compute_tflops:
        Sustained FP32 throughput available to the rendering kernels.
    sort_passes:
        Radix-sort passes of the CUB pipeline over the (key, value) stream;
        each pass reads and writes the full stream.
    sort_entry_bytes:
        Bytes per sorted record (64-bit key + 32-bit payload).
    """

    bandwidth_gbps: float = ORIN_BANDWIDTH_GBPS
    compute_tflops: float = 1.3
    sort_passes: int = 5
    sort_entry_bytes: int = 12
    tile_size: int = 16
