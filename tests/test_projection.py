"""Unit tests for EWA projection / feature extraction."""

import numpy as np
import pytest

from repro.pipeline.culling import frustum_cull
from repro.pipeline.projection import (
    COV2D_DILATION,
    conic_from_cov2d,
    project_gaussians,
    splat_radii,
)


class TestConic:
    def test_inverse_of_isotropic(self):
        cov = np.array([[[4.0, 0.0], [0.0, 4.0]]])
        conic, valid = conic_from_cov2d(cov)
        assert valid[0]
        assert np.allclose(conic[0], [0.25, 0.0, 0.25])

    def test_degenerate_flagged_invalid(self):
        cov = np.array([[[1.0, 1.0], [1.0, 1.0]]])  # det == 0
        _, valid = conic_from_cov2d(cov)
        assert not valid[0]

    def test_matches_matrix_inverse(self, rng):
        mats = rng.normal(size=(20, 2, 2))
        cov = mats @ mats.transpose(0, 2, 1) + 0.1 * np.eye(2)
        conic, valid = conic_from_cov2d(cov)
        assert valid.all()
        inv = np.linalg.inv(cov)
        assert np.allclose(conic[:, 0], inv[:, 0, 0])
        assert np.allclose(conic[:, 1], inv[:, 0, 1])
        assert np.allclose(conic[:, 2], inv[:, 1, 1])


class TestRadii:
    def test_isotropic_radius(self):
        cov = np.array([[[4.0, 0.0], [0.0, 4.0]]])
        assert splat_radii(cov)[0] == pytest.approx(np.ceil(3.0 * 2.0))

    def test_major_axis_dominates(self):
        cov = np.array([[[100.0, 0.0], [0.0, 1.0]]])
        assert splat_radii(cov)[0] == pytest.approx(30.0)


class TestProjection:
    def test_projection_basic(self, small_scene, camera):
        culled = frustum_cull(small_scene, camera)
        proj = project_gaussians(small_scene, camera, culled.visible_ids)
        assert len(proj) > 0
        assert len(proj) <= culled.num_visible
        assert (proj.depths > camera.near).all()
        assert (proj.radii > 0).all()
        assert (proj.opacities > 0).all()
        assert np.isfinite(proj.means2d).all()
        assert np.isfinite(proj.conic).all()

    def test_ids_are_global(self, small_scene, camera):
        culled = frustum_cull(small_scene, camera)
        proj = project_gaussians(small_scene, camera, culled.visible_ids)
        assert set(proj.ids).issubset(set(culled.visible_ids))

    def test_default_projects_everything_visible(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        culled = frustum_cull(small_scene, camera)
        proj_culled = project_gaussians(small_scene, camera, culled.visible_ids)
        # Projecting everything keeps at least the culled set.
        assert set(proj_culled.ids).issubset(set(proj.ids))

    def test_dilation_floor_on_cov2d(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        assert (proj.cov2d[:, 0, 0] >= COV2D_DILATION - 1e-12).all()
        assert (proj.cov2d[:, 1, 1] >= COV2D_DILATION - 1e-12).all()

    def test_resolution_scales_geometry(self, small_scene, camera):
        proj_lo = project_gaussians(small_scene, camera)
        cam_hi = camera.with_resolution(camera.width * 2, camera.height * 2)
        proj_hi = project_gaussians(small_scene, camera=cam_hi)
        shared, lo_idx, hi_idx = np.intersect1d(
            proj_lo.ids, proj_hi.ids, return_indices=True
        )
        assert shared.size > 0
        ratio = proj_hi.means2d[hi_idx] / np.maximum(proj_lo.means2d[lo_idx], 1e-9)
        # Screen positions roughly double (up to principal point offsets).
        assert np.median(ratio) == pytest.approx(2.0, rel=0.05)

    def test_depths_match_camera_space(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        cam_points = camera.transform_points(small_scene.means[proj.ids])
        assert np.allclose(proj.depths, cam_points[:, 2])

    def test_colors_nonnegative(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        assert (proj.colors >= 0).all()
