"""Sorting-stage strategies: Neo plus the design-space baselines.

Section 4.1 of the paper explores the design space of sorting reuse and
section 6.3 (Fig. 19) compares four methods on Neo hardware:

* **full re-sort** — conventional per-frame global sorting (what GPU 3DGS
  and, with hierarchy, GSCore do);
* **periodic sorting** — full sort every K frames, stale order in between
  (low average latency, latency spikes, accumulating quality error);
* **background sorting** — a full sort permanently runs in the background;
  each frame consumes the most recent *completed* sort, i.e. an order
  computed for a viewpoint L frames old (sustained traffic, viewpoint lag);
* **hierarchical sorting** — GSCore's coarse-bucket + fine-sort, accurate
  but multiple off-chip passes;
* **Neo** — :class:`~repro.core.reuse_update.ReuseUpdateSorter`.

Every strategy implements the pipeline's ``SortStrategy`` protocol and keeps
a per-frame :class:`SortTraffic` ledger for the hardware models.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..pipeline.rasterizer import RasterResult
from ..pipeline.sorting import SortedTiles, sort_tiles
from ..pipeline.tiling import TileAssignment
from .dynamic_partial_sort import DEFAULT_CHUNK_SIZE, PartialSortStats, full_sort
from .gaussian_table import TABLE_ENTRY_BYTES
from .reuse_update import ReuseUpdateSorter, SortTraffic

__all__ = [
    "FullResortStrategy",
    "PeriodicSortStrategy",
    "BackgroundSortStrategy",
    "HierarchicalSortStrategy",
    "NeoSortStrategy",
    "make_strategy",
]

#: Neo's strategy under its user-facing name.
NeoSortStrategy = ReuseUpdateSorter


def _full_sort_traffic(assignment: TileAssignment, chunk_size: int) -> SortTraffic:
    """Traffic of a conventional global sort of every tile's list."""
    traffic = SortTraffic()
    for n in assignment.occupancy():
        n = int(n)
        if n == 0:
            continue
        stats = PartialSortStats()
        full_sort(np.zeros(n), np.zeros(n, dtype=np.int64), chunk_size=chunk_size, stats=stats)
        traffic.table_read += stats.bytes_read
        traffic.table_write += stats.bytes_written
    return traffic


class FullResortStrategy:
    """Conventional baseline: exact global sort from scratch every frame."""

    name = "full"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.chunk_size = chunk_size
        self.frame_traffic: list[SortTraffic] = []

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        self.frame_traffic.append(_full_sort_traffic(assignment, self.chunk_size))
        return sort_tiles(assignment)

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        return None

    def total_traffic(self) -> SortTraffic:
        """Aggregate traffic over all frames."""
        total = SortTraffic()
        for t in self.frame_traffic:
            total.add(t)
        return total


class PeriodicSortStrategy:
    """Full sort every ``period`` frames; intermediate frames reuse it as-is.

    Between refreshes both the *order* and the *membership* of each tile's
    list go stale: newly visible Gaussians are missing and departed ones are
    silently skipped, which is why quality decays until the next refresh
    (Fig. 19b) while traffic is near zero on skip frames (latency spikes on
    refresh frames, Fig. 19a).
    """

    name = "periodic"

    def __init__(self, period: int = 10, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.chunk_size = chunk_size
        self.frame_traffic: list[SortTraffic] = []
        self._cached: SortedTiles | None = None

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        refresh = frame_index % self.period == 0 or self._cached is None
        if refresh:
            self.frame_traffic.append(_full_sort_traffic(assignment, self.chunk_size))
            exact = sort_tiles(assignment)
            self._cached = exact
            return exact

        # Skip frame: replay the cached order against the current projection.
        self.frame_traffic.append(SortTraffic())
        return _replay_cached_order(assignment, self._cached)

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        return None

    def total_traffic(self) -> SortTraffic:
        """Aggregate traffic over all frames."""
        total = SortTraffic()
        for t in self.frame_traffic:
            total.add(t)
        return total


class BackgroundSortStrategy:
    """Continuously sort in the background; frames consume lagged results.

    A full sort of every frame is launched in the background and completes
    ``lag`` frames later, so frame ``i`` renders with the ordering (and
    membership) computed for frame ``i - lag``'s viewpoint.  Traffic is the
    full per-frame sorting stream, sustained — the memory-contention problem
    the paper attributes to this design (section 4.1).
    """

    name = "background"

    def __init__(self, lag: int = 2, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if lag < 1:
            raise ValueError("lag must be >= 1")
        self.lag = lag
        self.chunk_size = chunk_size
        self.frame_traffic: list[SortTraffic] = []
        self._pending: deque[SortedTiles] = deque()

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        # Launch this frame's background sort (traffic charged now, results
        # usable `lag` frames later).
        self.frame_traffic.append(_full_sort_traffic(assignment, self.chunk_size))
        self._pending.append(sort_tiles(assignment))

        if len(self._pending) > self.lag:
            stale = self._pending.popleft()
        else:
            # Warm-up: nothing completed yet, use the oldest available.
            stale = self._pending[0]
        return _replay_cached_order(assignment, stale)

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        return None

    def total_traffic(self) -> SortTraffic:
        """Aggregate traffic over all frames."""
        total = SortTraffic()
        for t in self.frame_traffic:
            total.add(t)
        return total


class HierarchicalSortStrategy:
    """GSCore-style hierarchical sorting on reused tables.

    Coarse-grained bucketing by depth followed by a fine sort inside each
    bucket reproduces the exact order (buckets partition the depth range),
    but the bucketing pass and the fine pass each stream the table through
    off-chip memory, so per-frame traffic is roughly twice Neo's single
    pass (Fig. 19 latency gap).
    """

    name = "hierarchical"

    def __init__(self, num_buckets: int = 16, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if num_buckets < 2:
            raise ValueError("num_buckets must be >= 2")
        self.num_buckets = num_buckets
        self.chunk_size = chunk_size
        self.frame_traffic: list[SortTraffic] = []

    def sort_frame(self, assignment: TileAssignment, frame_index: int) -> SortedTiles:
        traffic = SortTraffic()
        proj = assignment.projected
        tile_rows: list[np.ndarray] = []
        tile_ids: list[np.ndarray] = []
        tile_depths: list[np.ndarray] = []
        for tile in range(assignment.num_tiles):
            rows = assignment.rows_for(tile)
            depths = proj.depths[rows]
            ids = proj.ids[rows]
            n = rows.shape[0]
            if n:
                # Pass 1: coarse bucketing (read all, write all, bucketed).
                # Pass 2: fine sort within each bucket (read + write again).
                traffic.table_read += 2 * n * TABLE_ENTRY_BYTES
                traffic.table_write += 2 * n * TABLE_ENTRY_BYTES
                order = _hierarchical_order(depths, ids, self.num_buckets)
            else:
                order = np.empty(0, dtype=np.int64)
            tile_rows.append(rows[order])
            tile_ids.append(ids[order])
            tile_depths.append(depths[order])
        self.frame_traffic.append(traffic)
        return SortedTiles.from_tile_lists(tile_rows, tile_ids, tile_depths)

    def observe_raster(
        self, frame_index: int, sorted_tiles: SortedTiles, raster: RasterResult
    ) -> None:
        return None

    def total_traffic(self) -> SortTraffic:
        """Aggregate traffic over all frames."""
        total = SortTraffic()
        for t in self.frame_traffic:
            total.add(t)
        return total


def _hierarchical_order(depths: np.ndarray, ids: np.ndarray, num_buckets: int) -> np.ndarray:
    """Coarse bucket by depth range, then fine-sort within each bucket."""
    n = depths.shape[0]
    if n < 2:
        return np.arange(n, dtype=np.int64)
    lo, hi = float(depths.min()), float(depths.max())
    if hi - lo < 1e-12:
        return np.argsort(ids, kind="stable")
    buckets = np.minimum(
        ((depths - lo) / (hi - lo) * num_buckets).astype(np.int64), num_buckets - 1
    )
    # Stable sort by (bucket, depth, id) == exact order because buckets are
    # monotone in depth; the two-level structure is what costs the 2nd pass.
    return np.lexsort((ids, depths, buckets))


def _replay_cached_order(assignment: TileAssignment, cached: SortedTiles) -> SortedTiles:
    """Render the current frame using a stale per-tile ordering.

    Stale IDs missing from the current projection are dropped (they cannot
    be rasterized); Gaussians new to a tile are absent (the quality cost of
    stale membership).
    """
    proj = assignment.projected
    id_to_row = {int(g): i for i, g in enumerate(proj.ids)}
    tile_rows: list[np.ndarray] = []
    tile_ids: list[np.ndarray] = []
    tile_depths: list[np.ndarray] = []
    for tile in range(assignment.num_tiles):
        if tile < cached.num_tiles:
            ids = cached.ids_for(tile)
            depths = cached.depths_for(tile)
        else:
            ids = np.empty(0, dtype=np.int64)
            depths = np.empty(0, dtype=np.float64)
        rows = []
        keep = []
        for i, gid in enumerate(ids):
            row = id_to_row.get(int(gid))
            if row is not None:
                rows.append(row)
                keep.append(i)
        keep_idx = np.asarray(keep, dtype=np.int64)
        tile_rows.append(np.asarray(rows, dtype=np.int64))
        tile_ids.append(ids[keep_idx] if keep_idx.size else np.empty(0, dtype=np.int64))
        tile_depths.append(depths[keep_idx] if keep_idx.size else np.empty(0, dtype=np.float64))
    return SortedTiles.from_tile_lists(tile_rows, tile_ids, tile_depths)


def make_strategy(name: str, **kwargs) -> object:
    """Factory: build a sorting strategy by name.

    Recognized names: ``full``, ``periodic``, ``background``,
    ``hierarchical``, ``neo``.
    """
    registry = {
        "full": FullResortStrategy,
        "periodic": PeriodicSortStrategy,
        "background": BackgroundSortStrategy,
        "hierarchical": HierarchicalSortStrategy,
        "neo": NeoSortStrategy,
    }
    key = name.lower()
    if key not in registry:
        raise KeyError(f"unknown strategy {name!r}; options: {sorted(registry)}")
    return registry[key](**kwargs)
