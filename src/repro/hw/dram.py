"""LPDDR4-class DRAM timing/traffic model (Ramulator-lite).

The paper models off-chip memory as LPDDR4 via Ramulator.  For the
bandwidth-bound behaviour that drives every result here, what matters is
(1) how many bytes cross the interface and (2) the achievable bandwidth for
streaming vs. scattered access.  This model tracks both, with burst-size
round-up for small requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import DramConfig


@dataclass
class TrafficLedger:
    """Byte counts accumulated by access category."""

    streamed_bytes: int = 0
    random_bytes: int = 0
    requests: int = 0

    @property
    def total_bytes(self) -> int:
        """All bytes moved, both patterns."""
        return self.streamed_bytes + self.random_bytes


@dataclass
class DramModel:
    """Accounts traffic and converts bytes to service time.

    Parameters
    ----------
    config:
        Bandwidth / efficiency / burst parameters.
    """

    config: DramConfig = field(default_factory=DramConfig)
    ledger: TrafficLedger = field(default_factory=TrafficLedger)

    def _round_up(self, num_bytes: int) -> int:
        burst = self.config.burst_bytes
        return -(-num_bytes // burst) * burst if num_bytes > 0 else 0

    def stream(self, num_bytes: int) -> int:
        """Record a streaming (sequential, row-hit friendly) transfer.

        Returns the bytes actually charged (burst rounded).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        charged = self._round_up(num_bytes)
        self.ledger.streamed_bytes += charged
        self.ledger.requests += 1
        return charged

    def scatter(self, num_requests: int, bytes_per_request: int) -> int:
        """Record scattered accesses (row-miss heavy, e.g. random gathers).

        Each request is rounded up to a burst individually — this is what
        makes per-Gaussian random depth fetches so expensive (section 4.4).
        """
        if num_requests < 0 or bytes_per_request < 0:
            raise ValueError("arguments must be non-negative")
        charged = num_requests * self._round_up(bytes_per_request)
        self.ledger.random_bytes += charged
        self.ledger.requests += num_requests
        return charged

    def service_time_s(
        self, streamed_bytes: int | None = None, random_bytes: int | None = None
    ) -> float:
        """Time to serve the given traffic (defaults to the ledger totals)."""
        if streamed_bytes is None:
            streamed_bytes = self.ledger.streamed_bytes
        if random_bytes is None:
            random_bytes = self.ledger.random_bytes
        peak = self.config.bandwidth_gbps * 1e9
        return (
            streamed_bytes / (peak * self.config.efficiency)
            + random_bytes / (peak * self.config.random_efficiency)
        )

    def effective_bandwidth_gbps(self, streamed_fraction: float = 1.0) -> float:
        """Achievable bandwidth for a mix of streaming/random traffic."""
        if not 0.0 <= streamed_fraction <= 1.0:
            raise ValueError("streamed_fraction must be in [0, 1]")
        eff = (
            streamed_fraction * self.config.efficiency
            + (1.0 - streamed_fraction) * self.config.random_efficiency
        )
        return self.config.bandwidth_gbps * eff

    def reset(self) -> None:
        """Clear the ledger."""
        self.ledger = TrafficLedger()
