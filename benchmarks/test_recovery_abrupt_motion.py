"""Bench: accuracy restoration after abrupt camera motion (section 4.3).

Not a numbered figure, but a quantified claim of the paper: "even under
abrupt camera motion, this method recovers the correct ordering within a
few frames, eliminating the need for full sorting."
"""

import numpy as np

from repro.experiments import recovery

from conftest import run_once


def test_recovery_abrupt_motion(benchmark):
    result = run_once(benchmark, recovery.run, jump_degrees=10.0)
    print("\n" + result.to_text())

    rows = result.rows
    jump = next(r["frame"] for r in rows if r["is_jump"])
    # The jump shows up as an incoming-Gaussian burst...
    baseline_incoming = np.mean([r["incoming"] for r in rows[1:jump]])
    assert rows[jump]["incoming"] > 5 * baseline_incoming
    # ...quality never collapses (no popping below 40 dB vs exact)...
    assert min(r["psnr_vs_exact"] for r in rows[1:]) > 40.0
    # ...and the ordering recovers within a few frames without a re-sort.
    assert recovery.recovery_frames(result, threshold_db=45.0) <= 3
