"""Feature extraction: project 3D Gaussians to screen space (pipeline stage 2).

Implements the EWA splatting approximation used by 3DGS: each 3D Gaussian
``(mu, Sigma)`` maps to a 2D Gaussian ``(mu', Sigma')`` on the image plane via
the camera transform and the Jacobian of the perspective projection, and its
view-dependent color is evaluated from spherical harmonics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scene.camera import Camera
from ..scene.gaussians import GaussianScene
from ..scene.sh import eval_sh_color, normalize_directions

#: 2D covariance regularizer, matching the 0.3 px dilation of reference 3DGS.
COV2D_DILATION = 0.3

#: Number of standard deviations covered by a splat's bounding radius.
RADIUS_SIGMAS = 3.0


@dataclass
class ProjectedGaussians:
    """Screen-space Gaussians produced by feature extraction.

    All arrays are aligned: row ``i`` describes the same visible Gaussian.

    Attributes
    ----------
    ids:
        Indices into the source :class:`GaussianScene` (global Gaussian IDs).
    means2d:
        ``(m, 2)`` pixel-space centers.
    cov2d:
        ``(m, 2, 2)`` screen-space covariance matrices (dilated).
    conic:
        ``(m, 3)`` upper-triangular entries ``(a, b, c)`` of the inverse 2D
        covariance, the form consumed by the rasterizer.
    depths:
        ``(m,)`` camera-space z used as the sort key.
    radii:
        ``(m,)`` conservative pixel radii (3 sigma of the major axis).
    colors:
        ``(m, 3)`` RGB colors from SH evaluation.
    opacities:
        ``(m,)`` opacity values.
    """

    ids: np.ndarray
    means2d: np.ndarray
    cov2d: np.ndarray
    conic: np.ndarray
    depths: np.ndarray
    radii: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray

    def __len__(self) -> int:
        return self.ids.shape[0]


def compute_cov2d(
    cam_points: np.ndarray,
    cov3d: np.ndarray,
    view_rot: np.ndarray,
    camera: Camera,
) -> np.ndarray:
    """EWA projection of 3D covariances to screen space.

    ``Sigma' = J W Sigma W^T J^T`` where ``W`` is the world-to-camera rotation
    and ``J`` the local affine approximation (Jacobian) of the perspective
    projection at each Gaussian center.
    """
    n = cam_points.shape[0]
    x, y = cam_points[:, 0], cam_points[:, 1]
    z = np.maximum(cam_points[:, 2], 1e-6)

    # Clamp x/z, y/z to 1.3x the frustum tangent, as in reference 3DGS, to
    # keep the linearization stable for Gaussians near the frustum edge.
    lim_x = 1.3 * camera.tan_half_fov_x
    lim_y = 1.3 * camera.tan_half_fov_y
    tx = np.clip(x / z, -lim_x, lim_x) * z
    ty = np.clip(y / z, -lim_y, lim_y) * z

    jac = np.zeros((n, 2, 3))
    jac[:, 0, 0] = camera.fx / z
    jac[:, 0, 2] = -camera.fx * tx / (z * z)
    jac[:, 1, 1] = camera.fy / z
    jac[:, 1, 2] = -camera.fy * ty / (z * z)

    world_cov = view_rot[None, :, :] @ cov3d @ view_rot.T[None, :, :]
    cov2d = jac @ world_cov @ jac.transpose(0, 2, 1)
    cov2d[:, 0, 0] += COV2D_DILATION
    cov2d[:, 1, 1] += COV2D_DILATION
    return cov2d


def conic_from_cov2d(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert 2D covariances to conic form and report validity.

    Returns ``(conic, valid)`` where ``conic`` holds ``(a, b, c)`` such that
    the splat falloff is ``exp(-0.5 (a dx^2 + 2 b dx dy + c dy^2))``, and
    ``valid`` flags Gaussians with a positive-definite covariance.
    """
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = a * c - b * b
    valid = det > 1e-12
    inv_det = np.where(valid, 1.0 / np.where(valid, det, 1.0), 0.0)
    conic = np.stack([c * inv_det, -b * inv_det, a * inv_det], axis=1)
    return conic, valid


def splat_radii(cov2d: np.ndarray) -> np.ndarray:
    """Conservative pixel radius (3 sigma of the major eigenvalue)."""
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    mid = 0.5 * (a + c)
    disc = np.sqrt(np.maximum(mid * mid - (a * c - b * b), 0.0))
    lambda_max = mid + disc
    return np.ceil(RADIUS_SIGMAS * np.sqrt(np.maximum(lambda_max, 0.0)))


def project_gaussians(
    scene: GaussianScene,
    camera: Camera,
    visible_ids: np.ndarray | None = None,
) -> ProjectedGaussians:
    """Run feature extraction for the Gaussians visible from ``camera``.

    Parameters
    ----------
    scene:
        Source scene.
    visible_ids:
        Indices of Gaussians that survived frustum culling.  ``None`` means
        project everything (culling is then implied by downstream radii).
    """
    if visible_ids is None:
        visible_ids = np.arange(len(scene))
    visible_ids = np.asarray(visible_ids, dtype=np.int64)

    means = scene.means[visible_ids]
    cam_points = camera.transform_points(means)
    view_rot = camera.world_to_camera[:3, :3]

    cov3d = scene.covariances()[visible_ids]
    cov2d = compute_cov2d(cam_points, cov3d, view_rot, camera)
    conic, valid = conic_from_cov2d(cov2d)
    radii = splat_radii(cov2d)

    directions = normalize_directions(means - camera.position[None, :])
    colors = eval_sh_color(scene.sh_coeffs[visible_ids], directions)

    keep = valid & (radii > 0) & (cam_points[:, 2] > camera.near)
    return ProjectedGaussians(
        ids=visible_ids[keep],
        means2d=camera.project(cam_points)[keep],
        cov2d=cov2d[keep],
        conic=conic[keep],
        depths=cam_points[:, 2][keep],
        radii=radii[keep],
        colors=colors[keep],
        opacities=scene.opacities[visible_ids][keep],
    )
