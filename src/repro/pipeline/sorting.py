"""Reference sorting stage (pipeline stage 3).

This module provides the *functional* ground truth: exact per-tile depth
ordering computed with numpy's sort.  Neo's reuse-and-update strategies in
:mod:`repro.core` are validated against it, and the quality experiments
(Table 2, Fig. 19) compare images rendered with approximate orders against
images rendered with this exact order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tiling import TileAssignment


@dataclass
class SortedTiles:
    """Depth-sorted per-tile Gaussian lists.

    Attributes
    ----------
    tile_rows:
        Entry ``t`` holds row indices into the frame's
        :class:`ProjectedGaussians`, sorted front-to-back by depth.
    tile_ids:
        Entry ``t`` holds the matching global Gaussian IDs (same order).
    tile_depths:
        Entry ``t`` holds the matching depths (non-decreasing).
    """

    tile_rows: list[np.ndarray]
    tile_ids: list[np.ndarray]
    tile_depths: list[np.ndarray]

    @property
    def num_tiles(self) -> int:
        """Number of tiles covered."""
        return len(self.tile_rows)

    @property
    def num_pairs(self) -> int:
        """Total tile-Gaussian pairs in the sorted tables."""
        return int(sum(ids.shape[0] for ids in self.tile_ids))


def sort_tiles(assignment: TileAssignment) -> SortedTiles:
    """Exactly sort every tile's Gaussians front-to-back by depth.

    Ties break on global Gaussian ID so the order is deterministic, mirroring
    the stable key construction (depth | ID) of the CUDA radix sort.

    All tiles are sorted in *one* concatenated pass instead of a ``lexsort``
    call per tile: the frame's Gaussians are ranked once by ``(depth, ID)``
    (a ``lexsort`` over the ~m projected Gaussians rather than the ~n >> m
    duplicated pairs), and the pair table is then ordered by the integer key
    ``tile * m + rank`` — unique per pair, since a Gaussian appears at most
    once per tile, so a plain ``argsort`` suffices and no float comparisons
    touch the hot sort.  Within a tile, ordering by rank is ordering by
    ``(depth, ID)``, so splitting at the tile boundaries reproduces the
    per-tile loop's arrays exactly — pinned by the golden test against
    :func:`repro.pipeline.reference.sort_tiles`.
    """
    proj = assignment.projected
    m = len(proj)
    num_tiles = len(assignment.tile_rows)
    counts = np.fromiter(
        (rows.shape[0] for rows in assignment.tile_rows), dtype=np.int64, count=num_tiles
    )
    all_rows = (
        np.concatenate(assignment.tile_rows)
        if counts.sum()
        else np.empty(0, dtype=np.int64)
    )
    tile_of = np.repeat(np.arange(num_tiles, dtype=np.int64), counts)

    depth_order = np.lexsort((proj.ids, proj.depths))
    rank = np.empty(m, dtype=np.int64)
    rank[depth_order] = np.arange(m, dtype=np.int64)
    pair_ranks = rank[all_rows]
    if num_tiles * max(m, 1) < np.iinfo(np.int64).max:
        order = np.argsort(tile_of * m + pair_ranks)
    else:  # overflow-proof fallback; unreachable for any realistic grid
        order = np.lexsort((pair_ranks, tile_of))

    rows_sorted = all_rows[order]
    ids_sorted = proj.ids[rows_sorted]
    depths_sorted = proj.depths[rows_sorted]
    bounds = np.concatenate([[0], np.cumsum(counts)])
    tile_rows = [rows_sorted[bounds[t] : bounds[t + 1]] for t in range(num_tiles)]
    tile_ids = [ids_sorted[bounds[t] : bounds[t + 1]] for t in range(num_tiles)]
    tile_depths = [depths_sorted[bounds[t] : bounds[t + 1]] for t in range(num_tiles)]
    return SortedTiles(tile_rows=tile_rows, tile_ids=tile_ids, tile_depths=tile_depths)


def is_depth_sorted(depths: np.ndarray, tolerance: float = 0.0) -> bool:
    """True if ``depths`` is non-decreasing (within ``tolerance``)."""
    if depths.shape[0] < 2:
        return True
    return bool(np.all(np.diff(depths) >= -tolerance))


def order_quality(approx_depths: np.ndarray) -> float:
    """Fraction of adjacent pairs already in non-decreasing depth order.

    1.0 means perfectly sorted; used to quantify how far an incremental
    ordering has drifted from the exact one.
    """
    n = approx_depths.shape[0]
    if n < 2:
        return 1.0
    good = int(np.count_nonzero(np.diff(approx_depths) >= 0))
    return good / (n - 1)


def kendall_tau_distance(order_a: np.ndarray, order_b: np.ndarray) -> float:
    """Normalized Kendall-tau distance between two orderings of the same set.

    0.0 means identical order, 1.0 fully reversed.  Computed via merge-sort
    inversion counting in O(n log n); both inputs must be permutations of the
    same ID set.
    """
    order_a = np.asarray(order_a)
    order_b = np.asarray(order_b)
    if order_a.shape != order_b.shape:
        raise ValueError("orderings must have equal length")
    n = order_a.shape[0]
    if n < 2:
        return 0.0
    sorted_a = np.sort(order_a)
    if not np.array_equal(sorted_a, np.sort(order_b)):
        raise ValueError("orderings must contain the same IDs")
    if np.any(sorted_a[1:] == sorted_a[:-1]):
        # A duplicated ID has no well-defined rank; the scalar dict lookup
        # silently resolved it last-wins, so reject it outright instead.
        raise ValueError("orderings must not contain duplicate IDs")

    # Rank-in-b lookup without a Python dict: sort b's IDs once, then map
    # every ID in a to its position in b via binary search (both lists hold
    # the same ID set, so every lookup hits exactly).
    by_id = np.argsort(order_b, kind="stable")
    sequence = by_id[np.searchsorted(order_b[by_id], order_a)]
    inversions = _count_inversions(sequence)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(seq: np.ndarray) -> int:
    """Count inversions of a permutation of ``0..n-1`` in O(n log^2 n).

    Uses merge sort's level decomposition without the Python merge loop: at
    the level of block size ``2 * width``, each block's left and right
    halves preserve the original relative order of their elements, so every
    inversion is a (left, right) cross pair at exactly one level.  Cross
    pairs for *all* blocks of a level are counted with a single flat
    ``searchsorted`` — each block's values are offset into a disjoint range
    so the concatenation of the per-block sorted left halves stays globally
    sorted.  Equivalent to the scalar bottom-up merge sort preserved in
    :func:`repro.pipeline.reference.kendall_tau_distance`.
    """
    seq = np.asarray(seq, dtype=np.int64)
    n = seq.shape[0]
    if n < 2:
        return 0
    inversions = 0
    width = 1
    while width < n:
        block = 2 * width
        num_blocks = -(-n // block)
        # Pad to whole blocks with a sentinel above every real value; the
        # sentinel never counts on either side.
        padded = np.full(num_blocks * block, n, dtype=np.int64)
        padded[:n] = seq
        resh = padded.reshape(num_blocks, block)
        left = np.sort(resh[:, :width], axis=1)
        right = resh[:, width:]

        offsets = np.arange(num_blocks, dtype=np.int64) * (n + 1)
        flat_left = (left + offsets[:, None]).ravel()
        flat_right = (right + offsets[:, None]).ravel()
        le_counts = np.searchsorted(flat_left, flat_right, side="right") - np.repeat(
            np.arange(num_blocks, dtype=np.int64) * width, width
        )
        # Left elements greater than a right element r are the block's real
        # left residents minus those <= r.
        real_left = np.clip(n - np.arange(num_blocks, dtype=np.int64) * block, 0, width)
        gt = np.repeat(real_left, width) - le_counts
        inversions += int(gt[right.ravel() < n].sum())
        width = block
    return inversions
