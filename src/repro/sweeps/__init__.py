"""Declarative scenario sweeps over the parallel, disk-cached runtime.

The sweep subsystem turns the per-figure experiment drivers' fixed
combinations into an explorable design space: a
:class:`~repro.sweeps.spec.SweepSpec` declares a cartesian grid over scenes,
Gaussian counts, trajectory archetypes, camera speeds, sorting strategies
and hardware configurations; the
:class:`~repro.sweeps.executor.SweepRunner` expands it, serves cached points
from the :class:`~repro.runtime.cache.ResultCache`, fans misses out across
processes, and aggregates everything into a
:class:`~repro.sweeps.report.SweepReport` with JSON / CSV / markdown
writers.  ``repro sweep run/list/report`` is the CLI surface.
"""

from .executor import SweepOutcome, SweepRunner, evaluate_point, rollout_sweep_misses
from .registry import PREDEFINED, get_sweep_spec, list_sweep_specs, resolve_spec
from .report import SweepReport, read_csv_rows
from .spec import STRATEGIES, HardwareConfig, SweepPoint, SweepSpec

__all__ = [
    "PREDEFINED",
    "STRATEGIES",
    "HardwareConfig",
    "SweepOutcome",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "evaluate_point",
    "get_sweep_spec",
    "list_sweep_specs",
    "read_csv_rows",
    "resolve_spec",
    "rollout_sweep_misses",
]
