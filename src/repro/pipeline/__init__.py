"""3DGS rendering pipeline: culling, feature extraction, tiling, sorting, rasterization."""

from .culling import FRUSTUM_MARGIN, CullingResult, frustum_cull
from .framebuffer import Framebuffer
from .projection import (
    COV2D_DILATION,
    ProjectedGaussians,
    compute_cov2d,
    conic_from_cov2d,
    project_gaussians,
    splat_radii,
)
from .rasterizer import (
    MAX_ALPHA,
    MIN_ALPHA,
    NEO_SUBTILE_SIZE,
    RASTER_CHUNK_SIZE,
    TERMINATION_THRESHOLD,
    RasterResult,
    RasterStats,
    rasterize,
    rasterize_tile,
)
from .renderer import (
    ExactSortStrategy,
    FrameRecord,
    FrameStats,
    Renderer,
    SortStrategy,
    StageTimings,
    aggregate_timings,
)
from .sorting import (
    SortedTiles,
    is_depth_sorted,
    kendall_tau_distance,
    order_quality,
    sort_tiles,
)
from .tiling import (
    GPU_TILE_SIZE,
    NEO_TILE_SIZE,
    TileAssignment,
    TileGrid,
    assign_to_tiles,
    tile_ranges,
)

__all__ = [
    "COV2D_DILATION",
    "CullingResult",
    "ExactSortStrategy",
    "FRUSTUM_MARGIN",
    "Framebuffer",
    "FrameRecord",
    "FrameStats",
    "GPU_TILE_SIZE",
    "MAX_ALPHA",
    "MIN_ALPHA",
    "NEO_SUBTILE_SIZE",
    "NEO_TILE_SIZE",
    "ProjectedGaussians",
    "RASTER_CHUNK_SIZE",
    "RasterResult",
    "RasterStats",
    "Renderer",
    "SortStrategy",
    "SortedTiles",
    "StageTimings",
    "TERMINATION_THRESHOLD",
    "TileAssignment",
    "TileGrid",
    "aggregate_timings",
    "assign_to_tiles",
    "compute_cov2d",
    "conic_from_cov2d",
    "frustum_cull",
    "is_depth_sorted",
    "kendall_tau_distance",
    "order_quality",
    "project_gaussians",
    "rasterize",
    "rasterize_tile",
    "sort_tiles",
    "splat_radii",
    "tile_ranges",
]
