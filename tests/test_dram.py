"""Unit tests for the DRAM traffic/timing model."""

import pytest

from repro.hw.config import DramConfig
from repro.hw.dram import DramModel


class TestDramConfig:
    def test_defaults(self):
        config = DramConfig()
        assert config.bandwidth_gbps == 51.2

    def test_with_bandwidth(self):
        assert DramConfig().with_bandwidth(204.8).bandwidth_gbps == 204.8

    def test_validation(self):
        with pytest.raises(ValueError):
            DramConfig(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            DramConfig(efficiency=0.0)
        with pytest.raises(ValueError):
            DramConfig(efficiency=1.5)
        with pytest.raises(ValueError):
            DramConfig(burst_bytes=0)


class TestDramModel:
    def test_stream_burst_roundup(self):
        dram = DramModel(DramConfig(burst_bytes=32))
        charged = dram.stream(40)
        assert charged == 64
        assert dram.ledger.streamed_bytes == 64

    def test_scatter_rounds_each_request(self):
        dram = DramModel(DramConfig(burst_bytes=32))
        charged = dram.scatter(num_requests=10, bytes_per_request=8)
        assert charged == 320
        assert dram.ledger.random_bytes == 320
        assert dram.ledger.requests == 10

    def test_scatter_costs_more_time_than_stream(self):
        dram = DramModel(DramConfig())
        t_stream = dram.service_time_s(streamed_bytes=10**9, random_bytes=0)
        t_random = dram.service_time_s(streamed_bytes=0, random_bytes=10**9)
        assert t_random > 2 * t_stream

    def test_service_time_uses_ledger_by_default(self):
        dram = DramModel(DramConfig())
        dram.stream(51_200_000_000 // 100)
        t = dram.service_time_s()
        assert t == pytest.approx(0.01 / dram.config.efficiency, rel=1e-6)

    def test_effective_bandwidth_mix(self):
        dram = DramModel(DramConfig(efficiency=0.8, random_efficiency=0.4))
        assert dram.effective_bandwidth_gbps(1.0) == pytest.approx(51.2 * 0.8)
        assert dram.effective_bandwidth_gbps(0.0) == pytest.approx(51.2 * 0.4)
        with pytest.raises(ValueError):
            dram.effective_bandwidth_gbps(1.5)

    def test_reset(self):
        dram = DramModel(DramConfig())
        dram.stream(1000)
        dram.reset()
        assert dram.ledger.total_bytes == 0

    def test_negative_rejected(self):
        dram = DramModel(DramConfig())
        with pytest.raises(ValueError):
            dram.stream(-1)
        with pytest.raises(ValueError):
            dram.scatter(-1, 8)
