"""Tolerance golden checks for the torch backend.

The NumPy backend carries the bit-identity contract; non-NumPy backends
promise NumPy semantics *within floating-point tolerance* instead (op
wrappers round-trip through host arrays, so ordering ops are exact and
only transcendental/accumulation ops may differ in final ulps).

The whole module skips when torch is not installed — locally that is the
common case; CI runs it in the optional ``backend-torch`` job.
"""

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backend import get_backend, use_backend  # noqa: E402
from repro.experiments.engine import BatchedRollout, SimJob  # noqa: E402
from repro.pipeline.projection import project_gaussians  # noqa: E402
from repro.pipeline.rasterizer import rasterize  # noqa: E402
from repro.pipeline.sorting import sort_tiles  # noqa: E402
from repro.pipeline.tiling import TileGrid, assign_to_tiles  # noqa: E402


class TestTorchBackend:
    def test_available_with_expected_gaps(self):
        backend = get_backend("torch")
        assert backend.available
        native = set(backend.native_ops())
        assert "argsort" in native and "exp" in native
        # Deliberately unimplemented — these exercise per-op fallback.
        assert "lexsort" not in native
        assert "reduceat" not in native

    @pytest.mark.parametrize("kind", [None, "stable"])
    def test_argsort_matches_numpy_exactly(self, rng, kind):
        data = rng.integers(0, 50, 400).astype(np.float64)  # heavy ties
        backend = get_backend("torch")
        got = backend.ops["argsort"](data, kind=kind)
        want = np.argsort(data, kind=kind)
        if kind == "stable":
            assert np.array_equal(got, want)
        else:
            # Unstable order may differ; the sorted values may not.
            assert np.array_equal(data[got], data[want])

    def test_searchsorted_and_repeat_exact(self, rng):
        backend = get_backend("torch")
        sorted_vals = np.sort(rng.integers(0, 100, 64))
        queries = rng.integers(-5, 105, 37)
        for side in ("left", "right"):
            got = backend.ops["searchsorted"](sorted_vals, queries, side=side)
            assert np.array_equal(got, np.searchsorted(sorted_vals, queries, side=side))
        counts = rng.integers(0, 5, 20)
        values = np.arange(20)
        assert np.array_equal(
            backend.ops["repeat"](values, counts), np.repeat(values, counts)
        )

    def test_float_ops_within_tolerance(self, rng):
        backend = get_backend("torch")
        x = rng.standard_normal((16, 8))
        assert np.allclose(backend.ops["exp"](x), np.exp(x), rtol=1e-12)
        assert np.allclose(
            backend.ops["accumulate_multiply"](np.abs(x) + 0.5),
            np.multiply.accumulate(np.abs(x) + 0.5, axis=0),
            rtol=1e-12,
        )
        assert np.allclose(
            backend.ops["cumsum"](x.ravel()), np.cumsum(x.ravel()), rtol=1e-9, atol=1e-12
        )


class TestTorchGoldens:
    def test_rendered_frame_matches_numpy_within_tolerance(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        want = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        with use_backend("torch"):
            got = rasterize(sort_tiles(assign_to_tiles(proj, grid)), proj, grid)
        assert np.allclose(got.image, want.image, rtol=1e-9, atol=1e-12)
        assert got.stats.num_pairs == want.stats.num_pairs

    @pytest.mark.parametrize("subtile", [8, None])
    def test_bucketed_rasterization_matches_pin_within_tolerance(
        self, small_scene, camera, subtile
    ):
        # The bucketed whole-frame path routes exp/minimum/accumulate_multiply
        # through the active backend: under torch the composited image may
        # differ from the scalar pin in final ulps, never beyond tolerance,
        # and the pairing counters stay exact.
        from repro.pipeline import reference as ref

        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        sorted_tiles = sort_tiles(assign_to_tiles(proj, grid))
        want = ref.rasterize(sorted_tiles, proj, grid, subtile_size=subtile)
        with use_backend("torch"):
            got = rasterize(sorted_tiles, proj, grid, subtile_size=subtile)
        assert np.allclose(got.image, want.image, rtol=1e-9, atol=1e-12)
        assert got.stats.num_pairs == want.stats.num_pairs
        assert got.valid_bits.keys() == want.valid_bits.keys()

    def test_simulation_matches_numpy_within_tolerance(self):
        job = SimJob.make("neo", "family", "hd", frames=4, bandwidth_gbps=51.2)
        want = job.resolved().simulate()
        with use_backend("torch"):
            got = job.resolved().simulate()
        for g, w in zip(got.frames, want.frames):
            assert g.traffic.feature_extraction == w.traffic.feature_extraction
            assert np.isclose(g.memory_time_s, w.memory_time_s, rtol=1e-9)
            assert np.isclose(g.compute_time_s, w.compute_time_s, rtol=1e-9, atol=1e-15)

    def test_batched_rollout_smoke_under_torch(self):
        jobs = [
            SimJob.make("neo", "family", "hd", frames=4, bandwidth_gbps=float(b))
            for b in (25.6, 51.2, 102.4, 204.8)
        ]
        with use_backend("torch"):
            rollout = BatchedRollout(jobs)
            got = rollout.execute()
            assert rollout.stats.stacked == 4
        want = {job: job.resolved().simulate() for job in jobs}
        for job in jobs:
            for g, w in zip(got[job].frames, want[job].frames):
                assert np.isclose(g.memory_time_s, w.memory_time_s, rtol=1e-9)
