"""Reference sorting stage (pipeline stage 3).

This module provides the *functional* ground truth: exact per-tile depth
ordering computed with numpy's sort.  Neo's reuse-and-update strategies in
:mod:`repro.core` are validated against it, and the quality experiments
(Table 2, Fig. 19) compare images rendered with approximate orders against
images rendered with this exact order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tiling import TileAssignment


@dataclass
class SortedTiles:
    """Depth-sorted per-tile Gaussian lists.

    Attributes
    ----------
    tile_rows:
        Entry ``t`` holds row indices into the frame's
        :class:`ProjectedGaussians`, sorted front-to-back by depth.
    tile_ids:
        Entry ``t`` holds the matching global Gaussian IDs (same order).
    tile_depths:
        Entry ``t`` holds the matching depths (non-decreasing).
    """

    tile_rows: list[np.ndarray]
    tile_ids: list[np.ndarray]
    tile_depths: list[np.ndarray]

    @property
    def num_tiles(self) -> int:
        """Number of tiles covered."""
        return len(self.tile_rows)

    @property
    def num_pairs(self) -> int:
        """Total tile-Gaussian pairs in the sorted tables."""
        return int(sum(ids.shape[0] for ids in self.tile_ids))


def sort_tiles(assignment: TileAssignment) -> SortedTiles:
    """Exactly sort every tile's Gaussians front-to-back by depth.

    Ties break on global Gaussian ID so the order is deterministic, mirroring
    the stable key construction (depth | ID) of the CUDA radix sort.
    """
    tile_rows: list[np.ndarray] = []
    tile_ids: list[np.ndarray] = []
    tile_depths: list[np.ndarray] = []
    proj = assignment.projected
    for rows in assignment.tile_rows:
        depths = proj.depths[rows]
        ids = proj.ids[rows]
        order = np.lexsort((ids, depths))
        tile_rows.append(rows[order])
        tile_ids.append(ids[order])
        tile_depths.append(depths[order])
    return SortedTiles(tile_rows=tile_rows, tile_ids=tile_ids, tile_depths=tile_depths)


def is_depth_sorted(depths: np.ndarray, tolerance: float = 0.0) -> bool:
    """True if ``depths`` is non-decreasing (within ``tolerance``)."""
    if depths.shape[0] < 2:
        return True
    return bool(np.all(np.diff(depths) >= -tolerance))


def order_quality(approx_depths: np.ndarray) -> float:
    """Fraction of adjacent pairs already in non-decreasing depth order.

    1.0 means perfectly sorted; used to quantify how far an incremental
    ordering has drifted from the exact one.
    """
    n = approx_depths.shape[0]
    if n < 2:
        return 1.0
    good = int(np.count_nonzero(np.diff(approx_depths) >= 0))
    return good / (n - 1)


def kendall_tau_distance(order_a: np.ndarray, order_b: np.ndarray) -> float:
    """Normalized Kendall-tau distance between two orderings of the same set.

    0.0 means identical order, 1.0 fully reversed.  Computed via merge-sort
    inversion counting in O(n log n); both inputs must be permutations of the
    same ID set.
    """
    order_a = np.asarray(order_a)
    order_b = np.asarray(order_b)
    if order_a.shape != order_b.shape:
        raise ValueError("orderings must have equal length")
    n = order_a.shape[0]
    if n < 2:
        return 0.0
    if not np.array_equal(np.sort(order_a), np.sort(order_b)):
        raise ValueError("orderings must contain the same IDs")

    rank_in_b = {int(g): i for i, g in enumerate(order_b)}
    sequence = np.fromiter((rank_in_b[int(g)] for g in order_a), dtype=np.int64, count=n)
    inversions = _count_inversions(sequence)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(seq: np.ndarray) -> int:
    """Count inversions with an iterative bottom-up merge sort."""
    seq = seq.copy()
    buffer = np.empty_like(seq)
    n = seq.shape[0]
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if seq[i] <= seq[j]:
                    buffer[k] = seq[i]
                    i += 1
                else:
                    buffer[k] = seq[j]
                    inversions += mid - i
                    j += 1
                k += 1
            buffer[k : k + mid - i] = seq[i:mid]
            k += mid - i
            buffer[k : k + hi - j] = seq[j:hi]
            seq[lo:hi] = buffer[lo:hi]
        width *= 2
    return inversions
