"""Bench-trend gate: fail CI when speedups regress vs the committed baseline.

The `repro bench` gate enforces *absolute* speedup floors, which are set
conservatively so machine noise cannot flake the job — meaning a path can
gradually decay from 2.5x toward its 1.3x floor without CI ever noticing.
This script closes that gap: it diffs a fresh ``BENCH_pipeline.json``
against the committed baseline and exits nonzero when any recorded
speedup regressed by more than ``--max-regression`` (default 25%).

Benchmarks that record ``detail.stage_seconds`` (render_sequence) are also
compared stage by stage, so a rasterization regression cannot hide behind
a sorting win that keeps the *total* speedup flat: each stage's
baseline-over-stage-time ratio is gated at ``--max-stage-regression``, and
the failure message names the regressed stage.  Stages below
``--min-stage-share`` of the run's stage time are reported info-only —
their timings are noise-dominated.

Benchmarks present only in the fresh run (newly added, baseline not yet
refreshed) pass with a note; benchmarks missing from the fresh run fail —
a silently dropped benchmark is exactly the regression this gate exists
to catch.

Usage (the CI bench-smoke job)::

    repro bench --quick --out BENCH_fresh.json
    python benchmarks/bench_trend.py \\
        --baseline BENCH_pipeline.json --fresh BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    return {bench["name"]: bench for bench in report.get("benchmarks", [])}


def _stage_speedups(bench: dict) -> dict[str, tuple[float, float]]:
    """Per-stage ``(speedup, share)`` from a benchmark's ``stage_seconds``.

    Stage times come from the optimized run only, so the raw seconds are not
    comparable across machines or quick/full workload sizes.  The quantity
    that *is* comparable — like the total-speedup ratio — is the same-run
    ratio of the scalar baseline's wall time to each stage's time: both
    scale with the machine and the frame count, so a stage only moves this
    number by getting slower (or faster) relative to the frozen reference.
    ``share`` is the stage's fraction of the summed stage time, used to
    exempt tiny stages whose timings are noise-dominated.
    """
    stages = bench.get("detail", {}).get("stage_seconds")
    if not isinstance(stages, dict):
        return {}
    timed = {
        name: float(seconds)
        for name, seconds in stages.items()
        if name != "total_s" and float(seconds) > 0.0
    }
    total = sum(timed.values())
    baseline_s = float(bench["baseline_ms"]) / 1e3
    if total <= 0.0 or baseline_s <= 0.0:
        return {}
    return {
        name: (baseline_s / seconds, seconds / total)
        for name, seconds in timed.items()
    }


def compare_stages(
    base: dict, fresh: dict, max_stage_regression: float, min_stage_share: float
) -> tuple[list[str], list[str]]:
    """Per-stage trend lines plus the names of regressed stages.

    Only stages carrying at least ``min_stage_share`` of the baseline's
    stage time can fail the gate; smaller stages are reported info-only so
    a sub-millisecond sort stage cannot flake CI, and a regression in the
    dominant rasterization stage cannot hide behind a win elsewhere.
    """
    base_stages = _stage_speedups(base)
    fresh_stages = _stage_speedups(fresh)
    lines: list[str] = []
    regressed: list[str] = []
    for stage, (base_speedup, base_share) in base_stages.items():
        if stage not in fresh_stages:
            lines.append(f"  stage {stage:12s} MISSING from fresh run")
            regressed.append(stage)
            continue
        fresh_speedup, _ = fresh_stages[stage]
        ratio = fresh_speedup / base_speedup
        gated = base_share >= min_stage_share
        status = "ok" if gated else f"info only ({base_share:.1%} of stage time)"
        if gated and ratio < 1.0 - max_stage_regression:
            status = f"REGRESSED >{max_stage_regression:.0%}"
            regressed.append(stage)
        lines.append(
            f"  stage {stage:12s} baseline {base_speedup:7.2f}x   "
            f"fresh {fresh_speedup:7.2f}x   ({ratio:6.1%})  [{status}]"
        )
    return lines, regressed


def compare(
    baseline: dict[str, dict],
    fresh: dict[str, dict],
    max_regression: float,
    max_stage_regression: float = 0.5,
    min_stage_share: float = 0.05,
) -> tuple[list[str], bool]:
    """Per-benchmark trend lines plus an overall pass verdict."""
    lines = []
    ok = True
    for name, base in baseline.items():
        if name not in fresh:
            lines.append(f"{name:18s} MISSING from fresh run (baseline {base['speedup']:.2f}x)")
            ok = False
            continue
        base_speedup = float(base["speedup"])
        fresh_speedup = float(fresh[name]["speedup"])
        ratio = fresh_speedup / base_speedup if base_speedup > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - max_regression:
            status = f"REGRESSED >{max_regression:.0%}"
            ok = False
        lines.append(
            f"{name:18s} baseline {base_speedup:5.2f}x   fresh {fresh_speedup:5.2f}x   "
            f"({ratio:6.1%} of baseline)  [{status}]"
        )
        stage_lines, regressed_stages = compare_stages(
            base, fresh[name], max_stage_regression, min_stage_share
        )
        lines.extend(stage_lines)
        if regressed_stages:
            ok = False
            lines.append(
                f"  -> {name}: stage(s) {', '.join(regressed_stages)} regressed "
                "even though the total may still pass"
            )
    for name, bench in fresh.items():
        if name not in baseline:
            lines.append(
                f"{name:18s} new benchmark ({bench['speedup']:.2f}x), "
                "not in the committed baseline yet"
            )
    return lines, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_pipeline.json",
        help="committed baseline artifact (default BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--fresh", required=True, help="artifact from the fresh `repro bench` run"
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="maximum allowed fractional speedup loss vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--max-stage-regression", type=float, default=0.5,
        help="maximum allowed fractional per-stage speedup loss for benchmarks "
             "that record stage_seconds (default 0.5; looser than the total "
             "gate because single-stage timings are noisier)",
    )
    parser.add_argument(
        "--min-stage-share", type=float, default=0.05,
        help="stages below this fraction of the baseline's stage time are "
             "reported but never gate (default 0.05)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load bench artifacts: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline!r}", file=sys.stderr)
        return 2

    lines, ok = compare(
        baseline,
        fresh,
        args.max_regression,
        args.max_stage_regression,
        args.min_stage_share,
    )
    print(f"bench trend vs {args.baseline} (max regression {args.max_regression:.0%}):")
    for line in lines:
        print(f"  {line}")
    if not ok:
        print(
            "error: at least one benchmark regressed beyond the trend threshold "
            "(or vanished); if intentional, refresh the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
