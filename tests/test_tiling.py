"""Unit tests for tile binning and Gaussian duplication."""

import numpy as np
import pytest

from repro.pipeline.projection import ProjectedGaussians, project_gaussians
from repro.pipeline.tiling import TileGrid, assign_to_tiles, tile_ranges


def _projected(means2d, radii, depths=None):
    n = np.asarray(means2d).shape[0]
    if depths is None:
        depths = np.arange(n, dtype=np.float64) + 1.0
    return ProjectedGaussians(
        ids=np.arange(n, dtype=np.int64),
        means2d=np.asarray(means2d, dtype=np.float64),
        cov2d=np.tile(np.eye(2), (n, 1, 1)),
        conic=np.tile(np.array([1.0, 0.0, 1.0]), (n, 1)),
        depths=np.asarray(depths, dtype=np.float64),
        radii=np.asarray(radii, dtype=np.float64),
        colors=np.full((n, 3), 0.5),
        opacities=np.full(n, 0.9),
    )


class TestTileGrid:
    def test_dimensions(self):
        grid = TileGrid(width=100, height=60, tile_size=16)
        assert grid.tiles_x == 7
        assert grid.tiles_y == 4
        assert grid.num_tiles == 28

    def test_index_roundtrip(self):
        grid = TileGrid(width=128, height=64, tile_size=16)
        for t in range(grid.num_tiles):
            tx, ty = grid.tile_coords(t)
            assert grid.tile_index(tx, ty) == t

    def test_index_bounds(self):
        grid = TileGrid(width=32, height=32, tile_size=16)
        with pytest.raises(IndexError):
            grid.tile_index(2, 0)
        with pytest.raises(IndexError):
            grid.tile_coords(4)

    def test_pixel_bounds_clipped_at_edge(self):
        grid = TileGrid(width=100, height=60, tile_size=16)
        x0, y0, x1, y1 = grid.tile_pixel_bounds(grid.num_tiles - 1)
        assert x1 == 100 and y1 == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            TileGrid(width=0, height=10, tile_size=16)
        with pytest.raises(ValueError):
            TileGrid(width=10, height=10, tile_size=0)

    def test_for_camera(self, camera):
        grid = TileGrid.for_camera(camera, tile_size=16)
        assert grid.width == camera.width


class TestTileRanges:
    def test_center_splat(self):
        grid = TileGrid(width=64, height=64, tile_size=16)
        proj = _projected([[32.0, 32.0]], [1.0])
        tx0, tx1, ty0, ty1 = tile_ranges(proj, grid)
        assert (tx0[0], tx1[0], ty0[0], ty1[0]) == (1, 2, 1, 2)

    def test_offscreen_yields_empty(self):
        grid = TileGrid(width=64, height=64, tile_size=16)
        proj = _projected([[-100.0, -100.0]], [5.0])
        tx0, tx1, _, _ = tile_ranges(proj, grid)
        assert tx1[0] < tx0[0]


class TestAssignment:
    def test_small_splat_single_tile(self):
        grid = TileGrid(width=64, height=64, tile_size=16)
        proj = _projected([[8.0, 8.0]], [2.0])
        assignment = assign_to_tiles(proj, grid)
        assert assignment.num_pairs == 1
        assert assignment.rows_for(0).shape[0] == 1

    def test_large_splat_covers_many_tiles(self):
        grid = TileGrid(width=64, height=64, tile_size=16)
        proj = _projected([[32.0, 32.0]], [100.0])
        assignment = assign_to_tiles(proj, grid)
        assert assignment.num_pairs == grid.num_tiles

    def test_corner_grazing_circle_excluded(self):
        # The splat's bbox touches tile (1,1) but the circle misses the
        # corner: the exact circle test must exclude it (ITU consistency).
        grid = TileGrid(width=32, height=32, tile_size=16)
        proj = _projected([[12.0, 12.0]], [5.0])
        assignment = assign_to_tiles(proj, grid)
        # corner of tile(1,1) is (16,16): distance from (12,12) = 5.66 > 5
        tiles_hit = [t for t in range(4) if assignment.rows_for(t).shape[0]]
        assert 3 not in tiles_hit
        assert assignment.num_pairs == 3

    def test_occupancy_matches_rows(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        occ = assignment.occupancy()
        assert occ.sum() == assignment.num_pairs
        assert occ.shape == (grid.num_tiles,)

    def test_tile_ids_and_depths_aligned(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        for t in assignment.nonempty_tiles()[:5]:
            rows = assignment.rows_for(t)
            assert np.array_equal(assignment.tile_ids(t), proj.ids[rows])
            assert np.array_equal(assignment.tile_depths(t), proj.depths[rows])

    def test_empty_projection(self):
        grid = TileGrid(width=64, height=64, tile_size=16)
        proj = _projected(np.zeros((0, 2)), np.zeros(0))
        assignment = assign_to_tiles(proj, grid)
        assert assignment.num_pairs == 0

    def test_every_pair_overlaps_its_tile(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        for t in assignment.nonempty_tiles():
            x0, y0, x1, y1 = grid.tile_pixel_bounds(t)
            rows = assignment.rows_for(t)
            cx = proj.means2d[rows, 0]
            cy = proj.means2d[rows, 1]
            r = proj.radii[rows]
            qx = np.clip(cx, x0, x1)
            qy = np.clip(cy, y0, y1)
            assert ((qx - cx) ** 2 + (qy - cy) ** 2 <= r * r + 1e-9).all()
