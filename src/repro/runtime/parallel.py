"""Parallel execution of experiment drivers and per-frame renders.

Two fan-out axes, both with deterministic merges:

* **Experiment-level** — :class:`ParallelRunner` routes registered
  experiments through the shared
  :class:`~repro.experiments.engine.ExperimentEngine`, which dedupes
  identical simulation cells across experiments, consults the
  :class:`~repro.runtime.cache.ResultCache` before dispatch so warm entries
  never reach a worker, and fans cache-miss cells out cell-granularly.
  Results come back in the caller's requested order regardless of
  completion order.
* **Frame-level** — :func:`parallel_render_sequence` shards a camera
  trajectory into contiguous frame ranges and renders each shard in its own
  worker.  Frames rendered by a stateless sorting strategy are independent,
  so the merged output is bitwise-identical to a serial
  :meth:`~repro.pipeline.renderer.Renderer.render_sequence`.  Stateful
  strategies (Neo's reuse-and-update chain) carry inter-frame state and are
  transparently rendered serially.

Experiment drivers are dispatched *by name* (workers re-resolve them through
the registry), so everything crossing the process boundary is picklable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .cache import ResultCache

if TYPE_CHECKING:  # circular at runtime: experiments imports runtime.cache
    from ..experiments.runner import ExperimentResult
    from ..pipeline.renderer import FrameRecord, Renderer
    from ..scene.camera import Camera


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, shares the loaded scene pages); else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def parallel_map(func, tasks: list, jobs: int) -> list:
    """Order-preserving map of a picklable function over a task list.

    The shared fan-out primitive behind :class:`ParallelRunner` and the
    sweep executor (:mod:`repro.sweeps`): ``jobs <= 1`` (or a single task)
    runs in-process, anything else goes through a :mod:`multiprocessing`
    pool sized to ``min(jobs, len(tasks))``.  Results always come back in
    task order regardless of completion order, so callers' merges stay
    deterministic.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    ctx = _mp_context()
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(func, tasks)


# ----------------------------------------------------------------------
# Experiment-level parallelism
# ----------------------------------------------------------------------
@dataclass
class RunOutcome:
    """One experiment's result plus provenance for reporting."""

    name: str
    result: "ExperimentResult"
    elapsed_s: float
    from_cache: bool


@dataclass
class ParallelRunner:
    """Runs experiment drivers with disk-backed caching and parallel fan-out.

    Since the plan/execute refactor this is a thin client of the
    :class:`~repro.experiments.engine.ExperimentEngine`: experiments declare
    their simulation cells, the engine dedupes identical cells *across*
    experiments and fans the misses out cell-granularly, and drivers whose
    work is not cell-shaped run whole in a worker.  Kept for API continuity
    (``benchmarks/ci_smoke.py`` and external callers); new code should use
    the engine directly.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs everything in-process.
    frames:
        Frame-count override threaded into each driver's
        :class:`~repro.experiments.runner.RunnerConfig` (``None`` keeps the
        driver default).
    cache:
        Result cache, or ``None`` to disable persistence entirely.
    """

    jobs: int = 1
    frames: int | None = None
    cache: ResultCache | None = field(default_factory=ResultCache)

    def run(self, names: list[str]) -> list[RunOutcome]:
        """Execute experiments by registry name; output order matches input."""
        from ..experiments.engine import ExperimentEngine

        engine = ExperimentEngine(jobs=self.jobs, frames=self.frames, cache=self.cache)
        return [
            RunOutcome(o.name, o.result, o.elapsed_s, o.from_cache)
            for o in engine.run(names).outcomes
        ]


# ----------------------------------------------------------------------
# Frame-level parallelism
# ----------------------------------------------------------------------
_render_state: dict[str, Any] = {}


def _init_render_worker(renderer: "Renderer") -> None:
    _render_state["renderer"] = renderer


def _render_shard(shard: "tuple[int, list[Camera]]") -> "list[FrameRecord]":
    """Render one shard: ``(first frame index, that shard's cameras)``.

    Each task carries only its own camera slice — workers never receive the
    full trajectory — so the per-task payload stays constant as the
    trajectory grows and the spawn start method (which pickles initargs and
    tasks alike) ships no redundant frames.
    """
    start, cameras = shard
    renderer = _render_state["renderer"]
    return [
        renderer.render(camera, frame_index=start + offset)
        for offset, camera in enumerate(cameras)
    ]


def _contiguous_shards(num_items: int, num_shards: int) -> list[list[int]]:
    """Split ``range(num_items)`` into <= num_shards contiguous index runs."""
    num_shards = max(1, min(num_shards, num_items))
    base, extra = divmod(num_items, num_shards)
    shards: list[list[int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def parallel_render_sequence(
    renderer: "Renderer", cameras: "list[Camera]", jobs: int
) -> "list[FrameRecord]":
    """Render a trajectory with frame-level sharding.

    Bitwise-identical to the serial path: shards are contiguous, workers
    thread the true frame indices through, and the merge concatenates shards
    in order.  Falls back to serial rendering when the strategy carries
    inter-frame state (parallel shards would diverge from the serial
    reuse chain) or when there is nothing to fan out.
    """
    stateless = getattr(renderer.strategy, "stateless", False)
    if jobs <= 1 or len(cameras) <= 1 or not stateless:
        return [renderer.render(camera, frame_index=i) for i, camera in enumerate(cameras)]

    shards = _contiguous_shards(len(cameras), jobs)
    tasks = [(shard[0], [cameras[i] for i in shard]) for shard in shards]
    ctx = _mp_context()
    with ctx.Pool(
        processes=len(shards),
        initializer=_init_render_worker,
        initargs=(renderer,),
    ) as pool:
        parts = pool.map(_render_shard, tasks)
    return [record for part in parts for record in part]
