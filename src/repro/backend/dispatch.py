"""Capability registry and per-op fallback dispatch for array backends.

The hot cores (rasterizer, tile stream, sorting, system models) are pure
batched array programs.  This module lets them run on interchangeable
array backends without giving up the NumPy path's bit-identity contract:

* Every backend is a :class:`Backend` — a name, an availability flag, and
  a dict of implementations for ops drawn from one shared vocabulary
  (:data:`OP_SIGNATURES`).  All implementations take and return host
  (NumPy) arrays, so backends compose freely at op granularity.
* Each core declares the ops it needs once, at import, via
  :func:`core_ops`.  Resolution happens against the *active* backend on
  every use: an op the backend implements dispatches natively, an op it
  lacks falls back to the NumPy implementation — **per function, never
  per process**, mirroring the related GS renderer's
  ``render_gsplat -> render_points_fast`` fallback chain.
* A backend that is not importable at all (e.g. Torch absent) can still
  be activated; every op then resolves to the NumPy fallback and results
  stay bit-identical to the default path.

The NumPy backend's ops are the exact calls the cores made before this
shim existed, so the default configuration *is* the frozen-reference
execution, not an approximation of it.  Non-NumPy backends are validated
against it within tolerance (see the README "Backends" section).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: The op vocabulary: name -> signature summary.  Cores may only declare
#: ops listed here, and ``repro backends show`` prints this table with the
#: per-backend resolution next to it.  All signatures are NumPy-semantics;
#: implementations take and return host arrays.
OP_SIGNATURES: dict[str, str] = {
    "argsort": "argsort(a, kind=None) -> sorting indices",
    "lexsort": "lexsort(keys) -> indices (last key primary)",
    "sort": "sort(a, axis=-1) -> sorted copy",
    "searchsorted": "searchsorted(sorted, values, side='left') -> insert positions",
    "cumsum": "cumsum(a, out=None) -> inclusive prefix sums",
    "repeat": "repeat(a, repeats) -> elements repeated per count",
    "reduceat": "reduceat(data, starts, ufunc) -> per-segment reduction",
    "accumulate_multiply": "accumulate_multiply(a, axis=0, out=None) -> running product",
    "accumulate_add": "accumulate_add(a, axis=0, out=None) -> running sum",
    "exp": "exp(x, out=None) -> e**x elementwise",
    "minimum": "minimum(a, b, out=None) -> elementwise minimum",
    "maximum": "maximum(a, b) -> elementwise maximum",
    "where": "where(cond, a, b) -> elementwise select",
    "clip": "clip(a, lo, hi) -> values bounded into [lo, hi]",
    "frexp": "frexp(x) -> (mantissa, exponent)",
}

#: The backend every missing op resolves to.  Always available.
FALLBACK_BACKEND = "numpy"


@dataclass(frozen=True)
class Backend:
    """One registered array backend.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"torch"``, ...).
    available:
        Whether the backend's runtime imported successfully.  Unavailable
        backends still activate — their ops simply all fall back.
    detail:
        Version string when available, otherwise the reason it is not.
    ops:
        Op name -> implementation; host arrays in, host arrays out.  Keys
        must come from :data:`OP_SIGNATURES`.
    """

    name: str
    available: bool
    detail: str
    ops: dict[str, Callable] = field(repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [name for name in self.ops if name not in OP_SIGNATURES]
        if unknown:
            raise KeyError(
                f"backend {self.name!r} implements ops outside the vocabulary: "
                f"{unknown}; known ops: {list(OP_SIGNATURES)}"
            )

    def native_ops(self) -> tuple[str, ...]:
        """Ops this backend implements itself, in vocabulary order."""
        return tuple(name for name in OP_SIGNATURES if name in self.ops)


_FACTORIES: dict[str, Callable[[], Backend]] = {}
_BACKENDS: dict[str, Backend] = {}
_active: str = FALLBACK_BACKEND

#: Core name -> the ops it declared via :func:`core_ops` (what ``repro
#: backends show`` uses to print per-core dispatch tables).
CORE_REQUIREMENTS: dict[str, tuple[str, ...]] = {}

_RESOLVED: dict[tuple[str, str], "ResolvedOps"] = {}


def _ensure_builtin() -> None:
    if FALLBACK_BACKEND in _FACTORIES:
        return
    from .numpy_backend import build as build_numpy
    from .torch_backend import build as build_torch

    _FACTORIES[FALLBACK_BACKEND] = build_numpy
    _FACTORIES["torch"] = build_torch


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory (lazily invoked on first use)."""
    _ensure_builtin()
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests).

    The built-in fallback cannot be removed; removing the active backend
    reverts activation to the fallback.
    """
    global _active
    if name == FALLBACK_BACKEND:
        raise ValueError("the numpy fallback backend cannot be unregistered")
    _FACTORIES.pop(name, None)
    _BACKENDS.pop(name, None)
    for key in [k for k in _RESOLVED if k[1] == name]:
        del _RESOLVED[key]
    if _active == name:
        _active = FALLBACK_BACKEND


def backend_names() -> tuple[str, ...]:
    """All registered backend names, fallback first."""
    _ensure_builtin()
    return tuple(_FACTORIES)


def get_backend(name: str) -> Backend:
    """Look up (building lazily) a backend; unknown names list the options."""
    _ensure_builtin()
    if name not in _BACKENDS:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"unknown backend {name!r}; options: {list(_FACTORIES)}"
            ) from None
        _BACKENDS[name] = factory()
    return _BACKENDS[name]


def active_backend() -> Backend:
    """The backend ops currently resolve against."""
    return get_backend(_active)


def set_active(name: str) -> Backend:
    """Activate a backend by name and return it.

    Activating an unavailable backend is allowed — every op falls back to
    NumPy — so callers can inspect ``.available`` and print a notice
    instead of failing the whole process.
    """
    global _active
    backend = get_backend(name)  # validates the name
    _active = name
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Scope an active backend to a ``with`` block."""
    global _active
    previous = _active
    backend = set_active(name)
    try:
        yield backend
    finally:
        _active = previous


class ResolvedOps:
    """One core's ops resolved against one backend.

    Each declared op is an attribute bound to either the backend's native
    implementation or the NumPy fallback; ``sources`` records which, per
    op, for the CLI dispatch table and the fallback-composition tests.
    """

    def __init__(self, names: tuple[str, ...], backend: Backend, fallback: Backend) -> None:
        self.backend = backend.name
        self.sources: dict[str, str] = {}
        for name in names:
            impl = backend.ops.get(name)
            if impl is None:
                impl = fallback.ops[name]
                self.sources[name] = fallback.name
            else:
                self.sources[name] = backend.name
            setattr(self, name, impl)


def core_ops(core: str, *names: str) -> Callable[[], ResolvedOps]:
    """Declare the ops ``core`` needs; returns a zero-argument resolver.

    Declared at module import so unknown op names fail fast and the
    requirement is introspectable (``repro backends show``).  The resolver
    is called per use — a cached dict hit — so switching the active
    backend takes effect without re-importing the core.
    """
    unknown = [n for n in names if n not in OP_SIGNATURES]
    if unknown:
        raise KeyError(
            f"core {core!r} declares unknown ops {unknown}; "
            f"known ops: {list(OP_SIGNATURES)}"
        )
    CORE_REQUIREMENTS[core] = tuple(names)

    def resolve() -> ResolvedOps:
        key = (core, _active)
        resolved = _RESOLVED.get(key)
        if resolved is None:
            resolved = ResolvedOps(
                CORE_REQUIREMENTS[core], active_backend(), get_backend(FALLBACK_BACKEND)
            )
            _RESOLVED[key] = resolved
        return resolved

    return resolve


def resolution_table(name: str) -> dict[str, str]:
    """Op -> serving backend for every vocabulary op under backend ``name``."""
    backend = get_backend(name)
    return {
        op: (backend.name if op in backend.ops else FALLBACK_BACKEND)
        for op in OP_SIGNATURES
    }
