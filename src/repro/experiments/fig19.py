"""Fig. 19 — per-frame latency and quality of four sorting-reuse methods.

Compares, on Neo hardware, (1) periodic sorting, (2) background sorting,
(3) GSCore-style hierarchical sorting applied to reused tables, and (4)
Neo's Dynamic Partial Sorting:

* **latency** — per-frame sorting traffic is computed at paper scale from
  the workload model using each strategy's off-chip access pattern
  (full multi-pass sort on periodic-refresh and background frames, two
  passes for hierarchical, one reuse pass + incoming tables for Neo) and
  converted to frame time on Neo's memory system.  Periodic sorting spikes
  above the 16.6 ms / 60 FPS SLO on refresh frames; background pays the
  full sorting stream every frame; Neo stays low and flat.
* **quality** — each strategy's functional render is compared against the
  exact-sort render of the same frame (PSNR).  Periodic decays between
  refreshes, background suffers viewpoint lag, hierarchical and Neo stay
  high.  (The paper's absolute PSNR is against captured ground-truth photos,
  which synthetic scenes don't have; the method ordering is the claim.)
"""

from __future__ import annotations

import numpy as np

from ..core.strategies import (
    BackgroundSortStrategy,
    HierarchicalSortStrategy,
    NeoSortStrategy,
    PeriodicSortStrategy,
)
from ..hw.stages import FEATURE_2D_BYTES, FEATURE_3D_BYTES, PIXEL_BYTES
from ..hw.workload import FrameWorkload, WorkloadModel
from ..metrics.image import psnr
from ..pipeline.renderer import Renderer
from ..scene.datasets import default_trajectory, load_scene
from .engine import ExperimentPlan, execute_plan
from .runner import ExperimentResult

#: 60 FPS service-level objective from the paper (ms).
SLO_MS = 16.6

DESCRIPTION = "Latency and PSNR per frame for four sorting-reuse methods"

#: Edge memory system used for the latency conversion.
_BANDWIDTH_GBPS = 51.2
_EFFICIENCY = 0.82
_SERIAL_S = 0.8e-3

#: Gaussian-table entry bytes.
_ENTRY = 8


def _full_sort_bytes(workload: FrameWorkload, chunk_size: int = 256) -> float:
    """Off-chip bytes of a from-scratch multi-pass sort at paper scale."""
    pairs = workload.pairs
    chunks_per_tile = max(workload.mean_occupancy / chunk_size, 1.0)
    merge_levels = int(np.ceil(np.log2(chunks_per_tile))) if chunks_per_tile > 1 else 0
    return 2 * pairs * _ENTRY * (1 + merge_levels)


def _sort_bytes(method: str, workload: FrameWorkload, frame: int, period: int) -> float:
    """Per-frame sorting-stage traffic for each reuse method."""
    pairs = workload.pairs
    if method == "periodic":
        if frame % period == 0:
            return _full_sort_bytes(workload)
        return 0.0
    if method == "background":
        # The background sorter streams a full sort continuously.
        return _full_sort_bytes(workload)
    if method == "hierarchical":
        # Coarse + fine: the reused table crosses the interface twice.
        return 2 * (2 * pairs * _ENTRY) + 2 * workload.incoming_pairs * _ENTRY
    if method == "neo":
        return 2 * pairs * _ENTRY + 2 * workload.incoming_pairs * _ENTRY
    raise KeyError(method)


def _strategies(period: int, lag: int) -> dict[str, object]:
    return {
        "periodic": PeriodicSortStrategy(period=period),
        "background": BackgroundSortStrategy(lag=lag),
        "hierarchical": HierarchicalSortStrategy(),
        "neo": NeoSortStrategy(),
    }


def plan(
    scene_name: str = "family",
    num_frames: int = 24,
    width: int = 256,
    height: int = 144,
    num_gaussians: int = 2500,
    period: int = 8,
    lag: int = 2,
    resolution: str = "qhd",
) -> ExperimentPlan:
    """No simulation cells: the work is functional renders per strategy."""

    def aggregate(_cells) -> ExperimentResult:
        scene = load_scene(scene_name, num_gaussians=num_gaussians)
        cameras = default_trajectory(
            scene_name, num_frames=num_frames, width=width, height=height
        )
        reference = Renderer(scene).render_sequence(cameras)

        # Paper-scale workloads for the latency conversion.
        wm = WorkloadModel.from_scene(scene_name, num_frames=num_frames)
        workloads = wm.sequence_workloads(resolution, 64)
        bandwidth = _BANDWIDTH_GBPS * 1e9 * _EFFICIENCY

        result = ExperimentResult(name="fig19", description=DESCRIPTION)
        for method, strategy in _strategies(period, lag).items():
            renderer = Renderer(scene, strategy=strategy)
            records = renderer.render_sequence(cameras)
            for i, record in enumerate(records):
                w = workloads[i]
                base_bytes = (
                    w.visible * (FEATURE_3D_BYTES + 2 * FEATURE_2D_BYTES)
                    + w.width * w.height * PIXEL_BYTES
                )
                sort_bytes = _sort_bytes(method, w, i, period)
                latency_ms = ((base_bytes + sort_bytes) / bandwidth + _SERIAL_S) * 1e3
                result.rows.append(
                    {
                        "method": method,
                        "frame": i,
                        "latency_ms": latency_ms,
                        "psnr_vs_exact": psnr(reference[i].image, record.image),
                    }
                )
        return result

    return ExperimentPlan("fig19", DESCRIPTION, (), aggregate)


def run(
    scene_name: str = "family",
    num_frames: int = 24,
    width: int = 256,
    height: int = 144,
    num_gaussians: int = 2500,
    period: int = 8,
    lag: int = 2,
    resolution: str = "qhd",
) -> ExperimentResult:
    """Per-frame latency (ms, Neo hardware) and PSNR-vs-exact per method."""
    return execute_plan(
        plan(
            scene_name=scene_name,
            num_frames=num_frames,
            width=width,
            height=height,
            num_gaussians=num_gaussians,
            period=period,
            lag=lag,
            resolution=resolution,
        )
    )


def method_summary(result: ExperimentResult) -> dict[str, dict[str, float]]:
    """Mean/max latency and mean/min PSNR per method (skip warm-up frame 0)."""
    out: dict[str, dict[str, float]] = {}
    for method in ("periodic", "background", "hierarchical", "neo"):
        rows = [r for r in result.filter(method=method) if r["frame"] > 0]
        lat = np.asarray([r["latency_ms"] for r in rows])
        quality = np.asarray([r["psnr_vs_exact"] for r in rows])
        out[method] = {
            "mean_latency_ms": float(lat.mean()),
            "max_latency_ms": float(lat.max()),
            "mean_psnr": float(quality.mean()),
            "min_psnr": float(quality.min()),
            "slo_violations": int(np.count_nonzero(lat > SLO_MS)),
        }
    return out
