"""Shared fixtures: small scenes and camera paths sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scene import (
    Camera,
    GaussianScene,
    TrajectoryConfig,
    load_scene,
    look_at,
    orbit_trajectory,
)


@pytest.fixture(scope="session")
def small_scene() -> GaussianScene:
    """A 600-Gaussian 'family' scene (session-scoped; treat as read-only)."""
    return load_scene("family", num_gaussians=600)


@pytest.fixture(scope="session")
def tiny_scene() -> GaussianScene:
    """A 60-Gaussian scene for per-function unit tests."""
    return load_scene("horse", num_gaussians=60)


@pytest.fixture(scope="session")
def camera() -> Camera:
    """A 160x90 camera looking at the scene center from the default orbit."""
    return Camera.from_fov(
        width=160,
        height=90,
        fov_y_degrees=60.0,
        world_to_camera=look_at(np.array([6.0, 1.2, 0.0]), np.zeros(3)),
        far=200.0,
    )


@pytest.fixture(scope="session")
def camera_path() -> list[Camera]:
    """Five orbit cameras at 160x90 with gentle motion."""
    config = TrajectoryConfig(num_frames=5, width=160, height=90)
    return orbit_trajectory(np.zeros(3), radius=6.0, config=config, height_offset=1.2)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(1234)
