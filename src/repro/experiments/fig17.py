"""Fig. 17 — extreme AR/VR scenarios: large scenes and rapid camera motion.

(a) Mill-19 Building / Rubble aerial scenes at QHD: Neo sustains >60 FPS
    while Orin and GSCore fall far below.
(b) Camera speed-ups of 2-16x on Tanks-and-Temples: Gaussian reusability
    drops but Neo stays above the 60 FPS SLO.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import MILL19, TANKS_AND_TEMPLES
from .engine import ExperimentPlan, SimJob, execute_plan
from .runner import ExperimentResult

SPEEDS = (1.0, 2.0, 4.0, 8.0, 16.0)
SYSTEMS = ("orin", "gscore", "neo")

DESCRIPTION = "Extreme AR/VR scenarios: large scenes and rapid motion"


def plan_large_scenes(
    scenes=MILL19, resolution: str = "qhd", num_frames: int | None = None
) -> ExperimentPlan:
    """Fig. 17(a): per-system cells on the large-scale aerial scenes."""
    cells = tuple(
        SimJob(system, scene, resolution, frames=num_frames)
        for scene in scenes
        for system in SYSTEMS
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(
            name="fig17a",
            description="Large-scale scenes (Mill-19) at QHD: FPS per system",
        )
        for scene in scenes:
            row = {"scene": scene}
            for system in SYSTEMS:
                row[system] = reports[SimJob(system, scene, resolution, frames=num_frames)].fps
            result.rows.append(row)
        return result

    return ExperimentPlan("fig17a", "Large-scale scenes (Mill-19) at QHD: FPS per system",
                          cells, aggregate)


def plan_camera_speed(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    speeds=SPEEDS,
) -> ExperimentPlan:
    """Fig. 17(b): Neo cells at increasing camera-speed multipliers."""
    if scene not in TANKS_AND_TEMPLES:
        raise ValueError(f"expected a Tanks-and-Temples scene, got {scene!r}")
    cells = tuple(
        SimJob("neo", scene, resolution, frames=num_frames, speed=speed) for speed in speeds
    )

    def aggregate(reports) -> ExperimentResult:
        result = ExperimentResult(
            name="fig17b",
            description="Neo QHD FPS under rapid camera movement (speed multipliers)",
        )
        for job in cells:
            report = reports[job]
            churn = float(np.mean([f.traffic.sorting for f in report.frames[1:]]))
            result.rows.append(
                {
                    "speed": job.speed,
                    "fps": report.fps,
                    "mean_sorting_bytes": churn,
                }
            )
        return result

    return ExperimentPlan(
        "fig17b",
        "Neo QHD FPS under rapid camera movement (speed multipliers)",
        cells,
        aggregate,
    )


def run_large_scenes(
    scenes=MILL19, resolution: str = "qhd", num_frames: int | None = None
) -> ExperimentResult:
    """Fig. 17(a): throughput on the large-scale aerial scenes."""
    return execute_plan(
        plan_large_scenes(scenes=scenes, resolution=resolution, num_frames=num_frames)
    )


def run_camera_speed(
    scene: str = "family",
    resolution: str = "qhd",
    num_frames: int | None = None,
    speeds=SPEEDS,
) -> ExperimentResult:
    """Fig. 17(b): Neo throughput under increasingly rapid camera motion."""
    return execute_plan(
        plan_camera_speed(scene=scene, resolution=resolution, num_frames=num_frames,
                          speeds=speeds)
    )


def plan(num_frames: int | None = None) -> ExperimentPlan:
    """Both panels as one plan (sub-plan composition; rows tagged by panel).

    The merged cell list is the union of the panels' cells, so panel (a)
    dedupes against fig15/fig16's Mill-19-free grids only via the engine,
    while panel (b)'s speed-1 Neo cell is shared with any default-speed
    experiment on the same scene.
    """
    panel_a = plan_large_scenes(num_frames=num_frames)
    panel_b = plan_camera_speed(num_frames=num_frames)
    cells = panel_a.cells + panel_b.cells

    def aggregate(reports) -> ExperimentResult:
        merged = ExperimentResult(name="fig17", description=DESCRIPTION)
        for row in panel_a.aggregate(reports).rows:
            merged.rows.append(
                {
                    "panel": "a",
                    "case": row["scene"],
                    "orin": row["orin"],
                    "gscore": row["gscore"],
                    "neo": row["neo"],
                }
            )
        for row in panel_b.aggregate(reports).rows:
            merged.rows.append(
                {
                    "panel": "b",
                    "case": f"speed x{row['speed']:g}",
                    "orin": "-",
                    "gscore": "-",
                    "neo": row["fps"],
                }
            )
        return merged

    return ExperimentPlan("fig17", DESCRIPTION, cells, aggregate)


def run(num_frames: int | None = None) -> ExperimentResult:
    """Both panels merged into one result (rows tagged by panel).

    Panel (a) rows carry per-system FPS on the large scenes; panel (b)
    rows carry Neo's FPS at each camera-speed multiplier.
    """
    return execute_plan(plan(num_frames=num_frames))
