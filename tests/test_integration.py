"""Integration tests: end-to-end behaviour across modules.

These exercise the claims that cut across subsystems: Neo's incremental
ordering reproduces the exact render; valid-bit feedback keeps tables
synchronized with tile membership; the workload model agrees with the
functional pipeline; and the full experiment drivers run.
"""

import numpy as np
import pytest

from repro.core import NeoSortStrategy, make_strategy
from repro.hw import GSCoreModel, NeoModel, OrinGpuModel, WorkloadModel
from repro.metrics import psnr, sequence_similarity
from repro.pipeline import Renderer
from repro.scene import default_trajectory, load_scene


@pytest.fixture(scope="module")
def scene():
    return load_scene("family", num_gaussians=900)


@pytest.fixture(scope="module")
def cameras():
    return default_trajectory("family", num_frames=6, width=192, height=108)


class TestNeoEndToEnd:
    def test_neo_render_matches_exact_within_tolerance(self, scene, cameras):
        reference = Renderer(scene).render_sequence(cameras)
        neo = NeoSortStrategy()
        records = Renderer(scene, strategy=neo).render_sequence(cameras)
        for ref, rec in zip(reference, records):
            assert psnr(ref.image, rec.image) > 45.0

    def test_table_membership_tracks_assignment(self, scene, cameras):
        neo = NeoSortStrategy()
        renderer = Renderer(scene, strategy=neo)
        records = renderer.render_sequence(cameras)
        last = records[-1]
        for tile in last.assignment.nonempty_tiles():
            assigned = set(last.assignment.tile_ids(tile).tolist())
            table = neo.tables[tile].membership()
            # The table may lag by one frame of churn, but overlap must be
            # high once the sequence warms up.
            overlap = len(assigned & table) / max(len(assigned), 1)
            assert overlap > 0.8

    def test_sequence_similarity_matches_paper_band(self, scene, cameras):
        records = Renderer(scene).render_sequence(cameras)
        stats = sequence_similarity([r.sorted_tiles for r in records])
        # Fig. 6: >90% of tiles retain >78% of their Gaussians.
        assert stats.fraction_of_tiles_retaining(0.78) > 0.9

    def test_strategies_ranked_by_quality(self, scene, cameras):
        reference = Renderer(scene).render_sequence(cameras)

        def quality(strategy):
            records = Renderer(scene, strategy=strategy).render_sequence(cameras)
            return np.mean(
                [psnr(a.image, b.image) for a, b in zip(reference[2:], records[2:])]
            )

        neo_q = quality(make_strategy("neo"))
        periodic_q = quality(make_strategy("periodic", period=6))
        hier_q = quality(make_strategy("hierarchical"))
        assert hier_q >= neo_q > periodic_q


class TestWorkloadConsistency:
    def test_workload_pairs_match_functional_renderer(self, scene, cameras):
        wm = WorkloadModel.from_render(scene, cameras, nominal_gaussians=len(scene))
        renderer = Renderer(scene, tile_size=16)
        for i, camera in enumerate(cameras[:3]):
            record = renderer.render(camera, frame_index=i)
            w = wm.frame_workload(i, (camera.width, camera.height), 16)
            assert w.pairs == pytest.approx(record.stats.num_pairs)
            assert w.visible == pytest.approx(record.stats.num_visible)

    def test_neo_strategy_churn_matches_workload_churn(self, scene, cameras):
        wm = WorkloadModel.from_render(scene, cameras, nominal_gaussians=len(scene))
        neo = NeoSortStrategy()
        Renderer(scene, tile_size=16, strategy=neo).render_sequence(cameras)
        for i in range(2, len(cameras)):
            w = wm.frame_workload(i, (cameras[0].width, cameras[0].height), 16)
            measured = neo.frame_stats[i].incoming_entries
            # Strategy-level incoming lags the geometric churn by the
            # valid-bit round trip but tracks the same magnitude.
            assert measured <= 3 * max(w.incoming_pairs, 1) + 20


class TestSystemOrdering:
    def test_neo_fastest_gpu_slowest_at_qhd(self, scene, cameras):
        wm = WorkloadModel.from_render(
            scene, cameras, nominal_gaussians=1_100_000, scene_name="family"
        )
        neo = NeoModel().simulate(wm.sequence_workloads("qhd", 64))
        gscore = GSCoreModel().simulate(wm.sequence_workloads("qhd", 16))
        gpu = OrinGpuModel().simulate(wm.sequence_workloads("qhd", 16))
        assert neo.fps > gscore.fps > gpu.fps

    def test_speedup_grows_with_resolution(self, scene, cameras):
        wm = WorkloadModel.from_render(
            scene, cameras, nominal_gaussians=1_100_000, scene_name="family"
        )
        ratios = []
        for res in ("hd", "qhd"):
            neo = NeoModel().simulate(wm.sequence_workloads(res, 64))
            gscore = GSCoreModel().simulate(wm.sequence_workloads(res, 16))
            ratios.append(neo.fps / gscore.fps)
        assert ratios[1] > ratios[0]  # Fig. 15: gap widens at QHD
