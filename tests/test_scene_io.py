"""Tests for scene serialization."""

import numpy as np
import pytest

from repro.scene import load_scene
from repro.scene.io import load_scene_file, save_scene


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path, small_scene):
        path = tmp_path / "scene.npz"
        save_scene(path, small_scene)
        loaded = load_scene_file(path)
        assert loaded.name == small_scene.name
        assert np.array_equal(loaded.means, small_scene.means)
        assert np.array_equal(loaded.scales, small_scene.scales)
        assert np.array_equal(loaded.quats, small_scene.quats)
        assert np.array_equal(loaded.opacities, small_scene.opacities)
        assert np.array_equal(loaded.sh_coeffs, small_scene.sh_coeffs)

    def test_loaded_scene_renders_identically(self, tmp_path, camera):
        from repro.pipeline import Renderer

        scene = load_scene("horse", num_gaussians=200)
        path = tmp_path / "horse.npz"
        save_scene(path, scene)
        loaded = load_scene_file(path)
        a = Renderer(scene).render(camera)
        b = Renderer(loaded).render(camera)
        assert np.array_equal(a.image, b.image)

    def test_rejects_non_scene_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_scene_file(path)

    def test_rejects_future_format(self, tmp_path, tiny_scene):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            means=tiny_scene.means,
            scales=tiny_scene.scales,
            quats=tiny_scene.quats,
            opacities=tiny_scene.opacities,
            sh_coeffs=tiny_scene.sh_coeffs,
            name=np.array("x"),
            format_version=np.array(99),
        )
        with pytest.raises(ValueError, match="format version"):
            load_scene_file(path)
