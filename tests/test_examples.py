"""Smoke checks for the example scripts: they must parse and expose main()."""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions
    # Runnable as a script.
    assert any(
        isinstance(node, ast.If)
        and getattr(getattr(node.test, "left", None), "id", "") == "__name__"
        for node in tree.body
    )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    # Examples must exercise the public API, not private internals.
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "__future__":
                continue
            assert not node.module.split(".")[-1].startswith("_")
            for alias in node.names:
                assert not alias.name.startswith("_")
