"""Neo's core contribution: reuse-and-update sorting and its hardware units."""

from .bitonic import (
    BSU_WIDTH,
    PAD_KEY,
    BitonicStats,
    bitonic_sort_16,
    bsu_sort_chunk,
    network_stages,
)
from .dynamic_partial_sort import (
    DEFAULT_CHUNK_SIZE,
    PartialSortStats,
    chunk_ranges,
    dynamic_partial_sort,
    full_sort,
    max_displacement,
    sortedness,
)
from .gaussian_table import TABLE_ENTRY_BYTES, GaussianTable
from .merge_unit import MergeStats, merge_runs, merge_sorted
from .reuse_update import FrameSortStats, ReuseUpdateSorter, SortTraffic
from .strategies import (
    BackgroundSortStrategy,
    FullResortStrategy,
    HierarchicalSortStrategy,
    NeoSortStrategy,
    PeriodicSortStrategy,
    make_strategy,
)

__all__ = [
    "BSU_WIDTH",
    "BackgroundSortStrategy",
    "BitonicStats",
    "DEFAULT_CHUNK_SIZE",
    "FrameSortStats",
    "FullResortStrategy",
    "GaussianTable",
    "HierarchicalSortStrategy",
    "MergeStats",
    "NeoSortStrategy",
    "PAD_KEY",
    "PartialSortStats",
    "PeriodicSortStrategy",
    "ReuseUpdateSorter",
    "SortTraffic",
    "TABLE_ENTRY_BYTES",
    "bitonic_sort_16",
    "bsu_sort_chunk",
    "chunk_ranges",
    "dynamic_partial_sort",
    "full_sort",
    "make_strategy",
    "max_displacement",
    "merge_runs",
    "merge_sorted",
    "network_stages",
    "sortedness",
]
