"""Unit tests for the three system performance models.

These assert the *structural* properties the paper's evaluation relies on —
who wins, what dominates, how knobs move the numbers — not absolute values.
"""

import pytest

from repro.hw.accelerator import NeoModel
from repro.hw.config import DramConfig, GSCoreConfig
from repro.hw.gpu import OrinGpuModel
from repro.hw.gscore import GSCoreModel
from repro.hw.stages import SequenceReport, StageTraffic, effective_pairs
from repro.hw.workload import WorkloadModel


@pytest.fixture(scope="module")
def workloads():
    wm = WorkloadModel.from_scene("family", num_frames=5, num_gaussians=1500)
    return {
        "qhd16": wm.sequence_workloads("qhd", 16),
        "qhd64": wm.sequence_workloads("qhd", 64),
        "hd16": wm.sequence_workloads("hd", 16),
        "hd64": wm.sequence_workloads("hd", 64),
    }


class TestStageTraffic:
    def test_total_and_fractions(self):
        traffic = StageTraffic(feature_extraction=10, sorting=70, rasterization=20)
        assert traffic.total == 100
        fracs = traffic.fractions()
        assert fracs["sorting"] == pytest.approx(0.7)

    def test_empty_fractions(self):
        assert StageTraffic().fractions()["sorting"] == 0.0

    def test_effective_pairs_saturates(self, workloads):
        w = workloads["qhd64"][1]
        unbounded = effective_pairs(w, termination_depth=10**9)
        bounded = effective_pairs(w, termination_depth=100)
        assert unbounded == pytest.approx(w.mean_occupancy * w.nonempty_tiles)
        assert bounded == pytest.approx(100 * w.nonempty_tiles)


class TestOrinModel:
    def test_sorting_dominates_traffic(self, workloads):
        model = OrinGpuModel()
        traffic = model.frame_traffic(workloads["qhd16"][1])
        assert traffic.fractions()["sorting"] > 0.8  # Fig. 5a: up to 91%

    def test_neo_sw_cuts_sorting_traffic(self, workloads):
        base = OrinGpuModel().frame_traffic(workloads["qhd16"][1])
        neo_sw = OrinGpuModel(neo_software=True).frame_traffic(workloads["qhd16"][1])
        assert neo_sw.sorting < 0.25 * base.sorting  # >80% cut (Fig. 10a)

    def test_neo_sw_speedup_is_modest(self, workloads):
        base = OrinGpuModel().simulate(workloads["qhd16"])
        neo_sw = OrinGpuModel(neo_software=True).simulate(workloads["qhd16"])
        speedup = base.mean_latency_s / neo_sw.mean_latency_s
        assert 1.0 < speedup < 1.6  # Fig. 10b: ~1.1x end to end

    def test_resolution_scaling(self, workloads):
        model = OrinGpuModel()
        hd = model.simulate(workloads["hd16"])
        qhd = model.simulate(workloads["qhd16"])
        assert qhd.mean_latency_s > 2.0 * hd.mean_latency_s

    def test_name(self):
        assert OrinGpuModel().name == "orin-agx"
        assert OrinGpuModel(neo_software=True).name == "orin-agx-neo-sw"


class TestGSCoreModel:
    def test_bandwidth_bound_at_edge(self, workloads):
        # 4 -> 16 cores at 51.2 GB/s buys little (Fig. 4 / paper: ~1.12x).
        slow = GSCoreModel(config=GSCoreConfig(cores=4)).simulate(workloads["qhd16"])
        fast = GSCoreModel(config=GSCoreConfig(cores=16)).simulate(workloads["qhd16"])
        assert 1.0 < slow.mean_latency_s / fast.mean_latency_s < 1.5

    def test_bandwidth_scaling_strong(self, workloads):
        lo = GSCoreModel(dram=DramConfig(bandwidth_gbps=51.2)).simulate(workloads["qhd16"])
        hi = GSCoreModel(dram=DramConfig(bandwidth_gbps=204.8)).simulate(workloads["qhd16"])
        assert lo.mean_latency_s / hi.mean_latency_s > 2.0  # Fig. 4: ~3.8x

    def test_sorting_is_largest_stage(self, workloads):
        traffic = GSCoreModel().frame_traffic(workloads["qhd16"][1])
        fracs = traffic.fractions()
        assert fracs["sorting"] > fracs["feature_extraction"]
        assert fracs["sorting"] > fracs["rasterization"]
        assert 0.5 < fracs["sorting"] < 0.85  # Fig. 5b: 63-69%

    def test_less_traffic_than_gpu(self, workloads):
        gpu = OrinGpuModel().frame_traffic(workloads["qhd16"][1])
        gscore = GSCoreModel().frame_traffic(workloads["qhd16"][1])
        assert gscore.total < 0.5 * gpu.total


class TestNeoModel:
    def test_names(self):
        assert NeoModel().name == "neo"
        assert NeoModel(sorting_engine_only=True).name == "neo-s"
        assert NeoModel(defer_depth_update=False).name == "neo-eager-depth"

    def test_beats_gscore_at_qhd(self, workloads):
        neo = NeoModel().simulate(workloads["qhd64"])
        gscore = GSCoreModel(config=GSCoreConfig(cores=16)).simulate(workloads["qhd16"])
        speedup = gscore.mean_latency_s / neo.mean_latency_s
        assert 3.0 < speedup < 8.0  # paper: 5.6x at QHD

    def test_traffic_far_below_baselines(self, workloads):
        neo = NeoModel().simulate(workloads["qhd64"])
        gscore = GSCoreModel().simulate(workloads["qhd16"])
        gpu = OrinGpuModel().simulate(workloads["qhd16"])
        assert neo.total_traffic.total < 0.35 * gscore.total_traffic.total
        assert neo.total_traffic.total < 0.12 * gpu.total_traffic.total

    def test_first_frame_pays_cold_start(self, workloads):
        report = NeoModel().simulate(workloads["qhd64"])
        assert report.frames[0].traffic.sorting > report.frames[1].traffic.sorting

    def test_eager_depth_costs_about_a_third_more_sorting(self, workloads):
        neo = NeoModel().simulate(workloads["qhd64"])
        eager = NeoModel(defer_depth_update=False).simulate(workloads["qhd64"])
        ratio = eager.frames[2].traffic.sorting / neo.frames[2].traffic.sorting
        assert 1.5 < ratio < 2.5  # extra read+write of the table

    def test_neo_s_slower_and_heavier_than_neo(self, workloads):
        neo = NeoModel().simulate(workloads["qhd64"])
        neo_s = NeoModel(sorting_engine_only=True).simulate(workloads["qhd64"])
        assert neo_s.mean_latency_s > 1.2 * neo.mean_latency_s  # Fig. 18: 1.7x
        assert neo_s.total_traffic.total > neo.total_traffic.total

    def test_qhd_realtime_at_edge_bandwidth(self, workloads):
        report = NeoModel().simulate(workloads["qhd64"])
        assert report.fps > 60.0  # the paper's headline SLO claim


class TestSequenceReport:
    def test_aggregation(self, workloads):
        report = NeoModel().simulate(workloads["hd64"], scene="family")
        assert isinstance(report, SequenceReport)
        assert report.num_frames == 5
        assert report.scene == "family"
        assert report.fps == pytest.approx(1.0 / report.mean_latency_s)
        assert report.traffic_gb_for(60) == pytest.approx(
            report.total_traffic.total / 5 * 60 / 1e9
        )
        assert report.latencies_ms().shape == (5,)

    def test_empty_simulation_rejected(self):
        with pytest.raises(ValueError):
            NeoModel().simulate([])
