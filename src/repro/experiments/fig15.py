"""Fig. 15 — end-to-end throughput of Orin AGX, GSCore (16-core) and Neo.

The headline result: Neo outperforms the GPU by ~5/7/10x and GSCore by
~1.8/3.3/5.6x at HD/FHD/QHD, and sustains ~99 FPS at QHD — real-time at
AR/VR resolution on edge bandwidth.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .runner import ExperimentResult, simulate_system

RESOLUTIONS = ("hd", "fhd", "qhd")
SYSTEMS = ("orin", "gscore", "neo")


def run(scenes=TANKS_AND_TEMPLES, num_frames: int | None = None) -> ExperimentResult:
    """FPS for every (scene, resolution, system), plus MEAN rows."""
    result = ExperimentResult(
        name="fig15",
        description="End-to-end throughput (FPS): Orin AGX vs GSCore vs Neo",
    )
    for resolution in RESOLUTIONS:
        per_system: dict[str, list[float]] = {s: [] for s in SYSTEMS}
        for scene in scenes:
            row = {"scene": scene, "resolution": resolution}
            for system in SYSTEMS:
                fps = simulate_system(system, scene, resolution, num_frames=num_frames).fps
                row[system] = fps
                per_system[system].append(fps)
            result.rows.append(row)
        mean_row = {"scene": "MEAN", "resolution": resolution}
        for system in SYSTEMS:
            mean_row[system] = float(np.mean(per_system[system]))
        result.rows.append(mean_row)
    return result


def speedups(result: ExperimentResult) -> dict[str, dict[str, float]]:
    """Neo's mean speedup over each baseline per resolution."""
    out: dict[str, dict[str, float]] = {}
    for resolution in RESOLUTIONS:
        mean = result.filter(scene="MEAN", resolution=resolution)[0]
        out[resolution] = {
            "vs_orin": mean["neo"] / mean["orin"],
            "vs_gscore": mean["neo"] / mean["gscore"],
            "neo_fps": mean["neo"],
        }
    return out
