"""Neo accelerator performance model (paper section 5).

Three engines process frames in a tile-pipelined fashion:

* **Preprocessing Engine** — culling, feature extraction, duplication with
  the incoming-Gaussian verification step;
* **Sorting Engine** — 16 Sorting Cores running Dynamic Partial Sorting on
  the reused per-tile tables plus conventional sorting of the (small)
  incoming tables; each table entry crosses the off-chip interface once per
  direction per frame;
* **Rasterization Engine** — 4 cores x 4 ITU/SCU with on-the-fly subtile
  bitmaps and the deferred depth update folded into the feature fetch.

Latency = max(DRAM service time, slowest engine's compute time) + a small
serial overhead, reflecting the deeply pipelined design: in every evaluated
configuration Neo is memory-bound, which is why cutting sorting traffic
translates almost 1:1 into frame time.

Ablations (Fig. 18):

* ``sorting_engine_only=True`` (**Neo-S**) — the Sorting Engine is attached
  to a GSCore-style rasterizer: reuse-and-update works, but depth/valid-bit
  refresh needs a separate post-processing pass with per-Gaussian *random*
  DRAM reads, and subtile bitmaps are still materialized and propagated.
* ``defer_depth_update=False`` — keep Neo's rasterizer but fetch fresh
  depths eagerly each frame (the +33.2 % traffic variant of section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import DramConfig, NeoConfig
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
    FrameReport,
    SequenceReport,
    StageTraffic,
    effective_pairs,
)
from .workload import FrameWorkload

#: Gaussian-table entry bytes (32-bit ID with valid bit + 32-bit depth).
_ENTRY_BYTES = 8

#: Front-most Gaussians per 64 px tile before transmittance saturates.  A
#: 64 px tile holds 16x the pixels of GSCore's 16 px tile, so proportionally
#: more front splats are needed to cover all its subtiles.
_TERMINATION_DEPTH_64 = 1000

#: DRAM efficiency for Neo's almost fully streaming access pattern.
_DRAM_EFFICIENCY = 0.82

#: Burst size charged for the Neo-S ablation's random per-Gaussian depth
#: fetches (one LPDDR4 burst each).
_RANDOM_BURST_BYTES = 32

#: Bandwidth efficiency of that random-access pass.
_RANDOM_EFFICIENCY = 0.35

#: Subtile bitmap bytes per pair for the Neo-S ablation (64 subtiles in a
#: 64 px tile -> 8 bytes), written at preprocessing and read at raster.
_BITMAP_BYTES_64 = 8

#: Sorting Core cycles per table entry: 256-entry chunk = 16 BSU sub-sorts
#: (10 stages each) + 4 MSU+ merge levels (256 cycles each) ~= 4.6/entry.
_SORT_CYCLES_PER_ENTRY = 4.6

#: SCU cycles per blended pair (subtile blend inner loop).
_RASTER_CYCLES_PER_PAIR = 16.0

#: Preprocessing cycles per scene Gaussian per unit.
_PREPROC_CYCLES_PER_GAUSSIAN = 1.0

#: Per-frame serial overhead (engine drain, table pointer swap).
_SERIAL_OVERHEAD_S = 0.8e-3

#: Off-chip passes charged for a from-scratch sort on the first frame.
_INIT_SORT_PASSES = 2


@dataclass
class NeoModel:
    """Performance model of the Neo accelerator.

    Parameters
    ----------
    config:
        Hardware configuration (Table 1).
    dram:
        Off-chip memory parameters.
    sorting_engine_only:
        Model the Neo-S ablation (no Rasterization Engine support).
    defer_depth_update:
        Disable to model the eager depth-refresh ablation.
    """

    config: NeoConfig = field(default_factory=NeoConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    sorting_engine_only: bool = False
    defer_depth_update: bool = True
    name: str = "neo"

    def __post_init__(self) -> None:
        if self.sorting_engine_only:
            self.name = "neo-s"
        elif not self.defer_depth_update:
            self.name = "neo-eager-depth"

    # ------------------------------------------------------------------
    def frame_traffic(self, workload: FrameWorkload) -> StageTraffic:
        """DRAM bytes per stage for one frame (streamed component)."""
        streamed, _random = self._traffic_split(workload)
        return streamed

    def _traffic_split(
        self, workload: FrameWorkload
    ) -> tuple[StageTraffic, float]:
        """(streamed stage traffic, random-access bytes) for one frame."""
        visible = workload.visible
        total = workload.num_gaussians
        pairs = workload.pairs

        feature = (
            visible * FEATURE_3D_BYTES
            + (total - visible) * CULL_PROBE_BYTES
            + visible * FEATURE_2D_BYTES
        )

        if workload.frame_index == 0:
            # Cold start: conventional sort of every tile from scratch.
            sorting = pairs * _ENTRY_BYTES * (1 + 2 * _INIT_SORT_PASSES)
        else:
            # Dynamic Partial Sorting: one read + one write of the table,
            # plus the small incoming tables (written by preprocessing,
            # read back and merged by the Sorting Engine).
            sorting = 2 * pairs * _ENTRY_BYTES + 2 * workload.incoming_pairs * _ENTRY_BYTES

        random_bytes = 0.0
        if self.sorting_engine_only:
            # Post-processing pass: each visible Gaussian's refreshed depth
            # is gathered from the feature table (random, one burst each)
            # and the per-tile table metadata is rewritten.
            random_bytes = visible * _RANDOM_BURST_BYTES
            sorting += pairs * _ENTRY_BYTES
        elif not self.defer_depth_update:
            # Eager refresh: an extra streamed read+write of the table
            # (section 4.4 reports +33.2 % traffic without deferral).
            sorting += 2 * pairs * _ENTRY_BYTES

        blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
        raster = (
            blended * FEATURE_2D_BYTES
            + workload.width * workload.height * PIXEL_BYTES
        )
        if self.sorting_engine_only:
            # GSCore-style rasterizer: bitmaps materialized and re-read.
            raster += 2 * pairs * _BITMAP_BYTES_64

        streamed = StageTraffic(
            feature_extraction=feature, sorting=sorting, rasterization=raster
        )
        return streamed, random_bytes

    # ------------------------------------------------------------------
    def frame_report(self, workload: FrameWorkload) -> FrameReport:
        """Latency and traffic for one frame."""
        streamed, random_bytes = self._traffic_split(workload)
        peak = self.dram.bandwidth_gbps * 1e9
        memory_time = streamed.total / (peak * _DRAM_EFFICIENCY)
        memory_time += random_bytes / (peak * _RANDOM_EFFICIENCY)

        freq = self.config.frequency_ghz * 1e9
        preproc_time = (
            workload.num_gaussians
            * _PREPROC_CYCLES_PER_GAUSSIAN
            / (self.config.projection_units * freq)
        )
        sort_time = (
            workload.pairs * _SORT_CYCLES_PER_ENTRY / (self.config.sorting_cores * freq)
        )
        blended = effective_pairs(workload, _TERMINATION_DEPTH_64)
        raster_time = blended * _RASTER_CYCLES_PER_PAIR / (self.config.total_scus * freq)
        compute_time = max(preproc_time, sort_time, raster_time)

        # Include random bytes in the sorting stage for reporting purposes.
        traffic = StageTraffic(
            feature_extraction=streamed.feature_extraction,
            sorting=streamed.sorting + random_bytes,
            rasterization=streamed.rasterization,
        )
        latency_mem = max(memory_time, compute_time) + _SERIAL_OVERHEAD_S
        return FrameReport(
            frame_index=workload.frame_index,
            traffic=traffic,
            memory_time_s=latency_mem,
            compute_time_s=0.0,
        )

    # ------------------------------------------------------------------
    def simulate(
        self, workloads: list[FrameWorkload], scene: str = "scene"
    ) -> SequenceReport:
        """Simulate a frame sequence and aggregate the reports."""
        if not workloads:
            raise ValueError("need at least one workload")
        report = SequenceReport(
            system=self.name,
            scene=scene,
            resolution=(workloads[0].width, workloads[0].height),
        )
        report.frames = [self.frame_report(w) for w in workloads]
        return report
