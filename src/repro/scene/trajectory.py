"""Parametric camera trajectories.

The paper evaluates 3DGS rendering on camera sequences captured at 30 FPS;
temporal redundancy in the sorting stage depends only on how far the
viewpoint moves between consecutive frames.  These trajectory generators
produce smooth camera paths with a controllable per-frame angular / linear
step, including the 2-16x "rapid camera movement" sweeps of Fig. 17(b).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from .camera import Camera, look_at


@dataclass(frozen=True)
class TrajectoryConfig:
    """Shared knobs for the built-in trajectories.

    Parameters
    ----------
    num_frames:
        Number of camera poses to generate.
    speed:
        Motion multiplier; 1.0 matches a 30 FPS hand-held capture, larger
        values emulate the rapid-movement scenarios of Fig. 17(b).
    fov_y_degrees:
        Vertical field of view for every generated camera.
    width, height:
        Image resolution.
    """

    num_frames: int = 60
    speed: float = 1.0
    fov_y_degrees: float = 60.0
    width: int = 1280
    height: int = 720

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


def _camera_at(eye: np.ndarray, target: np.ndarray, config: TrajectoryConfig, far: float) -> Camera:
    return Camera.from_fov(
        width=config.width,
        height=config.height,
        fov_y_degrees=config.fov_y_degrees,
        world_to_camera=look_at(eye, target),
        far=far,
    )


def orbit_trajectory(
    center: np.ndarray,
    radius: float,
    config: TrajectoryConfig,
    height_offset: float = 0.0,
    degrees_per_frame: float = 0.5,
    far: float | None = None,
) -> list[Camera]:
    """Cameras orbiting ``center`` at ``radius``, looking inward.

    ``degrees_per_frame`` is the base angular step; the effective step is
    scaled by ``config.speed``.  0.5 deg/frame at 30 FPS corresponds to a
    slow walk around the subject, matching the gentle motion of the
    Tanks-and-Temples captures.
    """
    center = np.asarray(center, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if far is None:
        far = radius * 20.0
    step = np.radians(degrees_per_frame * config.speed)
    cameras = []
    for i in range(config.num_frames):
        angle = step * i
        eye = center + np.array(
            [radius * np.cos(angle), height_offset, radius * np.sin(angle)]
        )
        cameras.append(_camera_at(eye, center, config, far))
    return cameras


def dolly_trajectory(
    start: np.ndarray,
    end: np.ndarray,
    target: np.ndarray,
    config: TrajectoryConfig,
    far: float = 1000.0,
) -> list[Camera]:
    """Cameras translating from ``start`` toward ``end`` while fixating ``target``.

    ``config.speed`` > 1 covers the same path in fewer effective steps
    (i.e. larger per-frame displacement), clamped at the path end.
    """
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    denom = max(config.num_frames - 1, 1)
    cameras = []
    for i in range(config.num_frames):
        t = min(i * config.speed / denom, 1.0)
        eye = (1.0 - t) * start + t * end
        cameras.append(_camera_at(eye, target, config, far))
    return cameras


def pan_trajectory(
    eye: np.ndarray,
    initial_target: np.ndarray,
    config: TrajectoryConfig,
    degrees_per_frame: float = 0.4,
    far: float = 1000.0,
) -> list[Camera]:
    """Cameras rotating in place (pure pan), the hardest case for reuse.

    Panning changes the visible tile set quickly while depths stay nearly
    constant, stressing insertion/deletion rather than reordering.
    """
    eye = np.asarray(eye, dtype=np.float64)
    initial_target = np.asarray(initial_target, dtype=np.float64)
    offset = initial_target - eye
    radius = np.linalg.norm(offset)
    if radius < 1e-9:
        raise ValueError("eye and initial_target coincide")
    base_angle = np.arctan2(offset[2], offset[0])
    step = np.radians(degrees_per_frame * config.speed)
    cameras = []
    for i in range(config.num_frames):
        angle = base_angle + step * i
        target = eye + np.array(
            [radius * np.cos(angle), offset[1], radius * np.sin(angle)]
        )
        cameras.append(_camera_at(eye, target, config, far))
    return cameras


#: Frames a 1.0x-speed flythrough takes to traverse its full waypoint path
#: (a 4-second sweep at 30 FPS).  Keeps the per-frame step independent of
#: how many frames a caller renders.
FLYTHROUGH_PATH_FRAMES = 120


def flythrough_trajectory(
    waypoints: np.ndarray,
    config: TrajectoryConfig,
    look_ahead: int = 5,
    far: float = 2000.0,
    path_frames: int = FLYTHROUGH_PATH_FRAMES,
) -> list[Camera]:
    """Piecewise-linear flythrough along ``waypoints`` (large-scene scenario).

    The camera advances ``speed / path_frames`` of the path's arc length per
    frame (clamped at the end), and looks toward a point ``look_ahead``
    frames further along — the aerial sweep used for the Mill-19 Building /
    Rubble scenes (Fig. 17a).
    """
    waypoints = np.asarray(waypoints, dtype=np.float64)
    if waypoints.ndim != 2 or waypoints.shape[1] != 3 or waypoints.shape[0] < 2:
        raise ValueError("waypoints must be (m >= 2, 3)")
    if path_frames < 1:
        raise ValueError("path_frames must be >= 1")

    # Arc-length parameterization of the polyline.
    seg = np.diff(waypoints, axis=0)
    seg_len = np.linalg.norm(seg, axis=1)
    total = seg_len.sum()
    if total < 1e-9:
        raise ValueError("degenerate waypoint path")
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    samples = np.minimum(
        np.arange(config.num_frames) * config.speed / path_frames, 1.0
    )
    positions = np.stack(
        [np.interp(samples * total, cum, waypoints[:, k]) for k in range(3)], axis=1
    )

    cameras = []
    for i in range(config.num_frames):
        j = min(i + look_ahead, config.num_frames - 1)
        target = positions[j]
        eye = positions[i]
        if np.linalg.norm(target - eye) < 1e-9:
            target = eye + np.array([1.0, 0.0, 0.0])
        cameras.append(_camera_at(eye, target, config, far))
    return cameras


def shake_trajectory(
    eye: np.ndarray,
    target: np.ndarray,
    config: TrajectoryConfig,
    amplitude: float = 0.25,
    frequency_hz: float = 9.0,
    capture_fps: float = 30.0,
    far: float = 1000.0,
) -> list[Camera]:
    """Hand-shake stress: the eye jitters around a fixed pose.

    Three incommensurate sinusoids (one per axis, frequencies in the 7-12 Hz
    band of physiological tremor) displace the eye while the camera keeps
    fixating ``target``.  Per-frame viewpoint deltas are abrupt and
    non-monotone — the opposite of the smooth captures the reuse chain is
    tuned for — which stresses reordering without changing the visible set
    much.  ``config.speed`` scales elapsed time per frame, so faster
    playback yields larger (aliased) per-frame jumps.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    if frequency_hz <= 0 or capture_fps <= 0:
        raise ValueError("frequency_hz and capture_fps must be positive")
    omega = 2.0 * np.pi * frequency_hz
    cameras = []
    for i in range(config.num_frames):
        t = i * config.speed / capture_fps
        offset = amplitude * np.array(
            [
                np.sin(omega * t),
                0.6 * np.sin(omega * 1.31 * t + 1.7),
                0.8 * np.sin(omega * 0.77 * t + 0.5),
            ]
        )
        cameras.append(_camera_at(eye + offset, target, config, far))
    return cameras


def teleport_trajectory(
    center: np.ndarray,
    radius: float,
    config: TrajectoryConfig,
    hold_frames: int = 4,
    jump_degrees: float = 60.0,
    height_offset: float = 0.0,
    far: float | None = None,
) -> list[Camera]:
    """Discontinuous orbit: hold a pose, then jump a large arc at once.

    The camera sits at orbit positions around ``center`` but advances in
    steps of ``jump_degrees * config.speed`` every ``hold_frames`` frames
    instead of gliding.  Held frames have perfect temporal coherence; jump
    frames have almost none (scene-cut / viewpoint-warp stress), probing
    recovery behaviour rather than steady-state reuse.
    """
    center = np.asarray(center, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if hold_frames < 1:
        raise ValueError("hold_frames must be >= 1")
    if far is None:
        far = radius * 20.0
    jump = np.radians(jump_degrees * config.speed)
    cameras = []
    for i in range(config.num_frames):
        angle = jump * (i // hold_frames)
        eye = center + np.array(
            [radius * np.cos(angle), height_offset, radius * np.sin(angle)]
        )
        cameras.append(_camera_at(eye, center, config, far))
    return cameras


def iter_frame_pairs(cameras: list[Camera]) -> Iterator[tuple[Camera, Camera]]:
    """Yield consecutive ``(previous, current)`` camera pairs."""
    for prev, cur in zip(cameras, cameras[1:]):
        yield prev, cur
