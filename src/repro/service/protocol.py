"""Wire protocol for the simulation service: newline-delimited JSON.

One message per line, UTF-8 JSON, over a plain TCP stream.  Requests carry
an ``op`` plus a client-chosen ``id`` the response echoes, so a client may
pipeline many requests on one connection and match responses as they
arrive (responses complete in *completion* order, not request order —
that's the whole point of coalescing and the worker pool).

Request ops::

    {"op": "simulate", "id": 7, "tenant": "acme", "job": {...SimJob...},
     "timeout_s": 30.0, "attempt": 0, "shared_cache": false}
    {"op": "ping", "id": 1}
    {"op": "stats", "id": 2}
    {"op": "shutdown", "id": 3}

Simulate responses (``status`` discriminates)::

    {"id": 7, "status": "ok", "origin": "executed|coalesced|cache",
     "report": {...}, "elapsed_ms": 12.3}
    {"id": 7, "status": "rejected", "reason": "queue_full", "queue_depth": 64}
    {"id": 7, "status": "timeout", "timeout_s": 30.0}
    {"id": 7, "status": "error", "error": "..."}

The ``report`` payload is the canonical JSON form of a
:class:`~repro.hw.stages.SequenceReport` produced by
:func:`report_to_payload`.  It is built from plain ``int``/``float`` values
only, so serializing the same report always yields the same bytes — the
byte-identity contract the service CI job checks against a direct
:func:`~repro.experiments.engine.execute_cells` run (see
:func:`canonical_bytes`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from ..experiments.engine import SimJob
from ..hw.stages import FrameReport, SequenceReport, StageTraffic
from ..runtime.cache import _json_default

#: Protocol identifier, echoed by ``ping``; bump on incompatible changes.
PROTOCOL = "repro-service/1"

#: Stream limit per message line (a 240-frame report is ~60 KB of JSON).
MAX_MESSAGE_BYTES = 4 * 1024 * 1024


def encode_message(message: dict[str, Any]) -> bytes:
    """One message as a compact, key-sorted JSON line."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    return body.encode("utf-8") + b"\n"


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read the next message; ``None`` on a clean EOF.

    Raises ``ValueError`` on a non-JSON or non-object line — the peer is
    speaking a different protocol and the connection should be dropped.
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object, got {type(message).__name__}")
    return message


def job_from_payload(payload: dict[str, Any]) -> SimJob:
    """Rebuild the request's simulation cell (validates the system name)."""
    return SimJob.from_payload(payload)


def report_to_payload(report: SequenceReport) -> dict[str, Any]:
    """Canonical JSON-safe form of a sequence report.

    Every leaf is coerced to a plain ``int``/``float`` so numpy scalars
    coming out of the vectorized simulation core serialize identically to
    values that round-tripped through JSON once already.
    """
    return {
        "system": report.system,
        "scene": report.scene,
        "resolution": [int(d) for d in report.resolution],
        "frames": [
            {
                "frame_index": int(f.frame_index),
                "traffic": {
                    "feature_extraction": float(f.traffic.feature_extraction),
                    "sorting": float(f.traffic.sorting),
                    "rasterization": float(f.traffic.rasterization),
                },
                "memory_time_s": float(f.memory_time_s),
                "compute_time_s": float(f.compute_time_s),
            }
            for f in report.frames
        ],
    }


def report_from_payload(payload: dict[str, Any]) -> SequenceReport:
    """Rebuild a :class:`SequenceReport` from :func:`report_to_payload` output."""
    return SequenceReport(
        system=payload["system"],
        scene=payload["scene"],
        resolution=tuple(payload["resolution"]),
        frames=[
            FrameReport(
                frame_index=f["frame_index"],
                traffic=StageTraffic(**f["traffic"]),
                memory_time_s=f["memory_time_s"],
                compute_time_s=f["compute_time_s"],
            )
            for f in payload["frames"]
        ],
    )


def canonical_bytes(payload: dict[str, Any]) -> bytes:
    """Deterministic byte form of a payload (sorted keys, compact).

    Equal payloads — whether freshly built by :func:`report_to_payload` or
    parsed back off the wire — produce equal bytes, which is what the
    service-smoke CI job compares against direct engine execution.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
